"""Figure 4: EM3D update-protocol performance.

Regenerates the cycles-per-edge series for DirNNB, Typhoon/Stache, and
Typhoon/Update as the fraction of non-local edges sweeps 0-50 %, and
asserts the paper's shape:

* every system slows as more edges go remote;
* the custom delayed-update protocol is the lowest curve with the
  flattest slope;
* at 50 % remote edges the update protocol beats DirNNB by a
  double-digit percentage (the paper reports 35 %).
"""

from benchmarks.conftest import nodes_under_test
from repro.harness import experiments


def run_figure4():
    result = experiments.run_figure4(nodes=nodes_under_test())
    print()
    print(result.to_text())
    return result


def test_figure4_series(once):
    result = once(run_figure4)

    for series in ("dirnnb", "typhoon_stache", "typhoon_update"):
        values = result.column(series)
        # Monotone-ish growth with the remote fraction: the last point is
        # the most expensive and the first the cheapest.
        assert values[-1] > values[0]

    by_pct = {row["remote_pct"]: row for row in result.rows}

    # At 0% remote all three systems are close (no communication).
    base = by_pct[0]
    assert abs(base["typhoon_stache"] - base["dirnnb"]) / base["dirnnb"] < 0.25
    assert base["typhoon_update"] <= base["typhoon_stache"] * 1.05

    # The update protocol is the lowest curve at every sampled point >0.
    for pct, row in by_pct.items():
        if pct == 0:
            continue
        assert row["typhoon_update"] < row["dirnnb"]
        assert row["typhoon_update"] < row["typhoon_stache"]

    # Flattest slope: update's rise from 0% to 50% is smaller than both.
    for series in ("dirnnb", "typhoon_stache"):
        rise = by_pct[50][series] - by_pct[0][series]
        update_rise = by_pct[50]["typhoon_update"] - by_pct[0]["typhoon_update"]
        assert update_rise < rise

    # The headline: a substantial win over DirNNB at 50% remote edges.
    assert by_pct[50]["update_vs_dirnnb"] < 0.85
