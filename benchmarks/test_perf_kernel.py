"""Simulation-kernel throughput benchmark: interpreted vs compiled.

Times representative runs — the workloads the hot-path work in
``sim/engine.py``, ``sim/process.py``, the node models, and the
table-driven dispatch kernel (:mod:`repro.kernel.compiled`) targets —
under **both** dispatch kernels, prints them side by side, and writes
``BENCH_kernel.json`` at the repo root so successive commits carry a
throughput trajectory.

Methodology: each cell is run with its variants interleaved and the
best time kept — wall clock on shared boxes is noisy, and interleaving
keeps a load spike from biasing one column.  Lane rows run
``REPRO_BENCH_REPEATS`` times (default 3); the legacy kernel rows are
trimmed to two repeats to keep the job inside its time budget.  The
batched-vs-scalar lane speedup is computed from CPU time
(``time.process_time``), which is immune to machine-load noise.  Events/second uses each
run's own event count; note the compiled kernel fires *fewer* events for
identical simulated behaviour (tail dispatches advance the clock
inline), so its events/s understates its real advantage —
``cycles_per_second`` (simulated cycles per wall second) is the
kernel-invariant throughput measure.

The asserted properties here are completion, nonzero throughput, and
kernel equivalence of the simulated outcome (cycles equal between
kernels).  The regression gate against the committed baseline lives in
``tools/check_perf.py`` (CI's ``perf`` job), with a wide tolerance for
machine-to-machine variance.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from benchmarks.conftest import nodes_under_test
from repro.harness.runner import run_application
from repro.harness.workloads import workload
from repro.sim.config import MachineConfig

#: (label, system, application, dataset, cache_bytes, kernels)
KERNEL_WORKLOADS = [
    ("ocean-typhoon", "typhoon-stache", "ocean", "small", 2048,
     ("interpreted", "compiled")),
    ("mp3d-typhoon", "typhoon-stache", "mp3d", "small", 2048,
     ("interpreted", "compiled")),
    ("em3d-dirnnb", "dirnnb", "em3d", "small", 2048,
     ("interpreted",)),  # hardware protocol: nothing to compile
    ("ocean-blizzard", "blizzard-stache", "ocean", "small", 2048,
     ("interpreted", "compiled")),
    ("ocean-decoupled", "decoupled-stache", "ocean", "small", 2048,
     ("interpreted",)),  # handler processor not specialised: no compile
]

#: Batched-vs-scalar access-lane rows:
#: (label, system, application, dataset, cache_bytes, nodes, kernel,
#:  lane_floor, microbenchmark).
#: ``nodes=None`` uses the suite-wide node count.  The lane floor for
#: microbenchmark rows comes from REPRO_PERF_MIN_LANE_SPEEDUP (default
#: 1.3) at gate time; app rows carry their own conservative floor.  The
#: app rows run two nodes: the lanes pay off exactly when the event
#: queue gives a node room to run several hits back-to-back, and
#: lock-step phases shrink that window as the node count grows.
LANE_WORKLOADS = [
    ("sweep-lanes", "typhoon-stache", "sweep", "ref", 8192, None,
     "compiled", None, True),
    ("ocean-lanes", "typhoon-stache", "ocean", "large", 8192, 2,
     "compiled", 1.02, False),
    ("barnes-lanes", "typhoon-stache", "barnes", "large", 8192, 2,
     "compiled", 1.01, False),
]

_OUTPUT = Path(__file__).resolve().parents[1] / "BENCH_kernel.json"


def _repeats() -> int:
    return int(os.environ.get("REPRO_BENCH_REPEATS", "3"))


def _kernel_repeats() -> int:
    # The kernel rows are the legacy half of the suite; two interleaved
    # repeats keep the whole perf job inside its time budget while the
    # lane rows get the full repeat count.
    return max(1, min(_repeats(), 2))


def _run_cell(system: str, app_name: str, dataset: str, cache_bytes: int,
              nodes: int, kernel: str) -> tuple[float, dict]:
    config = MachineConfig(nodes=nodes, seed=42).with_cache_size(cache_bytes)
    app = workload(app_name, dataset).build()
    start = time.perf_counter()
    outcome = run_application(system, app, config, kernel=kernel)
    return time.perf_counter() - start, outcome


def _time_lane_cell(system: str, app_name: str, dataset: str,
                    cache_bytes: int, nodes: int, kernel: str) -> dict:
    """Time one workload under scalar and batched access lanes.

    Wall clock is recorded for the throughput columns, but the lane
    speedup is computed from CPU time: the effect being measured is
    pure dispatch overhead in one process, and ``process_time`` is
    immune to the machine-load noise that dominates small wall-clock
    ratios.  Repeats interleave the two lane modes.
    """
    config = MachineConfig(nodes=nodes, seed=42).with_cache_size(cache_bytes)
    best: dict[str, dict] = {}
    for rep in range(_repeats()):
        order = ("scalar", "batched") if rep % 2 == 0 else ("batched", "scalar")
        for lanes in order:
            app = workload(app_name, dataset).build()
            wall0 = time.perf_counter()
            cpu0 = time.process_time()
            outcome = run_application(system, app, config, kernel=kernel,
                                      lanes=lanes)
            cpu = time.process_time() - cpu0
            wall = time.perf_counter() - wall0
            if lanes not in best or cpu < best[lanes]["cpu"]:
                best[lanes] = {"cpu": cpu, "wall": wall, "outcome": outcome}

    row: dict = {
        "system": system,
        "application": app_name,
        "dataset": dataset,
        "cache_bytes": cache_bytes,
        "nodes": nodes,
        "kernel": kernel,
        "lanes": {},
    }
    for lanes, sample in best.items():
        outcome = sample["outcome"]
        events = outcome["machine"].engine.events_fired
        cycles = outcome["execution_time"]
        wall = sample["wall"]
        row["lanes"][lanes] = {
            "wall_seconds": round(wall, 6),
            "cpu_seconds": round(sample["cpu"], 6),
            "events_fired": events,
            "events_per_second": round(events / wall, 1) if wall else 0.0,
            "cycles_per_second": round(cycles / wall, 1) if wall else 0.0,
            "simulated_cycles": cycles,
        }
    ts, tb = best["scalar"]["cpu"], best["batched"]["cpu"]
    row["lane_speedup"] = round(ts / tb, 3) if tb > 0 else None
    return row


def _time_cell(system: str, app_name: str, dataset: str, cache_bytes: int,
               nodes: int, kernels: tuple[str, ...]) -> dict:
    best: dict[str, tuple[float, dict]] = {}
    for _ in range(_kernel_repeats()):
        for kernel in kernels:  # interleaved: noise hits both columns
            elapsed, outcome = _run_cell(
                system, app_name, dataset, cache_bytes, nodes, kernel
            )
            if kernel not in best or elapsed < best[kernel][0]:
                best[kernel] = (elapsed, outcome)

    row: dict = {
        "system": system,
        "application": app_name,
        "dataset": dataset,
        "cache_bytes": cache_bytes,
        "kernels": {},
    }
    for kernel, (elapsed, outcome) in best.items():
        events = outcome["machine"].engine.events_fired
        cycles = outcome["execution_time"]
        row["kernels"][kernel] = {
            "kernel_installed": outcome["kernel"],
            "wall_seconds": round(elapsed, 6),
            "events_fired": events,
            "events_per_second": round(events / elapsed, 1) if elapsed else 0.0,
            "cycles_per_second": round(cycles / elapsed, 1) if elapsed else 0.0,
            "simulated_cycles": cycles,
        }
    if "interpreted" in best and "compiled" in best:
        ti, tc = best["interpreted"][0], best["compiled"][0]
        row["speedup"] = round(ti / tc, 3) if tc > 0 else None
    else:
        row["speedup"] = None
    return row


def test_kernel_throughput():
    nodes = nodes_under_test()
    results = {}
    print()
    for label, system, app_name, dataset, cache_bytes, kernels \
            in KERNEL_WORKLOADS:
        row = _time_cell(system, app_name, dataset, cache_bytes, nodes,
                         kernels)
        results[label] = row
        for kernel in kernels:
            cell = row["kernels"][kernel]
            print(f"{label:>16} [{kernel:>11}]: "
                  f"{cell['wall_seconds'] * 1e3:8.1f} ms  "
                  f"{cell['events_per_second']:>10,.0f} events/s  "
                  f"{cell['cycles_per_second']:>10,.0f} cycles/s")
            assert cell["events_fired"] > 0
            assert cell["events_per_second"] > 0
        if row["speedup"] is not None:
            print(f"{label:>16} [    speedup]: {row['speedup']:8.2f}x "
                  f"(compiled vs interpreted, wall)")
            # Observable equivalence: both kernels simulate the same
            # machine (the differential harness asserts the rest).
            cycles = {cell["simulated_cycles"]
                      for cell in row["kernels"].values()}
            assert len(cycles) == 1, f"kernels disagree on cycles: {cycles}"

    lane_results = {}
    for label, system, app_name, dataset, cache_bytes, row_nodes, kernel, \
            lane_floor, micro in LANE_WORKLOADS:
        row = _time_lane_cell(system, app_name, dataset, cache_bytes,
                              row_nodes or nodes, kernel)
        row["lane_floor"] = lane_floor
        row["microbenchmark"] = micro
        lane_results[label] = row
        for lanes in ("scalar", "batched"):
            cell = row["lanes"][lanes]
            print(f"{label:>16} [{lanes:>11}]: "
                  f"{cell['cpu_seconds'] * 1e3:8.1f} ms cpu  "
                  f"{cell['events_per_second']:>10,.0f} events/s  "
                  f"{cell['cycles_per_second']:>10,.0f} cycles/s")
            assert cell["events_fired"] > 0
        print(f"{label:>16} [lane spdup ]: {row['lane_speedup']:8.2f}x "
              f"(batched vs scalar, cpu)")
        # The lanes change wall-clock only: simulated time, event count,
        # and every statistic are bit-identical across the lane axis
        # (the differential harness asserts the stats and images).
        cycles = {cell["simulated_cycles"] for cell in row["lanes"].values()}
        assert len(cycles) == 1, f"lanes disagree on cycles: {cycles}"
        events = {cell["events_fired"] for cell in row["lanes"].values()}
        assert len(events) == 1, f"lanes disagree on events: {events}"

    payload = {
        "benchmark": "kernel-throughput",
        "nodes": nodes,
        "repeats": _repeats(),
        "workloads": results,
        "lanes": lane_results,
    }
    _OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {_OUTPUT}")
