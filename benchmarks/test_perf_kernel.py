"""Simulation-kernel throughput benchmark (report-only).

Times representative single runs — the workloads the hot-path work in
``sim/engine.py``, ``sim/process.py``, and the node models targets — and
writes ``BENCH_kernel.json`` at the repo root with wall-clock seconds and
events/second per workload, so successive commits can be compared.

No performance assertion is made here (wall-clock on shared CI boxes is
too noisy to gate on); the only asserted properties are that the runs
complete and that throughput is nonzero.  The JSON artifact is the
deliverable.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from benchmarks.conftest import nodes_under_test
from repro.harness.runner import run_application
from repro.harness.workloads import workload
from repro.sim.config import MachineConfig

#: (label, system, application, dataset, cache_bytes)
KERNEL_WORKLOADS = [
    ("ocean-typhoon", "typhoon-stache", "ocean", "small", 2048),
    ("mp3d-typhoon", "typhoon-stache", "mp3d", "small", 2048),
    ("em3d-dirnnb", "dirnnb", "em3d", "small", 2048),
    ("ocean-blizzard", "blizzard-stache", "ocean", "small", 2048),
]

_OUTPUT = Path(__file__).resolve().parents[1] / "BENCH_kernel.json"


def _time_cell(system: str, app_name: str, dataset: str,
               cache_bytes: int, nodes: int) -> dict:
    config = MachineConfig(nodes=nodes, seed=42).with_cache_size(cache_bytes)
    app = workload(app_name, dataset).build()
    start = time.perf_counter()
    outcome = run_application(system, app, config)
    elapsed = time.perf_counter() - start
    events = outcome["machine"].engine.events_fired
    return {
        "system": system,
        "application": app_name,
        "dataset": dataset,
        "cache_bytes": cache_bytes,
        "wall_seconds": round(elapsed, 6),
        "events_fired": events,
        "events_per_second": round(events / elapsed, 1) if elapsed > 0 else 0.0,
        "simulated_cycles": outcome["execution_time"],
    }


def test_kernel_throughput():
    nodes = nodes_under_test()
    results = {}
    print()
    for label, system, app_name, dataset, cache_bytes in KERNEL_WORKLOADS:
        row = _time_cell(system, app_name, dataset, cache_bytes, nodes)
        results[label] = row
        print(f"{label:>16}: {row['wall_seconds'] * 1e3:8.1f} ms  "
              f"{row['events_per_second']:>12,.0f} events/s  "
              f"({row['events_fired']:,} events)")
        assert row["events_fired"] > 0
        assert row["events_per_second"] > 0

    payload = {
        "benchmark": "kernel-throughput",
        "nodes": nodes,
        "workloads": results,
    }
    _OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {_OUTPUT}")
