"""Simulation-kernel throughput benchmark: interpreted vs compiled.

Times representative runs — the workloads the hot-path work in
``sim/engine.py``, ``sim/process.py``, the node models, and the
table-driven dispatch kernel (:mod:`repro.kernel.compiled`) targets —
under **both** dispatch kernels, prints them side by side, and writes
``BENCH_kernel.json`` at the repo root so successive commits carry a
throughput trajectory.

Methodology: each (workload, kernel) cell is run ``REPRO_BENCH_REPEATS``
times (default 3) with the kernels interleaved, and the best wall time
is kept — wall clock on shared boxes is noisy, and interleaving keeps a
load spike from biasing one kernel's column.  Events/second uses each
run's own event count; note the compiled kernel fires *fewer* events for
identical simulated behaviour (tail dispatches advance the clock
inline), so its events/s understates its real advantage —
``cycles_per_second`` (simulated cycles per wall second) is the
kernel-invariant throughput measure.

The asserted properties here are completion, nonzero throughput, and
kernel equivalence of the simulated outcome (cycles equal between
kernels).  The regression gate against the committed baseline lives in
``tools/check_perf.py`` (CI's ``perf`` job), with a wide tolerance for
machine-to-machine variance.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from benchmarks.conftest import nodes_under_test
from repro.harness.runner import run_application
from repro.harness.workloads import workload
from repro.sim.config import MachineConfig

#: (label, system, application, dataset, cache_bytes, kernels)
KERNEL_WORKLOADS = [
    ("ocean-typhoon", "typhoon-stache", "ocean", "small", 2048,
     ("interpreted", "compiled")),
    ("mp3d-typhoon", "typhoon-stache", "mp3d", "small", 2048,
     ("interpreted", "compiled")),
    ("em3d-dirnnb", "dirnnb", "em3d", "small", 2048,
     ("interpreted",)),  # hardware protocol: nothing to compile
    ("ocean-blizzard", "blizzard-stache", "ocean", "small", 2048,
     ("interpreted", "compiled")),
]

_OUTPUT = Path(__file__).resolve().parents[1] / "BENCH_kernel.json"


def _repeats() -> int:
    return int(os.environ.get("REPRO_BENCH_REPEATS", "3"))


def _run_cell(system: str, app_name: str, dataset: str, cache_bytes: int,
              nodes: int, kernel: str) -> tuple[float, dict]:
    config = MachineConfig(nodes=nodes, seed=42).with_cache_size(cache_bytes)
    app = workload(app_name, dataset).build()
    start = time.perf_counter()
    outcome = run_application(system, app, config, kernel=kernel)
    return time.perf_counter() - start, outcome


def _time_cell(system: str, app_name: str, dataset: str, cache_bytes: int,
               nodes: int, kernels: tuple[str, ...]) -> dict:
    best: dict[str, tuple[float, dict]] = {}
    for _ in range(_repeats()):
        for kernel in kernels:  # interleaved: noise hits both columns
            elapsed, outcome = _run_cell(
                system, app_name, dataset, cache_bytes, nodes, kernel
            )
            if kernel not in best or elapsed < best[kernel][0]:
                best[kernel] = (elapsed, outcome)

    row: dict = {
        "system": system,
        "application": app_name,
        "dataset": dataset,
        "cache_bytes": cache_bytes,
        "kernels": {},
    }
    for kernel, (elapsed, outcome) in best.items():
        events = outcome["machine"].engine.events_fired
        cycles = outcome["execution_time"]
        row["kernels"][kernel] = {
            "kernel_installed": outcome["kernel"],
            "wall_seconds": round(elapsed, 6),
            "events_fired": events,
            "events_per_second": round(events / elapsed, 1) if elapsed else 0.0,
            "cycles_per_second": round(cycles / elapsed, 1) if elapsed else 0.0,
            "simulated_cycles": cycles,
        }
    if "interpreted" in best and "compiled" in best:
        ti, tc = best["interpreted"][0], best["compiled"][0]
        row["speedup"] = round(ti / tc, 3) if tc > 0 else None
    else:
        row["speedup"] = None
    return row


def test_kernel_throughput():
    nodes = nodes_under_test()
    results = {}
    print()
    for label, system, app_name, dataset, cache_bytes, kernels \
            in KERNEL_WORKLOADS:
        row = _time_cell(system, app_name, dataset, cache_bytes, nodes,
                         kernels)
        results[label] = row
        for kernel in kernels:
            cell = row["kernels"][kernel]
            print(f"{label:>16} [{kernel:>11}]: "
                  f"{cell['wall_seconds'] * 1e3:8.1f} ms  "
                  f"{cell['events_per_second']:>10,.0f} events/s  "
                  f"{cell['cycles_per_second']:>10,.0f} cycles/s")
            assert cell["events_fired"] > 0
            assert cell["events_per_second"] > 0
        if row["speedup"] is not None:
            print(f"{label:>16} [    speedup]: {row['speedup']:8.2f}x "
                  f"(compiled vs interpreted, wall)")
            # Observable equivalence: both kernels simulate the same
            # machine (the differential harness asserts the rest).
            cycles = {cell["simulated_cycles"]
                      for cell in row["kernels"].values()}
            assert len(cycles) == 1, f"kernels disagree on cycles: {cycles}"

    payload = {
        "benchmark": "kernel-throughput",
        "nodes": nodes,
        "repeats": _repeats(),
        "workloads": results,
    }
    _OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {_OUTPUT}")
