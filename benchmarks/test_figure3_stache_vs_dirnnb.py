"""Figure 3: Typhoon/Stache execution time relative to DirNNB.

Regenerates every bar of Figure 3 — five applications at
{small/4K, small/16K, small/64K, small/256K, large/256K} (scaled cache
ladder; see DESIGN.md) — and asserts the paper's shape:

* Typhoon/Stache stays within a modest constant of DirNNB when the data
  set fits in the CPU cache (the paper reports within ~30 %, Ocean the
  outlier; our conservative NP charging allows up to 1.5x in the
  migratory-stress corner), and
* Typhoon/Stache *wins* (relative < 1) somewhere in the
  working-set-exceeds-cache configurations, by double digits at best —
  "as much as 25 %" in the paper.

One benchmark per application so timing/regression data is per-app.
"""

import pytest

from benchmarks.conftest import nodes_under_test
from repro.harness import experiments
from repro.harness.workloads import APP_NAMES


def run_app_rows(app_name):
    result = experiments.run_figure3(apps=(app_name,),
                                     nodes=nodes_under_test())
    print()
    print(result.to_text())
    return result


@pytest.mark.parametrize("app_name", APP_NAMES)
def test_figure3_bars(once, app_name):
    result = once(run_app_rows, app_name)
    for row in result.rows:
        # Bars exist and are sane: Stache is never catastrophically worse.
        assert 0.4 < row["relative"] < 1.6, row


def test_figure3_overall_shape(once):
    """The cross-application claims of Section 6."""
    result = once(
        experiments.run_figure3, apps=APP_NAMES, nodes=nodes_under_test()
    )
    print()
    print(result.to_text())
    relatives = result.column("relative")
    # Stache wins outright somewhere (the capacity-miss advantage).
    assert min(relatives) < 1.0
    # The best win is double-digit percent (paper: up to ~25 %).
    assert min(relatives) < 0.9
    # The generality of Typhoon does not catastrophically degrade
    # transparent shared memory: the typical bar is close to 1.
    fits_cache = [
        row["relative"] for row in result.rows
        if row["dataset"] == "small" and row["cache"] >= 8192
    ]
    assert sum(fits_cache) / len(fits_cache) < 1.25
