"""Section 4's message-economy argument, measured.

The paper's case for custom protocols rests on message counting: under
transparent shared memory every remote graph node costs at least four
messages per iteration (request, response, invalidate, acknowledge);
prefetching hides latency but "does not reduce the message traffic";
check-in trims the invalidation round trip "but cannot attain the minimum
of one message"; the delayed-update protocol approaches that minimum.

This bench measures remote packets per remote datum per EM3D iteration
for Stache, Stache+prefetch, and the update protocol, and asserts the
ordering the whole Section 4 argument depends on.
"""

from benchmarks.conftest import nodes_under_test
from repro.harness import experiments


def test_message_economy(once):
    result = once(experiments.run_message_economy, nodes=nodes_under_test())
    print()
    print(result.to_text())
    by_system = {row["system"]: row for row in result.rows}
    stache = by_system["typhoon-stache"]
    prefetch = by_system["typhoon-stache+prefetch"]
    update = by_system["typhoon-update"]

    # Invalidation protocol: several messages per datum per iteration
    # (request/response every iteration + invalidation traffic).
    assert stache["per_datum_per_iter"] > 3.0

    # Prefetch: meaningfully faster, traffic essentially unchanged.
    assert prefetch["cycles"] < stache["cycles"]
    assert abs(prefetch["remote_packets"] - stache["remote_packets"]) \
        <= 0.1 * stache["remote_packets"]

    # The update protocol approaches the minimum of one message per datum
    # per iteration and beats both on time.
    assert update["per_datum_per_iter"] < 2.0
    assert update["per_datum_per_iter"] < stache["per_datum_per_iter"] / 2
    assert update["cycles"] < prefetch["cycles"]
