"""Table 3: application data sets.

Prints the paper-vs-scaled data-set registry and benchmarks workload
construction (graph/grid building is the setup cost of every experiment).
"""

from repro.harness import experiments
from repro.harness.workloads import APP_NAMES, workload
from repro.protocols.dirnnb import DirNNBMachine
from repro.sim.config import MachineConfig


def test_table3_datasets(once):
    result = once(experiments.run_table3)
    print()
    print(result.to_text())
    assert len(result.rows) == 10


def test_table3_workload_setup_cost(benchmark):
    """Time the setup (allocation + data initialization) of every small set."""

    def set_up_all():
        machines = []
        for app_name in APP_NAMES:
            machine = DirNNBMachine(MachineConfig(nodes=8, seed=1))
            workload(app_name, "small").build().setup(machine, None)
            machines.append(machine)
        return machines

    machines = benchmark.pedantic(set_up_all, rounds=1, iterations=1)
    assert len(machines) == len(APP_NAMES)
