"""Coherence granularity: the case for fine-grain access control.

Section 2.4 argues page-based access control "is a poor match for many
applications" — it is the paper's justification for Typhoon's one piece
of custom hardware.  This bench quantifies it: the same applications on
the same machine under Stache (32-byte units) and under an IVY-style DSM
built only from Tempest's coarse-grain mechanisms (4 KB pages moved by
bulk transfer).

Expected shape: Ocean's strip-partitioned grids are page-friendly (small
gap); EM3D's interleaved graph false-shares pages (about 2x); MP3D's
scattered space cells thrash whole pages between writers (order of
magnitude).
"""

from repro.harness import experiments


def test_granularity(once):
    # 4 nodes: the IVY/MP3D configuration is pathological by design and
    # its cost grows quickly with node count.
    result = once(experiments.run_granularity, nodes=4)
    print()
    print(result.to_text())
    by_app = {row["application"]: row for row in result.rows}

    # Page granularity never wins here, and ordering follows layout
    # friendliness: ocean < em3d < mp3d.
    assert 1.0 < by_app["ocean"]["ivy_slowdown"] < 2.0
    assert by_app["ocean"]["ivy_slowdown"] < by_app["em3d"]["ivy_slowdown"]
    assert by_app["em3d"]["ivy_slowdown"] < by_app["mp3d"]["ivy_slowdown"]
    # The migratory false-sharing case is catastrophic — the reason
    # fine-grain tags earn their hardware.
    assert by_app["mp3d"]["ivy_slowdown"] > 5.0
    # Packet counts tell the same story.
    for row in result.rows:
        assert row["ivy_packets"] > row["stache_packets"]
