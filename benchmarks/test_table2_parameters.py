"""Table 2: simulation parameters.

Prints the configured parameters next to the paper's values and asserts
they all match, then benchmarks machine construction at the paper's
32-node configuration (simulator efficiency).
"""

from repro.harness import experiments
from repro.protocols.stache import StacheProtocol
from repro.sim.config import MachineConfig
from repro.typhoon.system import TyphoonMachine


def test_table2_parameters(once):
    result = once(experiments.run_table2)
    print()
    print(result.to_text())
    assert all(row["match"] == "yes" for row in result.rows)


def test_table2_machine_construction(benchmark):
    """Build the paper's full 32-node Typhoon machine with Stache."""

    def build():
        machine = TyphoonMachine(MachineConfig(nodes=32, seed=1))
        machine.install_protocol(StacheProtocol())
        return machine

    machine = benchmark(build)
    assert machine.num_nodes == 32
