"""Software vs. hardware Tempest: the portability claim and the NP's value.

Section 2 of the paper says the Tempest interface abstracts the
implementation: it can be realized by Typhoon's custom NP *or* in
software on a commodity message-passing machine — with a dedicated
second CPU running the handlers (the decoupled backend) or entirely on
the computation CPU (the CM-5-native direction that became Blizzard).
This bench runs the byte-identical Stache library on all three backends
and asserts:

* the software backends are functionally complete (the runs finish and
  the applications' answers are checked by the unit suite), and
* Typhoon is fastest and the fully-inline backend slowest — but both
  software points stay within a bounded factor, supporting the paper's
  position that the interface is portable while the hardware is a
  worthwhile (not indispensable) accelerator.
"""

from benchmarks.conftest import nodes_under_test
from repro.harness import experiments


def test_software_tempest(once):
    result = once(experiments.run_software_tempest, nodes=nodes_under_test())
    print()
    print(result.to_text())
    for row in result.rows:
        # Hardware dispatch always helps, and a dedicated handler CPU
        # always beats sharing the compute CPU...
        assert 1.0 < row["decoupled_slowdown"] < row["blizzard_slowdown"]
        # ...but software Tempest stays within a small constant factor:
        # the interface is implementable without custom hardware.
        assert row["blizzard_slowdown"] < 3.0
