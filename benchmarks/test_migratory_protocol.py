"""A second custom-protocol case study: migratory optimization on MP3D.

The paper demonstrates user-level protocol customization once (EM3D,
Figure 4).  Its argument, though, is general: "system designers cannot
anticipate the full range of protocols that programmers and compilers
will devise".  This bench backs that with a second protocol built on the
same Tempest mechanisms — migratory-sharing detection with
exclusive-on-read grants — applied to MP3D, the benchmark suite's
worst case for transparent shared memory.
"""

from benchmarks.conftest import nodes_under_test
from repro.harness import experiments


def test_migratory_protocol(once):
    result = once(experiments.run_migratory_protocol,
                  nodes=nodes_under_test())
    print()
    print(result.to_text())
    by_system = {row["system"]: row for row in result.rows}
    stache = by_system["typhoon-stache"]
    migratory = by_system["typhoon-migratory"]

    # The custom protocol strictly improves on transparent Stache: fewer
    # faults (each migration folds read+upgrade into one miss), fewer
    # packets, less time.
    assert migratory["block_faults"] < stache["block_faults"]
    assert migratory["remote_packets"] < stache["remote_packets"]
    assert migratory["cycles"] < stache["cycles"]
    # And by a substantial margin — this is a protocol-bound workload.
    assert migratory["cycles"] < 0.85 * stache["cycles"]
