"""Execution-time decomposition: the mechanics behind Figure 3.

Memory stall dominates these workloads on both systems (they are
coherence-bound by design); the breakdown makes the figures legible —
Stache's outcomes track how its memory-stall component compares with
DirNNB's, while the compute component is system-independent.
"""

from benchmarks.conftest import nodes_under_test
from repro.harness import experiments


def test_time_breakdown(once):
    result = once(experiments.run_time_breakdown, nodes=nodes_under_test())
    print()
    print(result.to_text())
    for row in result.rows:
        # Percentages are a sane partition of total time.
        total = row["compute_pct"] + row["memory_pct"] + row["barrier_pct"]
        assert 99.5 <= total <= 100.5
        # These benchmarks are memory-bound on every system.
        assert row["memory_pct"] > row["compute_pct"]

    # The compute component is a property of the application, not the
    # memory system: it must agree (in absolute cycles) across systems.
    by_key = {(r["application"], r["system"]): r for r in result.rows}
    for app in ("ocean", "em3d", "mp3d"):
        dirnnb = by_key[(app, "dirnnb")]
        stache = by_key[(app, "typhoon-stache")]
        dirnnb_compute = dirnnb["compute_pct"] * dirnnb["cycles"]
        stache_compute = stache["compute_pct"] * stache["cycles"]
        ratio = stache_compute / dirnnb_compute
        assert 0.8 < ratio < 1.2
