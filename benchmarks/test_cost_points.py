"""Three cost points, one protocol, one access trace.

The per-backend cost-domain story as an asserted benchmark: on a
lock-step workload (every phase barrier-serialised, so all three
Tempest backends replay the same access trace) the protocol traffic is
*identical* across backends while execution time separates into three
distinct points ordered by handler-dispatch overhead — Typhoon's
hardware capture (0 cycles/dispatch), the decoupled backend's
second-CPU polling loop, and Blizzard's inline dispatch on the
computation CPU.
"""

from repro.harness import experiments


def test_cost_points(once):
    result = once(experiments.run_cost_points)
    print()
    print(result.to_text())
    typhoon, decoupled, blizzard = result.rows
    assert typhoon["system"] == "typhoon:stache"
    assert decoupled["system"] == "decoupled:stache"
    assert blizzard["system"] == "blizzard:stache"
    # Identical protocol decisions: the message economy is a property of
    # the protocol, not of the substrate executing it.
    assert (typhoon["remote_packets"] == decoupled["remote_packets"]
            == blizzard["remote_packets"] > 0)
    assert (typhoon["network_words"] == decoupled["network_words"]
            == blizzard["network_words"] > 0)
    # Three distinct cost points, ordered by handler-dispatch overhead.
    assert (typhoon["dispatch_per_handler"]
            < decoupled["dispatch_per_handler"]
            < blizzard["dispatch_per_handler"])
    assert typhoon["cycles"] < decoupled["cycles"] < blizzard["cycles"]
    # Offloaded backends account handler time on the handler processor;
    # Blizzard's is folded into the compute timeline.
    assert decoupled["handler_cycles"] > typhoon["handler_cycles"] > 0
    assert blizzard["handler_cycles"] == 0
