"""Table 1: the nine operations on tagged memory blocks.

Prints the operation table with live observed behaviour, and benchmarks
the raw cost of the tag-manipulation fast path (the operations protocols
issue on every coherence event).
"""

from repro.harness import experiments
from repro.memory.address import SHARED_BASE, AddressLayout
from repro.memory.tags import Tag, TagStore


def test_table1_operations(once):
    result = once(experiments.run_table1)
    print()
    print(result.to_text())
    assert len(result.rows) == 9


def test_table1_tag_manipulation_throughput(benchmark):
    """Host-side speed of the tag store (simulator efficiency, not cycles)."""
    store = TagStore(AddressLayout())
    store.register_page(SHARED_BASE, Tag.INVALID)
    addrs = [SHARED_BASE + i * 32 for i in range(128)]

    def manipulate():
        for addr in addrs:
            store.set_rw(addr)
            store.check(addr, is_write=True)
            store.set_ro(addr)
            store.check(addr, is_write=True)
            store.invalidate(addr)
        return store.read_tag(addrs[0])

    tag = benchmark(manipulate)
    assert tag is Tag.INVALID
