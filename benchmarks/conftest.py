"""Benchmark-suite configuration.

Every benchmark regenerates one paper artifact (table or figure), prints
the paper-style rows, and asserts the *shape* claims — who wins, by
roughly what factor, where crossovers fall (DESIGN.md §4).

Environment knobs:

``REPRO_NODES``  simulated node count for the figure sweeps (default 8;
                 the paper used 32 — set ``REPRO_NODES=32`` for the full
                 configuration, at ~15x the runtime).
"""

from __future__ import annotations

import os

import pytest


def nodes_under_test() -> int:
    return int(os.environ.get("REPRO_NODES", "8"))


@pytest.fixture
def once(benchmark):
    """Run a simulation exactly once under pytest-benchmark timing."""

    def run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return run
