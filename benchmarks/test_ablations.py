"""Ablation benches for the design choices DESIGN.md §6 calls out.

These go beyond the paper's figures: they probe whether its conclusions
survive changes the paper argues about qualitatively.

* **NP speed** (Section 5.1 argues a previous-generation integer core
  suffices): slow the NP 1x -> 4x and watch Typhoon/Stache degrade.
* **Network topology** (Section 6 calls the 11-cycle latency optimistic
  and biased *against* Typhoon): swap the ideal network for a 2-D mesh
  and check the Figure 4 ordering still holds.
* **First-touch placement** (Section 6 cites Stenstrom et al.): most of
  DirNNB's remote traffic on naive layouts disappears.
"""

from benchmarks.conftest import nodes_under_test
from repro.harness import experiments


def test_ablation_np_speed(once):
    result = once(experiments.run_ablation_np_speed, nodes=4)
    print()
    print(result.to_text())
    relatives = result.column("relative")
    # Slower NPs monotonically hurt Typhoon/Stache...
    assert relatives == sorted(relatives)
    # ...but even a 2x-slower NP does not double execution time: handler
    # occupancy is a fraction of end-to-end miss latency.
    by_cpi = {row["np_cpi"]: row["stache_cycles"] for row in result.rows}
    assert by_cpi[2] < 2 * by_cpi[1]


def test_ablation_topology(once):
    result = once(experiments.run_ablation_topology, nodes=nodes_under_test())
    print()
    print(result.to_text())
    mesh = result.rows_where(topology="mesh2d")[0]
    ideal = result.rows_where(topology="ideal")[0]
    # The mesh is slower for everyone...
    assert mesh["dirnnb"] >= ideal["dirnnb"]
    # ...and the update protocol still wins under it: the Figure 4
    # conclusion is not an artifact of the optimistic flat network.
    assert mesh["typhoon_update"] < mesh["dirnnb"]
    assert mesh["typhoon_update"] < mesh["typhoon_stache"]


def test_ablation_contention(once):
    result = once(experiments.run_ablation_contention,
                  nodes=nodes_under_test())
    print()
    print(result.to_text())
    on = result.rows_where(contention="on")[0]
    off = result.rows_where(contention="off")[0]
    # Contention can only add cycles...
    for series in ("dirnnb", "typhoon_stache", "typhoon_update"):
        assert on[series] >= off[series]
    # ...and the Figure 4 ordering survives it.
    assert on["typhoon_update"] < on["dirnnb"]
    assert on["typhoon_update"] < on["typhoon_stache"]


def test_ablation_barrier(once):
    result = once(experiments.run_ablation_barrier, nodes=nodes_under_test())
    print()
    print(result.to_text())
    hardware = result.rows_where(barrier="hardware")[0]
    software = result.rows_where(barrier="software")[0]
    # Messages cost more than the control network...
    assert software["cycles"] > hardware["cycles"]
    assert software["barrier_cycles"] > hardware["barrier_cycles"]
    # ...but not catastrophically: barriers are a minority of Ocean time.
    assert software["cycles"] < 1.5 * hardware["cycles"]


def test_ablation_first_touch(once):
    result = once(experiments.run_ablation_first_touch,
                  nodes=nodes_under_test())
    print()
    print(result.to_text())
    round_robin = result.rows_where(placement="round_robin")[0]
    first_touch = result.rows_where(placement="first_touch")[0]
    # First touch eliminates most remote traffic on the naive layout
    # (Section 6: "eliminates much of the difference").
    assert first_touch["remote_packets"] < 0.5 * round_robin["remote_packets"]
    assert first_touch["dirnnb_cycles"] < round_robin["dirnnb_cycles"]
