"""Property tests for the NP dispatch machinery under message storms."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.message import VirtualNetwork
from repro.sim.config import MachineConfig, TyphoonCosts
from repro.typhoon.system import TyphoonMachine

# A storm: (source node, vnet, burst length) triples.
STORMS = st.lists(
    st.tuples(
        st.integers(0, 2),
        st.sampled_from([VirtualNetwork.REQUEST, VirtualNetwork.RESPONSE]),
        st.integers(1, 5),
    ),
    min_size=1,
    max_size=25,
)


def build(depth=4):
    machine = TyphoonMachine(MachineConfig(
        nodes=4, seed=3, typhoon=TyphoonCosts(send_queue_depth=depth)))
    log = []
    machine.tempests[3].register_handler(
        "sink",
        lambda t, m: log.append((m.src, int(m.vnet), m.payload["seq"])),
        instructions=7,
    )
    return machine, log


@given(storm=STORMS, depth=st.sampled_from([1, 4, 64]))
@settings(max_examples=40, deadline=None)
def test_property_every_message_is_handled_exactly_once(storm, depth):
    machine, log = build(depth)
    sent = 0
    for src, vnet, burst in storm:
        for _ in range(burst):
            machine.tempests[src].send(3, "sink", vnet=vnet, seq=sent)
            sent += 1
    machine.engine.run()
    assert len(log) == sent
    assert sorted(entry[2] for entry in log) == list(range(sent))


@given(storm=STORMS)
@settings(max_examples=40, deadline=None)
def test_property_per_channel_fifo_survives_storms(storm):
    machine, log = build(depth=2)
    counters = {}
    for src, vnet, burst in storm:
        for _ in range(burst):
            key = (src, int(vnet))
            counters[key] = counters.get(key, 0) + 1
            machine.tempests[src].send(
                3, "sink", vnet=vnet, seq=counters[key])
    machine.engine.run()
    # Within each (source, vnet) channel, handling order is send order.
    per_channel = {}
    for src, vnet, seq in log:
        per_channel.setdefault((src, vnet), []).append(seq)
    for sequence in per_channel.values():
        assert sequence == sorted(sequence)


def test_response_work_always_dispatches_before_queued_requests():
    machine, log = build(depth=64)
    # Saturate with requests, then one response mid-stream: every time the
    # NP picks new work, a waiting response must win.
    for seq in range(10):
        machine.tempests[0].send(3, "sink", vnet=VirtualNetwork.REQUEST,
                                 seq=seq)
    machine.engine.schedule(
        30, lambda: machine.tempests[1].send(
            3, "sink", vnet=VirtualNetwork.RESPONSE, seq=99))
    machine.engine.run()
    # The response was handled before at least the tail of the requests.
    position = [i for i, e in enumerate(log) if e[2] == 99][0]
    assert position < len(log) - 1
