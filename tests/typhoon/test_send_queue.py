"""Tests for the finite send queues and overflow buffer (Section 5.1)."""

import pytest

from repro.network.message import VirtualNetwork
from repro.sim.config import MachineConfig, TyphoonCosts
from repro.typhoon.system import TyphoonMachine


def make_machine(depth=4, nodes=2):
    config = MachineConfig(
        nodes=nodes, seed=1,
        typhoon=TyphoonCosts(send_queue_depth=depth),
    )
    return TyphoonMachine(config)


def test_burst_beyond_depth_overflows_and_still_delivers():
    machine = make_machine(depth=4)
    received = []
    machine.tempests[1].register_handler(
        "sink", lambda t, m: received.append(m.payload["index"]),
        instructions=1,
    )
    for index in range(20):
        machine.tempests[0].send(1, "sink", index=index)
    machine.engine.run()
    assert received == list(range(20))  # all delivered, FIFO order
    assert machine.stats.get("node0.np.sends_overflowed") == 16
    assert machine.stats.get("node0.np.overflow_peak") == 16


def test_no_overflow_below_depth():
    machine = make_machine(depth=8)
    machine.tempests[1].register_handler("sink", lambda t, m: None, 1)
    for _ in range(8):
        machine.tempests[0].send(1, "sink")
    machine.engine.run()
    assert machine.stats.get("node0.np.sends_overflowed") == 0


def test_virtual_networks_have_independent_queues():
    machine = make_machine(depth=2)
    machine.tempests[1].register_handler("sink", lambda t, m: None, 1)
    # Fill the request queue; the response queue must still accept.
    for _ in range(2):
        machine.tempests[0].send(1, "sink", vnet=VirtualNetwork.REQUEST)
    machine.tempests[0].send(1, "sink", vnet=VirtualNetwork.RESPONSE)
    assert machine.stats.get("node0.np.sends_overflowed") == 0
    machine.tempests[0].send(1, "sink", vnet=VirtualNetwork.REQUEST)
    assert machine.stats.get("node0.np.sends_overflowed") == 1
    machine.engine.run()


def test_handler_bursts_never_block_handler_completion():
    """A handler can emit any number of sends and still run to completion
    (the guarantee the overflow buffer exists to provide)."""
    machine = make_machine(depth=2, nodes=3)
    received = []

    def fan_out(tempest, message):
        for index in range(12):
            tempest.send(2, "sink", index=index)

    machine.tempests[1].register_handler("fan", fan_out, instructions=5)
    machine.tempests[2].register_handler(
        "sink", lambda t, m: received.append(m.payload["index"]),
        instructions=1,
    )
    machine.tempests[0].send(1, "fan")
    machine.engine.run()
    assert received == list(range(12))


def test_overflow_drain_is_paced():
    machine = make_machine(depth=1)
    times = []
    machine.tempests[1].register_handler(
        "sink", lambda t, m: times.append(machine.engine.now), instructions=0,
    )
    for _ in range(3):
        machine.tempests[0].send(1, "sink")
    machine.engine.run()
    # Drains wait for a credit (a delivery) plus the drain cost, so the
    # messages arrive strictly spaced out.
    assert times[1] > times[0]
    assert times[2] > times[1]


def test_protocol_traffic_survives_tiny_queues():
    """Stache stays correct (if slower) with pathological queue depths."""
    from repro.apps.base import run_app
    from repro.apps.ocean import OceanApplication
    from repro.protocols.stache import StacheProtocol

    machine = TyphoonMachine(MachineConfig(
        nodes=4, seed=1, typhoon=TyphoonCosts(send_queue_depth=1),
    ))
    protocol = StacheProtocol()
    machine.install_protocol(protocol)
    app = OceanApplication(grid=10, iterations=1, seed=3)
    run_app(machine, app, protocol)
    import math
    ref = app.reference_values()
    which = app.final_grid_index()
    for row in range(app.grid):
        for col in range(app.grid):
            got = app.peek(machine, app.cell_addr(which, row, col))
            assert math.isclose(got, ref[row][col], rel_tol=1e-9,
                                abs_tol=1e-9)
