"""TLB shoot-down on unmap/remap (translation hardware consistency)."""

import pytest

from repro.memory.address import SHARED_BASE
from repro.memory.tags import Tag
from repro.sim.config import MachineConfig
from repro.sim.process import Process
from repro.typhoon.system import TyphoonMachine


@pytest.fixture
def machine():
    return TyphoonMachine(MachineConfig(nodes=1, seed=2))


def run_access(machine, addr, is_write=False, value=None):
    start = machine.engine.now
    process = Process(machine.engine,
                      machine.nodes[0].access(addr, is_write, value))
    machine.engine.run()
    return process.finished.value, machine.engine.now - start


def test_unmap_evicts_cpu_tlb_entry(machine):
    node = machine.nodes[0]
    tempest = node.tempest
    tempest.map_page(SHARED_BASE, mode=0, home=0, initial_tag=Tag.READ_WRITE)
    run_access(machine, SHARED_BASE)  # installs the TLB entry
    page = machine.layout.page_number(SHARED_BASE)
    assert page in node.cpu_tlb
    tempest.unmap_page(SHARED_BASE)
    assert page not in node.cpu_tlb


def test_remap_evicts_old_translation_and_new_access_pays_tlb_miss(machine):
    node = machine.nodes[0]
    tempest = node.tempest
    tempest.map_page(SHARED_BASE, mode=0, home=0, initial_tag=Tag.READ_WRITE)
    run_access(machine, SHARED_BASE)
    new_vaddr = SHARED_BASE + 8 * 4096
    tempest.remap_page(SHARED_BASE, new_vaddr, initial_tag=Tag.READ_WRITE)
    assert machine.layout.page_number(SHARED_BASE) not in node.cpu_tlb
    before = node.cpu_tlb.misses
    run_access(machine, new_vaddr)
    assert node.cpu_tlb.misses == before + 1


def test_remap_shoots_down_rtlb(machine):
    node = machine.nodes[0]
    tempest = node.tempest
    tempest.map_page(SHARED_BASE, mode=0, home=0, initial_tag=Tag.INVALID)

    def fix(t, fault):
        t.set_rw(fault.block_addr)
        t.resume()

    tempest.register_handler("fix", fix, instructions=14)
    node.np.set_fault_handler(0, False, "fix")
    run_access(machine, SHARED_BASE)  # fault installs the RTLB entry
    misses_before = node.np.rtlb.misses
    tempest.remap_page(SHARED_BASE, SHARED_BASE + 8 * 4096,
                       initial_tag=Tag.INVALID)
    # A fault on the new mapping must re-fetch the RTLB entry (miss).
    run_access(machine, SHARED_BASE + 8 * 4096)
    assert node.np.rtlb.misses == misses_before + 1
