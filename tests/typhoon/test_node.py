"""Tests for the Typhoon node's CPU access path and structure (Figures 1-2)."""

import pytest

from repro.memory.address import SHARED_BASE
from repro.memory.cache import LineState
from repro.memory.tags import Tag
from repro.sim.config import MachineConfig
from repro.sim.engine import SimulationError
from repro.sim.process import Process
from repro.typhoon.system import TyphoonMachine


@pytest.fixture
def machine():
    return TyphoonMachine(MachineConfig(nodes=2, seed=5))


def run_access(machine, node, addr, is_write=False, value=None):
    """Drive one access to completion; returns (result, elapsed cycles)."""
    start = machine.engine.now
    process = Process(machine.engine, machine.nodes[node].access(addr, is_write, value))
    machine.engine.run()
    return process.finished.value, machine.engine.now - start


class TestStructure:
    """Figure 1 / Figure 2: what a node is made of."""

    def test_node_components(self, machine):
        node = machine.nodes[0]
        assert node.cache.config.associativity == 4
        assert node.cpu_tlb.config.entries == 64
        assert node.np is not None
        assert node.np.rtlb is not None
        assert node.np.np_tlb.config.entries == 64
        assert node.tempest.node_id == 0

    def test_nodes_attached_to_interconnect(self, machine):
        assert machine.interconnect.attached_nodes == [0, 1]


class TestPrivateAccess:
    def test_first_access_pays_tlb_and_cache_miss(self, machine):
        # Cold access: 25 (TLB miss) + 29 (local cache miss).
        _, cycles = run_access(machine, 0, addr=0x1000)
        assert cycles == 25 + 29

    def test_second_access_hits_in_one_cycle(self, machine):
        run_access(machine, 0, addr=0x1000)
        _, cycles = run_access(machine, 0, addr=0x1000)
        assert cycles == 1

    def test_write_then_read_returns_value(self, machine):
        run_access(machine, 0, addr=0x2000, is_write=True, value=7)
        value, _ = run_access(machine, 0, addr=0x2000)
        assert value == 7

    def test_private_accesses_never_fault(self, machine):
        run_access(machine, 0, addr=0x3000, is_write=True, value=1)
        assert machine.stats.get("node0.cpu.block_faults") == 0
        assert machine.stats.get("node0.cpu.page_faults") == 0


class TestSharedAccessPermitted:
    def test_home_access_with_rw_tag_is_local(self, machine):
        node = machine.nodes[0]
        node.tempest.map_page(SHARED_BASE, mode=0, home=0,
                              initial_tag=Tag.READ_WRITE)
        _, cycles = run_access(machine, 0, SHARED_BASE, is_write=True, value=5)
        assert cycles == 25 + 29  # TLB miss + local miss, no NP involvement
        assert machine.stats.get("node0.cpu.block_faults") == 0

    def test_read_of_read_only_block_installs_shared_line(self, machine):
        node = machine.nodes[0]
        node.tempest.map_page(SHARED_BASE, mode=0, home=0,
                              initial_tag=Tag.READ_ONLY)
        run_access(machine, 0, SHARED_BASE)
        assert node.cache.lookup(SHARED_BASE).state is LineState.SHARED

    def test_read_of_read_write_block_installs_exclusive(self, machine):
        node = machine.nodes[0]
        node.tempest.map_page(SHARED_BASE, mode=0, home=0,
                              initial_tag=Tag.READ_WRITE)
        run_access(machine, 0, SHARED_BASE)
        assert node.cache.lookup(SHARED_BASE).state is LineState.EXCLUSIVE


class TestBlockAccessFault:
    def install_fixing_handler(self, machine, node_id, mode=0):
        """A fault handler that sets the tag RW and resumes — the minimal
        protocol action, with the Section 6 best-case path length."""
        node = machine.nodes[node_id]

        def fix(tempest, fault):
            tempest.set_rw(fault.block_addr)
            tempest.resume()

        node.tempest.register_handler("fix", fix, instructions=14)
        node.np.set_fault_handler(mode, False, "fix")
        node.np.set_fault_handler(mode, True, "fix")

    def test_invalid_block_faults_suspends_and_retries(self, machine):
        node = machine.nodes[0]
        node.tempest.map_page(SHARED_BASE, mode=0, home=0,
                              initial_tag=Tag.INVALID)
        self.install_fixing_handler(machine, 0)
        value, cycles = run_access(machine, 0, SHARED_BASE)
        assert machine.stats.get("node0.cpu.block_faults") == 1
        # TLB miss (25) + fault dispatch (5) + RTLB miss (25) + handler (14)
        # + retried local miss (29).
        assert cycles == 25 + 5 + 25 + 14 + 29
        assert node.tags.read_tag(SHARED_BASE) is Tag.READ_WRITE

    def test_write_to_read_only_block_faults(self, machine):
        node = machine.nodes[0]
        node.tempest.map_page(SHARED_BASE, mode=0, home=0,
                              initial_tag=Tag.READ_ONLY)
        self.install_fixing_handler(machine, 0)
        run_access(machine, 0, SHARED_BASE, is_write=True, value=1)
        assert machine.stats.get("node0.cpu.block_faults") == 1

    def test_upgrade_write_on_shared_cached_line_faults(self, machine):
        node = machine.nodes[0]
        node.tempest.map_page(SHARED_BASE, mode=0, home=0,
                              initial_tag=Tag.READ_ONLY)
        self.install_fixing_handler(machine, 0)
        run_access(machine, 0, SHARED_BASE)  # read: SHARED line cached
        run_access(machine, 0, SHARED_BASE, is_write=True, value=2)
        assert machine.stats.get("node0.cpu.block_faults") == 1
        assert node.cache.lookup(SHARED_BASE).state is LineState.EXCLUSIVE

    def test_fault_without_handler_is_structural_error(self, machine):
        node = machine.nodes[0]
        node.tempest.map_page(SHARED_BASE, mode=0, home=0,
                              initial_tag=Tag.INVALID)
        Process(machine.engine, node.access(SHARED_BASE, False))
        with pytest.raises(SimulationError):
            machine.engine.run()

    def test_rtlb_hit_on_second_fault_is_cheaper(self, machine):
        node = machine.nodes[0]
        node.tempest.map_page(SHARED_BASE, mode=0, home=0,
                              initial_tag=Tag.INVALID)
        self.install_fixing_handler(machine, 0)
        _, first = run_access(machine, 0, SHARED_BASE)
        node.tempest.invalidate(SHARED_BASE + 32)
        _, second = run_access(machine, 0, SHARED_BASE + 32)
        # Same page: TLB hit and RTLB hit this time.
        assert second == first - 25 - 25


class TestPageFault:
    def test_unmapped_shared_page_invokes_user_handler(self, machine):
        node = machine.nodes[0]
        calls = []

        def page_fault(tempest, addr, is_write):
            calls.append((addr, is_write))
            tempest.map_page(addr, mode=0, home=0, initial_tag=Tag.READ_WRITE)
            return None

        node.set_page_fault_handler(page_fault)
        _, cycles = run_access(machine, 0, SHARED_BASE + 40, is_write=True,
                               value=9)
        assert calls == [(SHARED_BASE + 40, True)]
        # TLB miss + page-fault handler instructions + local miss.
        expected = 25 + machine.config.typhoon.page_fault_instructions + 29
        assert cycles == expected

    def test_page_fault_without_handler_is_error(self, machine):
        Process(machine.engine, machine.nodes[0].access(SHARED_BASE, False))
        with pytest.raises(SimulationError):
            machine.engine.run()

    def test_handler_extra_cycles_are_charged(self, machine):
        node = machine.nodes[0]

        def page_fault(tempest, addr, is_write):
            tempest.map_page(addr, mode=0, home=0, initial_tag=Tag.READ_WRITE)
            return 100

        node.set_page_fault_handler(page_fault)
        _, cycles = run_access(machine, 0, SHARED_BASE)
        expected = 25 + machine.config.typhoon.page_fault_instructions + 100 + 29
        assert cycles == expected


class TestProtocolInstall:
    def test_double_install_rejected(self, machine):
        class NullProtocol:
            def install(self, machine):
                pass

        machine.install_protocol(NullProtocol())
        with pytest.raises(RuntimeError):
            machine.install_protocol(NullProtocol())
