"""Regression: an invalidation racing a CPU fill must not leave a stale line.

Found by the linearizability oracle under the migratory protocol (but the
race is in the base node model): the NP could invalidate a block while
the CPU's 29-cycle DRAM fill was in flight, and the fill then installed a
cache line the protocol believed was gone — a later 1-cycle hit returned
a stale value.  The fix re-checks the tag when the fill completes
("relinquish and retry"); this test replays the discovered schedule.
"""

from repro.protocols.history import AccessHistory, check_register_consistency
from repro.protocols.migratory import MigratoryProtocol
from repro.protocols.verify import check_stache_coherence
from repro.sim.config import MachineConfig
from repro.typhoon.system import TyphoonMachine
from tests.protocols.conftest import run_script


def test_invalidation_racing_fill_kills_the_fill():
    machine = TyphoonMachine(MachineConfig(nodes=4, seed=0))
    protocol = MigratoryProtocol()
    machine.install_protocol(protocol)
    region = machine.heap.allocate(4 * 4096, label="test")
    protocol.setup_region(region)
    machine.history = AccessHistory()

    race_addr = region.base + 4096 + 32   # homed on node 1
    filler = region.base                  # node 0 warm-up reads
    # Node 0's write request reaches the home while node 2's read fill is
    # still on the bus; node 2's retried read then faults and refetches.
    programs = {
        0: [("r", filler)] * 25 + [("w", race_addr, "fresh")],
        2: [("r", race_addr), ("r", filler), ("r", race_addr)],
    }
    reads = run_script(machine, programs)

    assert machine.stats.get("node2.cpu.fills_killed") >= 1
    # The final read happened after the write completed: it must see it.
    assert reads[2][-1] == "fresh"
    assert check_register_consistency(machine.history) == []
    check_stache_coherence(machine, region)
