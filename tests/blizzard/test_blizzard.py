"""Tests for the all-software Tempest backend (Blizzard)."""

import math

import pytest

from repro.apps.base import run_app
from repro.apps.em3d import VALUE_OFFSET, Em3dApplication
from repro.apps.ocean import OceanApplication
from repro.apps.synthetic import MigratoryApplication, ReadMostlyApplication
from repro.blizzard.system import BlizzardMachine
from repro.memory.tags import Tag
from repro.protocols.history import AccessHistory, check_register_consistency
from repro.protocols.stache import StacheProtocol
from repro.protocols.verify import check_stache_coherence
from repro.sim.config import BlizzardCosts, MachineConfig
from repro.typhoon.system import TyphoonMachine


def make_machine(nodes=4, seed=1, **config_kwargs):
    machine = BlizzardMachine(MachineConfig(nodes=nodes, seed=seed,
                                            **config_kwargs))
    protocol = StacheProtocol()
    machine.install_protocol(protocol)
    region = machine.heap.allocate(4 * 4096, label="test")
    protocol.setup_region(region)
    return machine, protocol, region


def addr_homed_on(machine, region, home):
    for page in range(region.base, region.end, machine.layout.page_size):
        if machine.heap.home_of(page) == home:
            return page
    raise AssertionError


class TestUnchangedProtocol:
    """The Tempest portability claim: Stache installs verbatim."""

    def test_stache_installs_without_modification(self):
        machine, protocol, region = make_machine()
        assert isinstance(protocol, StacheProtocol)
        assert "stache.get_ro" in machine.nodes[0].registry

    def test_remote_read_fetches_correct_value(self):
        machine, protocol, region = make_machine()
        addr = addr_homed_on(machine, region, home=0)
        machine.nodes[0].image.write(addr, 99)
        got = {}

        def worker(node_id):
            if node_id == 1:
                got["value"] = yield from machine.nodes[1].access(addr, False)
            else:
                yield 1

        machine.run_workers(worker)
        assert got["value"] == 99
        block = machine.layout.block_of(addr)
        assert machine.nodes[1].tags.read_tag(block) is Tag.READ_ONLY
        check_stache_coherence(machine, region)

    def test_write_invalidation_across_software_nodes(self):
        machine, protocol, region = make_machine()
        addr = addr_homed_on(machine, region, home=0)

        def worker(node_id):
            if node_id == 1:
                yield from machine.nodes[1].access(addr, False)
                yield from machine.barrier_wait(1)
            elif node_id == 2:
                yield from machine.barrier_wait(2)
                yield from machine.nodes[2].access(addr, True, 5)
            else:
                yield from machine.barrier_wait(node_id)

        machine.run_workers(worker)
        block = machine.layout.block_of(addr)
        assert machine.nodes[1].tags.read_tag(block) is Tag.INVALID
        assert machine.nodes[2].tags.read_tag(block) is Tag.READ_WRITE
        check_stache_coherence(machine, region)


class TestApplications:
    def test_ocean_matches_reference(self):
        machine = BlizzardMachine(MachineConfig(nodes=4, seed=1))
        protocol = StacheProtocol()
        machine.install_protocol(protocol)
        app = OceanApplication(grid=12, iterations=2, seed=3)
        run_app(machine, app, protocol)
        ref = app.reference_values()
        which = app.final_grid_index()
        for row in range(app.grid):
            for col in range(app.grid):
                got = app.peek(machine, app.cell_addr(which, row, col))
                assert math.isclose(got, ref[row][col], rel_tol=1e-9,
                                    abs_tol=1e-9)

    def test_em3d_matches_reference(self):
        machine = BlizzardMachine(MachineConfig(nodes=4, seed=1))
        protocol = StacheProtocol()
        machine.install_protocol(protocol)
        app = Em3dApplication(nodes_per_proc=8, degree=3,
                              remote_fraction=0.3, iterations=2, seed=5)
        run_app(machine, app, protocol)
        ref_e, _ = app.reference_values()
        for index in range(app.e_nodes.count):
            got = app.peek(machine,
                           app.e_nodes.addr(index, VALUE_OFFSET))
            assert math.isclose(got, ref_e[index], rel_tol=1e-9,
                                abs_tol=1e-9)

    def test_migratory_counts_survive_software_handlers(self):
        machine = BlizzardMachine(MachineConfig(nodes=4, seed=1))
        protocol = StacheProtocol()
        machine.install_protocol(protocol)
        app = MigratoryApplication(records=3, rounds=2)
        run_app(machine, app, protocol)
        for index in range(app.records):
            assert app.peek(machine, app.array.addr(index)) == 8

    def test_history_is_register_consistent(self):
        machine = BlizzardMachine(MachineConfig(nodes=4, seed=1))
        protocol = StacheProtocol()
        machine.install_protocol(protocol)
        machine.history = AccessHistory()
        app = ReadMostlyApplication(records=4, reads_per_phase=2, phases=2)
        run_app(machine, app, protocol)
        assert check_register_consistency(machine.history) == []


class TestCostModel:
    def run_em3d(self, machine_cls, **config_kwargs):
        machine = machine_cls(MachineConfig(nodes=4, seed=1, **config_kwargs))
        protocol = StacheProtocol()
        machine.install_protocol(protocol)
        app = Em3dApplication(nodes_per_proc=8, degree=3,
                              remote_fraction=0.4, iterations=2, seed=5)
        return run_app(machine, app, protocol), machine

    def test_software_tempest_is_slower_than_typhoon(self):
        """What the NP buys: handlers steal computation cycles here."""
        typhoon_time, _ = self.run_em3d(TyphoonMachine)
        blizzard_time, _ = self.run_em3d(BlizzardMachine)
        assert blizzard_time > typhoon_time

    def test_write_checks_are_charged(self):
        cheap, _ = self.run_em3d(BlizzardMachine)
        costly, _ = self.run_em3d(
            BlizzardMachine,
            blizzard=BlizzardCosts(check_write_cycles=30,
                                   check_read_cycles=10),
        )
        assert costly > cheap

    def test_handlers_run_on_cpu_counter(self):
        _, machine = self.run_em3d(BlizzardMachine)
        assert machine.stats.total(".sw.handlers_run") > 0
