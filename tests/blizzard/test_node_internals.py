"""Unit tests for Blizzard node internals: polling, dispatch, spin loops."""

import pytest

from repro.blizzard.system import BlizzardMachine
from repro.network.message import Message, VirtualNetwork
from repro.sim.config import BlizzardCosts, MachineConfig
from repro.sim.engine import SimulationError
from repro.sim.process import Future, Process


@pytest.fixture
def machine():
    return BlizzardMachine(MachineConfig(nodes=2, seed=6))


def send(machine, dst, handler, vnet=VirtualNetwork.REQUEST, **payload):
    machine.interconnect.send(Message(
        src=1 - dst if dst in (0, 1) else 0, dst=dst, handler=handler,
        vnet=vnet, payload=payload,
    ))


class TestDispatcher:
    def test_fault_table_round_trip(self, machine):
        dispatcher = machine.nodes[0].np
        dispatcher.set_fault_handler(3, True, "h")
        assert dispatcher.fault_handler_for(3, True) == "h"
        with pytest.raises(SimulationError):
            dispatcher.fault_handler_for(3, False)

    def test_charge_accumulates_and_clears(self, machine):
        dispatcher = machine.nodes[0].np
        dispatcher.charge(5)
        dispatcher.charge(7)
        assert dispatcher.take_charge() == 12
        assert dispatcher.take_charge() == 0
        with pytest.raises(SimulationError):
            dispatcher.charge(-1)


class TestPolling:
    def test_poll_drains_inbox_and_charges(self, machine):
        node = machine.nodes[0]
        ran = []
        node.tempest.register_handler(
            "h", lambda t, m: ran.append(m.payload["n"]), instructions=10)
        send(machine, 0, "h", n=1)
        send(machine, 0, "h", n=2)
        machine.engine.run()  # delivery only; nothing polls yet
        assert ran == []
        process = Process(machine.engine, node.poll())
        machine.engine.run()
        assert ran == [1, 2]
        # poll(1) + 2 x (dispatch 20 + instructions 10).
        assert machine.engine.now >= 1 + 2 * 30

    def test_response_priority_in_service_order(self, machine):
        node = machine.nodes[0]
        order = []
        node.tempest.register_handler(
            "req", lambda t, m: order.append("req"), instructions=1)
        node.tempest.register_handler(
            "resp", lambda t, m: order.append("resp"), instructions=1)
        send(machine, 0, "req", vnet=VirtualNetwork.REQUEST)
        send(machine, 0, "resp", vnet=VirtualNetwork.RESPONSE)
        machine.engine.run()
        Process(machine.engine, node.poll())
        machine.engine.run()
        assert order == ["resp", "req"]

    def test_empty_poll_costs_only_poll_cycles(self, machine):
        node = machine.nodes[0]
        start = machine.engine.now
        Process(machine.engine, node.poll())
        machine.engine.run()
        assert machine.engine.now - start == node.costs.poll_cycles


class TestSpinUntil:
    def test_spin_wakes_on_future_without_messages(self, machine):
        node = machine.nodes[0]
        future = Future(machine.engine)
        landed = []

        def worker():
            yield from node.spin_until(future)
            landed.append(machine.engine.now)

        Process(machine.engine, worker())
        machine.engine.schedule(90, future.resolve, None)
        machine.engine.run()
        assert landed == [90]

    def test_spin_services_messages_while_waiting(self, machine):
        node = machine.nodes[0]
        future = Future(machine.engine)
        ran = []
        node.tempest.register_handler(
            "h", lambda t, m: ran.append(machine.engine.now), instructions=5)

        def worker():
            yield from node.spin_until(future)

        Process(machine.engine, worker())
        machine.engine.schedule(20, send, machine, 0, "h")
        machine.engine.schedule(200, future.resolve, None)
        machine.engine.run()
        assert len(ran) == 1
        assert ran[0] < 200  # handled during the spin, not after

    def test_spin_exits_even_if_resolving_handler_is_last(self, machine):
        node = machine.nodes[0]
        future = Future(machine.engine)
        node.tempest.register_handler(
            "release", lambda t, m: future.resolve(None), instructions=5)
        finished = []

        def worker():
            yield from node.spin_until(future)
            finished.append(True)

        Process(machine.engine, worker())
        machine.engine.schedule(50, send, machine, 0, "release")
        machine.engine.run()
        assert finished == [True]


class TestCostKnobs:
    def test_custom_costs_flow_through(self):
        machine = BlizzardMachine(MachineConfig(
            nodes=2, seed=6,
            blizzard=BlizzardCosts(poll_cycles=9, check_write_cycles=17),
        ))
        assert machine.nodes[0].costs.poll_cycles == 9
        assert machine.nodes[0].costs.check_write_cycles == 17
