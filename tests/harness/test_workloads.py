"""Tests for the Table 3 workload registry."""

import pytest

from repro.harness.workloads import (
    APP_NAMES,
    PAPER_CACHE_SIZES,
    SCALED_CACHE_SIZES,
    figure3_configurations,
    workload,
)


def test_every_app_has_small_and_large():
    for app_name in APP_NAMES:
        for dataset in ("small", "large"):
            entry = workload(app_name, dataset)
            assert entry.app_name == app_name
            assert entry.paper_parameters


def test_unknown_workload_rejected():
    with pytest.raises(KeyError):
        workload("linpack", "small")


def test_factories_produce_fresh_instances():
    a = workload("em3d", "small").build()
    b = workload("em3d", "small").build()
    assert a is not b


def test_large_is_larger_than_small():
    pairs = {
        "appbt": lambda app: app.grid,
        "barnes": lambda app: app.bodies,
        "mp3d": lambda app: app.molecules,
        "ocean": lambda app: app.grid,
        "em3d": lambda app: app.nodes_per_proc,
    }
    for app_name, measure in pairs.items():
        small = measure(workload(app_name, "small").build())
        large = measure(workload(app_name, "large").build())
        assert large > small


def test_cache_ladder_matches_paper_ratios():
    for (s0, s1), (p0, p1) in zip(
        zip(SCALED_CACHE_SIZES, SCALED_CACHE_SIZES[1:]),
        zip(PAPER_CACHE_SIZES, PAPER_CACHE_SIZES[1:]),
    ):
        assert s1 // s0 == p1 // p0 == 4


def test_figure3_configurations_shape():
    configs = figure3_configurations()
    assert len(configs) == 5
    assert configs[0] == ("small", SCALED_CACHE_SIZES[0], 4096)
    assert configs[-1] == ("large", SCALED_CACHE_SIZES[-1], 262144)
