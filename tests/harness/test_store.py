"""Tests for the content-addressed sweep result store."""

import json

import pytest

from repro.harness.store import (
    DEFAULT_ROOT,
    ResultStore,
    STORE_VERSION,
    cell_key,
    describe_cell,
)
from repro.network.faults import FaultSpec

CELL = ("dirnnb", "ocean", "small", 1024, 7, 2)
ROW = {"system": "dirnnb", "application": "ocean", "dataset": "small",
       "cache": 1024, "seed": 7, "cycles": 26371, "refs": 6912.0,
       "remote_packets": 91.0}


def store(tmp_path, digest="d" * 16):
    return ResultStore(tmp_path / "store", digest=digest)


def test_put_get_roundtrip_is_bit_identical(tmp_path):
    s = store(tmp_path)
    s.put(CELL, ROW)
    row = s.get(CELL)
    assert row == ROW
    assert type(row["cycles"]) is int
    assert type(row["refs"]) is float


def test_absent_cell_is_a_miss(tmp_path):
    s = store(tmp_path)
    assert s.get(CELL) is None
    assert s.misses == 1
    assert s.hits == 0


def test_key_is_stable_and_digest_sensitive():
    assert cell_key(CELL, "aaaa") == cell_key(CELL, "aaaa")
    assert cell_key(CELL, "aaaa") != cell_key(CELL, "bbbb")
    other = ("dirnnb", "ocean", "small", 1024, 8, 2)
    assert cell_key(CELL, "aaaa") != cell_key(other, "aaaa")


def test_key_distinguishes_cell_arity():
    """A 6-tuple cell and its 7-tuple (faults=None) extension produce
    different rows (the latter has retry columns), so different keys."""
    assert cell_key(CELL, "aaaa") != cell_key(CELL + (None,), "aaaa")
    assert (cell_key(CELL + (None,), "aaaa")
            != cell_key(CELL + (None, False), "aaaa"))


def test_fault_axis_cells_key_by_spec_fields():
    lossy = FaultSpec(name="drop5", drop_pct=0.05)
    same = FaultSpec(name="drop5", drop_pct=0.05)
    other = FaultSpec(name="drop5", drop_pct=0.10)
    assert (cell_key(CELL + (lossy,), "aaaa")
            == cell_key(CELL + (same,), "aaaa"))
    assert (cell_key(CELL + (lossy,), "aaaa")
            != cell_key(CELL + (other,), "aaaa"))
    described = describe_cell(CELL + (lossy,))
    assert described["faults"]["drop_pct"] == 0.05


def test_code_fingerprint_invalidates(tmp_path):
    """An entry written under one source digest misses under another."""
    store(tmp_path, digest="aaaa").put(CELL, ROW)
    assert store(tmp_path, digest="aaaa").get(CELL) == ROW
    assert store(tmp_path, digest="bbbb").get(CELL) is None


def test_corrupted_entry_is_a_miss(tmp_path):
    s = store(tmp_path)
    key = s.put(CELL, ROW)
    path = s._object_path(key)
    path.write_text("{ truncated json", encoding="utf-8")
    assert s.get(CELL) is None


def test_wrong_schema_entry_is_a_miss(tmp_path):
    s = store(tmp_path)
    key = s.put(CELL, ROW)
    path = s._object_path(key)
    entry = json.loads(path.read_text())
    entry["version"] = STORE_VERSION + 1
    path.write_text(json.dumps(entry), encoding="utf-8")
    assert s.get(CELL) is None


def test_missing_row_field_is_a_miss(tmp_path):
    s = store(tmp_path)
    key = s.put(CELL, ROW)
    path = s._object_path(key)
    path.write_text(json.dumps({"version": STORE_VERSION,
                                "digest": s.digest}), encoding="utf-8")
    assert s.get(CELL) is None


def test_invalidate_single_cell(tmp_path):
    s = store(tmp_path)
    other = ("dirnnb", "ocean", "small", 1024, 8, 2)
    s.put(CELL, ROW)
    s.put(other, dict(ROW, seed=8))
    assert s.invalidate(CELL) == {"removed": 1, "skipped": 0}
    assert s.get(CELL) is None
    assert s.get(other) is not None
    # Already gone: neither removed nor skipped.
    assert s.invalidate(CELL) == {"removed": 0, "skipped": 0}


def test_invalidate_everything(tmp_path):
    s = store(tmp_path)
    s.put(CELL, ROW)
    s.put(("dirnnb", "ocean", "small", 1024, 8, 2), dict(ROW, seed=8))
    assert s.invalidate() == {"removed": 2, "skipped": 0}
    assert s.stats()["entries"] == 0


def test_gc_drops_foreign_digests_keeps_current(tmp_path):
    store(tmp_path, digest="old1").put(CELL, ROW)
    store(tmp_path, digest="old2").put(CELL, ROW)
    current = store(tmp_path, digest="new1")
    current.put(CELL, ROW)
    swept = current.gc()
    assert swept == {"removed": 2, "kept": 1, "skipped": 0}
    assert current.get(CELL) == ROW


def test_gc_drops_unreadable_entries(tmp_path):
    s = store(tmp_path)
    key = s.put(CELL, ROW)
    garbage = s._object_path(key).with_name("deadbeef.json")
    garbage.write_text("not json at all", encoding="utf-8")
    assert s.gc() == {"removed": 1, "kept": 1, "skipped": 0}


def test_gc_reports_unremovable_entries_as_skipped(tmp_path, monkeypatch):
    """A stale entry whose unlink fails is *still on disk*: gc must say
    so (``skipped``) rather than silently dropping it from every count
    — the latent bug where both counters missed it."""
    stale_store = store(tmp_path, digest="old1")
    stale_key = stale_store.put(CELL, ROW)
    s = store(tmp_path, digest="new1")
    s.put(CELL, ROW)
    locked = s._object_path(stale_key)
    real_unlink = type(locked).unlink

    def unlink(self, *args, **kwargs):
        if self == locked:
            raise PermissionError(f"unremovable: {self}")
        return real_unlink(self, *args, **kwargs)

    monkeypatch.setattr(type(locked), "unlink", unlink)
    assert s.gc() == {"removed": 0, "kept": 1, "skipped": 1}
    assert locked.exists()


def test_invalidate_reports_unremovable_entries_as_skipped(
        tmp_path, monkeypatch):
    s = store(tmp_path)
    key = s.put(CELL, ROW)
    locked = s._object_path(key)
    monkeypatch.setattr(
        type(locked), "unlink",
        lambda self, *a, **k: (_ for _ in ()).throw(PermissionError(str(self))))
    assert s.invalidate() == {"removed": 0, "skipped": 1}
    assert s.invalidate(CELL) == {"removed": 0, "skipped": 1}


def test_stats_reports_totals_and_staleness(tmp_path):
    store(tmp_path, digest="old1").put(CELL, ROW)
    s = store(tmp_path, digest="new1")
    s.put(CELL, ROW)
    s.get(CELL)
    s.get(("dirnnb", "ocean", "small", 1024, 99, 2))
    stats = s.stats()
    assert stats["entries"] == 2
    assert stats["stale"] == 1
    assert stats["bytes"] > 0
    assert stats["session_hits"] == 1
    assert stats["session_misses"] == 1
    assert stats["session_writes"] == 1


def test_default_digest_is_the_live_source_digest(tmp_path):
    import repro

    s = ResultStore(tmp_path / "store")
    assert s.digest == repro.__source_digest__


def test_resolve_env_and_explicit_forms(tmp_path, monkeypatch):
    assert ResultStore.resolve(None) is None
    assert ResultStore.resolve("off") is None
    ready = ResultStore(tmp_path / "store", digest="x")
    assert ResultStore.resolve(ready) is ready
    assert ResultStore.resolve(tmp_path / "other").root == \
        tmp_path / "other"

    monkeypatch.setenv("REPRO_STORE", "off")
    assert ResultStore.resolve("auto") is None
    monkeypatch.setenv("REPRO_STORE", str(tmp_path / "env-store"))
    assert ResultStore.resolve("auto").root == tmp_path / "env-store"
    monkeypatch.delenv("REPRO_STORE")
    assert str(ResultStore.resolve("auto").root) == DEFAULT_ROOT


def test_constructor_refuses_disabled_environment(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_STORE", "off")
    with pytest.raises(ValueError):
        ResultStore()
    # An explicit root always wins over the environment switch.
    assert ResultStore(tmp_path / "forced", digest="x").root == \
        tmp_path / "forced"


def _digest_of_tree(tmp_path, monkeypatch):
    """Point the fingerprint module at a scratch package tree."""
    from repro import _fingerprint

    monkeypatch.setattr(_fingerprint, "__file__",
                        str(tmp_path / "pkg" / "__init__.py"))
    digest = _fingerprint.source_digest(refresh=True)
    monkeypatch.undo()
    _fingerprint.source_digest(refresh=True)
    return digest


def test_source_digest_changes_with_sources(tmp_path, monkeypatch):
    """The fingerprint covers file contents and relative paths."""
    (tmp_path / "pkg").mkdir()
    digests = []
    for content in ("x = 1\n", "x = 2\n"):
        (tmp_path / "pkg" / "a.py").write_text(content)
        digests.append(_digest_of_tree(tmp_path, monkeypatch))
    assert digests[0] != digests[1]


def test_source_digest_covers_package_data(tmp_path, monkeypatch):
    """Regression: the digest used to hash only ``*.py``, so editing a
    packaged non-Python input (a shipped table, a calibration file)
    never invalidated cached sweep rows."""
    (tmp_path / "pkg").mkdir()
    (tmp_path / "pkg" / "a.py").write_text("x = 1\n")
    (tmp_path / "pkg" / "table.json").write_text('{"rows": 1}\n')
    before = _digest_of_tree(tmp_path, monkeypatch)
    (tmp_path / "pkg" / "table.json").write_text('{"rows": 2}\n')
    assert _digest_of_tree(tmp_path, monkeypatch) != before
    (tmp_path / "pkg" / "table.json").unlink()
    assert _digest_of_tree(tmp_path, monkeypatch) != before


def test_source_digest_ignores_interpreter_byproducts(tmp_path, monkeypatch):
    """``__pycache__`` and ``.pyc`` vary per interpreter with no
    semantic change; they must not perturb the fingerprint."""
    (tmp_path / "pkg").mkdir()
    (tmp_path / "pkg" / "a.py").write_text("x = 1\n")
    before = _digest_of_tree(tmp_path, monkeypatch)
    (tmp_path / "pkg" / "__pycache__").mkdir()
    (tmp_path / "pkg" / "__pycache__" / "a.cpython-311.pyc").write_bytes(
        b"\x00bytecode")
    (tmp_path / "pkg" / "a.pyc").write_bytes(b"\x00stale")
    assert _digest_of_tree(tmp_path, monkeypatch) == before
