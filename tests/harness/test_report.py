"""Tests for experiment result rendering."""

import pytest

from repro.harness.report import ExperimentResult


@pytest.fixture
def result():
    r = ExperimentResult("figX", "A Title", ["a", "b"])
    r.add_row(a=1, b=2.5)
    r.add_row(a="x", b=0.125)
    return r


def test_add_row_requires_all_columns():
    r = ExperimentResult("t", "t", ["a", "b"])
    with pytest.raises(ValueError):
        r.add_row(a=1)


def test_column_extraction(result):
    assert result.column("a") == [1, "x"]


def test_rows_where(result):
    assert result.rows_where(a="x")[0]["b"] == 0.125
    assert result.rows_where(a="missing") == []


def test_to_text_contains_title_and_cells(result):
    text = result.to_text()
    assert "figX: A Title" in text
    assert "2.500" in text  # float formatting
    assert "x" in text


def test_to_text_columns_align(result):
    lines = result.to_text().splitlines()
    header, divider, *body = lines[1:]
    assert len(header) == len(divider)
    assert all(len(line) == len(header) for line in body)


def test_notes_rendered(result):
    result.notes.append("hello note")
    assert "note: hello note" in result.to_text()
