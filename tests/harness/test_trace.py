"""Tests for the protocol trace tool."""

import pytest

from repro.harness.trace import ProtocolTrace
from tests.protocols.conftest import make_stache_machine, run_script


def addr_homed_on(machine, region, home):
    for page in range(region.base, region.end, machine.layout.page_size):
        if machine.heap.home_of(page) == home:
            return page
    raise AssertionError


@pytest.fixture
def traced_run():
    machine, protocol, region = make_stache_machine(nodes=2)
    trace = ProtocolTrace(machine, capture_payloads=True)
    addr = addr_homed_on(machine, region, home=0)
    run_script(machine, {1: [("r", addr)]})
    return machine, trace, addr


def test_records_fault_and_message_events(traced_run):
    machine, trace, addr = traced_run
    kinds = {event.kind for event in trace.events}
    assert kinds == {"fault", "send", "deliver"}


def test_events_are_time_ordered(traced_run):
    _machine, trace, _addr = traced_run
    times = [event.time for event in trace.events]
    assert times == sorted(times)


def test_remote_read_sequence_visible(traced_run):
    """The Section 3 walk-through appears verbatim in the trace."""
    _machine, trace, _addr = traced_run
    sends = [event.handler for event in trace.events if event.kind == "send"]
    assert sends == ["stache.get_ro", "stache.data"]
    faults = trace.filter(kind="fault")
    assert len(faults) == 1
    assert faults[0].handler == "read-Invalid"


def test_filtering(traced_run):
    _machine, trace, _addr = traced_run
    assert len(trace.filter(handler="stache.get_ro")) == 2  # send + deliver
    assert trace.filter(kind="send", handler="stache.data")[0].dst == 1
    assert trace.filter(node=99) == []


def test_counts_by_handler(traced_run):
    _machine, trace, _addr = traced_run
    counts = trace.counts_by_handler()
    assert counts == {"stache.get_ro": 1, "stache.data": 1}


def test_payload_capture(traced_run):
    _machine, trace, addr = traced_run
    send = trace.filter(kind="send", handler="stache.get_ro")[0]
    assert f"addr={addr:#x}" in send.detail


def test_to_text_renders_all_event_kinds(traced_run):
    _machine, trace, _addr = traced_run
    text = trace.to_text()
    assert "fault" in text
    assert "->" in text   # send arrow
    assert "=>" in text   # deliver arrow


def test_limit(traced_run):
    _machine, trace, _addr = traced_run
    text = trace.to_text(limit=1)
    assert "1 of" in text
