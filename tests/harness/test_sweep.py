"""Tests for the generic sweep utility and its result-store caching."""

import pytest

from repro.harness.store import ResultStore
from repro.harness.sweep import Sweep


def small_sweep():
    return (
        Sweep()
        .systems("dirnnb", "typhoon-stache")
        .workloads(("ocean", "small"))
        .cache_sizes(2048)
        .seeds(1, 2)
    )


def test_cell_count():
    assert small_sweep().cells == 4


def test_run_produces_one_row_per_cell():
    result = small_sweep().run(nodes=2)
    assert len(result.rows) == 4
    assert {row["system"] for row in result.rows} == {
        "dirnnb", "typhoon-stache"}
    assert {row["seed"] for row in result.rows} == {1, 2}
    for row in result.rows:
        assert row["cycles"] > 0
        assert row["refs"] > 0


def test_progress_callback():
    seen = []
    small_sweep().run(nodes=2, progress=lambda done, total:
                      seen.append((done, total)))
    assert seen == [(1, 4), (2, 4), (3, 4), (4, 4)]


def test_rows_are_filterable_and_exportable():
    result = small_sweep().run(nodes=2)
    dirnnb_rows = result.rows_where(system="dirnnb")
    assert len(dirnnb_rows) == 2
    assert "system,application" in result.to_csv().splitlines()[0]


def test_same_seed_cells_reproduce():
    # store=None: this pins *recomputation* determinism, not caching.
    a = small_sweep().run(nodes=2, store=None)
    b = small_sweep().run(nodes=2, store=None)
    assert a.column("cycles") == b.column("cycles")


def test_fluent_defaults():
    sweep = Sweep()
    assert sweep.cells == 1
    result = sweep.run(nodes=2)
    assert len(result.rows) == 1


def test_cell_list_matches_serial_row_order():
    cells = small_sweep().cell_list(nodes=2)
    assert len(cells) == 4
    rows = small_sweep().run(nodes=2).rows
    for cell, row in zip(cells, rows):
        system, app_name, dataset, cache_bytes, seed, _nodes = cell
        assert (row["system"], row["application"], row["dataset"],
                row["cache"], row["seed"]) == (
            system, app_name, dataset, cache_bytes, seed)


def test_parallel_run_matches_serial_row_for_row():
    # store=None keeps the pool actually executing cells (a shared
    # store would make the second run pure cache hits).
    serial = small_sweep().run(nodes=2, store=None)
    parallel = small_sweep().run(nodes=2, workers=4, store=None)
    assert len(parallel.rows) == len(serial.rows)
    for left, right in zip(serial.rows, parallel.rows):
        assert left == right


def test_parallel_progress_reaches_total():
    seen = []
    small_sweep().run(nodes=2, workers=2,
                      progress=lambda done, total: seen.append((done, total)))
    assert seen[-1] == (4, 4)
    assert [done for done, _ in seen] == [1, 2, 3, 4]


def fault_sweep():
    from repro.network.faults import FaultSpec

    return (
        Sweep()
        .systems("typhoon-stache")
        .workloads(("mp3d", "small"))
        .cache_sizes(2048)
        .seeds(7)
        .faults(None, FaultSpec(name="drop5", drop_pct=0.05))
    )


def test_fault_axis_multiplies_cells_and_widens_tuples():
    sweep = fault_sweep()
    assert sweep.cells == 2
    cells = sweep.cell_list(nodes=4)
    assert all(len(cell) == 7 for cell in cells)
    assert cells[0][-1] is None
    assert cells[1][-1].name == "drop5"


def test_fault_axis_rows_report_retry_columns():
    result = fault_sweep().run(nodes=4)
    assert result.columns[-3:] == ["faults", "retries", "nacks"]
    reliable, lossy = result.rows
    assert reliable["faults"] == "none"
    assert reliable["retries"] == 0
    assert lossy["faults"] == "drop5"
    assert lossy["retries"] > 0
    assert lossy["cycles"] > reliable["cycles"]


def test_fault_axis_parallel_matches_serial():
    serial = fault_sweep().run(nodes=4, store=None)
    parallel = fault_sweep().run(nodes=4, workers=2, store=None)
    assert serial.rows == parallel.rows


def test_faultless_sweep_keeps_six_tuple_cells():
    cells = small_sweep().cell_list(nodes=2)
    assert all(len(cell) == 6 for cell in cells)


# ----------------------------------------------------------------------
# The content-addressed result store (docs/sweeps.md)
# ----------------------------------------------------------------------
def tmp_store(tmp_path, digest=None):
    return ResultStore(tmp_path / "store", digest=digest)


def test_warm_run_executes_zero_cells_and_is_bit_identical(tmp_path):
    store = tmp_store(tmp_path)
    cold = small_sweep().run(nodes=2, store=store)
    warm = small_sweep().run(nodes=2, store=store)
    assert cold.cache_stats["executed"] == 4
    assert cold.cache_stats["hits"] == 0
    assert warm.cache_stats["executed"] == 0
    assert warm.cache_stats["hits"] == 4
    assert warm.rows == cold.rows
    assert warm.to_csv() == cold.to_csv()
    assert warm.to_text() == cold.to_text()


def test_hit_miss_partitioning_executes_only_misses(tmp_path):
    """Growing a sweep re-executes only the new cells."""
    store = tmp_store(tmp_path)
    subset = (Sweep().systems("dirnnb").workloads(("ocean", "small"))
              .cache_sizes(2048).seeds(1, 2))
    subset.run(nodes=2, store=store)
    grown = small_sweep().run(nodes=2, store=store)
    assert grown.cache_stats == {"cells": 4, "hits": 2, "executed": 2,
                                 "store": str(store.root)}
    assert grown.rows == small_sweep().run(nodes=2, store=None).rows


def test_source_fingerprint_invalidates_cached_cells(tmp_path):
    """The same store misses everything under a different code digest."""
    before = tmp_store(tmp_path, digest="a" * 16)
    cold = small_sweep().run(nodes=2, store=before)
    assert small_sweep().run(nodes=2, store=before).cache_stats["hits"] == 4

    after = ResultStore(before.root, digest="b" * 16)
    recomputed = small_sweep().run(nodes=2, store=after)
    assert recomputed.cache_stats["executed"] == 4
    assert recomputed.rows == cold.rows


def test_pool_workers_write_through_to_the_store(tmp_path):
    """With workers>1 the *workers* persist rows; the parent only
    collects them — so a follow-up serial run is pure hits."""
    store = tmp_store(tmp_path)
    parallel = small_sweep().run(nodes=2, workers=2, store=store)
    assert parallel.cache_stats["executed"] == 4
    assert store.writes == 0          # parent wrote nothing itself
    warm = small_sweep().run(nodes=2, store=store)
    assert warm.cache_stats == {"cells": 4, "hits": 4, "executed": 0,
                                "store": str(store.root)}
    assert warm.rows == parallel.rows


def test_corrupted_store_entries_are_recomputed(tmp_path):
    store = tmp_store(tmp_path)
    cold = small_sweep().run(nodes=2, store=store)
    # Truncate one entry and vapourise another: both become misses.
    paths = sorted((store.root / "objects").glob("*/*.json"))
    paths[0].write_text("{ truncated", encoding="utf-8")
    paths[1].unlink()
    repaired = small_sweep().run(nodes=2, store=store)
    assert repaired.cache_stats["executed"] == 2
    assert repaired.rows == cold.rows
    assert small_sweep().run(nodes=2, store=store).cache_stats["hits"] == 4


def test_progress_fires_for_hits_with_cached_flag(tmp_path):
    store = tmp_store(tmp_path)
    small_sweep().run(nodes=2, store=store)
    seen = []
    small_sweep().run(
        nodes=2, store=store,
        progress=lambda done, total, cached: seen.append(
            (done, total, cached)))
    assert seen == [(1, 4, True), (2, 4, True), (3, 4, True),
                    (4, 4, True)]


def test_progress_mixes_cached_and_executed_cells(tmp_path):
    store = tmp_store(tmp_path)
    (Sweep().systems("dirnnb").workloads(("ocean", "small"))
     .cache_sizes(2048).seeds(1, 2)).run(nodes=2, store=store)
    seen = []
    small_sweep().run(
        nodes=2, store=store,
        progress=lambda done, total, cached: seen.append((done, cached)))
    assert [done for done, _ in seen] == [1, 2, 3, 4]
    assert sorted(cached for _, cached in seen) == [False, False,
                                                    True, True]


def test_positional_only_cached_progress_is_called_positionally(tmp_path):
    """Regression: a callback whose third parameter is *named* ``cached``
    but declared positional-only used to be called with ``cached=`` as a
    keyword, which is a TypeError.  ``Parameter.kind`` decides now."""
    store = tmp_store(tmp_path)
    small_sweep().run(nodes=2, store=store)
    seen = []

    def progress(done, total, cached, /):
        seen.append((done, total, cached))

    small_sweep().run(nodes=2, store=store, progress=progress)
    assert seen == [(1, 4, True), (2, 4, True), (3, 4, True), (4, 4, True)]


def test_keyword_only_cached_progress_still_gets_the_flag(tmp_path):
    store = tmp_store(tmp_path)
    small_sweep().run(nodes=2, store=store)
    seen = []

    def progress(done, total, *, cached):
        seen.append(cached)

    small_sweep().run(nodes=2, store=store, progress=progress)
    assert seen == [True, True, True, True]


def test_var_keyword_progress_still_gets_the_flag(tmp_path):
    store = tmp_store(tmp_path)
    small_sweep().run(nodes=2, store=store)
    seen = []
    small_sweep().run(
        nodes=2, store=store,
        progress=lambda done, total, **kw: seen.append(kw["cached"]))
    assert seen == [True, True, True, True]


def test_legacy_two_argument_progress_still_works_warm(tmp_path):
    store = tmp_store(tmp_path)
    small_sweep().run(nodes=2, store=store)
    seen = []
    small_sweep().run(nodes=2, store=store,
                      progress=lambda done, total: seen.append(
                          (done, total)))
    assert seen == [(1, 4), (2, 4), (3, 4), (4, 4)]


def test_parallel_warm_progress_is_monotone(tmp_path):
    store = tmp_store(tmp_path)
    small_sweep().run(nodes=2, store=store)
    seen = []
    small_sweep().run(nodes=2, workers=2, store=store,
                      progress=lambda done, total, cached: seen.append(
                          (done, cached)))
    assert [done for done, _ in seen] == [1, 2, 3, 4]
    assert all(cached for _, cached in seen)


def test_fault_axis_rows_cache_and_roundtrip(tmp_path):
    store = tmp_store(tmp_path)
    cold = fault_sweep().run(nodes=4, store=store)
    warm = fault_sweep().run(nodes=4, store=store)
    assert warm.cache_stats["executed"] == 0
    assert warm.rows == cold.rows


def test_store_off_string_disables_caching(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_STORE", str(tmp_path / "env-store"))
    first = small_sweep().run(nodes=2, store="off")
    assert first.cache_stats["store"] is None
    assert not (tmp_path / "env-store").exists()


def test_repro_store_env_selects_the_default_store(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_STORE", str(tmp_path / "env-store"))
    cold = small_sweep().run(nodes=2)
    assert cold.cache_stats["store"] == str(tmp_path / "env-store")
    warm = small_sweep().run(nodes=2)
    assert warm.cache_stats["executed"] == 0
    monkeypatch.setenv("REPRO_STORE", "off")
    off = small_sweep().run(nodes=2)
    assert off.cache_stats["store"] is None


def test_warm_rows_bit_identical_across_all_systems(tmp_path):
    """The acceptance regression: every composable backend:protocol
    system round-trips through the store bit-identically."""
    def matrix():
        return (Sweep().all_systems().workloads(("ocean", "small"))
                .cache_sizes(1024).seeds(7))

    store = tmp_store(tmp_path)
    cold = matrix().run(nodes=2, store=store)
    warm = matrix().run(nodes=2, store=store)
    assert cold.cache_stats["executed"] == cold.cache_stats["cells"]
    assert warm.cache_stats["executed"] == 0
    assert warm.rows == cold.rows
    for left, right in zip(cold.rows, warm.rows):
        for column, value in left.items():
            assert type(right[column]) is type(value)
