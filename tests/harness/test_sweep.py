"""Tests for the generic sweep utility."""

import pytest

from repro.harness.sweep import Sweep


def small_sweep():
    return (
        Sweep()
        .systems("dirnnb", "typhoon-stache")
        .workloads(("ocean", "small"))
        .cache_sizes(2048)
        .seeds(1, 2)
    )


def test_cell_count():
    assert small_sweep().cells == 4


def test_run_produces_one_row_per_cell():
    result = small_sweep().run(nodes=2)
    assert len(result.rows) == 4
    assert {row["system"] for row in result.rows} == {
        "dirnnb", "typhoon-stache"}
    assert {row["seed"] for row in result.rows} == {1, 2}
    for row in result.rows:
        assert row["cycles"] > 0
        assert row["refs"] > 0


def test_progress_callback():
    seen = []
    small_sweep().run(nodes=2, progress=lambda done, total:
                      seen.append((done, total)))
    assert seen == [(1, 4), (2, 4), (3, 4), (4, 4)]


def test_rows_are_filterable_and_exportable():
    result = small_sweep().run(nodes=2)
    dirnnb_rows = result.rows_where(system="dirnnb")
    assert len(dirnnb_rows) == 2
    assert "system,application" in result.to_csv().splitlines()[0]


def test_same_seed_cells_reproduce():
    a = small_sweep().run(nodes=2)
    b = small_sweep().run(nodes=2)
    assert a.column("cycles") == b.column("cycles")


def test_fluent_defaults():
    sweep = Sweep()
    assert sweep.cells == 1
    result = sweep.run(nodes=2)
    assert len(result.rows) == 1


def test_cell_list_matches_serial_row_order():
    cells = small_sweep().cell_list(nodes=2)
    assert len(cells) == 4
    rows = small_sweep().run(nodes=2).rows
    for cell, row in zip(cells, rows):
        system, app_name, dataset, cache_bytes, seed, _nodes = cell
        assert (row["system"], row["application"], row["dataset"],
                row["cache"], row["seed"]) == (
            system, app_name, dataset, cache_bytes, seed)


def test_parallel_run_matches_serial_row_for_row():
    serial = small_sweep().run(nodes=2)
    parallel = small_sweep().run(nodes=2, workers=4)
    assert len(parallel.rows) == len(serial.rows)
    for left, right in zip(serial.rows, parallel.rows):
        assert left == right


def test_parallel_progress_reaches_total():
    seen = []
    small_sweep().run(nodes=2, workers=2,
                      progress=lambda done, total: seen.append((done, total)))
    assert seen[-1] == (4, 4)
    assert [done for done, _ in seen] == [1, 2, 3, 4]


def fault_sweep():
    from repro.network.faults import FaultSpec

    return (
        Sweep()
        .systems("typhoon-stache")
        .workloads(("mp3d", "small"))
        .cache_sizes(2048)
        .seeds(7)
        .faults(None, FaultSpec(name="drop5", drop_pct=0.05))
    )


def test_fault_axis_multiplies_cells_and_widens_tuples():
    sweep = fault_sweep()
    assert sweep.cells == 2
    cells = sweep.cell_list(nodes=4)
    assert all(len(cell) == 7 for cell in cells)
    assert cells[0][-1] is None
    assert cells[1][-1].name == "drop5"


def test_fault_axis_rows_report_retry_columns():
    result = fault_sweep().run(nodes=4)
    assert result.columns[-3:] == ["faults", "retries", "nacks"]
    reliable, lossy = result.rows
    assert reliable["faults"] == "none"
    assert reliable["retries"] == 0
    assert lossy["faults"] == "drop5"
    assert lossy["retries"] > 0
    assert lossy["cycles"] > reliable["cycles"]


def test_fault_axis_parallel_matches_serial():
    serial = fault_sweep().run(nodes=4)
    parallel = fault_sweep().run(nodes=4, workers=2)
    assert serial.rows == parallel.rows


def test_faultless_sweep_keeps_six_tuple_cells():
    cells = small_sweep().cell_list(nodes=2)
    assert all(len(cell) == 6 for cell in cells)
