"""Tests for the experiment registry (small configurations)."""

import pytest

from repro.harness import experiments
from repro.harness.runner import SYSTEMS, build_machine, run_application
from repro.harness.workloads import workload
from repro.sim.config import MachineConfig


class TestRunner:
    def test_build_machine_for_each_system(self):
        for system in SYSTEMS:
            machine, protocol = build_machine(
                system, MachineConfig(nodes=2, seed=1))
            assert machine.num_nodes == 2
            if system == "dirnnb":
                assert protocol is None
            else:
                assert protocol is not None

    def test_unknown_system_rejected(self):
        with pytest.raises(ValueError):
            build_machine("flash", MachineConfig(nodes=2))

    def test_run_application_returns_statistics(self):
        outcome = run_application(
            "typhoon-stache", workload("ocean", "small").build(),
            MachineConfig(nodes=2, seed=1),
        )
        assert outcome["execution_time"] > 0
        assert outcome["refs"] > 0
        assert "machine" in outcome


class TestTable1:
    def test_covers_all_nine_operations(self):
        result = experiments.run_table1()
        operations = result.column("operation")
        assert operations == [
            "read", "write", "force-read", "force-write", "read-tag",
            "set-RW", "set-RO", "invalidate", "resume",
        ]

    def test_observations_show_fault_semantics(self):
        result = experiments.run_table1()
        by_op = {row["operation"]: row["observed"] for row in result.rows}
        assert "faults" in by_op["read"]
        assert "despite Invalid" in by_op["force-read"]
        assert "CPU copy present: False" in by_op["invalidate"]
        assert "released: True" in by_op["resume"]


class TestTable2:
    def test_every_parameter_matches_paper(self):
        result = experiments.run_table2()
        mismatched = [row for row in result.rows if row["match"] != "yes"]
        assert mismatched == []

    def test_has_all_sections(self):
        result = experiments.run_table2()
        parameters = " ".join(result.column("parameter"))
        assert "DirNNB" in parameters
        assert "NP" in parameters
        assert "Network latency" in parameters


class TestTable3:
    def test_ten_rows(self):
        result = experiments.run_table3()
        assert len(result.rows) == 10

    def test_paper_parameters_present(self):
        result = experiments.run_table3()
        papers = result.column("paper")
        assert "12x12x12" in papers
        assert "192,000 nodes, degree 15" in papers


class TestFigure3:
    def test_small_run_has_expected_rows(self):
        result = experiments.run_figure3(
            apps=("ocean",), nodes=2,
            configurations=[("small", 512, 4096), ("large", 2048, 262144)],
        )
        assert len(result.rows) == 2
        for row in result.rows:
            assert row["relative"] > 0
            assert row["dirnnb_cycles"] > 0

    def test_relative_is_ratio(self):
        result = experiments.run_figure3(
            apps=("ocean",), nodes=2,
            configurations=[("small", 1024, 4096)],
        )
        row = result.rows[0]
        assert row["relative"] == pytest.approx(
            row["stache_cycles"] / row["dirnnb_cycles"])


class TestFigure4:
    def test_series_columns_and_growth(self):
        result = experiments.run_figure4(
            nodes=2, nodes_per_proc=8, degree=3, iterations=2,
            fractions=(0.0, 0.5),
        )
        assert result.column("remote_pct") == [0, 50]
        # All systems slow down with more remote edges.
        first, last = result.rows
        for series in ("dirnnb", "typhoon_stache", "typhoon_update"):
            assert last[series] > first[series]

    def test_update_protocol_wins_at_high_remote_fraction(self):
        result = experiments.run_figure4(
            nodes=4, nodes_per_proc=12, degree=3, iterations=2,
            fractions=(0.5,),
        )
        row = result.rows[0]
        assert row["typhoon_update"] < row["dirnnb"]
        assert row["typhoon_update"] < row["typhoon_stache"]


class TestAblations:
    def test_np_speed_monotonic(self):
        result = experiments.run_ablation_np_speed(nodes=2, cpis=(1, 4))
        times = result.column("stache_cycles")
        assert times[1] > times[0]

    def test_topology_mesh_is_slower(self):
        result = experiments.run_ablation_topology(nodes=4)
        ideal = result.rows_where(topology="ideal")[0]
        mesh = result.rows_where(topology="mesh2d")[0]
        assert mesh["typhoon_stache"] >= ideal["typhoon_stache"]

    def test_first_touch_reduces_remote_traffic(self):
        result = experiments.run_ablation_first_touch(nodes=4)
        round_robin = result.rows_where(placement="round_robin")[0]
        first_touch = result.rows_where(placement="first_touch")[0]
        assert (first_touch["remote_packets"]
                < round_robin["remote_packets"])
