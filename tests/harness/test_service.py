"""Tests for the SweepJob service layer (submit/status/run/result)."""

import pytest

from repro.harness.service import JobIncomplete, SweepJob
from repro.harness.store import ResultStore
from repro.harness.sweep import Sweep
from repro.network.faults import FaultSpec


def small_sweep():
    return (
        Sweep()
        .systems("dirnnb", "typhoon-stache")
        .workloads(("ocean", "small"))
        .cache_sizes(2048)
        .seeds(1, 2)
    )


def job_store(tmp_path):
    return ResultStore(tmp_path / "store")


def test_submit_persists_a_loadable_spec(tmp_path):
    store = job_store(tmp_path)
    job = SweepJob.submit(small_sweep(), nodes=2, store=store)
    loaded = SweepJob.load(job.job_id, store=store)
    assert loaded.nodes == 2
    assert loaded.sweep().cell_list(2) == small_sweep().cell_list(2)
    assert SweepJob.jobs(store=store) == [job.job_id]


def test_submit_is_idempotent_per_code_version(tmp_path):
    store = job_store(tmp_path)
    first = SweepJob.submit(small_sweep(), nodes=2, store=store)
    again = SweepJob.submit(small_sweep(), nodes=2, store=store)
    assert first.job_id == again.job_id
    different = SweepJob.submit(small_sweep(), nodes=4, store=store)
    assert different.job_id != first.job_id


def test_status_progress_result_lifecycle(tmp_path):
    store = job_store(tmp_path)
    job = SweepJob.submit(small_sweep(), nodes=2, store=store)
    assert job.status()["state"] == "pending"
    assert job.progress() == (0, 4)
    with pytest.raises(JobIncomplete):
        job.result()

    run = job.run()
    assert run.cache_stats["executed"] == 4
    assert job.status()["state"] == "complete"
    assert job.progress() == (4, 4)

    served = job.result()
    assert served.cache_stats["executed"] == 0
    assert served.rows == run.rows


def test_partial_jobs_report_partial_and_resume(tmp_path):
    """A job sharing cells with a finished smaller job starts partial."""
    store = job_store(tmp_path)
    half = SweepJob.submit(
        Sweep().systems("dirnnb").workloads(("ocean", "small"))
        .cache_sizes(2048).seeds(1, 2),
        nodes=2, store=store)
    half.run()
    job = SweepJob.submit(small_sweep(), nodes=2, store=store)
    assert job.status()["state"] == "partial"
    assert job.progress() == (2, 4)
    run = job.run()
    assert run.cache_stats == {"cells": 4, "hits": 2, "executed": 2,
                               "store": str(store.root)}
    assert job.status()["state"] == "complete"


def test_result_rows_match_a_storeless_run(tmp_path):
    store = job_store(tmp_path)
    job = SweepJob.submit(small_sweep(), nodes=2, store=store)
    job.run()
    assert job.result().rows == small_sweep().run(nodes=2,
                                                  store=None).rows


def test_fault_axis_round_trips_through_the_spec(tmp_path):
    store = job_store(tmp_path)
    sweep = (
        Sweep().systems("typhoon-stache").workloads(("mp3d", "small"))
        .cache_sizes(2048).seeds(7)
        .faults(None, FaultSpec(name="drop5", drop_pct=0.05))
    )
    job = SweepJob.submit(sweep, nodes=4, store=store)
    reconstructed = SweepJob.load(job.job_id, store=store).sweep()
    assert reconstructed.cell_list(4) == sweep.cell_list(4)
    cells = reconstructed.cell_list(4)
    assert cells[1][-1] == FaultSpec(name="drop5", drop_pct=0.05)


def test_conformance_axis_round_trips_through_the_spec(tmp_path):
    store = job_store(tmp_path)
    sweep = (
        Sweep().systems("typhoon-stache").workloads(("ocean", "small"))
        .cache_sizes(2048).seeds(7).conformance(False, True)
    )
    job = SweepJob.submit(sweep, nodes=2, store=store)
    reconstructed = SweepJob.load(job.job_id, store=store).sweep()
    assert reconstructed.cell_list(2) == sweep.cell_list(2)


def test_source_change_resets_progress(tmp_path):
    """Cells cached under another digest no longer count as done."""
    store = job_store(tmp_path)
    job = SweepJob.submit(small_sweep(), nodes=2, store=store)
    job.run()
    assert job.status()["state"] == "complete"

    changed = ResultStore(store.root, digest="f" * 16)
    stale = SweepJob.load(job.job_id, store=changed)
    assert stale.progress() == (0, 4)
    assert stale.status()["state"] == "pending"
    assert stale.status()["current"] is False
    with pytest.raises(JobIncomplete):
        stale.result()


def test_load_unknown_job_raises(tmp_path):
    with pytest.raises(KeyError):
        SweepJob.load("nope", store=job_store(tmp_path))
