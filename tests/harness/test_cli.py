"""Tests for the command-line front end."""

import pytest

from repro.cli import build_parser, main


def test_list_enumerates_experiments(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in ("table1", "table2", "table3", "figure3", "figure4",
                 "messages", "ablations"):
        assert name in out


def test_table2_runs_and_prints(capsys):
    assert main(["table2"]) == 0
    out = capsys.readouterr().out
    assert "Simulation parameters" in out
    assert "Network latency" in out


def test_table1_runs(capsys):
    assert main(["table1"]) == 0
    assert "force-write" in capsys.readouterr().out


def test_figure3_with_app_subset(capsys):
    assert main(["figure3", "--nodes", "2", "--apps", "ocean"]) == 0
    out = capsys.readouterr().out
    assert "ocean" in out
    assert "barnes" not in out


def test_unknown_app_rejected():
    with pytest.raises(SystemExit):
        main(["figure3", "--apps", "linpack"])


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        main(["figure9"])


def test_parser_defaults():
    args = build_parser().parse_args(["figure4"])
    assert args.nodes == 8
    assert args.seed == 42


def test_bench_kernel_flag(capsys):
    assert main(["bench", "--kernel", "compiled", "--nodes", "2"]) == 0
    out = capsys.readouterr().out
    assert "compiled kernel" in out
    assert "events_per_s" in out


def test_bench_defaults_to_interpreted():
    args = build_parser().parse_args(["bench"])
    assert args.kernel == "interpreted"
    with pytest.raises(SystemExit):
        build_parser().parse_args(["bench", "--kernel", "jit"])


def test_differential_subcommand(capsys):
    assert main(["differential", "--nodes", "2"]) == 0
    out = capsys.readouterr().out
    assert "typhoon:stache" in out
    assert "NO" not in out.split("fallback_reason")[-1]


# ----------------------------------------------------------------------
# The sweep-service CLI: python -m repro sweep ... (docs/sweeps.md)
# ----------------------------------------------------------------------
def _submit(store, *extra):
    return ["sweep", "submit", "--systems", "dirnnb",
            "--workloads", "ocean:small", "--cache-sizes", "1024",
            "--seeds", "1,2", "--nodes", "2", "--store", str(store),
            *extra]


def _job_id(output):
    assert output.startswith("job ")
    return output.split()[1].rstrip(":")


def test_sweep_submit_status_result_roundtrip(tmp_path, capsys):
    store = tmp_path / "store"
    assert main(_submit(store)) == 0
    out = capsys.readouterr().out
    job = _job_id(out)
    assert "executed 2 cells, 0 hits" in out
    assert "state: complete" in out

    assert main(["sweep", "status", job, "--store", str(store)]) == 0
    assert "complete — 2/2 cells" in capsys.readouterr().out

    assert main(["sweep", "result", job, "--store", str(store)]) == 0
    out = capsys.readouterr().out
    assert "ocean" in out and "dirnnb" in out

    assert main(["sweep", "result", job, "--store", str(store),
                 "--format", "csv"]) == 0
    lines = capsys.readouterr().out.splitlines()
    assert lines[0].startswith("system,application")
    assert len(lines) == 3


def test_sweep_resubmit_is_all_hits(tmp_path, capsys):
    store = tmp_path / "store"
    assert main(_submit(store)) == 0
    capsys.readouterr()
    assert main(_submit(store)) == 0
    assert "executed 0 cells, 2 hits" in capsys.readouterr().out


def test_sweep_no_run_defers_execution(tmp_path, capsys):
    store = tmp_path / "store"
    assert main(_submit(store, "--no-run")) == 0
    out = capsys.readouterr().out
    job = _job_id(out)
    assert "state: pending" in out

    assert main(["sweep", "result", job, "--store", str(store)]) == 1
    assert "not in store" in capsys.readouterr().err

    assert main(["sweep", "run", job, "--store", str(store)]) == 0
    assert "executed 2 cells" in capsys.readouterr().out
    assert main(["sweep", "result", job, "--store", str(store)]) == 0
    assert "ocean" in capsys.readouterr().out


def test_sweep_jobs_and_store_maintenance(tmp_path, capsys):
    store = tmp_path / "store"
    assert main(_submit(store)) == 0
    job = _job_id(capsys.readouterr().out)

    assert main(["sweep", "jobs", "--store", str(store)]) == 0
    assert job in capsys.readouterr().out

    assert main(["sweep", "store", "stats", "--store", str(store)]) == 0
    out = capsys.readouterr().out
    assert "entries: 2" in out and "0 stale" in out

    assert main(["sweep", "store", "gc", "--store", str(store)]) == 0
    assert "removed 0 stale entries, kept 2" in capsys.readouterr().out


def test_sweep_cache_experiment_runs(capsys):
    assert main(["sweep-cache", "--nodes", "2"]) == 0
    out = capsys.readouterr().out
    assert "cold" in out and "warm" in out
    assert "rows_identical" in out
