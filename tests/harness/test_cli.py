"""Tests for the command-line front end."""

import pytest

from repro.cli import build_parser, main


def test_list_enumerates_experiments(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in ("table1", "table2", "table3", "figure3", "figure4",
                 "messages", "ablations"):
        assert name in out


def test_table2_runs_and_prints(capsys):
    assert main(["table2"]) == 0
    out = capsys.readouterr().out
    assert "Simulation parameters" in out
    assert "Network latency" in out


def test_table1_runs(capsys):
    assert main(["table1"]) == 0
    assert "force-write" in capsys.readouterr().out


def test_figure3_with_app_subset(capsys):
    assert main(["figure3", "--nodes", "2", "--apps", "ocean"]) == 0
    out = capsys.readouterr().out
    assert "ocean" in out
    assert "barnes" not in out


def test_unknown_app_rejected():
    with pytest.raises(SystemExit):
        main(["figure3", "--apps", "linpack"])


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        main(["figure9"])


def test_parser_defaults():
    args = build_parser().parse_args(["figure4"])
    assert args.nodes == 8
    assert args.seed == 42


def test_bench_kernel_flag(capsys):
    assert main(["bench", "--kernel", "compiled", "--nodes", "2"]) == 0
    out = capsys.readouterr().out
    assert "compiled kernel" in out
    assert "events_per_s" in out


def test_bench_defaults_to_interpreted():
    args = build_parser().parse_args(["bench"])
    assert args.kernel == "interpreted"
    with pytest.raises(SystemExit):
        build_parser().parse_args(["bench", "--kernel", "jit"])


def test_differential_subcommand(capsys):
    assert main(["differential", "--nodes", "2"]) == 0
    out = capsys.readouterr().out
    assert "typhoon:stache" in out
    assert "NO" not in out.split("fallback_reason")[-1]
