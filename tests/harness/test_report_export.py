"""Tests for CSV/JSON result export."""

import csv
import io
import json

import pytest

from repro.harness.report import ExperimentResult


@pytest.fixture
def result():
    r = ExperimentResult("figX", "Title", ["name", "value"])
    r.add_row(name="a", value=1.5)
    r.add_row(name="b", value=2)
    r.notes.append("a note")
    return r


def test_csv_round_trips(result):
    rows = list(csv.reader(io.StringIO(result.to_csv())))
    assert rows[0] == ["name", "value"]
    assert rows[1] == ["a", "1.5"]
    assert rows[2] == ["b", "2"]


def test_json_contains_everything(result):
    payload = json.loads(result.to_json())
    assert payload["experiment_id"] == "figX"
    assert payload["columns"] == ["name", "value"]
    assert payload["rows"] == [
        {"name": "a", "value": 1.5},
        {"name": "b", "value": 2},
    ]
    assert payload["notes"] == ["a note"]


def test_json_handles_non_serializable_values():
    r = ExperimentResult("x", "t", ["v"])
    r.add_row(v={1, 2})  # a set: json falls back to str()
    payload = json.loads(r.to_json())
    assert "1" in payload["rows"][0]["v"]
