"""Tests for the statistics registry."""

from repro.sim.stats import Distribution, Stats


def test_incr_accumulates():
    stats = Stats()
    stats.incr("x")
    stats.incr("x", 4)
    assert stats.get("x") == 5


def test_get_default():
    assert Stats().get("missing") == 0
    assert Stats().get("missing", -1) == -1


def test_set_max_keeps_largest():
    stats = Stats()
    stats.set_max("peak", 3)
    stats.set_max("peak", 10)
    stats.set_max("peak", 7)
    assert stats.get("peak") == 10


def test_counters_prefix_filter():
    stats = Stats()
    stats.incr("node0.cache.misses")
    stats.incr("node1.cache.misses")
    stats.incr("network.packets")
    assert set(stats.counters("node")) == {
        "node0.cache.misses",
        "node1.cache.misses",
    }


def test_total_suffix_aggregation():
    stats = Stats()
    stats.incr("node0.cache.misses", 3)
    stats.incr("node1.cache.misses", 4)
    stats.incr("node1.cache.hits", 100)
    assert stats.total(".cache.misses") == 7


def test_distribution_statistics():
    dist = Distribution()
    for value in (2, 4, 9):
        dist.add(value)
    assert dist.count == 3
    assert dist.total == 15
    assert dist.mean == 5
    assert dist.minimum == 2
    assert dist.maximum == 9


def test_empty_distribution_mean_is_zero():
    assert Distribution().mean == 0


def test_sample_creates_distribution():
    stats = Stats()
    stats.sample("latency", 10)
    stats.sample("latency", 20)
    assert stats.distribution("latency").mean == 15


def test_merge_combines_counters_and_distributions():
    a = Stats()
    b = Stats()
    a.incr("n", 1)
    b.incr("n", 2)
    a.sample("d", 1)
    b.sample("d", 3)
    a.merge(b)
    assert a.get("n") == 3
    assert a.distribution("d").count == 2
    assert a.distribution("d").mean == 2


def test_merge_takes_max_of_high_water_marks():
    # Regression: merge() used to sum set_max counters, inflating every
    # aggregated high-water mark (machine.execution_time, NP queue peaks).
    a = Stats()
    b = Stats()
    a.set_max("machine.execution_time", 1000)
    b.set_max("machine.execution_time", 1800)
    a.incr("tempest.retries", 2)
    b.incr("tempest.retries", 3)
    a.merge(b)
    assert a.get("machine.execution_time") == 1800  # max, not 2800
    assert a.get("tempest.retries") == 5  # sums still sum


def test_merge_respects_maxima_known_only_to_other():
    # The receiving Stats may never have seen the counter; the max-type
    # marking must travel with the merge.
    a = Stats()
    b = Stats()
    b.set_max("node0.np.overflow_peak", 7)
    a.merge(b)
    assert a.get("node0.np.overflow_peak") == 7
    c = Stats()
    c.set_max("node0.np.overflow_peak", 4)
    a.merge(c)
    assert a.get("node0.np.overflow_peak") == 7  # still the high-water mark


def test_as_dict_flattens_distributions():
    stats = Stats()
    stats.incr("c", 2)
    stats.sample("d", 4)
    flat = stats.as_dict()
    assert flat["c"] == 2
    assert flat["d.mean"] == 4
    assert flat["d.count"] == 1


def test_iteration_is_sorted():
    stats = Stats()
    stats.incr("b")
    stats.incr("a")
    assert [name for name, _ in stats] == ["a", "b"]
