"""Tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Engine, SimulationError


def test_clock_starts_at_zero():
    assert Engine().now == 0


def test_events_fire_in_time_order():
    engine = Engine()
    fired = []
    engine.schedule(30, fired.append, "c")
    engine.schedule(10, fired.append, "a")
    engine.schedule(20, fired.append, "b")
    engine.run()
    assert fired == ["a", "b", "c"]
    assert engine.now == 30


def test_same_cycle_events_fire_fifo():
    engine = Engine()
    fired = []
    for tag in range(5):
        engine.schedule(7, fired.append, tag)
    engine.run()
    assert fired == [0, 1, 2, 3, 4]


def test_zero_delay_event_fires_at_current_time():
    engine = Engine()
    times = []
    engine.schedule(5, lambda: engine.schedule(0, lambda: times.append(engine.now)))
    engine.run()
    assert times == [5]


def test_negative_delay_rejected():
    engine = Engine()
    with pytest.raises(SimulationError):
        engine.schedule(-1, lambda: None)


def test_schedule_in_past_rejected():
    engine = Engine()
    engine.schedule(10, lambda: None)
    engine.run()
    with pytest.raises(SimulationError):
        engine.schedule_at(5, lambda: None)


def test_run_until_stops_clock_at_bound():
    engine = Engine()
    fired = []
    engine.schedule(10, fired.append, "early")
    engine.schedule(100, fired.append, "late")
    engine.run(until=50)
    assert fired == ["early"]
    assert engine.now == 50
    engine.run()
    assert fired == ["early", "late"]


def test_run_until_advances_clock_even_with_empty_queue():
    engine = Engine()
    engine.run(until=99)
    assert engine.now == 99


def test_max_events_bounds_execution():
    engine = Engine()
    count = [0]

    def reschedule():
        count[0] += 1
        engine.schedule(1, reschedule)

    engine.schedule(0, reschedule)
    engine.run(max_events=10)
    assert count[0] == 10


def test_cancelled_event_does_not_fire():
    engine = Engine()
    fired = []
    event = engine.schedule(10, fired.append, "cancelled")
    engine.schedule(5, fired.append, "kept")
    event.cancel()
    engine.run()
    assert fired == ["kept"]


def test_pending_excludes_cancelled():
    engine = Engine()
    keep = engine.schedule(10, lambda: None)
    drop = engine.schedule(10, lambda: None)
    drop.cancel()
    assert engine.pending == 1
    assert keep is not None


def test_events_fired_counter():
    engine = Engine()
    for _ in range(4):
        engine.schedule(1, lambda: None)
    engine.run()
    assert engine.events_fired == 4


def test_step_returns_false_when_empty():
    engine = Engine()
    assert engine.step() is False
    engine.schedule(3, lambda: None)
    assert engine.step() is True
    assert engine.now == 3


def test_engine_not_reentrant():
    engine = Engine()

    def nested():
        with pytest.raises(SimulationError):
            engine.run()

    engine.schedule(1, nested)
    engine.run()


def test_exception_in_event_propagates():
    engine = Engine()

    def boom():
        raise ValueError("boom")

    engine.schedule(1, boom)
    with pytest.raises(ValueError):
        engine.run()
