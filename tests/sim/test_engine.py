"""Tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Engine, SimulationError


def test_clock_starts_at_zero():
    assert Engine().now == 0


def test_events_fire_in_time_order():
    engine = Engine()
    fired = []
    engine.schedule(30, fired.append, "c")
    engine.schedule(10, fired.append, "a")
    engine.schedule(20, fired.append, "b")
    engine.run()
    assert fired == ["a", "b", "c"]
    assert engine.now == 30


def test_same_cycle_events_fire_fifo():
    engine = Engine()
    fired = []
    for tag in range(5):
        engine.schedule(7, fired.append, tag)
    engine.run()
    assert fired == [0, 1, 2, 3, 4]


def test_zero_delay_event_fires_at_current_time():
    engine = Engine()
    times = []
    engine.schedule(5, lambda: engine.schedule(0, lambda: times.append(engine.now)))
    engine.run()
    assert times == [5]


def test_negative_delay_rejected():
    engine = Engine()
    with pytest.raises(SimulationError):
        engine.schedule(-1, lambda: None)


def test_schedule_in_past_rejected():
    engine = Engine()
    engine.schedule(10, lambda: None)
    engine.run()
    with pytest.raises(SimulationError):
        engine.schedule_at(5, lambda: None)


def test_run_until_stops_clock_at_bound():
    engine = Engine()
    fired = []
    engine.schedule(10, fired.append, "early")
    engine.schedule(100, fired.append, "late")
    engine.run(until=50)
    assert fired == ["early"]
    assert engine.now == 50
    engine.run()
    assert fired == ["early", "late"]


def test_run_until_advances_clock_even_with_empty_queue():
    engine = Engine()
    engine.run(until=99)
    assert engine.now == 99


def test_max_events_bounds_execution():
    engine = Engine()
    count = [0]

    def reschedule():
        count[0] += 1
        engine.schedule(1, reschedule)

    engine.schedule(0, reschedule)
    engine.run(max_events=10)
    assert count[0] == 10


def test_cancelled_event_does_not_fire():
    engine = Engine()
    fired = []
    event = engine.schedule(10, fired.append, "cancelled")
    engine.schedule(5, fired.append, "kept")
    event.cancel()
    engine.run()
    assert fired == ["kept"]


def test_pending_excludes_cancelled():
    engine = Engine()
    keep = engine.schedule(10, lambda: None)
    drop = engine.schedule(10, lambda: None)
    drop.cancel()
    assert engine.pending == 1
    assert keep is not None


def test_events_fired_counter():
    engine = Engine()
    for _ in range(4):
        engine.schedule(1, lambda: None)
    engine.run()
    assert engine.events_fired == 4


def test_step_returns_false_when_empty():
    engine = Engine()
    assert engine.step() is False
    engine.schedule(3, lambda: None)
    assert engine.step() is True
    assert engine.now == 3


def test_engine_not_reentrant():
    engine = Engine()

    def nested():
        with pytest.raises(SimulationError):
            engine.run()

    engine.schedule(1, nested)
    engine.run()


def test_exception_in_event_propagates():
    engine = Engine()

    def boom():
        raise ValueError("boom")

    engine.schedule(1, boom)
    with pytest.raises(ValueError):
        engine.run()


# ----------------------------------------------------------------------
# Zero-delay fast lane: ordering must be bit-identical to a single heap.
# ----------------------------------------------------------------------

def test_zero_delay_interleaved_with_same_cycle_heap_events():
    """Heap events for the current cycle scheduled *before* a zero-delay
    event must fire first (smaller seq); scheduled *after*, they fire
    after.  This is the (time, seq) merge across the two lanes."""
    engine = Engine()
    fired = []

    def at_five():
        engine.schedule_at(5, fired.append, "heap-before")   # heap lane, seq n
        engine.schedule(0, fired.append, "fifo-middle")      # fifo lane, seq n+1
        engine.schedule_at(5, fired.append, "heap-after")    # heap lane, seq n+2

    engine.schedule(5, at_five)
    engine.run()
    assert fired == ["heap-before", "fifo-middle", "heap-after"]


def test_zero_delay_chain_precedes_future_heap_events():
    engine = Engine()
    fired = []
    engine.schedule(3, fired.append, "later")

    def chain(depth):
        fired.append(f"zero-{depth}")
        if depth < 3:
            engine.schedule(0, chain, depth + 1)

    engine.schedule(0, chain, 0)
    engine.run()
    assert fired == ["zero-0", "zero-1", "zero-2", "zero-3", "later"]
    assert engine.now == 3


def test_cancelled_zero_delay_husks_are_skipped():
    engine = Engine()
    fired = []
    keep_a = engine.schedule(0, fired.append, "a")
    drop = engine.schedule(0, fired.append, "dropped")
    keep_b = engine.schedule(0, fired.append, "b")
    drop.cancel()
    drop.cancel()  # idempotent
    assert engine.pending == 2
    engine.run()
    assert fired == ["a", "b"]
    assert keep_a.fired and keep_b.fired and not drop.fired


def test_cancel_after_fire_is_a_no_op():
    engine = Engine()
    event = engine.schedule(1, lambda: None)
    engine.run()
    event.cancel()
    assert engine.pending == 0  # must not go negative


def test_schedule_at_current_time_uses_fast_lane_in_order():
    engine = Engine()
    fired = []

    def now_and_later():
        engine.schedule_at(engine.now, fired.append, "at-now-1")
        engine.schedule(0, fired.append, "delay-0")
        engine.schedule_at(engine.now, fired.append, "at-now-2")

    engine.schedule(2, now_and_later)
    engine.run()
    assert fired == ["at-now-1", "delay-0", "at-now-2"]


# ----------------------------------------------------------------------
# Inline clock advance (try_advance)
# ----------------------------------------------------------------------

def test_try_advance_moves_clock_when_queue_cannot_interfere():
    engine = Engine()
    engine.schedule(100, lambda: None)
    assert engine.try_advance(50) is True
    assert engine.now == 50
    engine.run()
    assert engine.now == 100


def test_try_advance_refuses_when_event_in_window():
    engine = Engine()
    engine.schedule(10, lambda: None)
    assert engine.try_advance(10) is False   # boundary: event at target
    assert engine.try_advance(15) is False   # event strictly inside window
    assert engine.now == 0


def test_try_advance_refuses_when_fifo_nonempty():
    engine = Engine()
    engine.schedule(0, lambda: None)
    assert engine.try_advance(5) is False
    assert engine.now == 0


def test_try_advance_honours_run_until_bound():
    engine = Engine()
    observed = []

    def probe():
        observed.append(engine.try_advance(100))  # would cross until=20
        observed.append(engine.try_advance(10))   # stays inside the bound
        observed.append(engine.now)

    engine.schedule(5, probe)
    engine.run(until=20)
    assert observed == [False, True, 15]
    assert engine.now == 20


def test_try_advance_negative_rejected():
    engine = Engine()
    with pytest.raises(SimulationError):
        engine.try_advance(-1)


def test_run_until_with_mixed_lanes_stops_at_bound():
    engine = Engine()
    fired = []
    engine.schedule(5, fired.append, "in")
    engine.schedule(30, fired.append, "out")

    def spawn_zero():
        engine.schedule(0, fired.append, "zero")

    engine.schedule(10, spawn_zero)
    engine.run(until=20)
    assert fired == ["in", "zero"]
    assert engine.now == 20
    engine.run()
    assert fired == ["in", "zero", "out"]
