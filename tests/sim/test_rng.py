"""Tests for deterministic RNG streams."""

from repro.sim.rng import RngStreams


def test_same_seed_same_stream_reproduces():
    a = RngStreams(seed=7).stream("cache")
    b = RngStreams(seed=7).stream("cache")
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_different_names_are_independent():
    streams = RngStreams(seed=7)
    a = [streams.stream("cache").random() for _ in range(5)]
    b = [streams.stream("workload").random() for _ in range(5)]
    assert a != b


def test_different_seeds_differ():
    a = RngStreams(seed=1).stream("x").random()
    b = RngStreams(seed=2).stream("x").random()
    assert a != b


def test_stream_is_cached():
    streams = RngStreams()
    assert streams.stream("x") is streams.stream("x")


def test_new_stream_does_not_perturb_existing():
    # Draw from stream "a", then create stream "b", then keep drawing from
    # "a": the sequence must equal an uninterrupted draw.
    streams1 = RngStreams(seed=3)
    first = [streams1.stream("a").random() for _ in range(3)]
    streams1.stream("b").random()
    first += [streams1.stream("a").random() for _ in range(3)]

    streams2 = RngStreams(seed=3)
    uninterrupted = [streams2.stream("a").random() for _ in range(6)]
    assert first == uninterrupted
