"""Tests for configuration defaults — these pin the Table 2 parameters."""

import pytest

from repro.sim.config import (
    FIGURE3_CACHE_SIZES,
    CacheConfig,
    DirNNBCosts,
    MachineConfig,
    ScaleModel,
    TyphoonCosts,
)


class TestTable2Defaults:
    """The defaults must equal the paper's Table 2 exactly."""

    def test_common_parameters(self):
        config = MachineConfig()
        assert config.cache.associativity == 4
        assert config.cache.replacement == "random"
        assert config.block_size == 32
        assert config.tlb.entries == 64
        assert config.tlb.replacement == "fifo"
        assert config.page_size == 4096
        assert config.local_miss_cycles == 29
        assert config.local_writeback_cycles == 0
        assert config.tlb.miss_cycles == 25
        assert config.network.latency == 11
        assert config.network.barrier_latency == 11

    def test_dirnnb_parameters(self):
        costs = DirNNBCosts()
        assert costs.remote_miss_issue == 23
        assert costs.remote_miss_finish == 34
        assert costs.replacement_shared == 5
        assert costs.replacement_exclusive == 16
        assert costs.invalidate_base == 8
        assert costs.directory_op == 16
        assert costs.directory_block_received == 11
        assert costs.directory_per_message == 5
        assert costs.directory_block_sent == 11

    def test_typhoon_parameters(self):
        costs = TyphoonCosts()
        assert costs.np_tlb_entries == 64
        assert costs.rtlb_entries == 64
        assert costs.np_tlb_miss == 25
        assert costs.rtlb_miss == 25
        assert costs.np_dcache_bytes == 16 * 1024
        assert costs.np_icache_bytes == 8 * 1024

    def test_section6_handler_path_lengths(self):
        costs = TyphoonCosts()
        assert costs.miss_request_instructions == 14
        assert costs.home_response_instructions == 30
        assert costs.data_arrival_instructions == 20

    def test_default_node_count_is_32(self):
        assert MachineConfig().nodes == 32

    def test_figure3_cache_sweep(self):
        assert FIGURE3_CACHE_SIZES == (4096, 16384, 65536, 262144)


class TestCacheConfig:
    def test_derived_geometry(self):
        cache = CacheConfig(size_bytes=4096, associativity=4, block_size=32)
        assert cache.num_blocks == 128
        assert cache.num_sets == 32

    def test_validate_accepts_default(self):
        CacheConfig().validate()

    def test_rejects_non_power_of_two_block(self):
        with pytest.raises(ValueError):
            CacheConfig(block_size=48, size_bytes=4800).validate()

    def test_rejects_unknown_replacement(self):
        with pytest.raises(ValueError):
            CacheConfig(replacement="plru").validate()

    def test_rejects_size_not_multiple_of_block(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=4100).validate()


class TestMachineConfig:
    def test_validate_accepts_default(self):
        MachineConfig().validate()

    def test_blocks_per_page(self):
        assert MachineConfig().blocks_per_page == 128

    def test_with_cache_size_is_a_copy(self):
        base = MachineConfig()
        small = base.with_cache_size(4096)
        assert small.cache.size_bytes == 4096
        assert base.cache.size_bytes == 256 * 1024

    def test_rejects_zero_nodes(self):
        with pytest.raises(ValueError):
            MachineConfig(nodes=0).validate()

    def test_rejects_mismatched_block_sizes(self):
        config = MachineConfig(block_size=64)
        with pytest.raises(ValueError):
            config.validate()

    def test_rejects_unknown_page_placement(self):
        with pytest.raises(ValueError):
            MachineConfig(page_placement="magic").validate()


class TestScaleModel:
    def test_identity_scale_preserves_cache_size(self):
        assert ScaleModel(scale=1.0).cache_bytes(4096) == 4096

    def test_scaled_cache_is_power_of_two(self):
        for scale in (0.3, 0.1, 0.05):
            size = ScaleModel(scale=scale).cache_bytes(256 * 1024)
            assert size & (size - 1) == 0

    def test_cache_floor(self):
        assert ScaleModel(scale=0.001).cache_bytes(4096) == 512

    def test_count_scales_and_floors(self):
        model = ScaleModel(scale=0.1)
        assert model.count(1000) == 100
        assert model.count(3) == 1
        assert model.count(3, minimum=4) == 4

    def test_scaling_preserves_working_set_to_cache_ratio(self):
        # The quantity Figure 3 exercises: dataset/cache ratio before and
        # after scaling must agree within the power-of-two rounding of the
        # cache size (factor of two).
        model = ScaleModel(scale=0.125)
        paper_dataset = 64_000
        paper_cache = 65536
        scaled_ratio = model.count(paper_dataset) / model.cache_bytes(paper_cache)
        paper_ratio = paper_dataset / paper_cache
        assert 0.5 <= scaled_ratio / paper_ratio <= 2.0
