"""Tests for processes and futures."""

import pytest

from repro.sim.engine import Engine, SimulationError
from repro.sim.process import Future, Process, ProcessKilled, all_of


def test_future_resolve_and_value():
    engine = Engine()
    future = Future(engine)
    assert not future.done
    future.resolve(17)
    assert future.done
    assert future.value == 17


def test_future_value_before_resolve_raises():
    future = Future(Engine())
    with pytest.raises(SimulationError):
        _ = future.value


def test_future_double_resolve_raises():
    future = Future(Engine())
    future.resolve(1)
    with pytest.raises(SimulationError):
        future.resolve(2)


def test_future_callback_fires_as_event():
    engine = Engine()
    future = Future(engine)
    seen = []
    future.add_callback(seen.append)
    future.resolve("x")
    assert seen == []  # not synchronous
    engine.run()
    assert seen == ["x"]


def test_future_callback_after_resolution():
    engine = Engine()
    future = Future.resolved(engine, 5)
    seen = []
    future.add_callback(seen.append)
    engine.run()
    assert seen == [5]


def test_all_of_collects_values_in_order():
    engine = Engine()
    futures = [Future(engine) for _ in range(3)]
    combined = all_of(engine, futures)
    futures[2].resolve("c")
    futures[0].resolve("a")
    futures[1].resolve("b")
    engine.run()
    assert combined.value == ["a", "b", "c"]


def test_all_of_empty_resolves_immediately():
    engine = Engine()
    combined = all_of(engine, [])
    assert combined.done
    assert combined.value == []


def test_process_waits_for_delays():
    engine = Engine()
    trace = []

    def body():
        trace.append(engine.now)
        yield 10
        trace.append(engine.now)
        yield 5
        trace.append(engine.now)

    Process(engine, body())
    engine.run()
    assert trace == [0, 10, 15]


def test_process_zero_delay_continues_inline():
    engine = Engine()
    trace = []

    def body():
        yield 0
        trace.append(engine.now)

    Process(engine, body())
    engine.run()
    assert trace == [0]


def test_process_blocks_on_future_and_receives_value():
    engine = Engine()
    future = Future(engine)
    got = []

    def body():
        value = yield future
        got.append(value)

    Process(engine, body())
    engine.schedule(20, future.resolve, "payload")
    engine.run()
    assert got == ["payload"]


def test_process_resolved_future_does_not_block():
    engine = Engine()
    got = []

    def body():
        value = yield Future.resolved(engine, 9)
        got.append((value, engine.now))

    Process(engine, body())
    engine.run()
    assert got == [(9, 0)]


def test_process_finished_future_carries_return_value():
    engine = Engine()

    def body():
        yield 1
        return "result"

    process = Process(engine, body())
    engine.run()
    assert process.finished.value == "result"
    assert not process.alive


def test_subgenerator_runs_inline_and_returns():
    engine = Engine()
    trace = []

    def sub():
        yield 3
        return "from-sub"

    def body():
        value = yield sub()
        trace.append((value, engine.now))

    Process(engine, body())
    engine.run()
    assert trace == [("from-sub", 3)]


def test_nested_subgenerators():
    engine = Engine()

    def inner():
        yield 1
        return 1

    def middle():
        a = yield inner()
        yield 1
        return a + 1

    def body():
        b = yield middle()
        return b + 1

    process = Process(engine, body())
    engine.run()
    assert process.finished.value == 3
    assert engine.now == 2


def test_negative_yield_rejected():
    engine = Engine()

    def body():
        yield -5

    Process(engine, body())
    with pytest.raises(SimulationError):
        engine.run()


def test_unsupported_yield_rejected():
    engine = Engine()

    def body():
        yield "nonsense"

    Process(engine, body())
    with pytest.raises(SimulationError):
        engine.run()


def test_kill_terminates_process():
    engine = Engine()
    cleaned = []

    def body():
        try:
            yield 100
        except ProcessKilled:
            cleaned.append(True)
            raise

    process = Process(engine, body())
    engine.schedule(10, process.kill)
    # The kill flag is checked at the next resumption.
    engine.run()
    assert process.finished.done
    assert cleaned == [True]


def test_two_processes_interleave_deterministically():
    engine = Engine()
    trace = []

    def body(name, period):
        for _ in range(3):
            yield period
            trace.append((name, engine.now))

    Process(engine, body("a", 2))
    Process(engine, body("b", 3))
    engine.run()
    # At cycle 6 both resume; b's resume event was scheduled at cycle 3,
    # a's at cycle 4, so FIFO tie-breaking runs b first.
    assert trace == [
        ("a", 2),
        ("b", 3),
        ("a", 4),
        ("b", 6),
        ("a", 6),
        ("b", 9),
    ]


def test_exception_in_process_propagates():
    engine = Engine()

    def body():
        yield 1
        raise RuntimeError("app bug")

    Process(engine, body())
    with pytest.raises(RuntimeError, match="app bug"):
        engine.run()
