"""Tests for the decoupled software-handler Tempest backend.

The third backend's claims, as executable tests: unmodified protocol
libraries install and run; handlers execute on the second CPU (the
handler processor) concurrently with computation, paying a software
dispatch overhead per work item; faulting accesses suspend the compute
thread Typhoon-style; and the machine keeps bare-future waits, so the
em3d update protocol — illegal on Blizzard — runs here.
"""

import math

from repro.apps.base import run_app
from repro.apps.em3d import VALUE_OFFSET, Em3dApplication
from repro.apps.ocean import OceanApplication
from repro.blizzard.system import BlizzardMachine
from repro.decoupled.system import DecoupledMachine
from repro.harness.runner import run_application
from repro.harness.workloads import workload
from repro.memory.tags import Tag
from repro.network.faults import FaultSpec
from repro.network.message import Message, VirtualNetwork
from repro.protocols.stache import StacheProtocol
from repro.protocols.verify import check_stache_coherence
from repro.sim.config import DecoupledCosts, MachineConfig
from repro.typhoon.system import TyphoonMachine


def make_machine(nodes=4, seed=1, **config_kwargs):
    machine = DecoupledMachine(MachineConfig(nodes=nodes, seed=seed,
                                             **config_kwargs))
    protocol = StacheProtocol()
    machine.install_protocol(protocol)
    region = machine.heap.allocate(4 * 4096, label="test")
    protocol.setup_region(region)
    return machine, protocol, region


def addr_homed_on(machine, region, home):
    for page in range(region.base, region.end, machine.layout.page_size):
        if machine.heap.home_of(page) == home:
            return page
    raise AssertionError


class TestUnchangedProtocol:
    """The Tempest portability claim: Stache installs verbatim."""

    def test_stache_installs_without_modification(self):
        machine, protocol, region = make_machine()
        assert isinstance(protocol, StacheProtocol)
        assert "stache.get_ro" in machine.nodes[0].registry

    def test_remote_read_fetches_correct_value(self):
        machine, protocol, region = make_machine()
        addr = addr_homed_on(machine, region, home=0)
        machine.nodes[0].image.write(addr, 99)
        got = {}

        def worker(node_id):
            if node_id == 1:
                got["value"] = yield from machine.nodes[1].access(addr, False)
            else:
                yield 1

        machine.run_workers(worker)
        assert got["value"] == 99
        block = machine.layout.block_of(addr)
        assert machine.nodes[1].tags.read_tag(block) is Tag.READ_ONLY
        check_stache_coherence(machine, region)

    def test_write_invalidation_suspends_and_resumes_the_faulting_cpu(self):
        machine, protocol, region = make_machine()
        addr = addr_homed_on(machine, region, home=0)

        def worker(node_id):
            if node_id == 1:
                yield from machine.nodes[1].access(addr, False)
                yield from machine.barrier_wait(1)
            elif node_id == 2:
                yield from machine.barrier_wait(2)
                yield from machine.nodes[2].access(addr, True, 5)
            else:
                yield from machine.barrier_wait(node_id)

        machine.run_workers(worker)
        block = machine.layout.block_of(addr)
        assert machine.nodes[1].tags.read_tag(block) is Tag.INVALID
        assert machine.nodes[2].tags.read_tag(block) is Tag.READ_WRITE
        check_stache_coherence(machine, region)
        # The faulting accesses went through the suspend/enqueue/resume
        # path: the compute CPUs saw block faults, the handler
        # processors ran the handlers.
        stats = machine.stats
        assert stats.total(".cpu.block_faults") > 0
        assert stats.total(".hp.block_faults") > 0

    def test_applications_match_reference(self):
        machine = DecoupledMachine(MachineConfig(nodes=4, seed=1))
        protocol = StacheProtocol()
        machine.install_protocol(protocol)
        app = OceanApplication(grid=12, iterations=2, seed=3)
        run_app(machine, app, protocol)
        ref = app.reference_values()
        which = app.final_grid_index()
        for row in range(app.grid):
            for col in range(app.grid):
                got = app.peek(machine, app.cell_addr(which, row, col))
                assert math.isclose(got, ref[row][col], rel_tol=1e-9,
                                    abs_tol=1e-9)


class TestHandlerProcessor:
    """The second CPU: dispatch accounting and queue discipline."""

    def run_em3d(self, machine_cls, **config_kwargs):
        machine = machine_cls(MachineConfig(nodes=4, seed=1, **config_kwargs))
        protocol = StacheProtocol()
        machine.install_protocol(protocol)
        app = Em3dApplication(nodes_per_proc=8, degree=3,
                              remote_fraction=0.4, iterations=2, seed=5)
        return run_app(machine, app, protocol), machine

    def test_handlers_run_on_the_second_cpu(self):
        _, machine = self.run_em3d(DecoupledMachine)
        stats = machine.stats
        assert stats.total(".hp.handlers_run") > 0
        assert stats.total(".hp.handler_cycles") > 0
        # Nothing runs on Blizzard's compute-CPU dispatcher here.
        assert stats.total(".sw.handlers_run") == 0

    def test_every_dispatch_pays_the_software_overhead(self):
        _, machine = self.run_em3d(DecoupledMachine)
        costs = machine.config.decoupled
        overhead = costs.poll_notice_cycles + costs.dispatch_cycles
        stats = machine.stats
        handlers = stats.total(".hp.handlers_run")
        assert stats.total(".hp.handler_cycles") >= handlers * overhead

    def test_cost_ordering_typhoon_decoupled_blizzard(self):
        """The design-space ordering the three cost domains encode:
        hardware NP beats a second commodity CPU, which beats
        dispatching on the computation CPU."""
        typhoon_time, _ = self.run_em3d(TyphoonMachine)
        decoupled_time, _ = self.run_em3d(DecoupledMachine)
        blizzard_time, _ = self.run_em3d(BlizzardMachine)
        assert typhoon_time < decoupled_time < blizzard_time

    def test_write_checks_are_charged_on_the_compute_cpu(self):
        cheap, _ = self.run_em3d(DecoupledMachine)
        costly, _ = self.run_em3d(
            DecoupledMachine,
            decoupled=DecoupledCosts(check_write_cycles=30,
                                     check_read_cycles=10),
        )
        assert costly > cheap

    def test_bounded_inbox_nacks_tracked_requests_only(self):
        machine, _protocol, _region = make_machine(nodes=2)
        machine.install_fault_plan(
            FaultSpec(name="bounded", recv_queue_limit=0, retry_timeout=100))
        hp = machine.nodes[0].hp
        assert hp._recv_limit == 0
        tracked = Message(src=1, dst=0, handler="stache.get_ro",
                          vnet=VirtualNetwork.REQUEST, xid=7)
        hp.enqueue_message(tracked)
        assert tracked.nacked
        assert machine.stats.get("node0.hp.nacks_sent") == 1
        # Responses must always sink, bound or no bound.
        response = Message(src=1, dst=0, handler="stache.get_ro",
                           vnet=VirtualNetwork.RESPONSE, xid=8)
        hp.enqueue_message(response)
        assert not response.nacked
        assert machine.stats.get("node0.hp.messages_received") == 1


class TestBareFutureWaits:
    """The decoupled-handlers capability, exercised for real."""

    def test_em3d_update_protocol_runs_and_matches_reference(self):
        """The composition the whole backend exists to legalise:
        the em3d update protocol blocks compute threads on bare futures
        at the flush/fuzzy barrier while handler processors count
        arriving updates — a deadlock on Blizzard, correct here."""
        from repro.protocols.em3d_update import Em3dUpdateProtocol

        machine = DecoupledMachine(MachineConfig(nodes=4, seed=1))
        protocol = Em3dUpdateProtocol()
        machine.install_protocol(protocol)
        app = Em3dApplication(nodes_per_proc=8, degree=3,
                              remote_fraction=0.3, iterations=2, seed=5)
        run_app(machine, app, protocol)
        assert machine.stats.total(".hp.handlers_run") > 0
        ref_e, _ = app.reference_values()
        for index in range(app.e_nodes.count):
            got = app.peek(machine, app.e_nodes.addr(index, VALUE_OFFSET))
            assert math.isclose(got, ref_e[index], rel_tol=1e-9,
                                abs_tol=1e-9)

    def test_composed_system_runs_clean_under_conformance(self):
        config = MachineConfig(nodes=4, seed=7).with_cache_size(2048)
        res = run_application("decoupled:em3d-update",
                              workload("em3d", "small").build(), config,
                              conformance=True)
        assert res["refs"] > 0
        monitor = res["machine"].conformance
        assert monitor.checks > 0
        assert monitor.violations == []

    def test_machine_keeps_bare_future_waits(self):
        """Structural proof of the capability: the decoupled machine
        inherits MachineBase's bare-future wait and hardware barrier,
        where Blizzard must override both to spin its dispatcher."""
        from repro.machine import MachineBase

        assert DecoupledMachine.wait is MachineBase.wait
        assert DecoupledMachine.barrier_wait is MachineBase.barrier_wait
        assert BlizzardMachine.wait is not MachineBase.wait
        assert BlizzardMachine.barrier_wait is not MachineBase.barrier_wait
