"""Tests for topology latency models."""

import pytest

from repro.network.topology import IdealTopology, Mesh2D, make_topology


class TestIdeal:
    def test_flat_latency(self):
        topo = IdealTopology(nodes=32, latency=11)
        assert topo.latency(0, 31) == 11
        assert topo.latency(5, 6) == 11

    def test_self_latency_is_zero(self):
        assert IdealTopology(4, 11).latency(2, 2) == 0


class TestMesh2D:
    def test_32_nodes_is_4x8(self):
        mesh = Mesh2D(32, base_latency=3, per_hop=2)
        assert (mesh.width, mesh.height) == (4, 8)

    def test_16_nodes_is_4x4(self):
        mesh = Mesh2D(16, base_latency=3, per_hop=2)
        assert (mesh.width, mesh.height) == (4, 4)

    def test_coords_row_major(self):
        mesh = Mesh2D(16, 0, 1)
        assert mesh.coords(0) == (0, 0)
        assert mesh.coords(5) == (1, 1)

    def test_manhattan_hops(self):
        mesh = Mesh2D(16, 0, 1)
        assert mesh.hops(0, 5) == 2
        assert mesh.hops(0, 15) == 6
        assert mesh.hops(3, 3) == 0

    def test_latency_is_base_plus_hops(self):
        mesh = Mesh2D(16, base_latency=3, per_hop=2)
        assert mesh.latency(0, 5) == 3 + 2 * 2
        assert mesh.latency(1, 1) == 0

    def test_symmetry(self):
        mesh = Mesh2D(32, 3, 2)
        for src, dst in [(0, 31), (7, 12), (4, 4)]:
            assert mesh.latency(src, dst) == mesh.latency(dst, src)


def test_factory():
    assert isinstance(make_topology("ideal", 8, 11), IdealTopology)
    assert isinstance(make_topology("mesh2d", 8, 3), Mesh2D)
    with pytest.raises(ValueError):
        make_topology("hypercube", 8, 3)
