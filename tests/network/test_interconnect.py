"""Tests for message delivery, FIFO channels, and the barrier network."""

import pytest

from repro.network.interconnect import BarrierNetwork, Interconnect
from repro.network.message import Message, PacketTooLarge, VirtualNetwork
from repro.network.topology import IdealTopology
from repro.sim.config import NetworkConfig
from repro.sim.engine import Engine, SimulationError
from repro.sim.process import Process
from repro.sim.stats import Stats


def make_net(engine, nodes=4, latency=11, model_contention=False):
    config = NetworkConfig(latency=latency)
    net = Interconnect(
        engine,
        config,
        IdealTopology(nodes, latency),
        Stats(),
        model_contention=model_contention,
    )
    inboxes = {n: [] for n in range(nodes)}
    for n in range(nodes):
        net.attach(n, lambda msg, n=n: inboxes[n].append((msg, engine.now)))
    return net, inboxes


def test_delivery_after_latency():
    engine = Engine()
    net, inboxes = make_net(engine)
    net.send(Message(src=0, dst=1, handler="h"))
    engine.run()
    assert len(inboxes[1]) == 1
    message, arrival = inboxes[1][0]
    assert message.handler == "h"
    assert arrival == 11


def test_local_message_short_circuits():
    engine = Engine()
    net, inboxes = make_net(engine)
    net.send(Message(src=2, dst=2, handler="self"))
    engine.run()
    assert inboxes[2][0][1] == 1  # next cycle, not network latency
    assert net.stats.get("network.local_packets") == 1


def test_fifo_order_preserved_per_channel():
    engine = Engine()
    net, inboxes = make_net(engine)
    for index in range(5):
        net.send(Message(src=0, dst=1, handler=f"m{index}"))
    engine.run()
    assert [m.handler for m, _ in inboxes[1]] == [f"m{i}" for i in range(5)]


def test_fifo_across_send_times():
    engine = Engine()
    net, inboxes = make_net(engine)
    engine.schedule(0, net.send, Message(src=0, dst=1, handler="first"))
    engine.schedule(3, net.send, Message(src=0, dst=1, handler="second"))
    engine.run()
    handlers = [m.handler for m, _ in inboxes[1]]
    assert handlers == ["first", "second"]


def test_virtual_networks_carry_independent_traffic():
    engine = Engine()
    net, inboxes = make_net(engine)
    net.send(Message(src=0, dst=1, handler="req", vnet=VirtualNetwork.REQUEST))
    net.send(Message(src=0, dst=1, handler="resp", vnet=VirtualNetwork.RESPONSE))
    engine.run()
    assert {m.vnet for m, _ in inboxes[1]} == {
        VirtualNetwork.REQUEST,
        VirtualNetwork.RESPONSE,
    }


def test_packet_size_limit_enforced():
    engine = Engine()
    net, _ = make_net(engine)
    with pytest.raises(PacketTooLarge):
        net.send(Message(src=0, dst=1, handler="big", size_words=21))


def test_send_to_unattached_node_rejected():
    engine = Engine()
    net, _ = make_net(engine, nodes=2)
    with pytest.raises(SimulationError):
        net.send(Message(src=0, dst=7, handler="x"))


def test_double_attach_rejected():
    engine = Engine()
    net, _ = make_net(engine, nodes=2)
    with pytest.raises(SimulationError):
        net.attach(0, lambda m: None)


def test_contention_serializes_channel():
    engine = Engine()
    net, inboxes = make_net(engine, model_contention=True)
    # Two 12-word packets on the same channel at the same time: the second
    # is pushed behind the first by its word count.
    net.send(Message(src=0, dst=1, handler="a", size_words=12))
    net.send(Message(src=0, dst=1, handler="b", size_words=12))
    engine.run()
    arrivals = [t for _, t in inboxes[1]]
    assert arrivals[0] == 11
    assert arrivals[1] == 11 + 12


def test_stats_collected():
    engine = Engine()
    net, _ = make_net(engine)
    net.send(Message(src=0, dst=1, handler="x", size_words=3))
    net.send(Message(src=1, dst=2, handler="y", size_words=12))
    engine.run()
    assert net.stats.get("network.packets") == 2
    assert net.stats.get("network.words") == 15


class TestBarrier:
    def test_releases_all_after_last_arrival_plus_latency(self):
        engine = Engine()
        barrier = BarrierNetwork(engine, participants=3, latency=11)
        release_times = {}

        def worker(node, delay):
            yield delay
            yield barrier.arrive(node)
            release_times[node] = engine.now

        for node, delay in enumerate((5, 20, 10)):
            Process(engine, worker(node, delay))
        engine.run()
        assert release_times == {0: 31, 1: 31, 2: 31}
        assert barrier.episodes == 1

    def test_sequential_episodes(self):
        engine = Engine()
        barrier = BarrierNetwork(engine, participants=2, latency=1)
        trace = []

        def worker(node):
            for phase in range(3):
                yield barrier.arrive(node)
                trace.append((phase, node, engine.now))

        Process(engine, worker(0))
        Process(engine, worker(1))
        engine.run()
        assert barrier.episodes == 3
        phases = [phase for phase, _, _ in trace]
        assert phases == sorted(phases)

    def test_double_arrival_rejected(self):
        engine = Engine()
        barrier = BarrierNetwork(engine, participants=2, latency=1)
        barrier.arrive(0)
        with pytest.raises(SimulationError):
            barrier.arrive(0)

    def test_single_participant_barrier_is_immediate_release(self):
        engine = Engine()
        barrier = BarrierNetwork(engine, participants=1, latency=11)
        future = barrier.arrive(0)
        engine.run()
        assert future.done
        assert engine.now == 11

    def test_zero_participants_rejected(self):
        with pytest.raises(SimulationError):
            BarrierNetwork(Engine(), participants=0, latency=1)
