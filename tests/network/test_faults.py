"""Unit tests for the fault-injection layer (repro.network.faults).

Covers the FaultSpec/FaultPlan surface, the interconnect's four link
faults, the reliable transport's retry/backoff/NACK machinery, the NP's
bounded queues and stall windows, and the DeliveryGuard.  End-to-end
resilience under random workloads lives in
tests/integration/test_fault_resilience.py.
"""

import pytest

from repro.network.faults import RELIABILITY_LADDER, FaultPlan, FaultSpec
from repro.network.message import NACK_HANDLER, Message, VirtualNetwork
from repro.sim.config import MachineConfig
from repro.sim.engine import SimulationError
from repro.sim.rng import RngStreams
from repro.tempest.messaging import DeliveryGuard
from repro.typhoon.system import TyphoonMachine


# ----------------------------------------------------------------------
# FaultSpec / FaultPlan surface
# ----------------------------------------------------------------------
def test_default_spec_is_null_and_lossy_is_not():
    assert FaultSpec().is_null
    assert FaultSpec(name="none").is_null
    assert not FaultSpec(drop_pct=0.01).is_null
    assert not FaultSpec(stall_every=100, stall_cycles=10).is_null
    assert not FaultSpec(recv_queue_limit=4).is_null
    assert FaultPlan.none().is_null
    assert not FaultPlan.lossy().is_null
    assert FaultPlan.lossy().spec.drop_pct == 0.10


@pytest.mark.parametrize("kwargs", [
    {"drop_pct": 1.5},
    {"dup_pct": -0.1},
    {"drop_pct": 0.6, "dup_pct": 0.3, "reorder_pct": 0.2},
    {"delay_min": 5, "delay_max": 2},
    {"stall_every": 10, "stall_cycles": 10},
    {"stall_every": 10, "stall_cycles": 0},
    {"max_attempts": 0},
])
def test_spec_validation_rejects_bad_values(kwargs):
    with pytest.raises(ValueError):
        FaultSpec(**kwargs)


def test_plan_of_coerces_spec_and_passes_through():
    spec = FaultSpec(drop_pct=0.1)
    plan = FaultPlan.of(spec)
    assert isinstance(plan, FaultPlan) and plan.spec is spec
    assert FaultPlan.of(plan) is plan
    assert FaultPlan.of(None) is None
    with pytest.raises(TypeError):
        FaultPlan.of("lossy")


def test_link_verdict_requires_bind():
    plan = FaultPlan.lossy()
    message = Message(src=0, dst=1, handler="x")
    with pytest.raises(SimulationError):
        plan.link_verdict(message)


def test_link_verdicts_are_deterministic_per_seed():
    def verdicts(seed):
        plan = FaultPlan.lossy().bind(RngStreams(seed).stream("faults"))
        return [plan.link_verdict(Message(src=0, dst=1, handler="x"))
                for _ in range(200)]

    run_a, run_b = verdicts(7), verdicts(7)
    assert run_a == run_b
    assert verdicts(8) != run_a  # different stream, different schedule
    actions = {action for action, _ in run_a}
    assert "drop" in actions and "dup" in actions  # lossy defaults hit both


def test_link_verdict_exempts_late_attempts():
    plan = FaultPlan(FaultSpec(drop_pct=1.0, fault_attempt_limit=2))
    plan.bind(RngStreams(1).stream("faults"))
    early = Message(src=0, dst=1, handler="x")
    assert plan.link_verdict(early)[0] == "drop"
    late = Message(src=0, dst=1, handler="x", attempt=3)
    assert plan.link_verdict(late)[0] is None


def test_stall_until_window_arithmetic():
    plan = FaultPlan(FaultSpec(stall_every=200, stall_cycles=40))
    assert plan.stall_until(0, 0) == 40       # window start
    assert plan.stall_until(0, 39) == 40      # just inside
    assert plan.stall_until(0, 40) is None    # window end is open
    assert plan.stall_until(0, 199) is None
    assert plan.stall_until(0, 230) == 240    # second period
    assert FaultPlan.none().stall_until(0, 0) is None


def test_reliability_ladder_starts_reliable_and_gets_lossier():
    assert RELIABILITY_LADDER[0].is_null
    drops = [spec.drop_pct for spec in RELIABILITY_LADDER]
    assert drops == sorted(drops) and drops[-1] == 0.10


# ----------------------------------------------------------------------
# Interconnect + transport, driven through a real two-node machine
# ----------------------------------------------------------------------
def machine_with(spec, nodes=2, seed=3):
    machine = TyphoonMachine(MachineConfig(nodes=nodes, seed=seed))
    calls = []

    def handler(tempest, message):
        calls.append((tempest.node_id, message.payload.get("tag"),
                      message.xid))

    for node in machine.nodes:
        node.tempest.register_handler("test.echo", handler, 10)
    plan = machine.install_fault_plan(spec)
    return machine, plan, calls


def test_null_spec_installs_nothing():
    machine, plan, _calls = machine_with(FaultSpec(name="none"))
    assert plan is None
    assert machine.fault_plan is None and machine.transport is None


def test_drops_are_retransmitted_until_delivered():
    # 100% drop with a low exemption threshold: attempts 1-2 die in the
    # network, attempt 3 is exempt and lands.
    machine, _plan, calls = machine_with(
        FaultSpec(drop_pct=1.0, fault_attempt_limit=2, retry_timeout=50))
    machine.tempests[0].send(1, "test.echo", tag="a")
    machine.engine.run()
    assert [c[:2] for c in calls] == [(1, "a")]
    stats = machine.stats
    assert stats.get("network.fault_drops") == 2
    assert stats.get("tempest.retries") == 2
    assert not machine.transport.pending
    # exponential backoff: attempt 2 waits 50, attempt 3 waits 100.
    assert machine.engine.now >= 150


def test_duplicate_delivery_is_suppressed_by_guard():
    machine, _plan, calls = machine_with(FaultSpec(dup_pct=1.0))
    guard = DeliveryGuard(machine.stats, "node1.np.duplicates_dropped")
    # Re-register behind a guard (machine_with registers unguarded).
    registry = machine.nodes[1].registry
    spec = registry._handlers["test.echo"]
    registry._handlers["test.echo"] = type(spec)(
        spec.name, guard.wrap(spec.fn), spec.instructions)
    machine.tempests[0].send(1, "test.echo", tag="a")
    machine.engine.run()
    assert [c[:2] for c in calls] == [(1, "a")]  # handler ran exactly once
    assert machine.stats.get("network.fault_dups") == 1
    assert machine.stats.get("tempest.duplicates_dropped") == 1
    assert machine.stats.get("node1.np.duplicates_dropped") == 1
    assert not machine.transport.pending


def test_unguarded_duplicate_runs_handler_twice():
    # The guard, not the network, provides at-most-once: without it the
    # ghost copy dispatches again (same xid both times).
    machine, _plan, calls = machine_with(FaultSpec(dup_pct=1.0))
    machine.tempests[0].send(1, "test.echo", tag="a")
    machine.engine.run()
    assert len(calls) == 2
    assert calls[0][2] == calls[1][2] == 1  # one transaction id


def test_delay_fault_postpones_arrival():
    machine, _plan, _calls = machine_with(
        FaultSpec(delay_pct=1.0, delay_min=30, delay_max=30))
    machine.tempests[0].send(1, "test.echo", tag="a")
    machine.engine.run()
    latency = machine.config.network.latency
    # send at 0, arrive at latency + 30, handler charge 10 cycles.
    assert machine.engine.now == latency + 30 + 10
    assert machine.stats.get("network.fault_delays") == 1


def test_reorder_bypasses_channel_fifo():
    # Delay the first packet heavily; reorder lets the second overtake
    # the FIFO floor the first one set.
    machine, _plan, calls = machine_with(
        FaultSpec(reorder_pct=1.0, delay_pct=0.5, delay_min=100,
                  delay_max=100),
        seed=11)
    plan = machine.fault_plan
    # Find a seed-stable prefix: draw verdicts until we see (delayed,
    # then undelayed) — instead, just send many and assert order differs
    # from send order at least once.
    for index in range(8):
        machine.tempests[0].send(1, "test.echo", tag=index)
    machine.engine.run()
    received = [tag for _node, tag, _xid in calls]
    assert sorted(received) == list(range(8))  # nothing lost
    assert received != list(range(8))          # ...but order scrambled
    assert machine.stats.get("network.fault_reorders") == 8


def test_send_queue_credit_returns_exactly_once_under_faults():
    # Tiny send queue + guaranteed drops: if a drop or duplicate leaked
    # or double-returned a credit, the NP's in-flight counters would not
    # return to zero (or the overflow buffer would wedge).
    machine, _plan, _calls = machine_with(
        FaultSpec(drop_pct=0.5, dup_pct=0.3, send_queue_depth=1,
                  fault_attempt_limit=2, retry_timeout=50),
        seed=5)
    for index in range(10):
        machine.tempests[0].send(1, "test.echo", tag=index)
    machine.engine.run()
    np = machine.nodes[0].np
    assert np._in_flight == {0: 0, 1: 0}
    assert not np._overflow
    assert not machine.transport.pending


def test_recv_queue_bound_nacks_and_recovers():
    machine, _plan, calls = machine_with(
        FaultSpec(recv_queue_limit=1, retry_timeout=200))
    # Three same-cycle sends: the first dispatches immediately, the
    # second queues, the third finds the queue full and is NACKed.
    for index in range(3):
        machine.tempests[0].send(1, "test.echo", tag=index)
    machine.engine.run()
    assert sorted(tag for _n, tag, _x in calls) == [0, 1, 2]
    stats = machine.stats
    assert stats.get("tempest.nacks_sent") >= 1
    assert stats.get("node1.np.nacks_sent") >= 1
    assert stats.get("tempest.nacks_received") >= 1
    assert not machine.transport.pending


def test_max_attempts_exhaustion_raises():
    machine, _plan, _calls = machine_with(
        FaultSpec(drop_pct=1.0, fault_attempt_limit=100, max_attempts=3,
                  retry_timeout=10))
    machine.tempests[0].send(1, "test.echo", tag="a")
    with pytest.raises(SimulationError, match="undelivered after 3"):
        machine.engine.run()


def test_baf_overflow_represents_fault_without_losing_it():
    machine, _plan, _calls = machine_with(FaultSpec(baf_limit=1))
    np = machine.nodes[0].np
    np._busy = True  # hold the dispatch loop so the buffer fills
    fault_a, fault_b = object(), object()
    np._present_fault(fault_a)
    np._present_fault(fault_b)  # over the bound: deferred, not dropped
    assert list(np._baf_buffer) == [fault_a]
    assert machine.stats.get("node0.np.baf_overflows") == 1
    # After the drain delay the fault is re-presented; make room first.
    np._baf_buffer.clear()
    machine.engine.run(until=machine.config.typhoon.overflow_drain_cycles)
    assert list(np._baf_buffer) == [fault_b]
    np._busy = False


def test_stall_window_freezes_dispatch_until_wake():
    machine, _plan, calls = machine_with(
        FaultSpec(stall_every=1000, stall_cycles=100))
    latency = machine.config.network.latency
    machine.tempests[0].send(1, "test.echo", tag="a")
    machine.engine.run()
    # Arrival at `latency` falls inside the [0, 100) stall window, so
    # dispatch waits until cycle 100, then charges 10 handler cycles.
    assert machine.engine.now == 100 + 10
    assert machine.stats.get("node1.np.stalls") >= 1
    assert len(calls) == 1


def test_nack_messages_are_never_tracked():
    # A NACK itself must not acquire an xid (it has no retransmit path
    # and must not recurse into the transport).
    machine, _plan, _calls = machine_with(
        FaultSpec(recv_queue_limit=1, drop_pct=0.3, retry_timeout=100),
        seed=9)
    for index in range(6):
        machine.tempests[0].send(1, "test.echo", tag=index)
    machine.engine.run()
    tracked = machine.stats.get("tempest.tracked_sends")
    nacks = machine.stats.get("tempest.nacks_sent")
    assert nacks >= 1
    assert tracked == 6  # only the six data messages, none of the NACKs
    assert not machine.transport.pending


# ----------------------------------------------------------------------
# DeliveryGuard
# ----------------------------------------------------------------------
def test_delivery_guard_passes_none_and_caps_memory():
    guard = DeliveryGuard(capacity=2)
    assert guard.seen(0, None) is False
    assert guard.seen(0, None) is False  # None is never "a duplicate"
    assert guard.seen(0, 1) is False
    assert guard.seen(0, 1) is True
    guard.seen(0, 2), guard.seen(0, 3)  # evicts (0, 1) (capacity 2)
    assert guard.seen(0, 1) is False  # forgotten after eviction


def test_delivery_guard_keys_on_sender_and_xid():
    # Per-sender id streams can reuse the same xid value; one sender's
    # xid must never suppress another's.
    guard = DeliveryGuard()
    assert guard.seen(0, 7) is False
    assert guard.seen(1, 7) is False  # same xid, different sender
    assert guard.seen(0, 7) is True
    assert guard.seen(1, 7) is True


def test_delivery_guard_wrap_ignores_non_message_arguments():
    calls = []
    guard = DeliveryGuard()
    wrapped = guard.wrap(lambda tempest, arg: calls.append(arg))

    class FaultLike:  # AccessFault has no xid attribute
        pass

    fault = FaultLike()
    wrapped(None, fault)
    wrapped(None, fault)
    assert calls == [fault, fault]  # no suppression without an xid


# ----------------------------------------------------------------------
# Scripted (deterministic) schedules: FaultRule / ScriptedFaultPlan
# ----------------------------------------------------------------------
def _packet(handler="stache.data", src=0, dst=1, attempt=1):
    return Message(src=src, dst=dst, handler=handler,
                   vnet=VirtualNetwork.RESPONSE, attempt=attempt)


def test_fault_rule_validation():
    from repro.network.faults import FaultRule

    with pytest.raises(ValueError, match="not in"):
        FaultRule(handler="stache.data", action="explode")
    with pytest.raises(ValueError, match="1-based"):
        FaultRule(handler="stache.data", occurrence=0, delay=5)
    with pytest.raises(ValueError, match="non-negative"):
        FaultRule(handler="stache.data", delay=-1)
    with pytest.raises(ValueError, match="inert"):
        FaultRule(handler="stache.data")  # no action, no delay


def test_fault_rule_matching_is_by_handler_and_endpoints():
    from repro.network.faults import FaultRule

    rule = FaultRule(handler="stache.data", src=0, dst=1, delay=10)
    assert rule.matches(_packet())
    assert not rule.matches(_packet(handler="stache.inval"))
    assert not rule.matches(_packet(src=2))
    assert not rule.matches(_packet(dst=2))
    wildcard = FaultRule(handler="stache.data", delay=10)
    assert wildcard.matches(_packet(src=2, dst=0))


def test_scripted_plan_fires_on_the_nth_occurrence_only():
    from repro.network.faults import FaultRule, ScriptedFaultPlan

    plan = ScriptedFaultPlan([
        FaultRule(handler="stache.data", src=0, dst=1,
                  occurrence=2, delay=500),
    ])
    assert plan.link_verdict(_packet()) == (None, 0)   # first: untouched
    assert plan.link_verdict(_packet()) == (None, 500)  # second: delayed
    assert plan.link_verdict(_packet()) == (None, 0)   # third: untouched


def test_scripted_plan_first_action_wins_and_delays_accumulate():
    from repro.network.faults import FaultRule, ScriptedFaultPlan

    plan = ScriptedFaultPlan([
        FaultRule(handler="stache.data", action="reorder", delay=100),
        FaultRule(handler="stache.data", dst=1, delay=40),
    ])
    assert plan.link_verdict(_packet()) == ("reorder", 140)


def test_scripted_plan_exempts_retransmissions():
    from repro.network.faults import FaultRule, ScriptedFaultPlan

    plan = ScriptedFaultPlan([
        FaultRule(handler="stache.data", occurrence=1, delay=500),
    ])
    # A retry neither fires nor consumes the occurrence counter.
    assert plan.link_verdict(_packet(attempt=2)) == (None, 0)
    assert plan.link_verdict(_packet()) == (None, 500)


def test_scripted_plan_installs_without_randomness():
    """A scripted plan is live (is_null False) even though its base
    spec rolls no dice, installs on a real machine, and raises the
    retransmit timeout so the transport cannot undercut a pinned
    delay with an early retry copy."""
    from repro.network.faults import FaultRule, ScriptedFaultPlan

    rules = [FaultRule(handler="stache.data", delay=500)]
    plan = ScriptedFaultPlan(rules)
    assert not plan.is_null
    assert ScriptedFaultPlan([]).is_null
    assert plan.spec.retry_timeout == ScriptedFaultPlan.RETRY_TIMEOUT
    machine = TyphoonMachine(MachineConfig(nodes=2, seed=1))
    from repro.protocols.stache import StacheProtocol

    StacheProtocol().install(machine)
    bound = machine.install_fault_plan(plan)
    assert bound is plan
    assert machine.transport is not None
