"""Unit tests for the protocol compiler (:mod:`repro.protocols.compiled`).

The lowering must be *lossless*: the dense matrices round-trip back to
the spec's frozenset relations, costs fold the backend's
cycles-per-instruction exactly, and guard peeling preserves the wrapped
handler and its duplicate check.
"""

from __future__ import annotations

import pytest

from repro.backends import compose
from repro.protocols.compiled import (
    DIRECTORY_STATES,
    TAG_STATES,
    CompiledTransitionTable,
    EventKind,
    compilable_spec,
    compile_protocol,
)
from repro.protocols.conformance import SPECS
from repro.sim.config import MachineConfig


def build(system="typhoon:stache", nodes=2, **kwargs):
    machine, protocol = compose(
        system, MachineConfig(nodes=nodes, seed=7, **kwargs)
    )
    return machine, protocol


# ----------------------------------------------------------------------
# Transition tables
# ----------------------------------------------------------------------
@pytest.mark.parametrize("spec_name", sorted(SPECS))
def test_matrix_round_trips_to_spec_relation(spec_name):
    spec = SPECS[spec_name]
    if spec.directory_transitions is not None:
        table = CompiledTransitionTable(
            DIRECTORY_STATES, spec.directory_transitions
        )
        assert table.pairs() == spec.directory_transitions
    if spec.tag_transitions is not None:
        table = CompiledTransitionTable(TAG_STATES, spec.tag_transitions)
        assert table.pairs() == spec.tag_transitions


def test_legal_matches_set_membership_everywhere():
    spec = SPECS["stache"]
    table = CompiledTransitionTable(
        DIRECTORY_STATES, spec.directory_transitions
    )
    for old in DIRECTORY_STATES:
        for new in DIRECTORY_STATES:
            assert table.legal(old, new) == (
                (old, new) in spec.directory_transitions
            )


def test_successors_and_masks_agree_with_matrix():
    spec = SPECS["stache"]
    table = CompiledTransitionTable(
        DIRECTORY_STATES, spec.directory_transitions
    )
    n = len(DIRECTORY_STATES)
    for i in range(n):
        expected = tuple(j for j in range(n) if table.matrix[i * n + j])
        assert table.successors[i] == expected
        assert table.masks[i] == sum(1 << j for j in expected)


# ----------------------------------------------------------------------
# Dispatch rows: cost folding and guard peeling
# ----------------------------------------------------------------------
def test_costs_fold_cycles_per_instruction():
    machine, _protocol = build()
    cpi = machine.config.typhoon.cycles_per_instruction
    node = machine.nodes[0]
    table = compile_protocol(SPECS["stache"], node.registry, cpi)
    for name in node.registry.names():
        row = table.row(name)
        assert row.cost == node.registry.lookup(name).instructions * cpi
        assert row.cost >= 0


def test_guard_peeling_preserves_handler_and_seen():
    machine, _protocol = build()
    node = machine.nodes[0]
    cpi = machine.config.typhoon.cycles_per_instruction
    table = compile_protocol(SPECS["stache"], node.registry, cpi)
    guarded = [name for name in node.registry.names()
               if hasattr(node.registry.lookup(name).fn, "__wrapped__")]
    assert guarded, "stache registers every protocol handler guarded"
    for name in guarded:
        wrapper = node.registry.lookup(name).fn
        row = table.row(name)
        assert row.fn is wrapper.__wrapped__
        assert row.seen == wrapper.__guard__.seen


def test_event_kinds_follow_causality_sets():
    machine, _protocol = build()
    node = machine.nodes[0]
    spec = SPECS["stache"]
    table = compile_protocol(
        spec, node.registry, machine.config.typhoon.cycles_per_instruction
    )
    for name in spec.request_handlers:
        if name in node.registry.names():
            assert table.row(name).kind is EventKind.REQUEST
    for name in spec.grant_handlers:
        if name in node.registry.names():
            assert table.row(name).kind is EventKind.GRANT


def test_dense_is_constants_only():
    machine, _protocol = build()
    node = machine.nodes[0]
    table = compile_protocol(
        SPECS["stache"], node.registry,
        machine.config.typhoon.cycles_per_instruction,
    )
    dense = table.dense()
    n_states = len(DIRECTORY_STATES)
    assert len(dense) == n_states * len(table.rows)
    for mask, kind, cost in dense:
        assert isinstance(mask, int) and mask >= 0
        assert 0 <= kind <= max(EventKind)
        assert isinstance(cost, int) and cost >= 0


def test_rows_resolve_lazily_for_late_registration():
    machine, _protocol = build()
    node = machine.nodes[0]
    table = compile_protocol(
        SPECS["stache"], node.registry,
        machine.config.typhoon.cycles_per_instruction,
    )
    calls = []
    node.registry.register("__test.late", lambda t, m: calls.append(m), 5)
    row = table.row("__test.late")
    assert row.cost == 5 * machine.config.typhoon.cycles_per_instruction
    assert row.seen is None  # registered unguarded
    with pytest.raises(Exception):
        table.row("__test.never_registered")


# ----------------------------------------------------------------------
# Compilability predicate
# ----------------------------------------------------------------------
def test_compilable_spec_matrix():
    assert compilable_spec("stache") is SPECS["stache"]
    assert compilable_spec("ivy") is SPECS["ivy"]
    assert compilable_spec("stache-migratory") is not None
    assert compilable_spec("em3d-update") is None
    assert compilable_spec(None) is None
    assert compilable_spec("no-such-protocol") is None
