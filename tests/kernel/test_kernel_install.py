"""Install/fallback/deopt behaviour of the compiled dispatch kernel."""

from __future__ import annotations

import pytest

from repro.apps.synthetic import ProducerConsumerApplication
from repro.backends import compose
from repro.harness.runner import run_application
from repro.kernel import KERNELS, install_kernel
from repro.network.faults import FaultSpec
from repro.sim.config import MachineConfig


def build(system="typhoon:stache", nodes=2, **kwargs):
    return compose(system, MachineConfig(nodes=nodes, seed=7, **kwargs))


def tiny_app():
    return ProducerConsumerApplication(buffer_records=4, phases=2)


def run(system, kernel, faults=None, conformance=False, nodes=2):
    return run_application(
        system, tiny_app(),
        MachineConfig(nodes=nodes, seed=7).with_cache_size(1024),
        faults=faults, conformance=conformance, kernel=kernel,
    )


# ----------------------------------------------------------------------
# Selection and fallback
# ----------------------------------------------------------------------
def test_interpreted_is_default_and_noop():
    machine, _ = build()
    assert install_kernel(machine, "interpreted") is None
    assert machine.kernel is None
    assert machine.kernel_name == "interpreted"
    assert machine.kernel_fallback_reason is None


def test_unknown_kernel_rejected():
    machine, _ = build()
    with pytest.raises(ValueError, match="unknown kernel"):
        install_kernel(machine, "jit")
    assert list(KERNELS) == ["interpreted", "compiled"]


def test_compiled_installs_on_typhoon_stache():
    machine, _ = build()
    kernel = install_kernel(machine, "compiled")
    assert kernel is not None
    assert machine.kernel_name == "compiled"
    assert machine.kernel_fallback_reason is None
    assert kernel.np_fast and kernel.interconnect_fast
    # Fast paths are instance attributes shadowing the methods.
    assert "enqueue_message" in machine.nodes[0].np.__dict__
    assert "send" in machine.interconnect.__dict__


def test_em3d_update_falls_back_with_reason():
    outcome = run("typhoon:em3d-update", kernel="compiled")
    assert outcome["kernel"] == "interpreted"
    machine = outcome["machine"]
    assert machine.kernel is None
    assert "not marked compilable" in machine.kernel_fallback_reason


def test_decoupled_falls_back_with_reason():
    """Every decoupled system refuses the compiled kernel with its own
    declared reason — even for protocols the kernel compiles on the
    other backends — and runs correctly interpreted."""
    outcome = run("decoupled:stache", kernel="compiled")
    assert outcome["kernel"] == "interpreted"
    assert outcome["refs"] > 0
    machine = outcome["machine"]
    assert machine.kernel is None
    assert "handler processor" in machine.kernel_fallback_reason


def test_dirnnb_falls_back_with_reason():
    machine, _ = build("dirnnb")
    assert install_kernel(machine, "compiled") is None
    assert machine.kernel_name == "interpreted"
    assert "hardware" in machine.kernel_fallback_reason


def test_uninstall_restores_interpreted_methods():
    machine, _ = build()
    kernel = install_kernel(machine, "compiled")
    kernel.uninstall()
    np = machine.nodes[0].np
    assert "enqueue_message" not in np.__dict__
    assert "_pump" not in np.__dict__
    assert "send" not in machine.interconnect.__dict__
    assert "send" not in machine.nodes[0].tempest.__dict__


# ----------------------------------------------------------------------
# Deopt and refresh
# ----------------------------------------------------------------------
def test_live_fault_plan_deopts_np_and_interconnect():
    machine, protocol = build()
    kernel = install_kernel(machine, "compiled")
    assert kernel.np_fast and kernel.interconnect_fast
    machine.install_fault_plan(
        FaultSpec(name="lossy", drop_pct=0.05, dup_pct=0.02)
    )
    # install_fault_plan calls kernel.refresh(): the stall/NACK/drop
    # machinery lives in the interpreted loops, so both fast paths must
    # have deopted back to them.
    assert not kernel.np_fast
    assert not kernel.interconnect_fast
    np = machine.nodes[0].np
    assert "enqueue_message" not in np.__dict__
    assert "send" not in machine.interconnect.__dict__


def test_null_fault_plan_keeps_fast_paths():
    machine, _ = build()
    kernel = install_kernel(machine, "compiled")
    machine.install_fault_plan(FaultSpec(name="none"))
    assert kernel.np_fast and kernel.interconnect_fast


def test_conformance_monitor_fuses_into_compiled_dispatch():
    outcome = run("typhoon:stache", kernel="compiled", conformance=True)
    machine = outcome["machine"]
    assert outcome["kernel"] == "compiled"
    assert machine.conformance is not None
    assert machine.conformance.checks > 0


def test_blizzard_compiles_and_runs():
    outcome = run("blizzard:stache", kernel="compiled")
    assert outcome["kernel"] == "compiled"
    assert outcome["refs"] > 0


def test_describe_reports_modes():
    machine, _ = build()
    kernel = install_kernel(machine, "compiled")
    info = kernel.describe()
    assert info["np_fast"] is True
    assert info["interconnect_fast"] is True
