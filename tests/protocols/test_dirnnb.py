"""End-to-end tests of the DirNNB hardware baseline."""

import pytest

from repro.memory.cache import LineState
from repro.protocols.directory import DirectoryState
from repro.protocols.verify import check_dirnnb_coherence
from repro.sim.config import MachineConfig
from repro.sim.process import Process
from tests.protocols.conftest import make_dirnnb_machine, run_script


def addr_homed_on(machine, region, home, offset=0):
    for page in range(region.base, region.end, machine.layout.page_size):
        if machine.home_of(page) == home:
            return page + offset
    raise AssertionError(f"no page homed on {home}")


def run_access(machine, node, addr, is_write=False, value=None):
    start = machine.engine.now
    process = Process(machine.engine,
                      machine.nodes[node].access(addr, is_write, value))
    machine.engine.run()
    return process.finished.value, machine.engine.now - start


class TestLocalMiss:
    def test_home_local_miss_costs_table2_flat_29(self, dirnnb4):
        machine, region = dirnnb4
        addr = addr_homed_on(machine, region, home=0)
        _, cycles = run_access(machine, 0, addr)
        # TLB miss + Table 2's flat local miss + the one-cycle integrated
        # directory consultation (a zero-occupancy controller op).
        assert cycles == 25 + 29 + 1

    def test_home_read_then_write_upgrade_is_local(self, dirnnb4):
        machine, region = dirnnb4
        addr = addr_homed_on(machine, region, home=0)
        run_script(machine, {0: [("r", addr), ("w", addr, 1)]})
        remote_packets = (machine.stats.get("network.packets")
                          - machine.stats.get("network.local_packets"))
        assert remote_packets == 0
        entry = machine.nodes[0].directory.entries()[
            machine.layout.block_of(addr)]
        assert entry.state is DirectoryState.EXCLUSIVE
        assert entry.owner == 0


class TestRemoteMiss:
    def test_remote_read_cost_matches_table2_formula(self, dirnnb4):
        machine, region = dirnnb4
        addr = addr_homed_on(machine, region, home=0)
        _, cycles = run_access(machine, 1, addr)
        # 25 TLB + 23 issue + 11 net
        # + directory op (16 + 5 per message + 11 block sent)
        # + 11 net + 34 finish.
        assert cycles == 25 + 23 + 11 + (16 + 5 + 11) + 11 + 34

    def test_remote_read_value_and_states(self, dirnnb4):
        machine, region = dirnnb4
        addr = addr_homed_on(machine, region, home=0)
        machine.shared_image.write(addr, 5)
        reads = run_script(machine, {1: [("r", addr)]})
        assert reads[1] == [5]
        block = machine.layout.block_of(addr)
        # First reader with no other copies gets exclusive-clean (E state).
        assert machine.nodes[1].cache.lookup(block).state is LineState.EXCLUSIVE
        entry = machine.nodes[0].directory.entries()[block]
        assert entry.state is DirectoryState.EXCLUSIVE
        assert entry.owner == 1
        check_dirnnb_coherence(machine, region)

    def test_second_reader_demotes_exclusive_clean_to_shared(self, dirnnb4):
        machine, region = dirnnb4
        addr = addr_homed_on(machine, region, home=0)
        script = {
            1: [("r", addr), ("b",)],
            2: [("b",), ("r", addr)],
            0: [("b",)],
            3: [("b",)],
        }
        run_script(machine, script)
        block = machine.layout.block_of(addr)
        entry = machine.nodes[0].directory.entries()[block]
        assert entry.state is DirectoryState.SHARED
        assert entry.sharers == {1, 2}
        assert machine.nodes[1].cache.lookup(block).state is LineState.SHARED
        check_dirnnb_coherence(machine, region)

    def test_remote_write_takes_exclusive(self, dirnnb4):
        machine, region = dirnnb4
        addr = addr_homed_on(machine, region, home=0)
        run_script(machine, {1: [("w", addr, 9)]})
        block = machine.layout.block_of(addr)
        assert machine.nodes[1].cache.lookup(block).state is LineState.EXCLUSIVE
        entry = machine.nodes[0].directory.entries()[block]
        assert entry.state is DirectoryState.EXCLUSIVE
        assert entry.owner == 1
        assert machine.shared_image.read(addr) == 9
        check_dirnnb_coherence(machine, region)


class TestCoherenceActions:
    def test_write_invalidates_remote_sharers(self, dirnnb4):
        machine, region = dirnnb4
        addr = addr_homed_on(machine, region, home=0)
        script = {
            1: [("r", addr), ("b",)],
            2: [("r", addr), ("b",)],
            3: [("b",), ("w", addr, 1)],
            0: [("b",)],
        }
        run_script(machine, script)
        block = machine.layout.block_of(addr)
        assert machine.nodes[1].cache.lookup(block) is None
        assert machine.nodes[2].cache.lookup(block) is None
        entry = machine.nodes[0].directory.entries()[block]
        assert entry.state is DirectoryState.EXCLUSIVE
        assert entry.owner == 3
        check_dirnnb_coherence(machine, region)

    def test_read_of_remote_exclusive_forces_writeback(self, dirnnb4):
        machine, region = dirnnb4
        addr = addr_homed_on(machine, region, home=0)
        script = {
            1: [("w", addr, 4), ("b",)],
            2: [("b",), ("r", addr)],
            0: [("b",)],
            3: [("b",)],
        }
        reads = run_script(machine, script)
        assert reads[2] == [4]
        block = machine.layout.block_of(addr)
        entry = machine.nodes[0].directory.entries()[block]
        assert entry.state is DirectoryState.SHARED
        assert entry.sharers == {1, 2}
        assert machine.nodes[1].cache.lookup(block).state is LineState.SHARED
        check_dirnnb_coherence(machine, region)

    def test_home_cached_copy_is_invalidated_by_remote_write(self, dirnnb4):
        machine, region = dirnnb4
        addr = addr_homed_on(machine, region, home=0)
        script = {
            0: [("r", addr), ("b",)],
            1: [("b",), ("w", addr, 2)],
            2: [("b",)],
            3: [("b",)],
        }
        run_script(machine, script)
        block = machine.layout.block_of(addr)
        assert machine.nodes[0].cache.lookup(block) is None
        check_dirnnb_coherence(machine, region)

    def test_home_write_pulls_block_back_from_owner(self, dirnnb4):
        machine, region = dirnnb4
        addr = addr_homed_on(machine, region, home=0)
        script = {
            1: [("w", addr, 3), ("b",)],
            0: [("b",), ("w", addr, 8), ("r", addr)],
            2: [("b",)],
            3: [("b",)],
        }
        reads = run_script(machine, script)
        assert reads[0] == [8]
        block = machine.layout.block_of(addr)
        entry = machine.nodes[0].directory.entries()[block]
        assert entry.state is DirectoryState.EXCLUSIVE
        assert entry.owner == 0
        assert machine.nodes[1].cache.lookup(block) is None
        check_dirnnb_coherence(machine, region)


class TestReplacement:
    def test_dirty_eviction_notifies_home(self):
        # A 512-byte 4-way cache has 4 sets; blocks 4 sets apart conflict.
        from repro.sim.config import CacheConfig
        machine, region = make_dirnnb_machine(
            nodes=2, shared_bytes=8 * 4096,
            cache=CacheConfig(size_bytes=512, associativity=4),
        )
        addr = addr_homed_on(machine, region, home=0)
        set_stride = 32 * 4  # block size * num sets
        script = {1: [("w", addr + i * set_stride, i) for i in range(6)]}
        run_script(machine, script)
        assert machine.stats.get("node1.cache.protocol_replacements") >= 1
        check_dirnnb_coherence(machine, region)

    def test_directory_exact_after_evictions(self):
        from repro.sim.config import CacheConfig
        machine, region = make_dirnnb_machine(
            nodes=2, shared_bytes=8 * 4096,
            cache=CacheConfig(size_bytes=512, associativity=4),
        )
        addr = addr_homed_on(machine, region, home=0)
        set_stride = 32 * 4
        script = {1: [("r", addr + i * set_stride, ) for i in range(8)]}
        run_script(machine, script)
        check_dirnnb_coherence(machine, region)


class TestContention:
    def test_simultaneous_writers_serialize(self, dirnnb4):
        machine, region = dirnnb4
        addr = addr_homed_on(machine, region, home=0)
        run_script(machine, {
            1: [("w", addr, 1)],
            2: [("w", addr, 2)],
            3: [("w", addr, 3)],
        })
        block = machine.layout.block_of(addr)
        entry = machine.nodes[0].directory.entries()[block]
        assert entry.state is DirectoryState.EXCLUSIVE
        assert entry.owner in (1, 2, 3)
        check_dirnnb_coherence(machine, region)

    def test_all_nodes_read_same_block(self, dirnnb4):
        machine, region = dirnnb4
        addr = addr_homed_on(machine, region, home=0)
        machine.shared_image.write(addr, 6)
        reads = run_script(machine, {n: [("r", addr)] for n in range(4)})
        assert all(reads[n] == [6] for n in range(4))
        entry = machine.nodes[0].directory.entries()[
            machine.layout.block_of(addr)]
        assert entry.sharers == {0, 1, 2, 3}
        check_dirnnb_coherence(machine, region)


class TestFirstTouchPlacement:
    def test_first_touch_rehomes_page(self):
        machine, region = make_dirnnb_machine(
            nodes=4, page_placement="first_touch"
        )
        # Page statically homed on node 0; node 2 touches it first.
        addr = region.base
        assert machine.heap.home_of(addr) == 0
        run_script(machine, {2: [("w", addr, 1)]})
        assert machine.home_of(addr) == 2
        # Node 2's subsequent misses on this page are local.
        run_script(machine, {2: [("r", addr + 64)]})
        assert machine.stats.get("node2.cpu.remote_misses") == 0

    def test_round_robin_default_ignores_first_touch(self, dirnnb4):
        machine, region = dirnnb4
        addr = region.base
        run_script(machine, {2: [("w", addr, 1)]})
        assert machine.home_of(addr) == machine.heap.home_of(addr)
