"""Tests for directory entry encodings, especially the LimitLESS-style
software entry's representation transitions (Section 3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.protocols.directory import (
    BITVECTOR_LIMIT,
    POINTER_SLOTS,
    DirectoryState,
    HardwareDirectoryEntry,
    SoftwareDirectoryEntry,
)


class TestDirectoryState:
    def test_transient_states(self):
        assert DirectoryState.PENDING_WRITEBACK.is_transient
        assert DirectoryState.PENDING_INVALIDATE.is_transient
        assert not DirectoryState.HOME.is_transient
        assert not DirectoryState.SHARED.is_transient
        assert not DirectoryState.EXCLUSIVE.is_transient


class TestHardwareEntry:
    def test_initial_state(self):
        entry = HardwareDirectoryEntry()
        assert entry.state is DirectoryState.HOME
        assert entry.owner is None
        assert entry.sharers == set()
        assert not entry.pending


class TestSoftwareEntryPointers:
    def test_starts_in_pointer_representation(self):
        entry = SoftwareDirectoryEntry(nodes=32)
        assert entry.representation == "pointers"
        assert entry.sharers() == set()

    def test_six_pointers_fit(self):
        entry = SoftwareDirectoryEntry(nodes=32)
        for node in range(POINTER_SLOTS):
            entry.add_sharer(node)
        assert entry.representation == "pointers"
        assert entry.sharer_count == 6

    def test_duplicate_add_does_not_consume_a_slot(self):
        entry = SoftwareDirectoryEntry(nodes=32)
        for _ in range(10):
            entry.add_sharer(3)
        assert entry.representation == "pointers"
        assert entry.sharer_count == 1

    def test_seventh_sharer_overflows_to_bitvector(self):
        entry = SoftwareDirectoryEntry(nodes=32)
        for node in range(POINTER_SLOTS + 1):
            entry.add_sharer(node)
        assert entry.representation == "bitvector"
        assert entry.sharers() == set(range(7))

    def test_remove_sharer_in_each_representation(self):
        entry = SoftwareDirectoryEntry(nodes=32)
        entry.add_sharer(1)
        entry.remove_sharer(1)
        assert entry.sharers() == set()
        for node in range(8):
            entry.add_sharer(node)
        entry.remove_sharer(3)
        assert 3 not in entry.sharers()
        assert entry.sharer_count == 7

    def test_clear_falls_back_to_pointers(self):
        entry = SoftwareDirectoryEntry(nodes=32)
        for node in range(10):
            entry.add_sharer(node)
        entry.clear_sharers()
        assert entry.representation == "pointers"
        assert entry.sharers() == set()


class TestSoftwareEntryLargeMachines:
    def test_overflow_beyond_32_nodes_uses_auxiliary_structure(self):
        entry = SoftwareDirectoryEntry(nodes=64)
        for node in range(POINTER_SLOTS + 1):
            entry.add_sharer(node)
        assert entry.representation == "auxiliary"
        assert entry.sharers() == set(range(7))

    def test_auxiliary_supports_high_node_ids(self):
        entry = SoftwareDirectoryEntry(nodes=64)
        for node in range(50, 60):
            entry.add_sharer(node)
        assert entry.sharers() == set(range(50, 60))

    def test_bitvector_limit_is_32(self):
        assert BITVECTOR_LIMIT == 32

    def test_out_of_range_sharer_rejected(self):
        entry = SoftwareDirectoryEntry(nodes=8)
        with pytest.raises(ValueError):
            entry.add_sharer(8)


@given(
    nodes=st.sampled_from([4, 32, 64]),
    ops=st.lists(
        st.tuples(st.booleans(), st.integers(min_value=0, max_value=63)),
        max_size=100,
    ),
)
@settings(max_examples=60, deadline=None)
def test_property_software_entry_tracks_exact_set(nodes, ops):
    """Whatever the representation, the sharer set is exactly right."""
    entry = SoftwareDirectoryEntry(nodes=nodes)
    reference = set()
    for add, node in ops:
        node = node % nodes
        if add:
            entry.add_sharer(node)
            reference.add(node)
        else:
            entry.remove_sharer(node)
            reference.discard(node)
    assert entry.sharers() == reference
    assert entry.sharer_count == len(reference)
