"""Shared helpers for protocol tests."""

from __future__ import annotations

import pytest

from repro.protocols.dirnnb import DirNNBMachine
from repro.protocols.stache import StacheProtocol
from repro.sim.config import MachineConfig
from repro.typhoon.system import TyphoonMachine


def make_stache_machine(nodes=4, seed=1, shared_bytes=4 * 4096, **config_kwargs):
    """A TyphoonMachine with Stache installed and one shared region."""
    machine = TyphoonMachine(MachineConfig(nodes=nodes, seed=seed, **config_kwargs))
    protocol = StacheProtocol()
    machine.install_protocol(protocol)
    region = machine.heap.allocate(shared_bytes, label="test")
    protocol.setup_region(region)
    return machine, protocol, region


def make_dirnnb_machine(nodes=4, seed=1, shared_bytes=4 * 4096, **config_kwargs):
    machine = DirNNBMachine(MachineConfig(nodes=nodes, seed=seed, **config_kwargs))
    region = machine.heap.allocate(shared_bytes, label="test")
    return machine, region


def run_script(machine, script):
    """Run per-node op lists; returns {node: [read values, in order]}.

    Ops: ``("r", addr)``, ``("w", addr, value)``, ``("b",)`` barrier,
    ``("c", cycles)`` compute.
    """
    reads = {node_id: [] for node_id in range(machine.num_nodes)}

    def worker(node_id):
        node = machine.nodes[node_id]
        for op in script.get(node_id, []):
            if op[0] == "r":
                value = yield from node.access(op[1], False)
                reads[node_id].append(value)
            elif op[0] == "w":
                yield from node.access(op[1], True, op[2])
            elif op[0] == "b":
                yield from machine.barrier_wait(node_id)
            elif op[0] == "c":
                yield op[1]
            else:
                raise ValueError(f"unknown op {op}")

    machine.run_workers(worker)
    return reads


@pytest.fixture
def stache4():
    return make_stache_machine(nodes=4)


@pytest.fixture
def dirnnb4():
    return make_dirnnb_machine(nodes=4)
