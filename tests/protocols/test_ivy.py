"""Tests for the IVY-style page-granularity DSM protocol."""

import pytest

from repro.memory.tags import Tag
from repro.protocols.history import AccessHistory, check_register_consistency
from repro.protocols.ivy import PAGE_MODE_IVY, IvyProtocol
from repro.sim.config import MachineConfig
from repro.typhoon.system import TyphoonMachine
from tests.protocols.conftest import run_script


def make_machine(nodes=4, seed=1, pages=4):
    machine = TyphoonMachine(MachineConfig(nodes=nodes, seed=seed))
    protocol = IvyProtocol()
    machine.install_protocol(protocol)
    region = machine.heap.allocate(pages * 4096, label="ivy")
    protocol.setup_region(region)
    return machine, protocol, region


def addr_homed_on(machine, region, home):
    for page in range(region.base, region.end, machine.layout.page_size):
        if machine.heap.home_of(page) == home:
            return page
    raise AssertionError


def page_tags(machine, node, page_addr):
    return set(machine.nodes[node].tags.page_tags(page_addr))


class TestBasics:
    def test_manager_starts_as_owner_with_writable_page(self):
        machine, protocol, region = make_machine()
        manager = machine.heap.home_of(region.base)
        assert page_tags(machine, manager, region.base) == {Tag.READ_WRITE}

    def test_remote_read_ships_whole_page(self):
        machine, protocol, region = make_machine()
        addr = addr_homed_on(machine, region, home=0)
        machine.nodes[0].image.write(addr + 120, 7)
        machine.nodes[0].image.write(addr + 3000, 8)
        reads = run_script(machine, {1: [("r", addr + 120)]})
        assert reads[1] == [7]
        # The *whole page* came over: a word this node never touched is
        # present, and the page is uniformly readable.
        assert machine.nodes[1].image.read(addr + 3000) == 8
        assert page_tags(machine, 1, addr) == {Tag.READ_ONLY}
        # Owner demoted to read-only.
        assert page_tags(machine, 0, addr) == {Tag.READ_ONLY}
        assert machine.stats.get("ivy.page_transfers") == 1

    def test_remote_write_takes_page_ownership(self):
        machine, protocol, region = make_machine()
        addr = addr_homed_on(machine, region, home=0)
        run_script(machine, {1: [("w", addr, 5)]})
        assert page_tags(machine, 1, addr) == {Tag.READ_WRITE}
        assert page_tags(machine, 0, addr) == {Tag.INVALID}
        state = protocol._state(0, addr)
        assert state.owner == 1
        assert not state.busy

    def test_write_invalidates_all_readers(self):
        machine, protocol, region = make_machine()
        addr = addr_homed_on(machine, region, home=0)
        script = {
            1: [("r", addr), ("b",)],
            2: [("r", addr), ("b",)],
            3: [("b",), ("w", addr, 9)],
            0: [("b",)],
        }
        run_script(machine, script)
        assert page_tags(machine, 1, addr) == {Tag.INVALID}
        assert page_tags(machine, 2, addr) == {Tag.INVALID}
        assert page_tags(machine, 3, addr) == {Tag.READ_WRITE}
        state = protocol._state(0, addr)
        assert state.owner == 3
        assert state.copyset == set()

    def test_upgrade_by_reader(self):
        machine, protocol, region = make_machine()
        addr = addr_homed_on(machine, region, home=0)
        reads = run_script(machine, {1: [("r", addr), ("w", addr, 3),
                                         ("r", addr)]})
        assert reads[1] == [0, 3]
        assert protocol._state(0, addr).owner == 1

    def test_reads_after_write_see_new_data(self):
        machine, protocol, region = make_machine()
        addr = addr_homed_on(machine, region, home=0)
        script = {
            1: [("w", addr + 64, 42), ("b",)],
            2: [("b",), ("r", addr + 64)],
            0: [("b",)],
            3: [("b",)],
        }
        reads = run_script(machine, script)
        assert reads[2] == [42]

    def test_mode_is_ivy_everywhere(self):
        machine, protocol, region = make_machine()
        addr = addr_homed_on(machine, region, home=0)
        run_script(machine, {1: [("r", addr)]})
        assert machine.nodes[1].tempest.page_entry(addr).mode == PAGE_MODE_IVY


class TestContention:
    def test_concurrent_writers_serialize_via_manager(self):
        machine, protocol, region = make_machine()
        addr = addr_homed_on(machine, region, home=0)
        run_script(machine, {
            1: [("w", addr, 1)],
            2: [("w", addr, 2)],
            3: [("w", addr, 3)],
        })
        state = protocol._state(0, addr)
        assert state.owner in (1, 2, 3)
        assert not state.busy
        assert not state.queue
        owner_tags = page_tags(machine, state.owner, addr)
        assert owner_tags == {Tag.READ_WRITE}

    def test_register_consistency_under_random_load(self):
        machine, protocol, region = make_machine()
        machine.history = AccessHistory()
        import random
        rng = random.Random(5)
        script = {n: [] for n in range(4)}
        for _ in range(40):
            node = rng.randrange(4)
            page = rng.randrange(4)
            offset = rng.randrange(0, 4096, 8)
            addr = region.base + page * 4096 + offset
            if rng.random() < 0.5:
                script[node].append(("w", addr, (node, len(script[node]))))
            else:
                script[node].append(("r", addr))
        run_script(machine, script)
        violations = check_register_consistency(machine.history)
        assert violations == [], "\n".join(str(v) for v in violations)


class TestGranularityEffect:
    def test_false_sharing_thrashes_pages_but_not_blocks(self):
        """The Section 2.4 argument, quantified: two nodes writing
        *different blocks of the same page* ping-pong the whole page
        under IVY, while Stache gives each node its own block once."""
        rounds = 6

        def run(protocol_cls):
            machine = TyphoonMachine(MachineConfig(nodes=2, seed=1))
            protocol = protocol_cls()
            machine.install_protocol(protocol)
            region = machine.heap.allocate(4096, home=0, label="fs")
            protocol.setup_region(region)
            script = {
                0: [],
                1: [],
            }
            for round_ in range(rounds):
                script[0].append(("w", region.base, round_))
                script[0].append(("b",))
                script[1].append(("w", region.base + 2048, round_))
                script[1].append(("b",))
            run_script(machine, script)
            remote = (machine.stats.get("network.packets")
                      - machine.stats.get("network.local_packets"))
            return machine.execution_time, remote

        from repro.protocols.stache import StacheProtocol

        ivy_time, ivy_packets = run(IvyProtocol)
        stache_time, stache_packets = run(StacheProtocol)
        # Stache: node 1 fetches its block once; afterwards both write
        # locally forever.  IVY: the page bounces every round.
        assert stache_packets < ivy_packets / 5
        assert stache_time < ivy_time
