"""Tests for the EM3D delayed-update protocol (paper Section 4)."""

import pytest

from repro.memory.tags import Tag
from repro.protocols.em3d_update import (
    KIND_E,
    KIND_H,
    PAGE_MODE_CUSTOM_HOME,
    PAGE_MODE_CUSTOM_STACHE,
    Em3dUpdateProtocol,
)
from repro.sim.config import MachineConfig
from repro.sim.engine import SimulationError
from repro.typhoon.system import TyphoonMachine


def make_machine(nodes=2, seed=1):
    machine = TyphoonMachine(MachineConfig(nodes=nodes, seed=seed))
    protocol = Em3dUpdateProtocol()
    machine.install_protocol(protocol)
    e_region = machine.heap.allocate(nodes * 4096, label="e")
    h_region = machine.heap.allocate(nodes * 4096, label="h")
    protocol.setup_custom_region(e_region, KIND_E)
    protocol.setup_custom_region(h_region, KIND_H)
    return machine, protocol, e_region, h_region


def run_workers(machine, worker):
    machine.run_workers(worker)


class TestSetup:
    def test_custom_home_pages_mapped(self):
        machine, protocol, e_region, _ = make_machine()
        home = machine.heap.home_of(e_region.base)
        entry = machine.nodes[home].tempest.page_entry(e_region.base)
        assert entry.mode == PAGE_MODE_CUSTOM_HOME
        assert entry.user_word.kind == KIND_E

    def test_register_value_word(self):
        machine, protocol, e_region, _ = make_machine()
        addr = e_region.base + 8
        protocol.register_value_word(addr)
        home = machine.heap.home_of(addr)
        page = machine.nodes[home].tempest.page_entry(addr)
        block = machine.layout.block_of(addr)
        assert page.user_word.value_addrs[block] == [addr]

    def test_register_outside_custom_region_rejected(self):
        machine, protocol, *_ = make_machine()
        other = machine.heap.allocate(4096)
        with pytest.raises(SimulationError):
            protocol.register_value_word(other.base)


class TestFetch:
    def test_remote_read_creates_custom_stache_page_and_copy_list(self):
        machine, protocol, e_region, _ = make_machine()
        home = machine.heap.home_of(e_region.base)
        remote = 1 - home
        addr = e_region.base
        machine.nodes[home].image.write(addr, 3.5)

        def worker(node_id):
            if node_id == remote:
                value = yield from machine.nodes[node_id].access(addr, False)
                assert value == 3.5
            else:
                yield 1

        run_workers(machine, worker)
        entry = machine.nodes[remote].tempest.page_entry(addr)
        assert entry.mode == PAGE_MODE_CUSTOM_STACHE
        block = machine.layout.block_of(addr)
        assert protocol.copy_holders(home, block) == {remote}
        assert protocol.stached_count(remote, KIND_E) == 1

    def test_home_tag_stays_read_write_despite_copies(self):
        """The deliberate single-writer violation: delayed consistency."""
        machine, protocol, e_region, _ = make_machine()
        home = machine.heap.home_of(e_region.base)
        remote = 1 - home
        addr = e_region.base

        def worker(node_id):
            if node_id == remote:
                yield from machine.nodes[node_id].access(addr, False)
            else:
                yield 1

        run_workers(machine, worker)
        block = machine.layout.block_of(addr)
        assert machine.nodes[home].tags.read_tag(block) is Tag.READ_WRITE
        assert machine.nodes[remote].tags.read_tag(block) is Tag.READ_ONLY

    def test_home_write_with_outstanding_copies_is_full_speed(self):
        machine, protocol, e_region, _ = make_machine()
        home = machine.heap.home_of(e_region.base)
        remote = 1 - home
        addr = e_region.base

        def worker(node_id):
            if node_id == remote:
                yield from machine.nodes[node_id].access(addr, False)
                yield machine.barrier.arrive(node_id)
            else:
                yield machine.barrier.arrive(node_id)
                yield from machine.nodes[node_id].access(addr, True, 9)

        before = machine.stats.get(f"node{home}.cpu.block_faults")
        run_workers(machine, worker)
        assert machine.stats.get(f"node{home}.cpu.block_faults") == before

    def test_remote_write_rejected(self):
        machine, protocol, e_region, _ = make_machine()
        home = machine.heap.home_of(e_region.base)
        remote = 1 - home
        addr = e_region.base

        def worker(node_id):
            if node_id == remote:
                yield from machine.nodes[node_id].access(addr, True, 1)
            else:
                yield 1

        with pytest.raises(SimulationError, match="owners-compute"):
            run_workers(machine, worker)


class TestUpdateFlush:
    def test_flush_sends_only_value_words(self):
        machine, protocol, e_region, _ = make_machine()
        home = machine.heap.home_of(e_region.base)
        remote = 1 - home
        value_addr = e_region.base  # the graph node's value field
        other_addr = e_region.base + 8  # same block, not a value word
        protocol.register_value_word(value_addr)
        machine.nodes[home].image.write(value_addr, 1.0)
        machine.nodes[home].image.write(other_addr, "weights")

        def home_worker():
            node = machine.nodes[home]
            yield 600  # let the remote stache the block first
            yield from node.access(value_addr, True, 2.0)
            yield from node.access(other_addr, True, "new-weights")
            yield from protocol.flush_and_wait(home, KIND_E, 0)

        def remote_worker():
            node = machine.nodes[remote]
            yield from node.access(value_addr, False)
            yield from protocol.flush_and_wait(remote, KIND_E, 0)
            updated = yield from node.access(value_addr, False)
            assert updated == 2.0
            stale = yield from node.access(other_addr, False)
            # Non-value words are NOT updated: delayed update ships only
            # the value field (the paper: "only the value field is sent").
            assert stale == "weights"

        machine.run_workers(
            lambda n: home_worker() if n == home else remote_worker()
        )
        assert machine.stats.get("em3d.updates_sent") == 1
        assert machine.stats.get("em3d.updates_received") == 1

    def test_no_acknowledgements_are_sent(self):
        machine, protocol, e_region, _ = make_machine()
        home = machine.heap.home_of(e_region.base)
        remote = 1 - home
        addr = e_region.base
        protocol.register_value_word(addr)

        def home_worker():
            yield 600
            yield from machine.nodes[home].access(addr, True, 1.5)
            before = machine.stats.get("network.packets")
            yield from protocol.flush_and_wait(home, KIND_E, 0)
            yield 100  # drain
            sent = machine.stats.get("network.packets") - before
            assert sent == 1  # the update, nothing else

        def remote_worker():
            yield from machine.nodes[remote].access(addr, False)
            yield from protocol.flush_and_wait(remote, KIND_E, 0)

        machine.run_workers(
            lambda n: home_worker() if n == home else remote_worker()
        )

    def test_waiter_blocks_until_all_updates_arrive(self):
        machine, protocol, e_region, _ = make_machine(nodes=3)
        # Three nodes; node picks: two homes send to one consumer.
        addr0 = e_region.base              # homed on heap.home_of
        home0 = machine.heap.home_of(addr0)
        others = [n for n in range(3) if n != home0]
        consumer = others[0]
        # Find a page homed on the other node.
        addr1 = None
        for page in range(e_region.base, e_region.end, 4096):
            if machine.heap.home_of(page) == others[1]:
                addr1 = page
                break
        assert addr1 is not None
        home1 = others[1]
        protocol.register_value_word(addr0)
        protocol.register_value_word(addr1)
        release_time = {}

        def worker(node_id):
            node = machine.nodes[node_id]
            if node_id == consumer:
                yield from node.access(addr0, False)
                yield from node.access(addr1, False)
                yield from protocol.flush_and_wait(node_id, KIND_E, 0)
                release_time["consumer"] = machine.engine.now
            elif node_id == home0:
                yield 200
                yield from node.access(addr0, True, 1.0)
                yield from protocol.flush_and_wait(node_id, KIND_E, 0)
            else:
                yield 2000  # this home is slow
                yield from node.access(addr1, True, 2.0)
                release_time["slow_flush"] = machine.engine.now
                yield from protocol.flush_and_wait(node_id, KIND_E, 0)

        machine.run_workers(worker)
        assert release_time["consumer"] > release_time["slow_flush"]
        assert protocol.stached_count(consumer, KIND_E) == 2


class TestFuzzyBarrier:
    def test_early_update_is_deferred_not_applied(self):
        machine, protocol, e_region, h_region = make_machine()
        home = machine.heap.home_of(e_region.base)
        remote = 1 - home
        e_addr = e_region.base
        protocol.register_value_word(e_addr)
        observed = {}

        def home_worker():
            node = machine.nodes[home]
            yield 600  # the remote staches the (still zero) block first
            # Step 0: write 1.0, flush, (no stached copies to wait for).
            yield from node.access(e_addr, True, 1.0)
            yield from protocol.flush_and_wait(home, KIND_E, 0)
            yield from protocol.flush_and_wait(home, KIND_H, 0)
            # Step 1: race ahead and flush an early e-update.
            yield from node.access(e_addr, True, 2.0)
            yield from protocol.flush_and_wait(home, KIND_E, 1)

        def remote_worker():
            node = machine.nodes[remote]
            value = yield from node.access(e_addr, False)  # step 0 compute
            yield from protocol.flush_and_wait(remote, KIND_E, 0)
            # Simulate a long compute-H(0): the step-1 e-update arrives now
            # and must NOT be applied until we pass the h-phase point.
            yield 3000
            mid = machine.nodes[remote].image.read(e_addr)
            observed["during_compute_h"] = mid
            yield from protocol.flush_and_wait(remote, KIND_H, 0)
            after = machine.nodes[remote].image.read(e_addr)
            observed["after_h_flush"] = after

        machine.run_workers(
            lambda n: home_worker() if n == home else remote_worker()
        )
        # During compute-H(0) the remote still sees the step-0 value.
        assert observed["during_compute_h"] == 1.0
        # Once compute-H(0) finished, the deferred step-1 update applied.
        assert observed["after_h_flush"] == 2.0
        assert machine.stats.get("em3d.updates_deferred") >= 1
