"""Tests for the Stache library extensions: prefetch, check-in, migration."""

import pytest

from repro.memory.tags import Tag
from repro.protocols.directory import DirectoryState
from repro.protocols.verify import check_stache_coherence
from repro.sim.engine import SimulationError
from tests.protocols.conftest import make_stache_machine, run_script


def addr_homed_on(machine, region, home, offset=0):
    for page in range(region.base, region.end, machine.layout.page_size):
        if machine.heap.home_of(page) == home:
            return page + offset
    raise AssertionError(f"no page homed on {home}")


def home_block_entry(machine, block):
    home = machine.heap.home_of(block)
    page = machine.nodes[home].tempest.page_entry(block)
    return page.user_word.get(block)


class TestPrefetch:
    def test_prefetch_installs_block_without_blocking(self):
        machine, protocol, region = make_stache_machine(nodes=2)
        addr = addr_homed_on(machine, region, home=0)
        machine.nodes[0].image.write(addr, 42)
        timeline = {}

        def worker(node_id):
            if node_id == 1:
                yield from protocol.prefetch(1, addr)
                timeline["after_issue"] = machine.engine.now
                yield 2000  # overlapped compute while the fetch flies
                value = yield from machine.nodes[1].access(addr, False)
                timeline["value"] = value
            else:
                yield 1

        machine.run_workers(worker)
        assert timeline["value"] == 42
        assert machine.stats.get("stache.prefetches_issued") == 1
        assert machine.stats.get("stache.prefetches_completed") == 1
        # The access after the overlap window never faulted.
        assert machine.stats.get("node1.cpu.block_faults") == 0
        block = machine.layout.block_of(addr)
        assert machine.nodes[1].tags.read_tag(block) is Tag.READ_ONLY
        check_stache_coherence(machine, region)

    def test_fault_during_inflight_prefetch_waits_not_duplicates(self):
        machine, protocol, region = make_stache_machine(nodes=2)
        addr = addr_homed_on(machine, region, home=0)
        machine.nodes[0].image.write(addr, 5)

        def worker(node_id):
            if node_id == 1:
                yield from protocol.prefetch(1, addr)
                # Touch immediately: the thread catches up with the fetch.
                value = yield from machine.nodes[1].access(addr, False)
                assert value == 5
            else:
                yield 1

        machine.run_workers(worker)
        assert machine.stats.get("stache.prefetch_hits_in_flight") == 1
        # Exactly one request reached the home.
        assert machine.stats.get("stache.ro_requests", 0) == 0
        assert machine.stats.get("stache.blocks_fetched") == 1
        check_stache_coherence(machine, region)

    def test_prefetch_of_present_block_is_noop(self):
        machine, protocol, region = make_stache_machine(nodes=2)
        addr = addr_homed_on(machine, region, home=0)

        def worker(node_id):
            if node_id == 1:
                yield from machine.nodes[1].access(addr, False)
                yield from protocol.prefetch(1, addr)
                yield 500
            else:
                yield 1

        machine.run_workers(worker)
        assert machine.stats.get("stache.prefetches_issued") == 0

    def test_write_fault_on_prefetched_ro_copy_upgrades(self):
        machine, protocol, region = make_stache_machine(nodes=2)
        addr = addr_homed_on(machine, region, home=0)

        def worker(node_id):
            if node_id == 1:
                yield from protocol.prefetch(1, addr)
                yield from machine.nodes[1].access(addr, True, 9)
            else:
                yield 1

        machine.run_workers(worker)
        block = machine.layout.block_of(addr)
        assert machine.nodes[1].tags.read_tag(block) is Tag.READ_WRITE
        assert machine.nodes[1].image.read(addr) == 9
        check_stache_coherence(machine, region)


class TestCheckIn:
    def test_checkin_of_dirty_copy_returns_data_home(self):
        machine, protocol, region = make_stache_machine(nodes=2)
        addr = addr_homed_on(machine, region, home=0)

        def worker(node_id):
            if node_id == 1:
                yield from machine.nodes[1].access(addr, True, 77)
                yield from protocol.check_in(1, addr)
                yield 200  # let the notification land
            else:
                yield 1

        machine.run_workers(worker)
        block = machine.layout.block_of(addr)
        assert machine.nodes[0].image.read(addr) == 77
        entry = home_block_entry(machine, block)
        assert entry.state is DirectoryState.HOME
        assert machine.nodes[0].tags.read_tag(block) is Tag.READ_WRITE
        assert machine.nodes[1].tags.read_tag(block) is Tag.INVALID
        assert machine.stats.get("stache.checkins") == 1
        check_stache_coherence(machine, region)

    def test_checkin_of_clean_copy_removes_sharer(self):
        machine, protocol, region = make_stache_machine(nodes=3)
        addr = addr_homed_on(machine, region, home=0)

        def worker(node_id):
            if node_id in (1, 2):
                yield from machine.nodes[node_id].access(addr, False)
                if node_id == 1:
                    yield from protocol.check_in(1, addr)
                yield 300
            else:
                yield 1

        machine.run_workers(worker)
        block = machine.layout.block_of(addr)
        entry = home_block_entry(machine, block)
        assert entry.sharers() == {2}
        assert entry.state is DirectoryState.SHARED
        check_stache_coherence(machine, region)

    def test_checkin_of_last_clean_copy_restores_home_ownership(self):
        machine, protocol, region = make_stache_machine(nodes=2)
        addr = addr_homed_on(machine, region, home=0)

        def worker(node_id):
            if node_id == 1:
                yield from machine.nodes[1].access(addr, False)
                yield from protocol.check_in(1, addr)
                yield 300
            else:
                yield 400

        machine.run_workers(worker)
        block = machine.layout.block_of(addr)
        entry = home_block_entry(machine, block)
        assert entry.state is DirectoryState.HOME
        assert machine.nodes[0].tags.read_tag(block) is Tag.READ_WRITE
        check_stache_coherence(machine, region)

    def test_checkin_without_copy_is_noop(self):
        machine, protocol, region = make_stache_machine(nodes=2)
        addr = addr_homed_on(machine, region, home=0)

        def worker(node_id):
            yield from protocol.check_in(node_id, addr)
            yield 10

        machine.run_workers(worker)
        assert machine.stats.get("stache.checkins") == 0

    def test_checkin_avoids_later_invalidation_roundtrip(self):
        """The cooperative-shared-memory payoff: fewer messages."""

        def run(with_checkin):
            machine, protocol, region = make_stache_machine(nodes=3, seed=9)
            addr = addr_homed_on(machine, region, home=0)

            def worker(node_id):
                if node_id == 1:
                    yield from machine.nodes[1].access(addr, True, 1)
                    if with_checkin:
                        yield from protocol.check_in(1, addr)
                    yield machine.barrier.arrive(1)
                elif node_id == 2:
                    yield machine.barrier.arrive(2)
                    yield from machine.nodes[2].access(addr, True, 2)
                else:
                    yield machine.barrier.arrive(0)

            machine.run_workers(worker)
            remote = (machine.stats.get("network.packets")
                      - machine.stats.get("network.local_packets"))
            return remote, machine.stats.get("stache.writeback_requests")

        packets_plain, wb_plain = run(with_checkin=False)
        packets_checkin, wb_checkin = run(with_checkin=True)
        # Without check-in, node 2's write forces a 3-hop writeback chain;
        # with it, the home satisfies node 2 directly.
        assert wb_plain == 1
        assert wb_checkin == 0
        assert packets_checkin < packets_plain


class TestPageMigration:
    def make(self):
        machine, protocol, region = make_stache_machine(nodes=3)
        page = addr_homed_on(machine, region, home=0)
        return machine, protocol, region, page

    def test_migrates_data_home_and_mapping_table(self):
        machine, protocol, region, page = self.make()
        machine.nodes[0].image.write(page + 8, "payload")

        def worker(node_id):
            if node_id == 0:
                yield from protocol.migrate_page(0, page, new_home=2)
            else:
                yield 1

        machine.run_workers(worker)
        assert machine.heap.home_of(page) == 2
        assert machine.nodes[2].image.read(page + 8) == "payload"
        assert machine.nodes[2].tempest.page_entry(page).mode == 1  # HOME
        assert machine.nodes[0].tempest.page_entry(page) is None
        assert machine.stats.get("stache.pages_migrated") == 1

    def test_access_after_migration_reaches_new_home(self):
        machine, protocol, region, page = self.make()
        machine.nodes[0].image.write(page, 11)

        def worker(node_id):
            if node_id == 0:
                yield from protocol.migrate_page(0, page, new_home=2)
                yield machine.barrier.arrive(0)
            elif node_id == 1:
                yield machine.barrier.arrive(1)
                value = yield from machine.nodes[1].access(page, False)
                assert value == 11
            else:
                yield machine.barrier.arrive(2)

        machine.run_workers(worker)
        block = machine.layout.block_of(page)
        entry = machine.nodes[2].tempest.page_entry(page).user_word[block]
        assert entry.sharers() == {1}

    def test_stale_home_cache_is_forwarded_and_refreshed(self):
        machine, protocol, region, page = self.make()

        def worker(node_id):
            if node_id == 1:
                # Cache the old home id by stacheing the page first.
                yield from machine.nodes[1].access(page, False)
                yield from protocol.check_in(1, page)
                yield machine.barrier.arrive(1)
                yield machine.barrier.arrive(1)
                # The stache page still says home=0; the request must be
                # forwarded to node 2.
                yield from machine.nodes[1].access(page + 32, False)
                assert machine.nodes[1].tempest.page_entry(page).home == 2
            elif node_id == 0:
                yield machine.barrier.arrive(0)
                yield 300  # let node 1's check-in notification land
                yield from protocol.migrate_page(0, page, new_home=2)
                yield machine.barrier.arrive(0)
            else:
                yield machine.barrier.arrive(2)
                yield machine.barrier.arrive(2)

        machine.run_workers(worker)
        assert machine.stats.get("stache.requests_forwarded") == 1

    def test_old_home_can_stache_its_former_page(self):
        machine, protocol, region, page = self.make()
        machine.nodes[0].image.write(page, 3)

        def worker(node_id):
            if node_id == 0:
                yield from protocol.migrate_page(0, page, new_home=2)
                value = yield from machine.nodes[0].access(page, False)
                assert value == 3
            else:
                yield 1

        machine.run_workers(worker)
        entry = machine.nodes[0].tempest.page_entry(page)
        assert entry.mode == 2  # a stache page now
        assert entry.home == 2

    def test_migration_requires_quiescence(self):
        machine, protocol, region, page = self.make()

        def worker(node_id):
            if node_id == 1:
                yield from machine.nodes[1].access(page, False)
                yield machine.barrier.arrive(1)
            elif node_id == 0:
                yield machine.barrier.arrive(0)
                yield from protocol.migrate_page(0, page, new_home=2)
            else:
                yield machine.barrier.arrive(2)

        with pytest.raises(SimulationError, match="quiescence"):
            machine.run_workers(worker)

    def test_migration_target_validation(self):
        machine, protocol, region, page = self.make()

        def bad_target(node_id):
            if node_id == 0:
                yield from protocol.migrate_page(0, page, new_home=0)
            else:
                yield 1

        with pytest.raises(SimulationError, match="bad migration target"):
            machine.run_workers(bad_target)
