"""End-to-end tests of the Stache protocol (paper Section 3)."""

import pytest

from repro.memory.tags import Tag
from repro.protocols.directory import DirectoryState
from repro.protocols.stache import PAGE_MODE_HOME, PAGE_MODE_STACHE
from repro.protocols.verify import check_stache_coherence
from tests.protocols.conftest import make_stache_machine, run_script


def home_block_entry(machine, block):
    home = machine.heap.home_of(block)
    page = machine.nodes[home].tempest.page_entry(block)
    return page.user_word.get(block)


def addr_homed_on(machine, region, home, offset=0):
    """An address inside the region whose page is homed on ``home``."""
    for page in range(region.base, region.end, machine.layout.page_size):
        if machine.heap.home_of(page) == home:
            return page + offset
    raise AssertionError(f"no page homed on {home}")


class TestRemoteRead:
    def test_first_remote_read_fetches_block(self, stache4):
        machine, protocol, region = stache4
        addr = addr_homed_on(machine, region, home=0)
        machine.nodes[0].image.write(addr, 123)  # init at home
        reads = run_script(machine, {1: [("r", addr)]})
        assert reads[1] == [123]
        assert machine.stats.get("stache.blocks_fetched") == 1
        assert machine.stats.get("node1.cpu.page_faults") == 1
        assert machine.stats.get("node1.cpu.block_faults") == 1

    def test_tags_after_remote_read(self, stache4):
        machine, protocol, region = stache4
        addr = addr_homed_on(machine, region, home=0)
        run_script(machine, {1: [("r", addr)]})
        block = machine.layout.block_of(addr)
        assert machine.nodes[1].tags.read_tag(block) is Tag.READ_ONLY
        assert machine.nodes[0].tags.read_tag(block) is Tag.READ_ONLY
        entry = home_block_entry(machine, block)
        assert entry.state is DirectoryState.SHARED
        assert entry.sharers() == {1}

    def test_stache_page_mode_and_home(self, stache4):
        machine, protocol, region = stache4
        addr = addr_homed_on(machine, region, home=2)
        run_script(machine, {1: [("r", addr)]})
        entry = machine.nodes[1].tempest.page_entry(addr)
        assert entry.mode == PAGE_MODE_STACHE
        assert entry.home == 2

    def test_second_read_same_block_is_pure_hardware(self, stache4):
        machine, protocol, region = stache4
        addr = addr_homed_on(machine, region, home=0)
        run_script(machine, {1: [("r", addr), ("r", addr)]})
        # One page fault, one block fault: the second read hits the cache.
        assert machine.stats.get("node1.cpu.block_faults") == 1
        assert machine.stats.get("node1.cpu.page_faults") == 1

    def test_read_of_second_block_on_stached_page_skips_page_fault(self, stache4):
        machine, protocol, region = stache4
        addr = addr_homed_on(machine, region, home=0)
        run_script(machine, {1: [("r", addr), ("r", addr + 64)]})
        assert machine.stats.get("node1.cpu.page_faults") == 1
        assert machine.stats.get("node1.cpu.block_faults") == 2

    def test_multiple_readers_share(self, stache4):
        machine, protocol, region = stache4
        addr = addr_homed_on(machine, region, home=0)
        machine.nodes[0].image.write(addr, 7)
        reads = run_script(machine, {1: [("r", addr)], 2: [("r", addr)],
                                     3: [("r", addr)]})
        assert reads[1] == reads[2] == reads[3] == [7]
        entry = home_block_entry(machine, machine.layout.block_of(addr))
        assert entry.sharers() == {1, 2, 3}
        check_stache_coherence(machine, region)


class TestRemoteWrite:
    def test_remote_write_takes_exclusive_ownership(self, stache4):
        machine, protocol, region = stache4
        addr = addr_homed_on(machine, region, home=0)
        run_script(machine, {1: [("w", addr, 55)]})
        block = machine.layout.block_of(addr)
        assert machine.nodes[1].tags.read_tag(block) is Tag.READ_WRITE
        assert machine.nodes[0].tags.read_tag(block) is Tag.INVALID
        entry = home_block_entry(machine, block)
        assert entry.state is DirectoryState.EXCLUSIVE
        assert entry.owner == 1
        assert machine.nodes[1].image.read(addr) == 55
        check_stache_coherence(machine, region)

    def test_write_invalidates_all_sharers(self, stache4):
        machine, protocol, region = stache4
        addr = addr_homed_on(machine, region, home=0)
        script = {
            1: [("r", addr), ("b",)],
            2: [("r", addr), ("b",)],
            3: [("b",), ("w", addr, 9)],
            0: [("b",)],
        }
        run_script(machine, script)
        block = machine.layout.block_of(addr)
        assert machine.nodes[1].tags.read_tag(block) is Tag.INVALID
        assert machine.nodes[2].tags.read_tag(block) is Tag.INVALID
        assert machine.nodes[3].tags.read_tag(block) is Tag.READ_WRITE
        assert machine.stats.get("stache.invalidations_sent") == 2
        check_stache_coherence(machine, region)

    def test_read_after_remote_write_gets_fresh_data(self, stache4):
        machine, protocol, region = stache4
        addr = addr_homed_on(machine, region, home=0)
        script = {
            1: [("w", addr, 42), ("b",)],
            2: [("b",), ("r", addr)],
            0: [("b",)],
            3: [("b",)],
        }
        reads = run_script(machine, script)
        assert reads[2] == [42]
        # The writeback demoted node 1 to a read-only sharer.
        block = machine.layout.block_of(addr)
        entry = home_block_entry(machine, block)
        assert entry.state is DirectoryState.SHARED
        assert entry.sharers() == {1, 2}
        assert machine.nodes[1].tags.read_tag(block) is Tag.READ_ONLY
        check_stache_coherence(machine, region)

    def test_upgrade_from_read_only(self, stache4):
        machine, protocol, region = stache4
        addr = addr_homed_on(machine, region, home=0)
        reads = run_script(machine, {1: [("r", addr), ("w", addr, 5),
                                         ("r", addr)]})
        assert reads[1] == [0, 5]
        entry = home_block_entry(machine, machine.layout.block_of(addr))
        assert entry.state is DirectoryState.EXCLUSIVE
        assert entry.owner == 1
        check_stache_coherence(machine, region)


class TestHomeFaults:
    def test_home_read_of_remote_exclusive_block(self, stache4):
        machine, protocol, region = stache4
        addr = addr_homed_on(machine, region, home=0)
        script = {
            1: [("w", addr, 11), ("b",)],
            0: [("b",), ("r", addr)],
            2: [("b",)],
            3: [("b",)],
        }
        reads = run_script(machine, script)
        assert reads[0] == [11]
        block = machine.layout.block_of(addr)
        entry = home_block_entry(machine, block)
        assert entry.state is DirectoryState.SHARED
        assert entry.sharers() == {1}
        assert machine.nodes[0].tags.read_tag(block) is Tag.READ_ONLY
        check_stache_coherence(machine, region)

    def test_home_write_reclaims_block(self, stache4):
        machine, protocol, region = stache4
        addr = addr_homed_on(machine, region, home=0)
        script = {
            1: [("w", addr, 11), ("b",)],
            0: [("b",), ("w", addr, 22)],
            2: [("b",)],
            3: [("b",)],
        }
        run_script(machine, script)
        block = machine.layout.block_of(addr)
        entry = home_block_entry(machine, block)
        assert entry.state is DirectoryState.HOME
        assert machine.nodes[0].tags.read_tag(block) is Tag.READ_WRITE
        assert machine.nodes[1].tags.read_tag(block) is Tag.INVALID
        assert machine.nodes[0].image.read(addr) == 22
        check_stache_coherence(machine, region)

    def test_home_access_before_any_sharing_needs_no_protocol(self, stache4):
        machine, protocol, region = stache4
        addr = addr_homed_on(machine, region, home=0)
        run_script(machine, {0: [("w", addr, 1), ("r", addr)]})
        assert machine.stats.get("node0.cpu.block_faults") == 0
        assert machine.stats.get("network.packets") == 0


class TestPageReplacement:
    def test_fifo_replacement_writes_dirty_data_home(self):
        machine, protocol, region = make_stache_machine(
            nodes=2, shared_bytes=4 * 4096, stache_page_budget=1
        )
        # Two different remote pages homed on node 0.
        pages = [
            page for page in range(region.base, region.end, 4096)
            if machine.heap.home_of(page) == 0
        ]
        addr_a, addr_b = pages[0], pages[1]
        script = {
            1: [("w", addr_a, 77), ("r", addr_b)],
        }
        run_script(machine, script)
        # addr_a's page was replaced to make room for addr_b's page.
        assert machine.stats.get("stache.pages_replaced") == 1
        assert not machine.nodes[1].page_table.is_mapped(addr_a)
        # The dirty block went home.
        assert machine.nodes[0].image.read(addr_a) == 77
        entry = home_block_entry(machine, machine.layout.block_of(addr_a))
        assert entry.state is DirectoryState.HOME
        check_stache_coherence(machine, region)

    def test_replaced_data_survives_round_trip(self):
        machine, protocol, region = make_stache_machine(
            nodes=2, shared_bytes=4 * 4096, stache_page_budget=1
        )
        pages = [
            page for page in range(region.base, region.end, 4096)
            if machine.heap.home_of(page) == 0
        ]
        addr_a, addr_b = pages[0], pages[1]
        reads = run_script(machine, {
            1: [("w", addr_a, 5), ("r", addr_b), ("r", addr_a)],
        })
        # Reading addr_a again replaces addr_b's page and refetches.
        assert reads[1][-1] == 5
        assert machine.stats.get("stache.pages_replaced") == 2
        check_stache_coherence(machine, region)

    def test_clean_pages_replaced_silently(self):
        machine, protocol, region = make_stache_machine(
            nodes=2, shared_bytes=4 * 4096, stache_page_budget=1
        )
        pages = [
            page for page in range(region.base, region.end, 4096)
            if machine.heap.home_of(page) == 0
        ]
        addr_a, addr_b = pages[0], pages[1]
        run_script(machine, {1: [("r", addr_a), ("r", addr_b)]})
        assert machine.stats.get("stache.pages_replaced") == 1
        assert machine.stats.get("stache.replacement_writebacks") == 0
        # The directory still lists node 1 as a (stale) sharer: silent drop.
        entry = home_block_entry(machine, machine.layout.block_of(addr_a))
        assert entry.sharers() == {1}
        check_stache_coherence(machine, region)

    def test_invalidation_of_departed_sharer_is_acked(self):
        machine, protocol, region = make_stache_machine(
            nodes=3, shared_bytes=6 * 4096, stache_page_budget=1
        )
        pages = [
            page for page in range(region.base, region.end, 4096)
            if machine.heap.home_of(page) == 0
        ]
        addr_a, addr_b = pages[0], pages[1]
        script = {
            1: [("r", addr_a), ("r", addr_b), ("b",)],  # drops a silently
            2: [("b",), ("w", addr_a, 3)],              # invalidates stale sharer
            0: [("b",)],
        }
        run_script(machine, script)
        entry = home_block_entry(machine, machine.layout.block_of(addr_a))
        assert entry.state is DirectoryState.EXCLUSIVE
        assert entry.owner == 2
        check_stache_coherence(machine, region)


class TestContention:
    def test_simultaneous_writers_serialize(self, stache4):
        machine, protocol, region = stache4
        addr = addr_homed_on(machine, region, home=0)
        run_script(machine, {
            1: [("w", addr, 1)],
            2: [("w", addr, 2)],
            3: [("w", addr, 3)],
        })
        block = machine.layout.block_of(addr)
        entry = home_block_entry(machine, block)
        assert entry.state is DirectoryState.EXCLUSIVE
        # Exactly one final owner; its image holds its own value.
        owner = entry.owner
        assert owner in (1, 2, 3)
        assert machine.nodes[owner].image.read(addr) == owner
        check_stache_coherence(machine, region)

    def test_readers_racing_a_writer(self, stache4):
        machine, protocol, region = stache4
        addr = addr_homed_on(machine, region, home=0)
        reads = run_script(machine, {
            1: [("r", addr)],
            2: [("w", addr, 99)],
            3: [("r", addr)],
        })
        # Every read observes either the initial 0 or the new 99.
        for value in reads[1] + reads[3]:
            assert value in (0, 99)
        check_stache_coherence(machine, region)


class TestExecutionTimeShape:
    def test_remote_miss_costs_more_than_local_hit_path(self, stache4):
        machine, protocol, region = stache4
        addr = addr_homed_on(machine, region, home=0)
        finish = run_script(machine, {1: [("r", addr)]})
        remote_cost = machine.execution_time
        machine2, protocol2, region2 = make_stache_machine(nodes=4)
        addr2 = addr_homed_on(machine2, region2, home=0)
        run_script(machine2, {0: [("r", addr2)]})
        home_cost = machine2.execution_time
        assert remote_cost > home_cost
        assert finish  # per-node times recorded
