"""Property-based protocol correctness.

Two layers of checking:

1. **Sequentialized value correctness** — random reads/writes from random
   nodes, each driven to completion before the next is issued.  Under any
   coherent protocol every read must then return the value of the latest
   completed write to that address.  This exercises the full data-movement
   machinery (fetches, writebacks, invalidations, page replacement) with
   an exact oracle.
2. **Concurrent invariant preservation** — random per-node programs run
   truly concurrently; at quiescence the coherence invariants of
   :mod:`repro.protocols.verify` must hold, and every value read must be
   *some* value written to that address (or the initial zero).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.protocols.verify import (
    check_dirnnb_coherence,
    check_stache_coherence,
)
from repro.sim.process import Process
from tests.protocols.conftest import (
    make_dirnnb_machine,
    make_stache_machine,
    run_script,
)

NODES = 4
PAGES = 4

# An op is (node, is_write, page_index, block_index, value_tag).
OPS = st.lists(
    st.tuples(
        st.integers(0, NODES - 1),
        st.booleans(),
        st.integers(0, PAGES - 1),
        st.integers(0, 3),
        st.integers(0, 999),
    ),
    min_size=1,
    max_size=40,
)


def drive_sequentially(machine, region, ops):
    """Run each op to completion in order; return read observations."""
    observations = []
    expected = {}
    for index, (node, is_write, page, block, tag) in enumerate(ops):
        addr = region.base + page * 4096 + block * 32
        if is_write:
            value = (tag, index)
            process = Process(
                machine.engine, machine.nodes[node].access(addr, True, value)
            )
            machine.engine.run()
            assert process.finished.done
            expected[addr] = value
        else:
            process = Process(
                machine.engine, machine.nodes[node].access(addr, False)
            )
            machine.engine.run()
            assert process.finished.done
            observations.append((addr, process.finished.value,
                                 expected.get(addr, 0)))
    return observations


@given(ops=OPS, seed=st.integers(0, 5))
@settings(max_examples=40, deadline=None)
def test_property_stache_sequential_reads_see_latest_write(ops, seed):
    machine, protocol, region = make_stache_machine(
        nodes=NODES, seed=seed, shared_bytes=PAGES * 4096
    )
    for addr, got, want in drive_sequentially(machine, region, ops):
        assert got == want, f"read {addr:#x}: got {got}, want {want}"
    check_stache_coherence(machine, region)


@given(ops=OPS, seed=st.integers(0, 5))
@settings(max_examples=40, deadline=None)
def test_property_dirnnb_sequential_reads_see_latest_write(ops, seed):
    machine, region = make_dirnnb_machine(
        nodes=NODES, seed=seed, shared_bytes=PAGES * 4096
    )
    for addr, got, want in drive_sequentially(machine, region, ops):
        assert got == want, f"read {addr:#x}: got {got}, want {want}"
    check_dirnnb_coherence(machine, region)


@given(ops=OPS, seed=st.integers(0, 5))
@settings(max_examples=30, deadline=None)
def test_property_stache_sequential_with_page_replacement(ops, seed):
    """Same oracle but with a 1-page stache budget: constant replacement."""
    machine, protocol, region = make_stache_machine(
        nodes=NODES, seed=seed, shared_bytes=PAGES * 4096,
        stache_page_budget=1,
    )
    for addr, got, want in drive_sequentially(machine, region, ops):
        assert got == want, f"read {addr:#x}: got {got}, want {want}"
    check_stache_coherence(machine, region)


def split_concurrent(ops):
    """Group the op stream into one program per node."""
    programs = {node: [] for node in range(NODES)}
    writes = set()
    for node, is_write, page, block, tag in ops:
        addr = 0x1000_0000 + page * 4096 + block * 32
        if is_write:
            value = (node, tag)
            programs[node].append(("w", addr, value))
            writes.add((addr, value))
        else:
            programs[node].append(("r", addr))
    return programs, writes


@given(ops=OPS, seed=st.integers(0, 5))
@settings(max_examples=30, deadline=None)
def test_property_stache_concurrent_invariants_hold(ops, seed):
    machine, protocol, region = make_stache_machine(
        nodes=NODES, seed=seed, shared_bytes=PAGES * 4096
    )
    programs, writes = split_concurrent(ops)
    reads = run_script(machine, programs)
    check_stache_coherence(machine, region)
    # Every read observes the initial value or some written value.
    legal = {value for _addr, value in writes} | {0}
    for node_reads in reads.values():
        for value in node_reads:
            assert value in legal


@given(ops=OPS, seed=st.integers(0, 5))
@settings(max_examples=30, deadline=None)
def test_property_dirnnb_concurrent_invariants_hold(ops, seed):
    machine, region = make_dirnnb_machine(
        nodes=NODES, seed=seed, shared_bytes=PAGES * 4096
    )
    programs, writes = split_concurrent(ops)
    reads = run_script(machine, programs)
    check_dirnnb_coherence(machine, region)
    legal = {value for _addr, value in writes} | {0}
    for node_reads in reads.values():
        for value in node_reads:
            assert value in legal


@given(ops=OPS)
@settings(max_examples=15, deadline=None)
def test_property_same_seed_same_execution_time(ops):
    """Determinism: identical runs produce identical cycle counts."""
    times = []
    for _ in range(2):
        machine, protocol, region = make_stache_machine(
            nodes=NODES, seed=7, shared_bytes=PAGES * 4096
        )
        programs, _writes = split_concurrent(ops)
        run_script(machine, programs)
        times.append(machine.execution_time)
    assert times[0] == times[1]
