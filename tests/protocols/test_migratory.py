"""Tests for the migratory-sharing custom protocol."""

import pytest

from repro.memory.tags import Tag
from repro.protocols.directory import DirectoryState
from repro.protocols.migratory import MIGRATORY_THRESHOLD, MigratoryProtocol
from repro.protocols.verify import check_stache_coherence
from repro.sim.config import MachineConfig
from repro.typhoon.system import TyphoonMachine
from tests.protocols.conftest import run_script


def make_machine(nodes=4, seed=1):
    machine = TyphoonMachine(MachineConfig(nodes=nodes, seed=seed))
    protocol = MigratoryProtocol()
    machine.install_protocol(protocol)
    region = machine.heap.allocate(4 * 4096, label="test")
    protocol.setup_region(region)
    return machine, protocol, region


def addr_homed_on(machine, region, home):
    for page in range(region.base, region.end, machine.layout.page_size):
        if machine.heap.home_of(page) == home:
            return page
    raise AssertionError


def migrate_rounds(machine, addr, nodes, rounds):
    """Each node in turn reads then writes the datum (MP3D's pattern)."""
    script = {n: [] for n in range(machine.num_nodes)}
    for round_ in range(rounds):
        for turn in nodes:
            for node in range(machine.num_nodes):
                if node == turn:
                    script[node].append(("r", addr))
                    script[node].append(("w", addr, (round_, turn)))
                script[node].append(("b",))
    return run_script(machine, script)


class TestDetection:
    def test_block_marked_after_threshold_upgrades(self):
        machine, protocol, region = make_machine()
        addr = addr_homed_on(machine, region, home=0)
        migrate_rounds(machine, addr, nodes=[1, 2, 3], rounds=1)
        block = machine.layout.block_of(addr)
        assert protocol.is_migratory(0, block)
        assert machine.stats.get("migratory.blocks_marked") == 1

    def test_not_marked_below_threshold(self):
        machine, protocol, region = make_machine()
        addr = addr_homed_on(machine, region, home=0)
        migrate_rounds(machine, addr, nodes=[1], rounds=1)  # one upgrade
        assert MIGRATORY_THRESHOLD > 1
        assert not protocol.is_migratory(0, machine.layout.block_of(addr))

    def test_pure_read_sharing_never_marks(self):
        machine, protocol, region = make_machine()
        addr = addr_homed_on(machine, region, home=0)
        run_script(machine, {n: [("r", addr)] for n in range(4)})
        assert not protocol.is_migratory(0, machine.layout.block_of(addr))
        assert machine.stats.get("migratory.exclusive_read_grants") == 0


class TestExploitation:
    def test_migratory_read_granted_exclusive(self):
        machine, protocol, region = make_machine()
        addr = addr_homed_on(machine, region, home=0)
        migrate_rounds(machine, addr, nodes=[1, 2, 3, 1], rounds=1)
        block = machine.layout.block_of(addr)
        # The fourth migration happened after marking: its read got RW.
        assert machine.stats.get("migratory.exclusive_read_grants") >= 1
        assert machine.nodes[1].tags.read_tag(block) is Tag.READ_WRITE
        check_stache_coherence(machine, region)

    def test_optimization_halves_transactions(self):
        def run(protocol_cls):
            machine = TyphoonMachine(MachineConfig(nodes=4, seed=1))
            protocol = protocol_cls()
            machine.install_protocol(protocol)
            region = machine.heap.allocate(4 * 4096, label="test")
            protocol.setup_region(region)
            addr = addr_homed_on(machine, region, home=0)
            migrate_rounds(machine, addr, nodes=[1, 2, 3], rounds=4)
            faults = machine.stats.total(".cpu.block_faults")
            return machine.execution_time, faults

        from repro.protocols.stache import StacheProtocol

        plain_time, plain_faults = run(StacheProtocol)
        mig_time, mig_faults = run(MigratoryProtocol)
        # After detection, each migration faults once (read) not twice
        # (read + upgrade).
        assert mig_faults < plain_faults
        assert mig_time < plain_time

    def test_values_stay_correct(self):
        machine, protocol, region = make_machine()
        addr = addr_homed_on(machine, region, home=0)
        reads = migrate_rounds(machine, addr, nodes=[1, 2, 3], rounds=3)
        # Every node's read observed the previous writer's value: node 2
        # always reads node 1's fresh write, node 3 reads node 2's, and
        # node 1 reads node 3's from the previous round.
        assert reads[2] == [(0, 1), (1, 1), (2, 1)]
        assert reads[3] == [(0, 2), (1, 2), (2, 2)]
        assert reads[1] == [0, (0, 3), (1, 3)]
        check_stache_coherence(machine, region)


class TestSelfCorrection:
    def test_misprediction_reverts_block(self):
        machine, protocol, region = make_machine()
        addr = addr_homed_on(machine, region, home=0)
        block = machine.layout.block_of(addr)
        # Phase 1: genuine migration marks the block.
        migrate_rounds(machine, addr, nodes=[1, 2, 3], rounds=1)
        assert protocol.is_migratory(0, block)
        # Phase 2: the pattern becomes read-only sharing.  Node 1 reads
        # (gets an unverified exclusive grant, never writes), then node 2
        # reads — recalling node 1's copy clean.
        script = {
            1: [("r", addr), ("b",)],
            2: [("b",), ("r", addr)],
            0: [("b",)],
            3: [("b",)],
        }
        run_script(machine, script)
        assert machine.stats.get("migratory.mispredictions") == 1
        assert not protocol.is_migratory(0, block)
        check_stache_coherence(machine, region)

    def test_after_reversion_reads_share_again(self):
        machine, protocol, region = make_machine()
        addr = addr_homed_on(machine, region, home=0)
        block = machine.layout.block_of(addr)
        migrate_rounds(machine, addr, nodes=[1, 2, 3], rounds=1)
        # Trigger the misprediction, then have two nodes read.
        script = {
            1: [("r", addr), ("b",), ("b",)],
            2: [("b",), ("r", addr), ("b",)],
            3: [("b",), ("b",), ("r", addr)],
            0: [("b",), ("b",)],
        }
        run_script(machine, script)
        entry = machine.nodes[0].tempest.page_entry(addr).user_word[block]
        # Normal read sharing restored: multiple simultaneous readers.
        assert entry.state is DirectoryState.SHARED
        assert entry.sharer_count >= 2
        check_stache_coherence(machine, region)


class TestMp3dEndToEnd:
    def test_mp3d_benefits_from_migratory_protocol(self):
        from repro.apps.base import run_app
        from repro.apps.mp3d import Mp3dApplication

        def run(protocol_cls):
            machine = TyphoonMachine(
                MachineConfig(nodes=4, seed=2).with_cache_size(2048))
            protocol = protocol_cls()
            machine.install_protocol(protocol)
            app = Mp3dApplication(molecules=96, space_cells=8,
                                  iterations=4, seed=2)
            time = run_app(machine, app, protocol)
            return time, machine

        from repro.protocols.stache import StacheProtocol

        plain_time, _ = run(StacheProtocol)
        mig_time, machine = run(MigratoryProtocol)
        assert machine.stats.get("migratory.blocks_marked") > 0
        assert mig_time < plain_time
