"""The protocol/backend registries and system composition.

Covers the composition layer's contract: registry contents and order,
alias resolution, capability validation (with the missing capability
named), registry-derived error suggestions, cost-domain resolution, the
TempestPort structural check on both backends — and the import ban that
keeps every module under ``repro.protocols`` backend-neutral.
"""

import ast
import pathlib

import pytest

import repro.protocols as protocols_pkg
from repro.backends import (
    ALIASES,
    BACKENDS,
    CompositionError,
    all_systems,
    canonical_name,
    compose,
    parse_system,
    spec_name_for,
)
from repro.protocols.registry import (
    CAPABILITIES,
    PROTOCOLS,
    protocol_entry,
    protocol_names,
)
from repro.sim.config import MachineConfig
from repro.tempest.port import CostDomain, TempestPort


def _config(nodes=2, cache=1024, seed=3):
    return MachineConfig(nodes=nodes, seed=seed).with_cache_size(cache)


# ----------------------------------------------------------------------
# Registry contents
# ----------------------------------------------------------------------
def test_protocol_registry_contents_and_order():
    assert protocol_names() == ("stache", "migratory", "ivy", "em3d-update")
    for entry in PROTOCOLS.values():
        assert entry.requires <= CAPABILITIES
        assert callable(entry.factory)


def test_backend_registry_contents():
    assert tuple(BACKENDS) == ("dirnnb", "typhoon", "decoupled", "blizzard")
    for entry in BACKENDS.values():
        assert entry.provides <= CAPABILITIES
    assert BACKENDS["dirnnb"].builtin_protocol == "dirnnb"
    assert BACKENDS["typhoon"].builtin_protocol is None
    # Blizzard's one missing capability is the decoupled handler
    # processor — the whole point of the hardware NP.
    assert (BACKENDS["typhoon"].provides - BACKENDS["blizzard"].provides
            == {"decoupled-handlers"})
    # The decoupled backend's second CPU provides exactly that: same
    # capability set as Typhoon, implemented in software.
    assert BACKENDS["decoupled"].provides == BACKENDS["typhoon"].provides


def test_all_systems_is_the_valid_matrix():
    assert all_systems() == (
        "dirnnb",
        "typhoon:stache", "typhoon:migratory", "typhoon:ivy",
        "typhoon:em3d-update",
        "decoupled:stache", "decoupled:migratory", "decoupled:ivy",
        "decoupled:em3d-update",
        "blizzard:stache", "blizzard:migratory", "blizzard:ivy",
    )


def test_every_alias_resolves_to_a_valid_system():
    for alias, canonical in ALIASES.items():
        assert canonical_name(alias) == canonical
        assert canonical in all_systems()
        backend, protocol = parse_system(alias)
        assert backend.name == canonical.split(":")[0]
        assert protocol.name == canonical.split(":")[1]


def test_legacy_system_names_still_compose():
    for alias in ("typhoon-stache", "typhoon-update", "blizzard-stache"):
        machine, protocol = compose(alias, _config())
        assert protocol is not None
        assert isinstance(machine, TempestPort)


def test_unknown_protocol_lookup_names_the_choices():
    with pytest.raises(ValueError, match="stache, migratory, ivy"):
        protocol_entry("flash")


# ----------------------------------------------------------------------
# Composition validation
# ----------------------------------------------------------------------
def test_unknown_system_error_suggests_the_registry():
    for bad in ("flash", "typhoon:flash", "flash:stache"):
        with pytest.raises(ValueError) as excinfo:
            parse_system(bad)
        message = str(excinfo.value)
        assert "typhoon:stache" in message
        assert "blizzard:ivy" in message
        assert "typhoon-stache" in message  # aliases listed too
        assert not isinstance(excinfo.value, CompositionError)


def test_capability_mismatch_is_rejected_with_the_missing_capability():
    with pytest.raises(CompositionError, match="decoupled-handlers"):
        parse_system("blizzard:em3d-update")


def test_capability_mismatch_names_every_missing_capability(monkeypatch):
    """A combo missing several capabilities gets *all* of them named.

    No shipped backend misses more than one capability, so fake one
    with an empty provides-set and ask for the hungriest protocol."""
    import repro.backends as backends_mod

    bare = backends_mod.BackendEntry(
        name="bare",
        description="provides nothing (test backend)",
        provides=frozenset(),
        factory=lambda config: None,
    )
    monkeypatch.setitem(backends_mod.BACKENDS, "bare", bare)
    with pytest.raises(CompositionError) as excinfo:
        parse_system("bare:em3d-update")
    message = str(excinfo.value)
    for capability in ("active-messages", "decoupled-handlers",
                       "fine-grain-tags"):
        assert capability in message
    # ... and in sorted order, so the message is deterministic.
    positions = [message.index(c) for c in sorted(
        ("active-messages", "decoupled-handlers", "fine-grain-tags"))]
    assert positions == sorted(positions)


def test_builtin_protocol_backend_takes_no_protocol():
    with pytest.raises(CompositionError, match="hardware"):
        parse_system("dirnnb:stache")


def test_bare_protocol_needing_backend_is_rejected():
    with pytest.raises(CompositionError, match="needs a protocol"):
        parse_system("typhoon")


def test_compose_builds_every_registered_system():
    for system in all_systems():
        machine, protocol = compose(system, _config())
        if system == "dirnnb":
            assert protocol is None
            assert machine.costs is None
        else:
            assert machine.protocol is protocol
            assert isinstance(machine, TempestPort)
            expected = PROTOCOLS[system.split(":")[1]].conformance
            if expected is None:
                # No registered protocol is spec-less any more, but an
                # out-of-tree one would still report its installed name.
                assert spec_name_for(machine) == protocol.name
            else:
                assert spec_name_for(machine) == expected


def test_spec_name_for_dirnnb_comes_from_the_backend_registry():
    machine, _ = compose("dirnnb", _config())
    assert spec_name_for(machine) == "dirnnb"


# ----------------------------------------------------------------------
# Cost domains
# ----------------------------------------------------------------------
def test_cost_domains_resolve_from_each_backend_config():
    config = _config()
    typhoon, _ = compose("typhoon:stache", config)
    decoupled, _ = compose("decoupled:stache", config)
    blizzard, _ = compose("blizzard:stache", config)
    assert typhoon.costs.domain == "typhoon"
    assert decoupled.costs.domain == "decoupled"
    assert blizzard.costs.domain == "blizzard"
    assert (typhoon.costs.miss_request
            == config.typhoon.miss_request_instructions)
    assert (decoupled.costs.miss_request
            == config.decoupled.miss_request_instructions)
    assert (blizzard.costs.miss_request
            == config.blizzard.miss_request_instructions)
    # The software backends run the same protocol library on commodity
    # CPUs: their path lengths agree with each other, and every one of
    # them carries a software surcharge over the Typhoon count (the
    # BlizzardCosts de-mirror; block_copy is a bus property and stays).
    for name in CostDomain.names():
        assert decoupled.costs.get(name) == blizzard.costs.get(name), name
        if name == "block_copy":
            assert typhoon.costs.get(name) == blizzard.costs.get(name)
        else:
            assert typhoon.costs.get(name) < blizzard.costs.get(name), name


def test_cost_domain_rejects_unknown_names():
    costs = CostDomain.from_typhoon(MachineConfig().typhoon)
    with pytest.raises(KeyError):
        costs.get("np_clock_multiplier")
    with pytest.raises(KeyError):
        costs["domain"]


def test_every_tempest_backend_satisfies_tempest_port():
    for system in ("typhoon:stache", "decoupled:stache", "blizzard:stache"):
        machine, _ = compose(system, _config())
        assert isinstance(machine, TempestPort)
        assert machine.num_nodes == 2
        assert isinstance(machine.costs, CostDomain)


# ----------------------------------------------------------------------
# The import ban: protocols never touch backend modules
# ----------------------------------------------------------------------
BANNED_PREFIXES = ("repro.typhoon", "repro.decoupled", "repro.blizzard")


def _imported_modules(path: pathlib.Path):
    tree = ast.parse(path.read_text())
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                yield alias.name
        elif isinstance(node, ast.ImportFrom) and node.module:
            yield node.module


def test_no_protocol_module_imports_a_backend():
    """Backend neutrality, enforced: the whole ``repro.protocols``
    package — including lazy function-level imports — never names
    ``repro.typhoon``, ``repro.decoupled``, or ``repro.blizzard``."""
    package_dir = pathlib.Path(protocols_pkg.__file__).parent
    sources = sorted(package_dir.glob("*.py"))
    assert len(sources) >= 8  # the package did not move out from under us
    for source in sources:
        for module in _imported_modules(source):
            for banned in BANNED_PREFIXES:
                assert not module.startswith(banned), (
                    f"{source.name} imports {module}"
                )
