"""Tests for the coherence verifier itself: does it catch corruption?

A checker that never fires is worthless; these tests inject each class of
violation into an otherwise healthy machine and assert detection.
"""

import pytest

from repro.memory.cache import LineState
from repro.memory.tags import Tag
from repro.protocols.directory import DirectoryState
from repro.protocols.verify import (
    CoherenceViolation,
    check_dirnnb_coherence,
    check_stache_coherence,
)
from tests.protocols.conftest import (
    make_dirnnb_machine,
    make_stache_machine,
    run_script,
)


def addr_homed_on(machine, region, home):
    for page in range(region.base, region.end, machine.layout.page_size):
        if machine.heap.home_of(page) == home:
            return page
    raise AssertionError


class TestStacheVerifier:
    def healthy(self):
        machine, protocol, region = make_stache_machine(nodes=3)
        addr = addr_homed_on(machine, region, home=0)
        run_script(machine, {1: [("r", addr)], 2: [("r", addr)]})
        check_stache_coherence(machine, region)  # sanity: passes clean
        return machine, region, addr

    def test_detects_multiple_writers(self):
        machine, region, addr = self.healthy()
        machine.nodes[1].tags.set_rw(addr)
        machine.nodes[2].tags.set_rw(addr)
        with pytest.raises(CoherenceViolation, match="multiple writers"):
            check_stache_coherence(machine, region)

    def test_detects_writer_reader_coexistence(self):
        machine, region, addr = self.healthy()
        machine.nodes[1].tags.set_rw(addr)
        with pytest.raises(CoherenceViolation):
            check_stache_coherence(machine, region)

    def test_detects_reader_missing_from_directory(self):
        machine, region, addr = self.healthy()
        home_page = machine.nodes[0].tempest.page_entry(addr)
        entry = home_page.user_word[machine.layout.block_of(addr)]
        entry.remove_sharer(1)
        with pytest.raises(CoherenceViolation, match="sharer list"):
            check_stache_coherence(machine, region)

    def test_detects_diverged_reader_data(self):
        machine, region, addr = self.healthy()
        machine.nodes[2].image.write(addr, "corrupted")
        with pytest.raises(CoherenceViolation, match="data"):
            check_stache_coherence(machine, region)

    def test_detects_busy_tag_at_quiescence(self):
        machine, region, addr = self.healthy()
        machine.nodes[1].tags.set_tag(addr, Tag.BUSY)
        with pytest.raises(CoherenceViolation, match="Busy"):
            check_stache_coherence(machine, region)

    def test_detects_transient_directory_state(self):
        machine, region, addr = self.healthy()
        home_page = machine.nodes[0].tempest.page_entry(addr)
        entry = home_page.user_word[machine.layout.block_of(addr)]
        entry.state = DirectoryState.PENDING_INVALIDATE
        with pytest.raises(CoherenceViolation, match="transient"):
            check_stache_coherence(machine, region)

    def test_detects_wrong_owner(self):
        machine, protocol, region = make_stache_machine(nodes=3)
        addr = addr_homed_on(machine, region, home=0)
        run_script(machine, {1: [("w", addr, 5)]})
        home_page = machine.nodes[0].tempest.page_entry(addr)
        entry = home_page.user_word[machine.layout.block_of(addr)]
        entry.owner = 2
        with pytest.raises(CoherenceViolation, match="owner"):
            check_stache_coherence(machine, region)


class TestDirNNBVerifier:
    def healthy(self):
        machine, region = make_dirnnb_machine(nodes=3)
        addr = addr_homed_on(machine, region, home=0)
        run_script(machine, {1: [("r", addr)], 2: [("r", addr)]})
        check_dirnnb_coherence(machine, region)
        return machine, region, addr

    def test_detects_multiple_owners(self):
        machine, region, addr = self.healthy()
        block = machine.layout.block_of(addr)
        machine.nodes[1].cache.insert(block, LineState.EXCLUSIVE)
        machine.nodes[2].cache.insert(block, LineState.EXCLUSIVE)
        with pytest.raises(CoherenceViolation, match="multiple owners"):
            check_dirnnb_coherence(machine, region)

    def test_detects_untracked_sharer(self):
        machine, region, addr = self.healthy()
        block = machine.layout.block_of(addr)
        entry = machine.nodes[0].directory.entries()[block]
        entry.sharers.discard(1)
        with pytest.raises(CoherenceViolation):
            check_dirnnb_coherence(machine, region)

    def test_detects_owner_sharer_coexistence(self):
        machine, region, addr = self.healthy()
        block = machine.layout.block_of(addr)
        machine.nodes[1].cache.insert(block, LineState.EXCLUSIVE)
        with pytest.raises(CoherenceViolation):
            check_dirnnb_coherence(machine, region)
