"""Direct unit tests of the DirNNB directory controller state machine.

The end-to-end tests exercise the controller through full machines; these
drive it message by message and inspect the entry states, occupancy
charging, and pending-queue behaviour in isolation.
"""

import pytest

from repro.network.message import Message, VirtualNetwork
from repro.protocols.directory import DirectoryState
from repro.protocols.dirnnb import DirNNBMachine
from repro.sim.config import MachineConfig

BLOCK = 0x1000_0000


@pytest.fixture
def machine():
    machine = DirNNBMachine(MachineConfig(nodes=4, seed=1))
    machine.heap.allocate(4096)  # makes BLOCK a managed address
    return machine


def get(machine, requester, want_write, addr=BLOCK, local=False):
    machine.nodes[0].directory.receive(Message(
        src=requester, dst=0, handler="dir.get",
        vnet=VirtualNetwork.REQUEST,
        payload={"addr": addr, "requester": requester,
                 "want_write": want_write, "local": local},
    ))


def drain(machine):
    machine.engine.run()


class TestEntryLifecycle:
    def test_entry_materializes_on_demand(self, machine):
        controller = machine.nodes[0].directory
        assert BLOCK not in controller.entries()
        entry = controller.entry(BLOCK)
        assert entry.state is DirectoryState.HOME
        assert BLOCK in controller.entries()

    def test_first_read_grants_exclusive_clean(self, machine):
        machine.nodes[1]._miss_grant = _fake_future(machine)
        get(machine, requester=1, want_write=False)
        drain(machine)
        entry = machine.nodes[0].directory.entry(BLOCK)
        assert entry.state is DirectoryState.EXCLUSIVE
        assert entry.owner == 1

    def test_second_read_produces_shared_pair(self, machine):
        machine.nodes[1]._miss_grant = _fake_future(machine)
        get(machine, 1, False)
        drain(machine)
        machine.nodes[2]._miss_grant = _fake_future(machine)
        get(machine, 2, False)
        drain(machine)
        entry = machine.nodes[0].directory.entry(BLOCK)
        assert entry.state is DirectoryState.SHARED
        assert entry.sharers == {1, 2}


class TestTransients:
    def test_requests_queue_behind_transient(self, machine):
        machine.nodes[1]._miss_grant = _fake_future(machine)
        get(machine, 1, True)
        drain(machine)
        # Owner is 1.  Two more writers race in; both queue/serialize.
        machine.nodes[2]._miss_grant = _fake_future(machine)
        machine.nodes[3]._miss_grant = _fake_future(machine)
        get(machine, 2, True)
        get(machine, 3, True)
        drain(machine)
        entry = machine.nodes[0].directory.entry(BLOCK)
        assert entry.state is DirectoryState.EXCLUSIVE
        assert entry.owner == 3  # served in arrival order: 2 then 3
        assert not entry.pending

    def test_surplus_ack_is_structural_error(self, machine):
        from repro.sim.engine import SimulationError

        with pytest.raises(SimulationError, match="surplus ack"):
            machine.nodes[0].directory.receive(Message(
                src=1, dst=0, handler="dir.ack",
                vnet=VirtualNetwork.RESPONSE,
                payload={"addr": BLOCK, "sharer": 1},
            ))

    def test_unexpected_wb_data_is_structural_error(self, machine):
        from repro.sim.engine import SimulationError

        with pytest.raises(SimulationError):
            machine.nodes[0].directory.receive(Message(
                src=1, dst=0, handler="dir.wb_data",
                vnet=VirtualNetwork.RESPONSE,
                payload={"addr": BLOCK, "owner": 1, "held": True},
            ))

    def test_unknown_message_rejected(self, machine):
        from repro.sim.engine import SimulationError

        with pytest.raises(SimulationError, match="unknown directory"):
            machine.nodes[0].directory.receive(Message(
                src=1, dst=0, handler="dir.bogus",
                vnet=VirtualNetwork.REQUEST,
                payload={},
            ))


class TestOccupancyCharging:
    def test_remote_get_charges_table2_costs(self, machine):
        machine.nodes[1]._miss_grant = _fake_future(machine)
        before = machine.stats.get("node0.dir.occupancy_cycles")
        get(machine, 1, False)
        drain(machine)
        charged = machine.stats.get("node0.dir.occupancy_cycles") - before
        # 16 base + 5 for the data message + 11 block sent.
        assert charged == 32

    def test_local_messagefree_get_is_free(self, machine):
        machine.nodes[0]._miss_grant = _fake_future(machine)
        before = machine.stats.get("node0.dir.occupancy_cycles")
        get(machine, 0, False, local=True)
        drain(machine)
        assert machine.stats.get("node0.dir.occupancy_cycles") == before

    def test_local_get_needing_messages_is_charged(self, machine):
        # Node 1 takes the block; then the home's own (local) write must
        # recall it — messages flow, so the op is charged.
        machine.nodes[1]._miss_grant = _fake_future(machine)
        get(machine, 1, True)
        drain(machine)
        before = machine.stats.get("node0.dir.occupancy_cycles")
        machine.nodes[0]._miss_grant = _fake_future(machine)
        get(machine, 0, True, local=True)
        drain(machine)
        assert machine.stats.get("node0.dir.occupancy_cycles") > before

    def test_replays_counted(self, machine):
        machine.nodes[1]._miss_grant = _fake_future(machine)
        get(machine, 1, True)
        drain(machine)
        # Node 2's write starts a writeback round trip; node 3's request
        # lands mid-flight (entry transient) so it queues on the entry
        # and is replayed when the transaction completes.
        machine.nodes[2]._miss_grant = _fake_future(machine)
        machine.nodes[3]._miss_grant = _fake_future(machine)
        get(machine, 2, True)
        machine.engine.schedule(5, get, machine, 3, True)
        drain(machine)
        assert machine.stats.get("node0.dir.replays") >= 1
        entry = machine.nodes[0].directory.entry(BLOCK)
        assert entry.owner == 3


class TestReplacementHints:
    def test_dirty_hint_returns_block_home(self, machine):
        machine.nodes[1]._miss_grant = _fake_future(machine)
        get(machine, 1, True)
        drain(machine)
        machine.nodes[0].directory.receive(Message(
            src=1, dst=0, handler="dir.repl", vnet=VirtualNetwork.RESPONSE,
            payload={"addr": BLOCK, "sharer": 1, "dirty": True},
        ))
        drain(machine)
        entry = machine.nodes[0].directory.entry(BLOCK)
        assert entry.state is DirectoryState.HOME
        assert entry.owner is None

    def test_clean_hint_prunes_sharer(self, machine):
        for node in (1, 2):
            machine.nodes[node]._miss_grant = _fake_future(machine)
            get(machine, node, False)
            drain(machine)
        machine.nodes[0].directory.receive(Message(
            src=1, dst=0, handler="dir.repl", vnet=VirtualNetwork.RESPONSE,
            payload={"addr": BLOCK, "sharer": 1, "dirty": False},
        ))
        drain(machine)
        entry = machine.nodes[0].directory.entry(BLOCK)
        assert entry.sharers == {2}

    def test_last_clean_hint_restores_home_state(self, machine):
        machine.nodes[1]._miss_grant = _fake_future(machine)
        get(machine, 1, False)
        drain(machine)
        machine.nodes[2]._miss_grant = _fake_future(machine)
        get(machine, 2, False)
        drain(machine)
        for node in (1, 2):
            machine.nodes[0].directory.receive(Message(
                src=node, dst=0, handler="dir.repl",
                vnet=VirtualNetwork.RESPONSE,
                payload={"addr": BLOCK, "sharer": node, "dirty": False},
            ))
        drain(machine)
        assert (machine.nodes[0].directory.entry(BLOCK).state
                is DirectoryState.HOME)


def _fake_future(machine):
    from repro.sim.process import Future

    return Future(machine.engine)
