"""The symbolic protocol explorer (repro.protocols.explore).

Covers the explorer's three contracts: it is deterministic (same
tables, same corpus, byte for byte), it enforces the declarative specs
against its own protocol models (a table edit that legalizes nothing
new makes exploration *fail*, not silently shrink), and the committed
litmus corpus covers every reachable ``(state, event)`` edge of every
compilable ProtocolSpec.  Replay of the corpus on the real machines
lives in tests/integration/test_litmus.py.
"""

import dataclasses
import pathlib

import pytest

from repro.protocols.conformance import STACHE_SPEC
from repro.protocols.directory import DirectoryState
from repro.protocols.explore import (
    EXPLORABLE_PROTOCOLS,
    ExploreConfig,
    SpecDivergence,
    explore,
    explore_protocol,
    synthesize_corpus,
)

CORPUS_DIR = pathlib.Path(__file__).parents[1] / "litmus"

SMALL = ExploreConfig(nodes=2, blocks=1, ops_per_node=1)


# ----------------------------------------------------------------------
# Exploration mechanics
# ----------------------------------------------------------------------
def test_every_model_explores_under_small_bounds():
    for name in EXPLORABLE_PROTOCOLS:
        result = explore_protocol(name, SMALL)
        assert result.states > 1
        assert result.transitions >= result.states - 1
        assert result.edges
        # Every edge's witness trace actually contains the edge.
        for edge, path in result.edge_paths.items():
            trace_edges = {e for step in path.trace for e in step[-1]}
            assert edge in trace_edges


def test_exploration_is_deterministic():
    one = explore_protocol("stache", SMALL)
    two = explore_protocol("stache", SMALL)
    assert one.edges == two.edges
    assert one.states == two.states
    assert one.transitions == two.transitions


def test_degenerate_bounds_are_rejected():
    with pytest.raises(ValueError, match="degenerate"):
        ExploreConfig(nodes=1)
    with pytest.raises(ValueError, match="no exploration model"):
        explore_protocol("em3d-update", SMALL)


def test_depth_bound_terminates_the_adversarial_livelock():
    """Three nodes can poison each other's grants forever under unfair
    scheduling (each refetch triggers the writeback/invalidation that
    poisons the other's next grant) — the depth bound is what makes the
    walk finite.  A tight bound must terminate quickly and still reach
    the poisoning edge."""
    config = ExploreConfig(nodes=3, blocks=1, ops_per_node=1,
                           total_ops=2, max_steps=12)
    result = explore_protocol("stache", config)
    assert result.states > 1
    assert ("pending-invalidate", "stache.inval", "Busy") in result.edges


def test_model_divergence_from_the_spec_tables_is_an_error():
    """Drop one legal transition from the stache tables: the model (a
    line-for-line twin of the handlers) must step outside the narrowed
    spec and raise, naming the missing edge — the same tripwire that
    would catch the spec and the implementation drifting apart."""
    model_cls = EXPLORABLE_PROTOCOLS["stache"]
    narrowed = dataclasses.replace(
        STACHE_SPEC,
        directory_transitions=frozenset(
            edge for edge in STACHE_SPEC.directory_transitions
            if edge != (DirectoryState.HOME, DirectoryState.SHARED)
        ),
    )

    class Narrowed(model_cls):
        spec = narrowed

    with pytest.raises(SpecDivergence, match="home -> shared"):
        explore(Narrowed(SMALL), SMALL)


# ----------------------------------------------------------------------
# Corpus coverage: the tentpole acceptance property
# ----------------------------------------------------------------------
@pytest.mark.parametrize("protocol", sorted(EXPLORABLE_PROTOCOLS))
def test_corpus_covers_every_reachable_edge(protocol):
    """The committed corpus is a *complete* set cover: the union of its
    cases' edges equals every (state, event, dst-state) edge the
    bounded exploration of the protocol's spec can reach.  One test per
    unique compilable spec (migratory shares stache's tables and
    em3d-update's corpus is stache-derived)."""
    cases, result = synthesize_corpus(protocol)
    covered = {tuple(edge) for case in cases for edge in case.edges}
    assert covered == result.edges
    # And the committed corpus files carry exactly these cases.
    import json

    committed = json.loads(
        (CORPUS_DIR / f"{protocol}.json").read_text())["cases"]
    assert [case["name"] for case in committed] == [c.name for c in cases]
    committed_edges = {
        tuple(edge) for case in committed for edge in case["edges"]
    }
    assert committed_edges == result.edges


def test_stache_corpus_enumerates_the_overtaking_family():
    """The grant-vs-invalidation overtaking family is derived, not
    sampled: the corpus contains cases that poison a grant and cases
    that complete the poisoned-grant refetch."""
    cases, _result = synthesize_corpus("stache")
    poisoning = [c for c in cases
                 if c.expect_stats.get("stache.grants_poisoned")]
    refetching = [c for c in cases
                  if c.expect_stats.get("stache.poisoned_grants_refetched")]
    assert poisoning
    assert refetching
    # The schedule that pins the family is pure delay arithmetic on the
    # two independent channels (DATA on response, INVAL on request).
    case = refetching[0]
    delayed = {rule["handler"] for rule in case.schedule}
    assert "stache.data" in delayed
    assert "stache.inval" in delayed


def test_synthesized_schedules_are_well_formed():
    for protocol in sorted(EXPLORABLE_PROTOCOLS):
        cases, _ = synthesize_corpus(protocol)
        for case in cases:
            assert case.programs, case.name
            for rule in case.schedule:
                assert rule["occurrence"] >= 1
                assert rule["delay"] >= 0
                assert rule["action"] in (None, "reorder")
                assert rule["src"] != rule["dst"]
            for node, ops in case.programs.items():
                assert 0 <= node < case.nodes
                ats = [at for _op, _block, at in ops]
                assert ats == sorted(ats)  # program order is time order
