"""Tests for the access-history consistency checker, and property tests
running it as an oracle over both protocols."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.protocols.history import (
    AccessHistory,
    AccessRecord,
    check_register_consistency,
)
from tests.protocols.conftest import (
    make_dirnnb_machine,
    make_stache_machine,
    run_script,
)


def rec(node, addr, is_write, value, start, end):
    return AccessRecord(node, addr, is_write, value, start, end)


class TestCheckerUnit:
    def check(self, *records):
        history = AccessHistory()
        for record in records:
            history.record(record.node, record.addr, record.is_write,
                           record.value, record.start, record.end)
        return check_register_consistency(history)

    def test_read_of_initial_value_is_legal(self):
        assert self.check(rec(0, 0x100, False, 0, 0, 5)) == []

    def test_read_after_write_sees_it(self):
        violations = self.check(
            rec(0, 0x100, True, 7, 0, 10),
            rec(1, 0x100, False, 7, 20, 25),
        )
        assert violations == []

    def test_read_of_stale_initial_after_completed_write_is_violation(self):
        violations = self.check(
            rec(0, 0x100, True, 7, 0, 10),
            rec(1, 0x100, False, 0, 20, 25),
        )
        assert len(violations) == 1
        assert "overwritten" in str(violations[0]) or "never written" in str(
            violations[0])

    def test_read_overlapping_write_may_see_either_value(self):
        assert self.check(
            rec(0, 0x100, True, 7, 10, 30),
            rec(1, 0x100, False, 0, 15, 20),
        ) == []
        assert self.check(
            rec(0, 0x100, True, 7, 10, 30),
            rec(1, 0x100, False, 7, 15, 20),
        ) == []

    def test_read_of_overwritten_value_is_violation(self):
        violations = self.check(
            rec(0, 0x100, True, 1, 0, 10),
            rec(0, 0x100, True, 2, 20, 30),
            rec(1, 0x100, False, 1, 40, 45),
        )
        assert len(violations) == 1

    def test_read_of_never_written_value_is_violation(self):
        violations = self.check(rec(1, 0x100, False, 99, 0, 5))
        assert len(violations) == 1
        assert "never written" in str(violations[0])

    def test_read_of_future_write_is_violation(self):
        violations = self.check(
            rec(0, 0x100, True, 7, 50, 60),
            rec(1, 0x100, False, 7, 0, 5),
        )
        assert len(violations) == 1

    def test_concurrent_writes_allow_either_outcome(self):
        for observed in (1, 2):
            assert self.check(
                rec(0, 0x100, True, 1, 0, 20),
                rec(1, 0x100, True, 2, 5, 25),
                rec(2, 0x100, False, observed, 40, 45),
            ) == []

    def test_addresses_are_independent(self):
        assert self.check(
            rec(0, 0x100, True, 7, 0, 10),
            rec(1, 0x200, False, 0, 20, 25),  # different address: initial ok
        ) == []


NODES = 4
OPS = st.lists(
    st.tuples(
        st.integers(0, NODES - 1),
        st.booleans(),
        st.integers(0, 3),   # page
        st.integers(0, 3),   # block
        st.integers(0, 99),  # value tag
    ),
    min_size=2,
    max_size=40,
)


def programs_from(ops):
    programs = {node: [] for node in range(NODES)}
    for index, (node, is_write, page, block, tag) in enumerate(ops):
        addr = 0x1000_0000 + page * 4096 + block * 32
        if is_write:
            programs[node].append(("w", addr, (node, tag, index)))
        else:
            programs[node].append(("r", addr))
    return programs


@given(ops=OPS, seed=st.integers(0, 3))
@settings(max_examples=25, deadline=None)
def test_property_stache_history_is_register_consistent(ops, seed):
    machine, protocol, region = make_stache_machine(
        nodes=NODES, seed=seed, shared_bytes=4 * 4096)
    machine.history = AccessHistory()
    run_script(machine, programs_from(ops))
    violations = check_register_consistency(machine.history)
    assert violations == [], "\n".join(str(v) for v in violations)


@given(ops=OPS, seed=st.integers(0, 3))
@settings(max_examples=25, deadline=None)
def test_property_dirnnb_history_is_register_consistent(ops, seed):
    machine, region = make_dirnnb_machine(
        nodes=NODES, seed=seed, shared_bytes=4 * 4096)
    machine.history = AccessHistory()
    run_script(machine, programs_from(ops))
    violations = check_register_consistency(machine.history)
    assert violations == [], "\n".join(str(v) for v in violations)


@given(ops=OPS, seed=st.integers(0, 3))
@settings(max_examples=15, deadline=None)
def test_property_stache_with_replacement_is_register_consistent(ops, seed):
    machine, protocol, region = make_stache_machine(
        nodes=NODES, seed=seed, shared_bytes=4 * 4096, stache_page_budget=1)
    machine.history = AccessHistory()
    run_script(machine, programs_from(ops))
    violations = check_register_consistency(machine.history)
    assert violations == [], "\n".join(str(v) for v in violations)


@given(ops=OPS, seed=st.integers(0, 3))
@settings(max_examples=20, deadline=None)
def test_property_migratory_protocol_is_register_consistent(ops, seed):
    """The exclusive-on-read optimization must not break consistency."""
    from repro.protocols.migratory import MigratoryProtocol
    from repro.protocols.verify import check_stache_coherence
    from repro.sim.config import MachineConfig
    from repro.typhoon.system import TyphoonMachine

    machine = TyphoonMachine(MachineConfig(nodes=NODES, seed=seed))
    protocol = MigratoryProtocol()
    machine.install_protocol(protocol)
    region = machine.heap.allocate(4 * 4096, label="test")
    protocol.setup_region(region)
    machine.history = AccessHistory()
    run_script(machine, programs_from(ops))
    violations = check_register_consistency(machine.history)
    assert violations == [], "\n".join(str(v) for v in violations)
    check_stache_coherence(machine, region)
