"""Seed stability: the reproduced shapes are not artifacts of one seed.

The benchmark suite runs at seed 42; these tests re-run compact versions
of the headline comparisons at several seeds and assert the *orderings*
hold every time.  (Absolute numbers legitimately vary: random cache
replacement, graph construction, particle motion.)
"""

import pytest

from repro.apps.em3d import Em3dApplication
from repro.harness.runner import run_application
from repro.sim.config import MachineConfig

SEEDS = (7, 19, 123)


@pytest.mark.parametrize("seed", SEEDS)
def test_figure4_ordering_holds_across_seeds(seed):
    cycles = {}
    for system in ("dirnnb", "typhoon-stache", "typhoon-update"):
        app = Em3dApplication(nodes_per_proc=12, degree=3,
                              remote_fraction=0.5, iterations=2, seed=seed)
        outcome = run_application(
            system, app,
            MachineConfig(nodes=4, seed=seed).with_cache_size(2048),
        )
        cycles[system] = outcome["execution_time"]
    assert cycles["typhoon-update"] < cycles["dirnnb"]
    assert cycles["typhoon-update"] < cycles["typhoon-stache"]


@pytest.mark.parametrize("seed", SEEDS)
def test_stache_capacity_advantage_holds_across_seeds(seed):
    """Barnes small/tiny-cache: the working-set-exceeds-cache win."""
    from repro.apps.barnes import BarnesApplication

    cycles = {}
    for system in ("dirnnb", "typhoon-stache"):
        app = BarnesApplication(bodies=48, iterations=2, seed=seed)
        outcome = run_application(
            system, app,
            MachineConfig(nodes=4, seed=seed).with_cache_size(512),
        )
        cycles[system] = outcome["execution_time"]
    assert cycles["typhoon-stache"] < cycles["dirnnb"]


@pytest.mark.parametrize("seed", SEEDS)
def test_em3d_values_match_reference_across_seeds(seed):
    import math

    app = Em3dApplication(nodes_per_proc=8, degree=3, remote_fraction=0.4,
                          iterations=2, seed=seed)
    outcome = run_application(
        "typhoon-update", app, MachineConfig(nodes=4, seed=seed))
    machine = outcome["machine"]
    ref_e, _ = app.reference_values()
    from repro.apps.em3d import VALUE_OFFSET

    for index in range(app.e_nodes.count):
        got = app.peek(machine, app.e_nodes.addr(index, VALUE_OFFSET))
        assert math.isclose(got, ref_e[index], rel_tol=1e-9, abs_tol=1e-9)
