"""The composable system matrix, end to end.

The registry's portability claim as executable tests: the new
``backend:protocol`` combinations run complete workloads under the
online conformance monitor, identical protocol code produces identical
protocol message counts on every Tempest backend (typhoon, decoupled,
blizzard), and each backend charges the costs from its *own* config
section (the cross-domain billing bug the CostDomain indirection
fixed).
"""

from dataclasses import replace

import pytest

from repro.apps.synthetic import (
    MigratoryApplication,
    ProducerConsumerApplication,
)
from repro.backends import all_systems
from repro.harness.runner import run_application
from repro.harness.sweep import Sweep
from repro.harness.workloads import workload
from repro.sim.config import MachineConfig


def _config(nodes=4, cache=2048, seed=7):
    return MachineConfig(nodes=nodes, seed=seed).with_cache_size(cache)


# ----------------------------------------------------------------------
# New combinations, end to end under conformance
# ----------------------------------------------------------------------
# system -> (execution_time, refs, remote_packets, packets, words);
# mp3d/small at nodes=4, seed=7, 2 KB caches — the same pinned
# configuration as tests/integration/test_determinism_goldens.py.
#
# The blizzard:migratory row was refreshed (133577 -> 165291 cycles,
# message counts shifted with the new interleaving) when ISSUE 10
# de-mirrored BlizzardCosts from the Typhoon path lengths; the
# decoupled:* rows pin the third backend's systems.
NEW_COMBO_GOLDENS = {
    "typhoon:migratory": (74610, 6720, 2814, 2814, 18082),
    "typhoon:ivy": (2103775, 6720, 97594, 99454, 1836794),
    "decoupled:migratory": (116207, 6720, 2818, 2818, 18102),
    "decoupled:ivy": (3074557, 6720, 97594, 99454, 1836794),
    "decoupled:em3d-update": (159752, 6720, 4228, 4228, 25572),
    "blizzard:migratory": (165291, 6720, 2976, 2976, 19040),
}


@pytest.mark.parametrize("system", sorted(NEW_COMBO_GOLDENS))
def test_new_combo_runs_clean_under_conformance(system):
    res = run_application(system, workload("mp3d", "small").build(),
                          _config(), conformance=True)
    stats = res["machine"].stats
    got = (round(res["execution_time"]), round(res["refs"]),
           round(res["remote_packets"]),
           round(stats.get("network.packets")),
           round(stats.get("network.words")))
    assert got == NEW_COMBO_GOLDENS[system]
    monitor = res["machine"].conformance
    assert monitor.checks > 0
    assert monitor.violations == []


def test_blizzard_ivy_runs_clean_under_conformance():
    """The slowest new combo, on a small synthetic workload."""
    res = run_application(
        "blizzard:ivy", ProducerConsumerApplication(buffer_records=8,
                                                    phases=3),
        _config(cache=1024, seed=11), conformance=True)
    monitor = res["machine"].conformance
    assert monitor.checks > 0
    assert monitor.violations == []
    assert res["refs"] > 0


# ----------------------------------------------------------------------
# Cross-backend parity: identical protocol code, identical messages
# ----------------------------------------------------------------------
PARITY_KEYS = (
    "stache.ro_requests", "stache.rw_requests", "stache.blocks_fetched",
    "stache.data_replies", "stache.invalidations_sent",
    "stache.blocks_invalidated", "stache.writeback_requests",
)


def _protocol_counts(system, app):
    res = run_application(system, app, _config(cache=1024, seed=11))
    stats = res["machine"].stats
    counts = {key: stats.get(key) for key in PARITY_KEYS}
    return counts, res["execution_time"]


def test_stache_protocol_counts_identical_across_backends():
    """Section 2's portability claim, quantified: the Stache library
    makes the same protocol decisions on Typhoon, on the decoupled
    backend, and on Blizzard — request for request, invalidation for
    invalidation — and only the *cost* of executing them differs.

    The claim needs a lock-step application: on a timing-sensitive
    workload like mp3d, different dispatch costs change the arrival
    interleaving and with it *which* protocol actions fire (the
    per-backend mp3d goldens above pin those divergent counts).  The
    synthetic producer/consumer phases serialise on barriers, so every
    backend sees the same access sequence and parity is exact."""
    app = lambda: ProducerConsumerApplication(buffer_records=8, phases=3)
    typhoon, t_cycles = _protocol_counts("typhoon:stache", app())
    decoupled, d_cycles = _protocol_counts("decoupled:stache", app())
    blizzard, b_cycles = _protocol_counts("blizzard:stache", app())
    assert typhoon == decoupled == blizzard
    assert typhoon["stache.ro_requests"] > 0
    assert typhoon["stache.invalidations_sent"] > 0
    # Software dispatch is not free, and a dedicated handler CPU beats
    # dispatching on the computation CPU: typhoon < decoupled < blizzard.
    assert t_cycles < d_cycles < b_cycles


def test_migratory_protocol_counts_identical_across_backends():
    app = lambda: MigratoryApplication(records=4, rounds=2)
    typhoon, t_cycles = _protocol_counts("typhoon:migratory", app())
    decoupled, d_cycles = _protocol_counts("decoupled:migratory", app())
    blizzard, b_cycles = _protocol_counts("blizzard:migratory", app())
    assert typhoon == decoupled == blizzard
    assert typhoon["stache.rw_requests"] > 0
    assert t_cycles < d_cycles < b_cycles


# ----------------------------------------------------------------------
# Cost domains: each backend bills from its own config section
# ----------------------------------------------------------------------
def _blizzard_cycles(config):
    return run_application(
        "blizzard:stache",
        ProducerConsumerApplication(buffer_records=4, phases=2),
        config)["execution_time"]


def _typhoon_cycles(config):
    return run_application(
        "typhoon:stache",
        ProducerConsumerApplication(buffer_records=4, phases=2),
        config)["execution_time"]


def test_blizzard_charges_blizzard_configured_costs():
    """The regression the CostDomain refactor exists to prevent:
    Blizzard handler charges come from ``config.blizzard``, and the
    Typhoon cost section has no effect on a Blizzard run."""
    base = _config(nodes=2, cache=1024, seed=3)
    baseline = _blizzard_cycles(base)
    blizzard_bumped = _blizzard_cycles(replace(
        base, blizzard=replace(base.blizzard,
                               home_response_instructions=300)))
    typhoon_bumped = _blizzard_cycles(replace(
        base, typhoon=replace(base.typhoon,
                              home_response_instructions=300)))
    assert blizzard_bumped > baseline
    assert typhoon_bumped == baseline


def test_typhoon_ignores_blizzard_configured_costs():
    base = _config(nodes=2, cache=1024, seed=3)
    baseline = _typhoon_cycles(base)
    typhoon_bumped = _typhoon_cycles(replace(
        base, typhoon=replace(base.typhoon,
                              home_response_instructions=300)))
    blizzard_bumped = _typhoon_cycles(replace(
        base, blizzard=replace(base.blizzard,
                               home_response_instructions=300)))
    assert typhoon_bumped > baseline
    assert blizzard_bumped == baseline


def test_decoupled_charges_decoupled_configured_costs():
    """The third backend bills from ``config.decoupled`` only."""
    def cycles(config):
        return run_application(
            "decoupled:stache",
            ProducerConsumerApplication(buffer_records=4, phases=2),
            config)["execution_time"]

    base = _config(nodes=2, cache=1024, seed=3)
    baseline = cycles(base)
    decoupled_bumped = cycles(replace(
        base, decoupled=replace(base.decoupled,
                                home_response_instructions=300)))
    typhoon_bumped = cycles(replace(
        base, typhoon=replace(base.typhoon,
                              home_response_instructions=300)))
    blizzard_bumped = cycles(replace(
        base, blizzard=replace(base.blizzard,
                               home_response_instructions=300)))
    assert decoupled_bumped > baseline
    assert typhoon_bumped == baseline
    assert blizzard_bumped == baseline


def test_software_backend_costs_no_longer_mirror_typhoon():
    """ISSUE 10 de-mirrored the software cost domains: every handler
    path length now carries a documented software surcharge over the
    Typhoon protocol-processor count (block copy, a bus property, is
    the one number all domains share)."""
    config = MachineConfig()
    from repro.tempest.port import CostDomain

    typhoon = CostDomain.from_typhoon(config.typhoon)
    decoupled = CostDomain.from_decoupled(config.decoupled)
    blizzard = CostDomain.from_blizzard(config.blizzard)
    for name in CostDomain.names():
        assert decoupled.get(name) == blizzard.get(name), name
        if name == "block_copy":
            assert typhoon.get(name) == blizzard.get(name)
        else:
            assert typhoon.get(name) < blizzard.get(name), name


# ----------------------------------------------------------------------
# Harness integration: sweep axis and CLI
# ----------------------------------------------------------------------
def test_sweep_all_systems_axis_covers_the_matrix():
    sweep = Sweep().all_systems()
    assert sweep._systems == list(all_systems())
    cells = sweep.cell_list(nodes=2)
    assert {cell[0] for cell in cells} == set(all_systems())


def test_sweep_matrix_under_conformance_checks_every_system():
    """``all_systems() x conformance(True)`` checks *every* cell: since
    the step-indexed em3d-update spec landed, no registered system runs
    unchecked — every row reports ``on`` with live checks."""
    result = (Sweep().all_systems()
              .workloads(("ocean", "small")).cache_sizes(1024).seeds(5)
              .conformance(True)
              .run(nodes=2))
    by_system = {row["system"]: row for row in result.rows}
    assert set(by_system) == set(all_systems())
    for system, row in by_system.items():
        assert row["conformance"] == "on", system
        assert row["checks"] > 0, system
        assert row["violations"] == 0, system


def test_cli_systems_command_lists_the_matrix(capsys):
    from repro.cli import main

    assert main(["systems"]) == 0
    out = capsys.readouterr().out
    for system in all_systems():
        assert system in out
    assert "decoupled handlers" in out  # the rejection note


def test_system_matrix_reports_conformance_on_for_every_cell():
    """Since the em3d-update spec landed, ``repro matrix`` has no
    unchecked cell left: every row runs under the monitor."""
    from repro.harness.experiments import run_system_matrix

    result = run_system_matrix(nodes=2)
    assert {row["system"] for row in result.rows} == set(all_systems())
    for row in result.rows:
        assert row["conformance"] == "on", row["system"]
        assert row["checks"] > 0, row["system"]


def test_cli_matrix_command_runs_every_system(capsys):
    from repro.cli import main

    assert main(["matrix", "--nodes", "2"]) == 0
    out = capsys.readouterr().out
    for system in all_systems():
        assert system in out
    assert "no spec" not in out  # every row runs under conformance now
    assert "violation" not in out.lower()


def test_run_application_accepts_canonical_and_alias_names():
    app = ProducerConsumerApplication(buffer_records=4, phases=2)
    canonical = run_application("typhoon:stache", app,
                                _config(nodes=2, cache=1024, seed=3))
    app = ProducerConsumerApplication(buffer_records=4, phases=2)
    alias = run_application("typhoon-stache", app,
                            _config(nodes=2, cache=1024, seed=3))
    assert canonical["execution_time"] == alias["execution_time"]
    assert canonical["remote_packets"] == alias["remote_packets"]
