"""End-to-end resilience: protocols under a deterministic lossy network.

The fault layer's acceptance bar (ISSUE 3): with a seeded lossy plan
(drop <= 10%, dup <= 5%, bounded delay), random workloads through both
the Typhoon and Blizzard backends must show

* zero linearizability violations (the per-location oracle of
  ``repro.protocols.history``),
* zero permanently lost transactions (``machine.transport.pending``
  empty at quiescence), and
* the retry/NACK counter family visible in ``Stats``.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blizzard.system import BlizzardMachine
from repro.decoupled.system import DecoupledMachine
from repro.network.faults import FaultPlan, FaultSpec
from repro.protocols.history import AccessHistory, check_register_consistency
from repro.protocols.stache import StacheProtocol
from repro.sim.config import MachineConfig
from tests.protocols.conftest import make_stache_machine, run_script

NODES = 4
PAGES = 4

#: The ISSUE's acceptance plan: drop <= 10%, dup <= 5%, bounded delay.
LOSSY = FaultSpec(name="lossy", drop_pct=0.10, dup_pct=0.05,
                  delay_pct=0.20, delay_min=1, delay_max=16)

# An op is (node, is_write, page_index, block_index, value_tag).
OPS = st.lists(
    st.tuples(
        st.integers(0, NODES - 1),
        st.booleans(),
        st.integers(0, PAGES - 1),
        st.integers(0, 3),
        st.integers(0, 999),
    ),
    min_size=1,
    max_size=40,
)


def make_software_stache_machine(machine_cls, nodes=NODES, seed=1,
                                 shared_bytes=PAGES * 4096, **config_kwargs):
    machine = machine_cls(
        MachineConfig(nodes=nodes, seed=seed, **config_kwargs))
    protocol = StacheProtocol()
    machine.install_protocol(protocol)
    region = machine.heap.allocate(shared_bytes, label="test")
    protocol.setup_region(region)
    return machine, protocol, region


def split_concurrent(ops, base):
    """Group the op stream into one program per node."""
    programs = {node: [] for node in range(NODES)}
    writes = set()
    for node, is_write, page, block, tag in ops:
        addr = base + page * 4096 + block * 32
        if is_write:
            value = (node, tag)
            programs[node].append(("w", addr, value))
            writes.add((addr, value))
        else:
            programs[node].append(("r", addr))
    return programs, writes


def run_under_faults(machine, region, ops, faults=LOSSY):
    """Install the plan, run the concurrent programs, check the oracles."""
    machine.history = AccessHistory()
    machine.install_fault_plan(faults)
    programs, writes = split_concurrent(ops, region.base)
    reads = run_script(machine, programs)
    violations = check_register_consistency(machine.history)
    assert violations == [], "\n".join(str(v) for v in violations)
    assert not machine.transport.pending, "permanently lost transactions"
    legal = {value for _addr, value in writes} | {0}
    for node_reads in reads.values():
        for value in node_reads:
            assert value in legal
    return reads


@given(ops=OPS, seed=st.integers(0, 3))
@settings(max_examples=20, deadline=None)
def test_property_typhoon_stache_survives_lossy_network(ops, seed):
    machine, _protocol, region = make_stache_machine(
        nodes=NODES, seed=seed, shared_bytes=PAGES * 4096)
    run_under_faults(machine, region, ops)


@given(ops=OPS, seed=st.integers(0, 3))
@settings(max_examples=20, deadline=None)
def test_property_blizzard_stache_survives_lossy_network(ops, seed):
    machine, _protocol, region = make_software_stache_machine(
        BlizzardMachine, seed=seed)
    run_under_faults(machine, region, ops)


@given(ops=OPS, seed=st.integers(0, 3))
@settings(max_examples=20, deadline=None)
def test_property_decoupled_stache_survives_lossy_network(ops, seed):
    machine, _protocol, region = make_software_stache_machine(
        DecoupledMachine, seed=seed)
    run_under_faults(machine, region, ops)


@given(ops=OPS, seed=st.integers(0, 3))
@settings(max_examples=10, deadline=None)
def test_property_typhoon_survives_node_faults_too(ops, seed):
    """Lossy links plus bounded queues and periodic NP stalls."""
    machine, _protocol, region = make_stache_machine(
        nodes=NODES, seed=seed, shared_bytes=PAGES * 4096)
    run_under_faults(machine, region, ops, faults=FaultSpec(
        name="hostile", drop_pct=0.05, dup_pct=0.03, delay_pct=0.10,
        delay_min=1, delay_max=8, recv_queue_limit=2,
        stall_every=400, stall_cycles=50))


CONTENDED = {
    node: [("w", 0x1000_0000 + block * 32, (node, block))
           for block in range(8)] + [("b",)]
          + [("r", 0x1000_0000 + node * 32)]
    for node in range(NODES)
}


def test_typhoon_retry_counters_appear_in_stats():
    machine, _protocol, region = make_stache_machine(
        nodes=NODES, seed=2, shared_bytes=PAGES * 4096)
    machine.history = AccessHistory()
    machine.install_fault_plan(FaultPlan.lossy())
    run_script(machine, CONTENDED)
    stats = machine.stats
    assert stats.get("tempest.tracked_sends") > 0
    assert stats.get("tempest.retries") > 0
    assert stats.get("network.fault_drops") > 0
    assert stats.get("tempest.retries") >= stats.get("network.fault_drops")
    assert check_register_consistency(machine.history) == []
    assert not machine.transport.pending


def test_bounded_receive_queue_forces_nacks_and_stays_consistent():
    # All four nodes storm page 0's home with GET_RWs; a one-deep request
    # queue must refuse some of them, and the NACK/retry path must still
    # converge to a consistent outcome.
    machine, _protocol, region = make_stache_machine(
        nodes=NODES, seed=3, shared_bytes=PAGES * 4096)
    machine.history = AccessHistory()
    machine.install_fault_plan(
        FaultSpec(name="bounded", recv_queue_limit=1, retry_timeout=150))
    run_script(machine, CONTENDED)
    stats = machine.stats
    assert stats.get("tempest.nacks_sent") > 0
    assert stats.get("tempest.nacks_received") > 0
    assert check_register_consistency(machine.history) == []
    assert not machine.transport.pending


@pytest.mark.parametrize("machine_cls", [BlizzardMachine, DecoupledMachine],
                         ids=["blizzard", "decoupled"])
def test_software_backend_bounded_inbox_forces_nacks_and_stays_consistent(
        machine_cls):
    machine, _protocol, region = make_software_stache_machine(
        machine_cls, seed=3)
    machine.history = AccessHistory()
    machine.install_fault_plan(
        FaultSpec(name="bounded", recv_queue_limit=1, retry_timeout=150))
    run_script(machine, CONTENDED)
    stats = machine.stats
    assert stats.get("tempest.nacks_sent") > 0
    assert check_register_consistency(machine.history) == []
    assert not machine.transport.pending


def test_faulted_runs_are_reproducible_per_seed():
    def outcome(seed):
        machine, _protocol, region = make_stache_machine(
            nodes=NODES, seed=seed, shared_bytes=PAGES * 4096)
        machine.install_fault_plan(LOSSY)
        run_script(machine, CONTENDED)
        return (machine.engine.now, dict(machine.stats.as_dict()))

    time_a, stats_a = outcome(5)
    time_b, stats_b = outcome(5)
    assert time_a == time_b
    assert stats_a == stats_b
    time_c, stats_c = outcome(6)
    assert (time_c, stats_c) != (time_a, stats_a)  # seed changes schedule
