"""Differential testing: compiled kernel vs the interpreted oracle.

The compiled kernel's whole contract is observable equivalence
(``docs/performance.md``): identical statistics, identical final memory
images, identical execution time — for every compilable system, with
and without conformance monitoring, and under deterministic lossy
networks (where the kernel deopts its network fast paths but keeps the
table-driven NP dispatch).  ``events_fired`` is the one deliberate
exception (engine bookkeeping; the compiled kernel's tail dispatches
skip the event queue).
"""

from __future__ import annotations

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.synthetic import ProducerConsumerApplication
from repro.harness.differential import (
    compare_runs,
    compilable_systems,
    fallback_systems,
    run_differential,
    run_matrix,
)
from repro.harness.runner import run_application
from repro.network.faults import FaultSpec
from repro.sim.config import MachineConfig

SMALL = dict(nodes=2, cache_bytes=1024)


def _tiny_outcome(system, kernel, seed, faults=None):
    config = MachineConfig(nodes=2, seed=seed).with_cache_size(1024)
    return run_application(
        system, ProducerConsumerApplication(buffer_records=4, phases=2),
        config, faults=faults, kernel=kernel,
    )


# ----------------------------------------------------------------------
# The full matrix (what CI's differential job runs at nodes=4)
# ----------------------------------------------------------------------
def test_matrix_covers_every_system():
    assert set(compilable_systems()) == {
        "typhoon:stache", "typhoon:migratory", "typhoon:ivy",
        "blizzard:stache", "blizzard:migratory", "blizzard:ivy",
    }
    # The decoupled backend's handler processor is not specialised by
    # the compiled kernel yet, so all four of its systems exercise the
    # declared-fallback path.
    assert set(fallback_systems()) == {
        "dirnnb", "typhoon:em3d-update",
        "decoupled:stache", "decoupled:migratory", "decoupled:ivy",
        "decoupled:em3d-update",
    }


def test_differential_matrix_bit_identical():
    results = run_matrix(nodes=2, cache_bytes=1024)
    assert len(results) == len(compilable_systems()) + len(fallback_systems())
    for result in results:
        assert result.identical, (result.system, result.diffs)
    compiled = [r for r in results if r.compiled]
    assert {r.system for r in compiled} == set(compilable_systems())
    for result in [r for r in results if not r.compiled]:
        assert result.fallback_reason


def test_differential_under_lossy_network():
    lossy = FaultSpec(name="lossy", drop_pct=0.08, dup_pct=0.04,
                      delay_pct=0.2, delay_min=1, delay_max=12)
    result = run_differential(
        "typhoon:stache", "mp3d", "small",
        MachineConfig(nodes=2, seed=11).with_cache_size(1024),
        faults=lossy,
    )
    # A live plan deopts the network fast paths; dispatch stays
    # table-driven, and the runs must still be bit-identical.
    assert result.compiled
    assert result.identical, result.diffs


def test_divergence_is_detected_not_assumed():
    """compare_runs must actually see through the stats/image/exec-time
    surfaces — feed it two runs that genuinely differ and expect diffs."""
    lossy = FaultSpec(name="lossy", drop_pct=0.1, dup_pct=0.05)
    left = _tiny_outcome("typhoon:stache", "interpreted", seed=7,
                         faults=lossy)
    right = _tiny_outcome("typhoon:stache", "interpreted", seed=8,
                          faults=lossy)
    # Different fault-RNG seeds drop different packets: real divergence.
    assert compare_runs(left, right)
    same = _tiny_outcome("typhoon:stache", "interpreted", seed=7,
                         faults=lossy)
    assert not compare_runs(left, same)


# ----------------------------------------------------------------------
# Property: random lossy networks, conformance on, kernels agree
# ----------------------------------------------------------------------
@settings(max_examples=12, deadline=None)
@given(
    drop=st.integers(0, 10),
    dup=st.integers(0, 5),
    delay=st.integers(0, 25),
    seed=st.integers(0, 2**16),
)
def test_property_lossy_conformance_stats_identical(drop, dup, delay, seed):
    """Any seeded lossy plan, REPRO_CONFORMANCE=1: both kernels produce
    identical statistics and memory images (and the fused conformance
    monitor checked every transition in both)."""
    spec = FaultSpec(
        name="prop", drop_pct=drop / 100, dup_pct=dup / 100,
        delay_pct=delay / 100, delay_min=1, delay_max=9,
    )
    previous = os.environ.get("REPRO_CONFORMANCE")
    os.environ["REPRO_CONFORMANCE"] = "1"
    try:
        interpreted = _tiny_outcome(
            "typhoon:stache", "interpreted", seed, faults=spec
        )
        compiled = _tiny_outcome(
            "typhoon:stache", "compiled", seed, faults=spec
        )
    finally:
        if previous is None:
            del os.environ["REPRO_CONFORMANCE"]
        else:
            os.environ["REPRO_CONFORMANCE"] = previous
    assert compiled["kernel"] == "compiled"
    diffs = compare_runs(interpreted, compiled)
    assert not diffs, diffs
    imon = interpreted["machine"].conformance
    cmon = compiled["machine"].conformance
    assert imon is not None and cmon is not None
    assert imon.checks == cmon.checks
    assert imon.checks > 0
