"""Property tests: batched access lanes vs the scalar decomposition.

The vectorised run lanes (``AppContext.read_run`` / ``write_run`` /
``access_plan``) promise that batching changes wall-clock only: for any
interleaving of scalar and run accesses, on any backend, under any
fault plan, the batched run is bit-identical — execution time, every
statistic, every node's final memory image — to decomposing each run
into per-element ``read``/``write`` calls.  Hypothesis generates the
interleavings; ``compare_runs`` is the judge.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.base import AppContext, Application, SharedArray, run_app
from repro.harness.differential import compare_runs
from repro.harness.runner import run_application
from repro.memory.mirror import PAGE_MAPPED, TLB_PRESENT
from repro.network.faults import FaultSpec
from repro.protocols.stache import StacheProtocol
from repro.sim.config import MachineConfig
from repro.typhoon.system import TyphoonMachine

#: One record per cache block; 136 records = 4352 bytes, so the flat
#: (non-striped) array straddles a 4 KB page boundary and generated
#: runs can cross it.
RECORDS = 136
RECORD_BYTES = 32


class InterleavingApplication(Application):
    """Executes a generated program of scalar and run accesses."""

    name = "synthetic.interleave"

    def __init__(self, program):
        self.program = program
        self.array: SharedArray | None = None

    def setup(self, machine, protocol=None) -> None:
        self.array = SharedArray(machine, protocol, RECORDS, RECORD_BYTES,
                                 label="ilv", striped=False)
        for index in range(RECORDS):
            self.poke(machine, self.array.addr(index), 0)

    def worker(self, ctx: AppContext):
        addr = self.array.addr
        shift = ctx.node_id * 3  # nodes overlap but are not identical
        value = ctx.node_id * 1000
        for op, payload in self.program:
            if op == "read":
                yield from ctx.read(addr((payload + shift) % RECORDS))
            elif op == "write":
                value += 1
                yield from ctx.write(addr((payload + shift) % RECORDS),
                                     value)
            elif op == "read_run":
                yield from ctx.read_run(
                    [addr((i + shift) % RECORDS) for i in payload])
            elif op == "write_run":
                pairs = []
                for i in payload:
                    value += 1
                    pairs.append((addr((i + shift) % RECORDS), value))
                yield from ctx.write_run(pairs)
            elif op == "plan":
                plan = []
                for i, is_write in payload:
                    if is_write:
                        value += 1
                        plan.append((addr((i + shift) % RECORDS), True,
                                     value))
                    else:
                        plan.append((addr((i + shift) % RECORDS), False,
                                     None))
                yield from ctx.access_plan(plan)
            elif op == "compute":
                yield from ctx.compute(flops=payload)
            elif op == "barrier":
                yield from ctx.barrier()
        yield from ctx.barrier()


INDICES = st.integers(0, RECORDS - 1)
#: Consecutive-biased runs: half the generated runs are a contiguous
#: slice (the shape the lanes batch best and the shape that straddles
#: pages), half arbitrary gathers.
RUNS = st.one_of(
    st.lists(INDICES, min_size=1, max_size=12),
    st.tuples(INDICES, st.integers(1, 12)).map(
        lambda span: [(span[0] + k) % RECORDS for k in range(span[1])]),
)
PROGRAMS = st.lists(
    st.one_of(
        st.tuples(st.just("read"), INDICES),
        st.tuples(st.just("write"), INDICES),
        st.tuples(st.just("read_run"), RUNS),
        st.tuples(st.just("write_run"), RUNS),
        st.tuples(st.just("plan"),
                  st.lists(st.tuples(INDICES, st.booleans()),
                           min_size=1, max_size=10)),
        st.tuples(st.just("compute"), st.integers(0, 6)),
        st.tuples(st.just("barrier"), st.just(0)),
    ),
    min_size=1, max_size=10,
)

LOSSY = FaultSpec(name="lossy", drop_pct=0.05, dup_pct=0.03,
                  delay_pct=0.15, delay_min=1, delay_max=9)


@given(program=PROGRAMS,
       system=st.sampled_from(["typhoon:stache", "blizzard:stache",
                               "typhoon:migratory"]),
       kernel=st.sampled_from(["interpreted", "compiled"]),
       faulty=st.booleans())
@settings(max_examples=25, deadline=None)
def test_property_interleavings_bit_identical(program, system, kernel,
                                              faulty):
    faults = LOSSY if faulty else None
    config = MachineConfig(nodes=2, seed=7).with_cache_size(1024)
    outcomes = {}
    for lanes in ("scalar", "batched"):
        outcomes[lanes] = run_application(
            system, InterleavingApplication(program), config,
            faults=faults, kernel=kernel, lanes=lanes,
        )
    diffs = compare_runs(outcomes["scalar"], outcomes["batched"],
                         labels=("scalar", "batched"))
    assert not diffs, (system, kernel, faulty, diffs)


# ----------------------------------------------------------------------
# Regression: a run straddling a page boundary splits at the boundary
# ----------------------------------------------------------------------
class _WarmFirstPage(Application):
    """Touches every word of the region's first page only."""

    name = "synthetic.warm"

    def __init__(self, region):
        self.region = region

    def setup(self, machine, protocol=None) -> None:
        pass

    def worker(self, ctx: AppContext):
        base = self.region.base
        for offset in range(0, 4096, 8):
            yield from ctx.read(base + offset)


def test_run_straddling_page_boundary_splits():
    machine = TyphoonMachine(MachineConfig(nodes=1, seed=3))
    protocol = StacheProtocol()
    machine.install_protocol(protocol)
    region = machine.heap.allocate(2 * 4096, label="straddle")
    protocol.setup_region(region)
    for offset in range(0, 2 * 4096, 8):
        machine.nodes[0].image.write(region.base + offset, offset)
    run_app(machine, _WarmFirstPage(region), protocol)

    node = machine.nodes[0]
    boundary = region.base + 4096
    # Four words each side of the page boundary; only the first page is
    # TLB-resident and cached.
    addrs = [boundary - 32 + 8 * k for k in range(8)]
    page0, page1 = addrs[0] >> 12, addrs[-1] >> 12
    assert page0 != page1
    flags = node.mirror.page_flags
    assert flags.get(page0, 0) & TLB_PRESENT
    assert flags.get(page0, 0) & PAGE_MAPPED
    assert not flags.get(page1, 0) & TLB_PRESENT

    out: list = []
    index = node.run_read_prefix(addrs, 0, out)
    # The lane commits exactly the first-page prefix and stops at the
    # boundary; the unmapped second page is the tail's problem.
    assert index == 4, index
    assert out == [addrs[k] - region.base for k in range(4)]

    # After the scalar path services the straddling element (one block
    # fetch maps the page and caches the block), the retried lane
    # commits the rest of the run.
    def service(node_id):
        yield from node.access(addrs[4], False)

    machine.run_workers(service)
    machine.engine._until = None
    out2: list = []
    index2 = node.run_read_prefix(addrs, 5, out2)
    assert index2 == 8, index2
    assert out2 == [addrs[k] - region.base for k in range(5, 8)]
