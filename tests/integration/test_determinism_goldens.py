"""Pinned end-to-end goldens for the hot-path kernel work.

The simulator's contract is that performance work never changes results:
for a fixed seed, every cycle count, message count, and statistic is
bit-identical before and after any optimisation.  These values were
captured from the pre-optimisation tree (seed commit) and must never
drift — if one of these fails, an "optimisation" changed simulated
behaviour and is a bug, full stop.

Unlike :mod:`tests.integration.test_golden_timing` (hand-derived
single-access costs), these pin whole-run outcomes: mini Figure 3 and
Figure 4 sweeps and a full mp3d run on all three systems, plus a digest
of per-node statistics.
"""

import pytest

from repro.harness.experiments import run_figure3, run_figure4
from repro.harness.runner import run_application
from repro.harness.workloads import workload
from repro.sim.config import MachineConfig


@pytest.fixture(scope="module")
def mp3d_outcomes():
    """One mp3d run per system at the pinned configuration (nodes=4, seed=7)."""
    outcomes = {}
    for system in ("dirnnb", "typhoon-stache", "decoupled-stache",
                   "blizzard-stache"):
        config = MachineConfig(nodes=4, seed=7).with_cache_size(2048)
        outcomes[system] = run_application(
            system, workload("mp3d", "small").build(), config)
    return outcomes


def test_figure3_mini_sweep_cycle_counts_pinned():
    result = run_figure3(apps=("ocean", "em3d"), nodes=4, seed=42,
                         configurations=[("small", 2048, 16384)])
    got = {(row["application"], row["dataset"], row["cache"]):
           (row["dirnnb_cycles"], row["stache_cycles"])
           for row in result.rows}
    assert got == {
        ("ocean", "small", 2048): (16939, 17879),
        ("em3d", "small", 2048): (30951, 32313),
    }


def test_figure4_mini_sweep_cycle_counts_pinned():
    result = run_figure4(nodes=4, nodes_per_proc=12, degree=3, iterations=2,
                         cache_bytes=2048, fractions=(0.0, 0.3), seed=42)
    got = {round(row["remote_pct"]):
           (row["dirnnb"], row["typhoon_stache"], row["typhoon_update"])
           for row in result.rows}
    assert got == {
        0: (18.770833333333332, 18.46527777777778, 18.15972222222222),
        30: (109.27083333333333, 121.63888888888889, 65.02083333333333),
    }


# system -> (execution_time, refs, remote_packets, packets, words)
#
# The blizzard-stache row was refreshed (172351 -> 217956 cycles, and
# the message counts shifted with the changed interleaving) when ISSUE
# 10 de-mirrored BlizzardCosts from the Typhoon path lengths to genuine
# software-Tempest estimates; dirnnb and typhoon-stache are untouched.
# The decoupled-stache row pins the third backend, between the two.
MP3D_GOLDENS = {
    "dirnnb": (81630, 6720, 3938, 5622, 31170),
    "typhoon-stache": (97765, 6720, 4234, 4234, 25630),
    "decoupled-stache": (159752, 6720, 4228, 4228, 25572),
    "blizzard-stache": (217956, 6720, 4506, 4506, 27222),
}


def test_mp3d_message_counts_pinned_on_all_systems(mp3d_outcomes):
    for system, expected in MP3D_GOLDENS.items():
        res = mp3d_outcomes[system]
        stats = res["machine"].stats
        got = (round(res["execution_time"]), round(res["refs"]),
               round(res["remote_packets"]),
               round(stats.get("network.packets")),
               round(stats.get("network.words")))
        assert got == expected, f"{system}: {got} != {expected}"


def test_mp3d_typhoon_stats_digest_pinned(mp3d_outcomes):
    stats = mp3d_outcomes["typhoon-stache"]["machine"].stats
    digest = {
        "block_faults": stats.total(".cpu.block_faults"),
        "page_faults": stats.total(".cpu.page_faults"),
        "access_cycles": stats.total(".access_cycles"),
        "barrier_cycles": stats.total(".barrier_cycles"),
        "tlb_misses": stats.total(".tlb_misses"),
        "local_misses": stats.total(".local_misses"),
        "handler_cycles": stats.total(".handler_cycles"),
        "messages_received": stats.total(".messages_received"),
    }
    assert digest == {
        "block_faults": 1401,
        "page_faults": 3,
        "access_cycles": 333546.0,
        "barrier_cycles": 49834.0,
        "tlb_misses": 8,
        "local_misses": 2269,
        "handler_cycles": 167300.0,
        "messages_received": 4234,
    }


def test_mp3d_goldens_bit_identical_with_null_fault_plan():
    """Installing FaultPlan.none() (or any null spec) changes nothing.

    The fault layer's determinism contract: a null plan installs zero
    events, zero counters, zero RNG draws, so every pinned golden above
    holds bit-for-bit with the plan "active"."""
    from repro.network.faults import FaultPlan, FaultSpec

    for faults in (FaultPlan.none(), FaultSpec(name="none")):
        for system, expected in MP3D_GOLDENS.items():
            config = MachineConfig(nodes=4, seed=7).with_cache_size(2048)
            res = run_application(
                system, workload("mp3d", "small").build(), config,
                faults=faults)
            stats = res["machine"].stats
            got = (round(res["execution_time"]), round(res["refs"]),
                   round(res["remote_packets"]),
                   round(stats.get("network.packets")),
                   round(stats.get("network.words")))
            assert got == expected, f"{system} under {faults!r}: {got}"
            assert res["machine"].fault_plan is None
            assert res["machine"].transport is None
