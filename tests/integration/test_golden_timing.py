"""Golden timing tests: pinned cycle counts for canonical scenarios.

These protect the cost model from accidental drift.  Each expected value
is derivable by hand from Table 2 and the Section 6 handler path lengths;
the derivation is spelled out next to each assertion.  If a deliberate
cost-model change breaks one, re-derive and update the constant *and*
EXPERIMENTS.md.
"""

import pytest

from repro.memory.tags import Tag
from repro.sim.process import Process
from tests.protocols.conftest import make_dirnnb_machine, make_stache_machine


def run_one(machine, node, addr, is_write=False, value=None):
    start = machine.engine.now
    process = Process(machine.engine,
                      machine.nodes[node].access(addr, is_write, value))
    machine.engine.run()
    assert process.finished.done
    return machine.engine.now - start


def first_page_homed_on(machine, region, home):
    for page in range(region.base, region.end, 4096):
        if machine.heap.home_of(page) == home:
            return page
    raise AssertionError


class TestDirNNBGolden:
    def test_remote_clean_read_miss(self):
        machine, region = make_dirnnb_machine(nodes=4, seed=1)
        addr = first_page_homed_on(machine, region, home=0)
        cycles = run_one(machine, 1, addr)
        # 25 TLB miss + 23 issue + 11 net + (16 + 5 + 11) directory
        # + 11 net + 34 finish = 136.
        assert cycles == 136

    def test_remote_miss_without_tlb_miss(self):
        machine, region = make_dirnnb_machine(nodes=4, seed=1)
        addr = first_page_homed_on(machine, region, home=0)
        run_one(machine, 1, addr)           # warm the TLB
        cycles = run_one(machine, 1, addr + 64)  # same page, new block
        assert cycles == 136 - 25

    def test_read_of_remote_dirty_block(self):
        machine, region = make_dirnnb_machine(nodes=4, seed=1)
        addr = first_page_homed_on(machine, region, home=0)
        run_one(machine, 1, addr, is_write=True, value=1)
        cycles = run_one(machine, 2, addr)
        # 25 TLB + 23 issue + 11 net
        # + dir op #1: owner lookup, one wb message (16 + 5) = 21
        # + 11 net + 8 owner response + 11 net back
        # + dir op #2: wb_data in, grant out (16 + 11 + 5 + 11) = 43
        # + 11 net + 34 finish = 198.
        assert cycles == 25 + 23 + 11 + 21 + 11 + 8 + 11 + 43 + 11 + 34


class TestStacheGolden:
    def test_cold_remote_read(self):
        machine, protocol, region = make_stache_machine(nodes=4, seed=1)
        addr = first_page_homed_on(machine, region, home=0)
        cycles = run_one(machine, 1, addr)
        # CPU: 25 TLB miss + 250 page-fault handler
        # fault: 5 BAF dispatch + 25 RTLB miss + 14 request handler
        # + 11 net + (30 home handler + 25 home NP TLB miss)
        # + 11 net + (20 data handler + 25 requester NP TLB miss)
        # + 29 retried local miss = 470.
        # The per-block data-copy charges extend NP *occupancy* after the
        # send/resume, so they are off the critical path — exactly the
        # paper's "most bookkeeping is performed after a message is sent".
        assert cycles == (25 + 250
                          + 5 + 25 + 14
                          + 11 + 30 + 25
                          + 11 + 20 + 25
                          + 29)

    def test_second_block_on_stached_page_skips_page_fault_and_rtlb(self):
        machine, protocol, region = make_stache_machine(nodes=4, seed=1)
        addr = first_page_homed_on(machine, region, home=0)
        cold = run_one(machine, 1, addr)
        warm = run_one(machine, 1, addr + 32)
        # Saves: 25 CPU TLB + 250 page fault + 25 RTLB + two 25-cycle NP
        # TLB misses (home side and requester side).
        assert cold - warm == 25 + 250 + 25 + 25 + 25
        # Warm remote miss: (5+14) fault + 11 + 30 home + 11 + 20 data
        # + 29 retry = 120.
        assert warm == 5 + 14 + 11 + 30 + 11 + 20 + 29

    def test_stached_reread_is_pure_hardware(self):
        machine, protocol, region = make_stache_machine(nodes=4, seed=1)
        addr = first_page_homed_on(machine, region, home=0)
        run_one(machine, 1, addr)
        assert run_one(machine, 1, addr) == 1  # cache hit

    def test_capacity_miss_on_stached_data_costs_local_dram(self):
        """The Figure 3 mechanism: re-fetch from local memory, 29 cycles."""
        machine, protocol, region = make_stache_machine(nodes=4, seed=1)
        addr = first_page_homed_on(machine, region, home=0)
        run_one(machine, 1, addr)
        machine.nodes[1].cache.invalidate(addr)  # simulate a capacity evict
        assert run_one(machine, 1, addr) == 29

    def test_home_access_is_exactly_local(self):
        machine, protocol, region = make_stache_machine(nodes=4, seed=1)
        addr = first_page_homed_on(machine, region, home=0)
        assert run_one(machine, 0, addr) == 25 + 29


class TestDeterminism:
    def test_full_em3d_run_is_bit_deterministic(self):
        from repro.apps.em3d import Em3dApplication
        from repro.harness.runner import run_application
        from repro.sim.config import MachineConfig

        times = set()
        for _ in range(2):
            app = Em3dApplication(nodes_per_proc=8, degree=3,
                                  remote_fraction=0.3, iterations=2, seed=3)
            outcome = run_application(
                "typhoon-stache", app, MachineConfig(nodes=4, seed=9))
            times.add(outcome["execution_time"])
        assert len(times) == 1
