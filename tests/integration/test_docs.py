"""The documentation is part of the test surface.

``tools/check_docs.py`` (also CI's ``docs`` job) asserts that every
intra-repository markdown link resolves and that every ```pycon`` block
in ``docs/*.md`` runs as a doctest.  These tests run the same checks
from the suite, plus unit checks of the checker itself.
"""

import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parents[2]

sys.path.insert(0, str(ROOT / "tools"))
import check_docs  # noqa: E402


def test_check_docs_script_passes():
    proc = subprocess.run(
        [sys.executable, str(ROOT / "tools" / "check_docs.py")],
        capture_output=True, text=True, timeout=540,
    )
    assert proc.returncode == 0, proc.stderr or proc.stdout
    assert "docs ok" in proc.stdout


def test_every_docs_page_is_discovered():
    found = {path.name for path in check_docs.markdown_files()
             if path.parent.name == "docs"}
    assert {"faults.md", "observability.md", "simulation.md",
            "performance.md"} <= found


def test_link_checker_catches_broken_links(tmp_path):
    (tmp_path / "docs").mkdir()
    (tmp_path / "a.md").write_text(
        "[ok](docs) [bad](missing.md) [ext](https://example.com) [anchor](#x)"
    )
    errors = check_docs.check_links(tmp_path)
    assert len(errors) == 1
    assert "missing.md" in errors[0]


def test_doctest_checker_catches_failing_blocks(tmp_path):
    docs = tmp_path / "docs"
    docs.mkdir()
    (docs / "page.md").write_text(
        "intro\n\n```pycon\n>>> 1 + 1\n3\n```\n")
    errors = check_docs.check_doctests(tmp_path)
    assert len(errors) == 1
    assert "page.md" in errors[0]


def test_doctest_state_carries_across_fences(tmp_path):
    docs = tmp_path / "docs"
    docs.mkdir()
    (docs / "page.md").write_text(
        "first\n\n```pycon\n>>> x = 41\n```\n\n"
        "second\n\n```pycon\n>>> x + 1\n42\n```\n")
    assert check_docs.check_doctests(tmp_path) == []


def test_index_checker_catches_orphaned_docs_pages(tmp_path):
    docs = tmp_path / "docs"
    docs.mkdir()
    (docs / "linked.md").write_text("content\n")
    (docs / "orphan.md").write_text("content\n")
    (tmp_path / "README.md").write_text(
        "Index:\n\n* [linked](docs/linked.md)\n")
    errors = check_docs.check_index(tmp_path)
    assert len(errors) == 1
    assert "orphan.md" in errors[0]


def test_index_checker_passes_when_every_page_is_linked(tmp_path):
    docs = tmp_path / "docs"
    docs.mkdir()
    (docs / "a.md").write_text("content\n")
    (tmp_path / "README.md").write_text("* [a](docs/a.md#anchor)\n")
    assert check_docs.check_index(tmp_path) == []


def test_repo_docs_index_is_complete():
    """Every page in docs/ is reachable from the README index."""
    assert check_docs.check_index() == []


def test_symbol_checker_catches_stale_references(tmp_path):
    docs = tmp_path / "docs"
    docs.mkdir()
    (docs / "page.md").write_text(
        "Live: `repro.sim.stats.Stats`.  Stale: `repro.sim.stats.Gone`.\n\n"
        "```pycon\n>>> pass  # `repro.fenced.refs.are.not.checked`\n```\n")
    errors = check_docs.check_symbols(tmp_path)
    assert len(errors) == 1
    assert "repro.sim.stats.Gone" in errors[0]
    assert "page.md:1" in errors[0]


def test_fault_docs_cover_the_public_surface():
    """Every public symbol of repro.network.faults appears in docs/faults.md."""
    text = (ROOT / "docs" / "faults.md").read_text()
    for symbol in ("FaultSpec", "FaultPlan", "RELIABILITY_LADDER",
                   "drop_pct", "dup_pct", "delay_pct", "reorder_pct",
                   "stall_every", "recv_queue_limit", "baf_limit",
                   "send_queue_depth", "retry_timeout", "retry_backoff",
                   "nack_backoff", "max_attempts", "fault_attempt_limit"):
        assert symbol in text, f"docs/faults.md does not mention {symbol}"
