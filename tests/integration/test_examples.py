"""Smoke tests: every example program runs and reports sane output.

The examples are deliverables; a refactor that breaks one must fail the
suite.  Each runs in a subprocess (they are user-facing scripts), with
the slow sweeps pinned to tiny configurations.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name, *args, timeout=240):
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=timeout,
    )
    assert completed.returncode == 0, completed.stderr
    return completed.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "DirNNB" in out
    assert "Typhoon/Stache" in out
    assert "relative" in out


def test_custom_sync():
    out = run_example("custom_sync.py")
    assert "max threads in section    : 1" in out


def test_message_passing():
    out = run_example("message_passing.py")
    assert "(must be 0)" in out
    assert "global sum" in out


def test_minimal_protocol():
    out = run_example("minimal_protocol.py")
    assert "four small handlers" in out


def test_stache_toolkit():
    out = run_example("stache_toolkit.py")
    assert "checkin" in out
    assert "migration" in out


def test_trace_replay():
    out = run_example("trace_replay.py")
    assert "dirnnb" in out
    assert "ivy" in out


def test_em3d_custom_protocol_small():
    out = run_example("em3d_custom_protocol.py", "--nodes", "2")
    assert "figure4" in out
    assert "custom protocol outperforms DirNNB" in out


def test_figure3_sweep_small():
    out = run_example("figure3_sweep.py", "--nodes", "2", "--apps", "ocean")
    assert "figure3" in out
    assert "ocean" in out


def test_every_example_has_a_smoke_test():
    """New examples must land with a test; this meta-check enforces it."""
    source = Path(__file__).read_text()
    for script in sorted(EXAMPLES.glob("*.py")):
        assert f'"{script.name}"' in source, (
            f"examples/{script.name} has no run_example() smoke test")
