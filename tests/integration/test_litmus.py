"""The synthesized litmus corpus, replayed on the real machines.

The explorer's traces are only as good as their replays: every
committed case runs on every ``backend:protocol`` system its corpus
maps to, under both dispatch kernels, with strict conformance
monitoring and register-consistency checking.  The late-grant
overtaking family — the race the FaultPlan vocabulary exists to pin —
is additionally asserted *by its counters*: the pinned schedule must
actually poison and refetch a grant on both Tempest backends, not
merely run green.
"""

import pathlib

import pytest

from repro.backends import all_systems
from repro.harness.litmus import (
    CORPUS_PROTOCOLS,
    REPLAY_KERNELS,
    REPLAY_SYSTEMS,
    check_corpus,
    load_corpus,
    replay_case,
)

CORPUS_DIR = pathlib.Path(__file__).parents[1] / "litmus"


# ----------------------------------------------------------------------
# Corpus hygiene
# ----------------------------------------------------------------------
def test_committed_corpus_is_not_stale():
    """Byte-for-byte regeneration: a protocol-table change that alters
    the reachable edges or schedules must be accompanied by a corpus
    regeneration (``python -m repro litmus``)."""
    assert check_corpus(CORPUS_DIR) == []


def test_replay_systems_cover_the_full_matrix():
    covered = {system
               for systems in REPLAY_SYSTEMS.values()
               for system in systems}
    assert covered == set(all_systems())
    assert set(REPLAY_SYSTEMS) == set(CORPUS_PROTOCOLS)


def test_cli_litmus_check_passes_on_the_committed_corpus(capsys):
    from repro.cli import main

    assert main(["litmus", "--check", "--dir", str(CORPUS_DIR)]) == 0
    assert "up to date" in capsys.readouterr().out


def test_cli_litmus_check_reports_drift(tmp_path, capsys):
    from repro.cli import main

    assert main(["litmus", "--dir", str(tmp_path)]) == 0
    capsys.readouterr()
    stale = tmp_path / "stache.json"
    stale.write_text(stale.read_text().replace('"delay": ', '"delay":  ', 1))
    assert main(["litmus", "--check", "--dir", str(tmp_path)]) == 1
    assert "stale" in capsys.readouterr().out


# ----------------------------------------------------------------------
# Full-matrix replay
# ----------------------------------------------------------------------
MATRIX = [
    (protocol, system, kernel)
    for protocol in CORPUS_PROTOCOLS
    for system in REPLAY_SYSTEMS[protocol]
    for kernel in REPLAY_KERNELS
]


@pytest.mark.parametrize("protocol,system,kernel", MATRIX)
def test_corpus_replays_clean(protocol, system, kernel):
    """Every case of every corpus file: no conformance violation, no
    register-consistency violation, nothing left in flight, and the
    monitor actually watched the run."""
    cases = load_corpus(CORPUS_DIR, protocol)
    assert cases
    total_checks = 0
    for case in cases:
        replay = replay_case(case, system, kernel=kernel)
        assert replay.consistency == [], (case.name, system, kernel)
        assert replay.violations == [], (case.name, system, kernel)
        assert replay.in_flight == 0, (case.name, system, kernel)
        total_checks += replay.checks
    assert total_checks > 0


# ----------------------------------------------------------------------
# The overtaking family, pinned and counted
# ----------------------------------------------------------------------
@pytest.mark.parametrize("system", ["typhoon:stache", "decoupled:stache", "blizzard:stache"])
def test_late_grant_overtaking_family_replays_deterministically(system):
    """A *synthesized* case (not a hand-written one) drives the real
    machine through grant poisoning and the poisoned-grant refetch on
    both Tempest backends: the invalidation, pinned to an earlier slot
    than the delayed data reply, arrives while the requester's tag is
    still Busy."""
    cases = load_corpus(CORPUS_DIR, "stache")
    family = [case for case in cases
              if case.expect_stats.get("stache.poisoned_grants_refetched")]
    assert family, "corpus lost the overtaking family"
    for case in family:
        replay = replay_case(case, system)
        assert replay.clean, (case.name, system)
        assert replay.stats["stache.grants_poisoned"] >= 1, case.name
        assert replay.stats["stache.poisoned_grants_refetched"] >= 1, \
            case.name
        # Determinism: an identical replay lands on the same cycle.
        again = replay_case(case, system)
        assert again.execution_time == replay.execution_time
        assert again.stats == replay.stats


def test_model_counters_match_the_real_machine_on_stache():
    """Stronger than green: for every stache case, the counters the
    abstract model predicted along its trace are *lower bounds* the
    real replay meets — the model and the machine agree on what the
    schedule makes happen, not just that nothing breaks."""
    for case in load_corpus(CORPUS_DIR, "stache"):
        replay = replay_case(case, "typhoon:stache")
        for counter, expected in case.expect_stats.items():
            assert replay.stats[counter] >= expected, (case.name, counter)
