"""Paper-scale smoke tests: the full 32-node configuration of Section 6.

The benchmark suite defaults to 8 nodes for speed; these tests pin that
nothing about the model breaks at the paper's actual node count —
including the software directory's pointer->bitvector overflow, which
only triggers with more than six sharers.
"""

import pytest

from repro.apps.base import run_app
from repro.apps.em3d import Em3dApplication
from repro.apps.synthetic import ReadMostlyApplication
from repro.harness.runner import run_application
from repro.protocols.stache import StacheProtocol
from repro.protocols.verify import check_stache_coherence
from repro.sim.config import MachineConfig
from repro.typhoon.system import TyphoonMachine
from tests.protocols.conftest import make_stache_machine, run_script


def test_32_node_em3d_on_all_three_systems():
    results = {}
    for system in ("dirnnb", "typhoon-stache", "typhoon-update"):
        app = Em3dApplication(nodes_per_proc=4, degree=2,
                              remote_fraction=0.4, iterations=2, seed=7)
        outcome = run_application(system, app,
                                  MachineConfig(nodes=32, seed=7))
        results[system] = outcome["execution_time"]
    assert all(time > 0 for time in results.values())
    # The headline ordering holds at paper scale too.
    assert results["typhoon-update"] < results["dirnnb"]
    assert results["typhoon-update"] < results["typhoon-stache"]


def test_32_node_read_sharing_overflows_pointer_directory():
    """31 sharers of one block: the six-pointer entry must go bit-vector."""
    machine = TyphoonMachine(MachineConfig(nodes=32, seed=7))
    protocol = StacheProtocol()
    machine.install_protocol(protocol)
    app = ReadMostlyApplication(records=2, reads_per_phase=1, phases=1)
    run_app(machine, app, protocol)

    home = machine.heap.home_of(app.array.addr(0))
    page = machine.nodes[home].tempest.page_entry(app.array.addr(0))
    entry = page.user_word[machine.layout.block_of(app.array.addr(0))]
    assert entry.sharer_count >= 30
    assert entry.representation == "bitvector"
    for region in app.array.regions:
        check_stache_coherence(machine, region)


def test_32_node_write_invalidates_31_sharers():
    machine, protocol, region = make_stache_machine(
        nodes=32, shared_bytes=32 * 4096)
    addr = region.base
    home = machine.heap.home_of(addr)
    writer = (home + 1) % 32
    script = {}
    for node in range(32):
        ops = []
        if node != writer:
            ops.append(("r", addr))
        ops.append(("b",))
        if node == writer:
            ops.append(("w", addr, "final"))
        script[node] = ops
    run_script(machine, script)
    block = machine.layout.block_of(addr)
    page = machine.nodes[home].tempest.page_entry(addr)
    entry = page.user_word[block]
    assert entry.owner == writer
    assert entry.sharer_count == 0
    assert machine.stats.get("stache.invalidations_sent") >= 30
    check_stache_coherence(machine, region)
