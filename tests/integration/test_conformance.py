"""Online conformance checking end to end.

Two statements proved here:

1. **The protocols conform.**  The same lossy-network hypothesis programs
   the fault-resilience suite runs, re-run with ``enable_conformance()``:
   every directory/tag transition and every grant/ack/writeback pairing
   is checked online, and none may violate the declarative tables on
   any Tempest backend — Typhoon, decoupled, or Blizzard (nor on
   DirNNB).
2. **The monitor catches non-conformance.**  Mutation tests corrupt a
   directory entry / tag store directly and assert the monitor fires
   immediately, with a non-empty flight-recorder history in the report.

Plus the passivity guarantee the goldens rely on: a monitored run is
cycle- and statistics-identical to an unmonitored one.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.tags import Tag
from repro.protocols.conformance import (
    DIRECTORY_TRANSITIONS,
    TAG_TRANSITIONS,
    SPECS,
    spec_for,
)
from repro.protocols.directory import DirectoryState
from repro.protocols.verify import CoherenceViolation
from repro.blizzard.system import BlizzardMachine
from repro.decoupled.system import DecoupledMachine
from tests.integration.test_fault_resilience import (
    LOSSY,
    NODES,
    OPS,
    PAGES,
    make_software_stache_machine,
    run_under_faults,
)
from tests.protocols.conftest import (
    make_dirnnb_machine,
    make_stache_machine,
    run_script,
)


# ----------------------------------------------------------------------
# Property tests: lossy networks, transition-level oracle
# ----------------------------------------------------------------------
@given(ops=OPS, seed=st.integers(0, 3))
@settings(max_examples=15, deadline=None)
def test_property_typhoon_conforms_under_lossy_network(ops, seed):
    machine, _protocol, region = make_stache_machine(
        nodes=NODES, seed=seed, shared_bytes=PAGES * 4096)
    monitor = machine.enable_conformance()
    run_under_faults(machine, region, ops)
    assert monitor.violations == []


@given(ops=OPS, seed=st.integers(0, 3))
@settings(max_examples=15, deadline=None)
def test_property_blizzard_conforms_under_lossy_network(ops, seed):
    machine, _protocol, region = make_software_stache_machine(
        BlizzardMachine, seed=seed)
    monitor = machine.enable_conformance()
    run_under_faults(machine, region, ops)
    assert monitor.violations == []


@given(ops=OPS, seed=st.integers(0, 3))
@settings(max_examples=15, deadline=None)
def test_property_decoupled_conforms_under_lossy_network(ops, seed):
    machine, _protocol, region = make_software_stache_machine(
        DecoupledMachine, seed=seed)
    monitor = machine.enable_conformance()
    run_under_faults(machine, region, ops)
    assert monitor.violations == []


def test_contended_stache_run_performs_checks():
    machine, _protocol, region = make_stache_machine(nodes=4, seed=2)
    monitor = machine.enable_conformance()
    script = {
        node: [("w", region.base + block * 32, (node, block))
               for block in range(8)] + [("b",)]
              + [("r", region.base + node * 32)]
        for node in range(4)
    }
    run_script(machine, script)
    assert monitor.violations == []
    assert monitor.checks > 0
    assert len(monitor.recorder.events()) > 0


def test_dirnnb_conforms_under_lossy_network():
    machine, region = make_dirnnb_machine(nodes=NODES, seed=2)
    monitor = machine.enable_conformance()
    machine.install_fault_plan(LOSSY)
    script = {
        node: [("w", region.base + block * 32, (node, block))
               for block in range(8)]
              + [("r", region.base + ((node + 1) % NODES) * 32)]
        for node in range(NODES)
    }
    run_script(machine, script)
    assert monitor.violations == []
    assert monitor.checks > 0


def test_late_grant_race_is_poisoned_and_refetched():
    """Hypothesis-found coherence bug, pinned deterministically.

    Node 2's read-only grant is dropped; the home then runs an
    invalidation round (for node 0's write) that node 2 acks while its
    tag is still Busy; the reliable transport finally retransmits the
    grant.  Without requester-side poisoning the late grant resurrects
    a readable copy the home no longer tracks, and node 2's next read
    returns a stale value.
    """
    ops = [(0, False, 0, 0, 0)] * 10 + [
        (0, False, 1, 0, 0),
        (0, True, 0, 0, 0),
        (1, True, 0, 0, 0),
        (2, False, 0, 0, 0),
        (1, False, 2, 0, 0),
        (2, False, 0, 0, 0),
    ]
    machine, _protocol, region = make_software_stache_machine(
        BlizzardMachine, seed=0)
    monitor = machine.enable_conformance()
    run_under_faults(machine, region, ops)  # linearizability oracle inside
    assert monitor.violations == []
    assert machine.stats.get("stache.grants_poisoned") >= 1
    assert machine.stats.get("stache.poisoned_grants_refetched") >= 1


# ----------------------------------------------------------------------
# Mutation tests: the monitor must fire, with history attached
# ----------------------------------------------------------------------
def corrupted_stache_entry(machine, region):
    """Run a remote write so a directory entry exists, then return it.

    The writer must not be the home node: a home-local write hits the
    page's initial ReadWrite tags and never materializes an entry.
    """
    home = machine.heap.home_of(region.base)
    writer = (home + 1) % machine.num_nodes
    run_script(machine, {writer: [("w", region.base, 1)]})
    page = machine.nodes[home].page_table.lookup(region.base)
    return page.user_word[region.base]


def test_mutated_directory_entry_fires_with_history():
    machine, _protocol, region = make_stache_machine(nodes=4, seed=1)
    monitor = machine.enable_conformance()
    entry = corrupted_stache_entry(machine, region)
    assert entry.state is DirectoryState.EXCLUSIVE
    with pytest.raises(CoherenceViolation) as excinfo:
        # EXCLUSIVE -> PENDING_INVALIDATE is not a legal single step for
        # any Stache-family protocol (invalidation rounds start from
        # SHARED; an exclusive owner is recalled via PENDING_WRITEBACK).
        entry.state = DirectoryState.PENDING_INVALIDATE
    report = str(excinfo.value)
    assert "illegal directory transition" in report
    assert "flight recorder" in report
    assert "last 0 events" not in report  # history must be non-empty
    # Strict mode refuses the mutation: the entry is left unchanged.
    assert entry.state is DirectoryState.EXCLUSIVE
    assert monitor.violations != []


def test_mutated_tag_fires_with_history():
    machine, _protocol, region = make_stache_machine(nodes=4, seed=1)
    monitor = machine.enable_conformance()
    run_script(machine, {1: [("r", region.base)]})
    node = machine.nodes[1]
    assert node.tags.read_tag(region.base) in (Tag.READ_ONLY, Tag.READ_WRITE)
    with pytest.raises(CoherenceViolation, match="illegal tag transition"):
        # Owning a readable copy and re-entering BUSY (a second fetch for
        # a block already held writable) is illegal from READ_WRITE.
        node.tags.set_rw(region.base)
        node.tags.set_tag(region.base, Tag.BUSY)
    assert monitor.violations != []


def test_mutated_dirnnb_entry_fires():
    machine, region = make_dirnnb_machine(nodes=4, seed=1)
    monitor = machine.enable_conformance()
    run_script(machine, {1: [("w", region.base, 7)]})
    entry = machine.nodes[machine.home_of(region.base)].directory.entry(
        region.base)
    assert entry.state is DirectoryState.EXCLUSIVE
    with pytest.raises(CoherenceViolation):
        entry.state = DirectoryState.PENDING_INVALIDATE
    assert monitor.violations != []


def test_nonstrict_monitor_records_without_raising():
    machine, _protocol, region = make_stache_machine(nodes=4, seed=1)
    monitor = machine.enable_conformance(strict=False)
    entry = corrupted_stache_entry(machine, region)
    entry.state = DirectoryState.PENDING_INVALIDATE  # illegal, not raised
    assert len(monitor.violations) == 1
    assert "illegal directory transition" in monitor.violations[0]


# ----------------------------------------------------------------------
# Passivity and plumbing
# ----------------------------------------------------------------------
SCRIPT = {
    node: [("w", 0x1000_0000 + block * 32, (node, block))
           for block in range(6)] + [("b",)]
          + [("r", 0x1000_0000 + node * 32)]
    for node in range(4)
}


def test_monitor_is_cycle_and_stats_passive():
    def outcome(conformance):
        machine, _protocol, _region = make_stache_machine(nodes=4, seed=7)
        if conformance:
            machine.enable_conformance()
        run_script(machine, SCRIPT)
        return machine.engine.now, dict(machine.stats.as_dict())

    time_off, stats_off = outcome(False)
    time_on, stats_on = outcome(True)
    assert time_on == time_off
    assert stats_on == stats_off


def test_enable_conformance_is_idempotent_and_needs_a_spec():
    from repro.sim.config import MachineConfig
    from repro.sim.engine import SimulationError
    from repro.typhoon.system import TyphoonMachine

    machine, _protocol, _region = make_stache_machine(nodes=2, seed=1)
    monitor = machine.enable_conformance()
    assert machine.enable_conformance() is monitor
    bare = TyphoonMachine(MachineConfig(nodes=2, seed=1))
    with pytest.raises(SimulationError, match="no conformance spec"):
        bare.enable_conformance()


def test_spec_registry_shapes():
    assert set(SPECS) == {"stache", "stache-migratory", "ivy", "dirnnb",
                          "em3d-update"}
    # Transient states may never be entered from HOME directly, and BUSY
    # may never silently become INVALID.
    assert (DirectoryState.HOME,
            DirectoryState.PENDING_INVALIDATE) not in DIRECTORY_TRANSITIONS
    assert (Tag.BUSY, Tag.INVALID) not in TAG_TRANSITIONS
    machine, _protocol, _region = make_stache_machine(nodes=2, seed=1)
    assert spec_for(machine) is SPECS["stache"]


def test_transport_failure_report_includes_flight_recorder():
    from repro.network.faults import FaultSpec
    from repro.sim.engine import SimulationError

    machine, _protocol, region = make_stache_machine(nodes=4, seed=1)
    machine.enable_conformance()
    machine.install_fault_plan(FaultSpec(
        drop_pct=1.0, fault_attempt_limit=100, max_attempts=3,
        retry_timeout=10))
    with pytest.raises(SimulationError, match="undelivered after 3"):
        run_script(machine, {0: [("w", region.base + 4096, 1)]})
    failure = machine.transport.last_failure
    assert failure is not None
    assert failure["attempts"] == 3
    assert failure["xid"] not in machine.transport.pending
    assert failure["xid"] not in machine.transport._timers
