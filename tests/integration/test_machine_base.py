"""Tests for the shared machine assembly (repro.machine)."""

import pytest

from repro.protocols.dirnnb import DirNNBMachine
from repro.sim.config import MachineConfig, NetworkConfig
from repro.sim.engine import SimulationError
from repro.typhoon.system import TyphoonMachine


def test_run_workers_reports_per_node_finish_times():
    machine = DirNNBMachine(MachineConfig(nodes=3, seed=1))

    def worker(node_id):
        yield (node_id + 1) * 100

    times = machine.run_workers(worker)
    assert times == {0: 100, 1: 200, 2: 300}
    assert machine.execution_time == 300


def test_deadlocked_worker_is_reported_not_hung():
    machine = TyphoonMachine(MachineConfig(nodes=2, seed=1))

    def worker(node_id):
        if node_id == 0:
            from repro.sim.process import Future

            yield Future(machine.engine)  # never resolves
        else:
            yield 1

    with pytest.raises(SimulationError, match="deadlock.*cpu0"):
        machine.run_workers(worker)


def test_mismatched_barrier_counts_deadlock_cleanly():
    machine = TyphoonMachine(MachineConfig(nodes=2, seed=1))

    def worker(node_id):
        if node_id == 0:
            yield from machine.barrier_wait(0)
        else:
            yield 1  # never arrives

    with pytest.raises(SimulationError, match="deadlock"):
        machine.run_workers(worker)


def test_invalid_config_rejected_at_construction():
    with pytest.raises(ValueError):
        TyphoonMachine(MachineConfig(nodes=0))
    with pytest.raises(ValueError):
        TyphoonMachine(MachineConfig(block_size=64))


def test_mesh_topology_configuration_applies():
    config = MachineConfig(nodes=4, network=NetworkConfig(topology="mesh2d"))
    machine = TyphoonMachine(config)
    from repro.network.topology import Mesh2D

    assert isinstance(machine.interconnect.topology, Mesh2D)


def test_contention_configuration_applies():
    config = MachineConfig(
        nodes=2, network=NetworkConfig(model_contention=True))
    machine = TyphoonMachine(config)
    assert machine.interconnect.model_contention is True


def test_default_wait_blocks_on_future():
    machine = TyphoonMachine(MachineConfig(nodes=1, seed=1))
    from repro.sim.process import Future

    future = Future(machine.engine)
    landed = []

    def worker(node_id):
        yield from machine.wait(node_id, future)
        landed.append(machine.engine.now)

    machine.engine.schedule(70, future.resolve, None)
    machine.run_workers(worker)
    assert landed == [70]


def test_nodes_accessor():
    machine = TyphoonMachine(MachineConfig(nodes=3, seed=1))
    assert machine.node(2) is machine.nodes[2]
    assert machine.num_nodes == 3
