"""Tests for per-node page tables (user-level VM management mechanism)."""

import pytest

from repro.memory.address import SHARED_BASE, AddressLayout
from repro.memory.page_table import PageTable, PageTableError
from repro.memory.tags import Tag, TagStore

HOME_MODE = 1
STACHE_MODE = 2


@pytest.fixture
def table():
    layout = AddressLayout()
    return PageTable(layout, TagStore(layout, node=2), node=2)


def test_map_page_registers_tags(table):
    table.map_page(SHARED_BASE, mode=HOME_MODE, home=2, initial_tag=Tag.READ_WRITE)
    assert table.is_mapped(SHARED_BASE + 100)
    assert table.tags.read_tag(SHARED_BASE + 100) is Tag.READ_WRITE


def test_map_aligns_to_page(table):
    entry = table.map_page(SHARED_BASE + 123, mode=HOME_MODE, home=0,
                           initial_tag=Tag.INVALID)
    assert entry.vpage == SHARED_BASE


def test_double_map_rejected(table):
    table.map_page(SHARED_BASE, mode=HOME_MODE, home=0, initial_tag=Tag.INVALID)
    with pytest.raises(PageTableError):
        table.map_page(SHARED_BASE + 8, mode=HOME_MODE, home=0,
                       initial_tag=Tag.INVALID)


def test_unmap_drops_tags(table):
    table.map_page(SHARED_BASE, mode=HOME_MODE, home=0, initial_tag=Tag.INVALID)
    table.unmap_page(SHARED_BASE)
    assert not table.is_mapped(SHARED_BASE)
    assert not table.tags.has_page(SHARED_BASE)


def test_unmap_absent_rejected(table):
    with pytest.raises(PageTableError):
        table.unmap_page(SHARED_BASE)


def test_lookup_returns_entry_fields(table):
    table.map_page(SHARED_BASE, mode=STACHE_MODE, home=7,
                   initial_tag=Tag.INVALID, user_word="directory")
    entry = table.lookup(SHARED_BASE + 50)
    assert entry.mode == STACHE_MODE
    assert entry.home == 7
    assert entry.user_word == "directory"


def test_lookup_unmapped_returns_none(table):
    assert table.lookup(SHARED_BASE) is None


def test_remap_moves_page_with_fresh_tags(table):
    table.map_page(SHARED_BASE, mode=STACHE_MODE, home=5, initial_tag=Tag.READ_WRITE)
    table.tags.set_ro(SHARED_BASE)
    new_vaddr = SHARED_BASE + 2 * 4096
    entry = table.remap_page(SHARED_BASE, new_vaddr, initial_tag=Tag.INVALID)
    assert not table.is_mapped(SHARED_BASE)
    assert table.is_mapped(new_vaddr)
    assert entry.home == 5
    assert table.tags.read_tag(new_vaddr) is Tag.INVALID


def test_pages_with_mode_filters(table):
    table.map_page(SHARED_BASE, mode=HOME_MODE, home=0, initial_tag=Tag.INVALID)
    table.map_page(SHARED_BASE + 4096, mode=STACHE_MODE, home=1,
                   initial_tag=Tag.INVALID)
    table.map_page(SHARED_BASE + 8192, mode=STACHE_MODE, home=3,
                   initial_tag=Tag.INVALID)
    assert len(table.pages_with_mode(STACHE_MODE)) == 2
    assert len(table.pages_with_mode(HOME_MODE)) == 1


def test_oldest_page_with_mode_is_fifo(table):
    first = table.map_page(SHARED_BASE + 4096, mode=STACHE_MODE, home=1,
                           initial_tag=Tag.INVALID)
    table.map_page(SHARED_BASE + 8192, mode=STACHE_MODE, home=1,
                   initial_tag=Tag.INVALID)
    assert table.oldest_page_with_mode(STACHE_MODE) is first
    assert table.oldest_page_with_mode(HOME_MODE) is None


def test_map_unmap_counters(table):
    table.map_page(SHARED_BASE, mode=HOME_MODE, home=0, initial_tag=Tag.INVALID)
    table.unmap_page(SHARED_BASE)
    assert table.maps == 1
    assert table.unmaps == 1


def test_len_counts_mapped_pages(table):
    assert len(table) == 0
    table.map_page(SHARED_BASE, mode=HOME_MODE, home=0, initial_tag=Tag.INVALID)
    assert len(table) == 1
