"""Tests for address arithmetic and the shared-segment layout."""

import pytest

from repro.memory.address import SHARED_BASE, AddressLayout, AddressSpaceError


@pytest.fixture
def layout():
    return AddressLayout(block_size=32, page_size=4096)


def test_block_of_aligns_down(layout):
    assert layout.block_of(0) == 0
    assert layout.block_of(31) == 0
    assert layout.block_of(32) == 32
    assert layout.block_of(100) == 96


def test_block_offset(layout):
    assert layout.block_offset(100) == 4
    assert layout.block_offset(96) == 0


def test_page_of_aligns_down(layout):
    assert layout.page_of(4095) == 0
    assert layout.page_of(4096) == 4096
    assert layout.page_of(10000) == 8192


def test_page_number(layout):
    assert layout.page_number(0) == 0
    assert layout.page_number(4096) == 1
    assert layout.page_number(SHARED_BASE) == SHARED_BASE // 4096


def test_block_index_in_page(layout):
    assert layout.block_index_in_page(0) == 0
    assert layout.block_index_in_page(32) == 1
    assert layout.block_index_in_page(4095) == 127
    # Index is page-relative, so the second page starts at index 0 again.
    assert layout.block_index_in_page(4096 + 64) == 2


def test_blocks_per_page(layout):
    assert layout.blocks_per_page == 128


def test_blocks_in_page_enumerates_bases(layout):
    blocks = list(layout.blocks_in_page(4096 + 100))
    assert len(blocks) == 128
    assert blocks[0] == 4096
    assert blocks[-1] == 4096 + 127 * 32


def test_shared_segment_boundary(layout):
    assert not layout.is_shared(SHARED_BASE - 1)
    assert layout.is_shared(SHARED_BASE)


def test_rejects_non_power_of_two_geometry():
    with pytest.raises(AddressSpaceError):
        AddressLayout(block_size=48)
    with pytest.raises(AddressSpaceError):
        AddressLayout(page_size=5000)


def test_rejects_page_not_multiple_of_block():
    with pytest.raises(AddressSpaceError):
        AddressLayout(block_size=64, page_size=32)


def test_validate_rejects_negative(layout):
    with pytest.raises(AddressSpaceError):
        layout.validate(-1)


def test_non_default_geometry():
    layout = AddressLayout(block_size=128, page_size=8192)
    assert layout.blocks_per_page == 64
    assert layout.block_of(129) == 128
    assert layout.block_index_in_page(8192 + 256) == 2
