"""Tests for the set-associative cache model."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.cache import Cache, LineState
from repro.sim.config import CacheConfig


def make_cache(size=4096, assoc=4, replacement="random", seed=1):
    return Cache(
        CacheConfig(size_bytes=size, associativity=assoc, replacement=replacement),
        random.Random(seed),
    )


def test_cold_access_misses():
    cache = make_cache()
    assert cache.access(0, is_write=False) is False
    assert cache.misses == 1


def test_hit_after_insert():
    cache = make_cache()
    cache.insert(0, LineState.SHARED)
    assert cache.access(0, is_write=False) is True
    assert cache.hits == 1


def test_write_to_shared_line_is_upgrade_miss():
    cache = make_cache()
    cache.insert(64, LineState.SHARED)
    assert cache.access(64, is_write=True) is False
    assert cache.upgrades == 1
    assert cache.misses == 1


def test_write_to_exclusive_line_hits():
    cache = make_cache()
    cache.insert(64, LineState.EXCLUSIVE)
    assert cache.access(64, is_write=True) is True


def test_read_hits_in_both_states():
    cache = make_cache()
    cache.insert(0, LineState.SHARED)
    cache.insert(32, LineState.EXCLUSIVE)
    assert cache.access(0, is_write=False)
    assert cache.access(32, is_write=False)


def test_insert_existing_block_updates_state_without_eviction():
    cache = make_cache()
    cache.insert(0, LineState.SHARED)
    victim = cache.insert(0, LineState.EXCLUSIVE)
    assert victim is None
    assert cache.lookup(0).state is LineState.EXCLUSIVE
    assert len(cache) == 1


def test_eviction_when_set_is_full():
    # 4 KB, 4-way, 32 B blocks -> 32 sets.  Blocks that differ only in
    # bits above the set index map to the same set.
    cache = make_cache()
    set_stride = 32 * 32  # block_size * num_sets
    conflicting = [i * set_stride for i in range(5)]
    victims = [cache.insert(addr, LineState.SHARED) for addr in conflicting]
    assert victims[:4] == [None] * 4
    assert victims[4] is not None
    assert len(cache) == 4
    assert cache.replacements == 1


def test_random_replacement_is_deterministic_per_seed():
    def run(seed):
        cache = make_cache(seed=seed)
        set_stride = 32 * 32
        victims = []
        for i in range(10):
            victim = cache.insert(i * set_stride, LineState.SHARED)
            if victim:
                victims.append(victim.block_addr)
        return victims

    assert run(seed=7) == run(seed=7)


def test_fifo_replacement_evicts_oldest():
    cache = make_cache(replacement="fifo")
    set_stride = 32 * 32
    for i in range(4):
        cache.insert(i * set_stride, LineState.SHARED)
    victim = cache.insert(4 * set_stride, LineState.SHARED)
    assert victim.block_addr == 0


def test_invalidate_removes_line():
    cache = make_cache()
    cache.insert(0, LineState.EXCLUSIVE)
    line = cache.invalidate(0)
    assert line is not None
    assert line.state is LineState.EXCLUSIVE
    assert not cache.contains(0)


def test_invalidate_absent_block_returns_none():
    assert make_cache().invalidate(0) is None


def test_downgrade():
    cache = make_cache()
    cache.insert(0, LineState.EXCLUSIVE)
    assert cache.downgrade(0) is True
    assert cache.lookup(0).state is LineState.SHARED
    assert cache.downgrade(999 * 32) is False


def test_flush_empties_cache():
    cache = make_cache()
    for i in range(8):
        cache.insert(i * 32, LineState.SHARED)
    cache.flush()
    assert len(cache) == 0


def test_resident_blocks_lists_all():
    cache = make_cache()
    addrs = {0, 32, 4096}
    for addr in addrs:
        cache.insert(addr, LineState.SHARED)
    assert set(cache.resident_blocks()) == addrs


def test_different_sets_do_not_conflict():
    cache = make_cache()
    for i in range(32):  # one block per set
        assert cache.insert(i * 32, LineState.SHARED) is None
    assert len(cache) == 32


@given(st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=300))
@settings(max_examples=50, deadline=None)
def test_property_occupancy_never_exceeds_capacity(block_indices):
    """Invariant: resident blocks <= capacity, per-set occupancy <= assoc."""
    cache = make_cache(size=1024, assoc=2)  # 16 sets of 2
    for index in block_indices:
        cache.insert(index * 32, LineState.SHARED)
    assert len(cache) <= cache.config.num_blocks
    for cache_set in cache._sets:
        assert len(cache_set) <= cache.config.associativity


@given(st.lists(st.tuples(st.integers(0, 63), st.booleans()), max_size=200))
@settings(max_examples=50, deadline=None)
def test_property_hits_plus_misses_equals_accesses(ops):
    cache = make_cache(size=1024, assoc=2)
    for index, is_write in ops:
        hit = cache.access(index * 32, is_write)
        if not hit:
            cache.insert(index * 32,
                         LineState.EXCLUSIVE if is_write else LineState.SHARED)
    assert cache.hits + cache.misses == len(ops)
