"""Tests for fine-grain access tags — the mechanism behind Table 1."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.address import SHARED_BASE, AddressLayout
from repro.memory.tags import Tag, TagStore, TagStoreError

PAGE = SHARED_BASE  # a page-aligned shared address


@pytest.fixture
def store():
    store = TagStore(AddressLayout(), node=3)
    store.register_page(PAGE, Tag.INVALID)
    return store


class TestTagSemantics:
    """The access matrix of Section 2.4."""

    def test_read_write_tag_permits_everything(self):
        assert Tag.READ_WRITE.permits(is_write=False)
        assert Tag.READ_WRITE.permits(is_write=True)

    def test_read_only_tag_permits_reads_only(self):
        assert Tag.READ_ONLY.permits(is_write=False)
        assert not Tag.READ_ONLY.permits(is_write=True)

    def test_invalid_tag_permits_nothing(self):
        assert not Tag.INVALID.permits(is_write=False)
        assert not Tag.INVALID.permits(is_write=True)

    def test_busy_behaves_like_invalid_for_accesses(self):
        assert not Tag.BUSY.permits(is_write=False)
        assert not Tag.BUSY.permits(is_write=True)


class TestCheckedAccess:
    def test_read_on_invalid_block_faults(self, store):
        fault = store.check(PAGE + 40, is_write=False)
        assert fault is not None
        assert fault.addr == PAGE + 40
        assert fault.block_addr == PAGE + 32
        assert fault.tag is Tag.INVALID
        assert fault.is_write is False
        assert fault.node == 3

    def test_write_on_read_only_block_faults(self, store):
        store.set_ro(PAGE)
        assert store.check(PAGE, is_write=False) is None
        fault = store.check(PAGE, is_write=True)
        assert fault is not None
        assert fault.kind == "write-ReadOnly"

    def test_read_write_block_never_faults(self, store):
        store.set_rw(PAGE + 64)
        assert store.check(PAGE + 64, is_write=False) is None
        assert store.check(PAGE + 64, is_write=True) is None

    def test_tags_are_per_block_not_per_page(self, store):
        store.set_rw(PAGE)
        assert store.check(PAGE + 16, is_write=True) is None  # same block
        assert store.check(PAGE + 32, is_write=False) is not None  # next block


class TestTagOperations:
    """Table 1: read-tag, set-RW, set-RO, invalidate."""

    def test_read_tag(self, store):
        assert store.read_tag(PAGE) is Tag.INVALID
        store.set_rw(PAGE)
        assert store.read_tag(PAGE) is Tag.READ_WRITE

    def test_set_ro(self, store):
        store.set_ro(PAGE + 32)
        assert store.read_tag(PAGE + 32) is Tag.READ_ONLY

    def test_invalidate(self, store):
        store.set_rw(PAGE)
        store.invalidate(PAGE)
        assert store.read_tag(PAGE) is Tag.INVALID

    def test_busy_round_trip(self, store):
        store.set_tag(PAGE, Tag.BUSY)
        assert store.read_tag(PAGE) is Tag.BUSY
        fault = store.check(PAGE, is_write=False)
        assert fault.tag is Tag.BUSY


class TestPageRegistration:
    def test_initial_tag_applies_to_all_blocks(self, store):
        layout = store.layout
        for block in layout.blocks_in_page(PAGE):
            assert store.read_tag(block) is Tag.INVALID

    def test_access_to_unregistered_page_is_structural_error(self, store):
        with pytest.raises(TagStoreError):
            store.check(PAGE + 4096, is_write=False)

    def test_double_registration_rejected(self, store):
        with pytest.raises(TagStoreError):
            store.register_page(PAGE, Tag.READ_WRITE)

    def test_drop_page(self, store):
        store.drop_page(PAGE)
        assert not store.has_page(PAGE)
        with pytest.raises(TagStoreError):
            store.read_tag(PAGE)

    def test_drop_unregistered_page_rejected(self, store):
        with pytest.raises(TagStoreError):
            store.drop_page(PAGE + 4096)

    def test_counts(self, store):
        store.set_rw(PAGE)
        store.set_ro(PAGE + 32)
        counts = store.counts()
        assert counts[Tag.READ_WRITE] == 1
        assert counts[Tag.READ_ONLY] == 1
        assert counts[Tag.INVALID] == 126

    def test_page_tags_snapshot_is_a_copy(self, store):
        snapshot = store.page_tags(PAGE)
        snapshot[0] = Tag.READ_WRITE
        assert store.read_tag(PAGE) is Tag.INVALID


TAGS = st.sampled_from(list(Tag))


@given(st.lists(st.tuples(st.integers(0, 127), TAGS), max_size=200))
@settings(max_examples=50, deadline=None)
def test_property_last_set_tag_wins(ops):
    """The tag of a block is exactly the last tag stored to it."""
    store = TagStore(AddressLayout())
    store.register_page(PAGE, Tag.INVALID)
    last: dict[int, Tag] = {}
    for block_index, tag in ops:
        addr = PAGE + block_index * 32
        store.set_tag(addr, tag)
        last[block_index] = tag
    for block_index in range(128):
        expected = last.get(block_index, Tag.INVALID)
        assert store.read_tag(PAGE + block_index * 32) is expected


@given(st.integers(0, 4095), st.booleans(), TAGS)
@settings(max_examples=100, deadline=None)
def test_property_check_agrees_with_permits(offset, is_write, tag):
    """check() faults exactly when the tag does not permit the access."""
    store = TagStore(AddressLayout())
    store.register_page(PAGE, tag)
    fault = store.check(PAGE + offset, is_write)
    assert (fault is None) == tag.permits(is_write)
