"""Tests for the shared-segment allocator and page-home table."""

import pytest

from repro.memory.address import SHARED_BASE, AddressLayout, AddressSpaceError
from repro.memory.allocator import GlobalHeap


@pytest.fixture
def heap():
    return GlobalHeap(AddressLayout(), nodes=4)


def test_allocation_starts_at_shared_base(heap):
    region = heap.allocate(100)
    assert region.base == SHARED_BASE


def test_allocations_are_page_rounded_and_disjoint(heap):
    a = heap.allocate(1)
    b = heap.allocate(4097)
    assert a.size == 4096
    assert b.size == 8192
    assert b.base == a.end


def test_round_robin_homes(heap):
    region = heap.allocate(4 * 4096)
    homes = [heap.home_of(region.base + i * 4096) for i in range(4)]
    assert homes == [0, 1, 2, 3]


def test_round_robin_continues_across_allocations(heap):
    heap.allocate(4096)  # home 0
    region = heap.allocate(4096)
    assert heap.home_of(region.base) == 1


def test_explicit_home_placement(heap):
    region = heap.allocate(2 * 4096, home=3)
    assert heap.home_of(region.base) == 3
    assert heap.home_of(region.base + 4096) == 3


def test_home_of_within_page(heap):
    region = heap.allocate(4096, home=2)
    assert heap.home_of(region.base + 1234) == 2


def test_home_of_unallocated_rejected(heap):
    with pytest.raises(AddressSpaceError):
        heap.home_of(SHARED_BASE)


def test_allocate_striped_homes_one_region_per_node(heap):
    regions = heap.allocate_striped(4096, label="nodes")
    assert len(regions) == 4
    for node, region in enumerate(regions):
        assert heap.home_of(region.base) == node
        assert region.label == f"nodes[{node}]"


def test_pages_homed_on(heap):
    heap.allocate(8 * 4096)  # round robin over 4 nodes, 2 pages each
    assert len(heap.pages_homed_on(0)) == 2
    assert len(heap.pages_homed_on(3)) == 2


def test_is_allocated(heap):
    region = heap.allocate(4096)
    assert heap.is_allocated(region.base + 10)
    assert not heap.is_allocated(region.end)


def test_region_contains(heap):
    region = heap.allocate(4096)
    assert region.base in region
    assert region.end - 1 in region
    assert region.end not in region


def test_invalid_requests_rejected(heap):
    with pytest.raises(AddressSpaceError):
        heap.allocate(0)
    with pytest.raises(AddressSpaceError):
        heap.allocate(4096, home=9)
    with pytest.raises(AddressSpaceError):
        GlobalHeap(AddressLayout(), nodes=0)


def test_bytes_allocated(heap):
    heap.allocate(100)
    heap.allocate(5000)
    assert heap.bytes_allocated == 4096 + 8192
