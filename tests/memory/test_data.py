"""Tests for per-node memory images and block transfer."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.address import SHARED_BASE, AddressLayout
from repro.memory.data import MemoryImage


def make_image(node=0):
    return MemoryImage(AddressLayout(), node=node)


def test_read_default_is_zero():
    assert make_image().read(SHARED_BASE) == 0
    assert make_image().read(SHARED_BASE, default=None) is None


def test_write_then_read():
    image = make_image()
    image.write(SHARED_BASE + 8, 3.5)
    assert image.read(SHARED_BASE + 8) == 3.5


def test_export_block_is_offset_keyed():
    image = make_image()
    image.write(SHARED_BASE + 8, "a")
    image.write(SHARED_BASE + 16, "b")
    image.write(SHARED_BASE + 40, "other-block")
    payload = image.export_block(SHARED_BASE)
    assert payload == {8: "a", 16: "b"}


def test_import_block_copies_values():
    source = make_image(node=0)
    dest = make_image(node=1)
    source.write(SHARED_BASE + 4, 11)
    dest.import_block(SHARED_BASE, source.export_block(SHARED_BASE))
    assert dest.read(SHARED_BASE + 4) == 11


def test_import_block_clears_stale_words():
    dest = make_image()
    dest.write(SHARED_BASE + 4, "stale")
    dest.import_block(SHARED_BASE, {8: "fresh"})
    assert dest.read(SHARED_BASE + 4) == 0
    assert dest.read(SHARED_BASE + 8) == "fresh"


def test_import_block_does_not_touch_neighbors():
    dest = make_image()
    dest.write(SHARED_BASE + 40, "keep")
    dest.import_block(SHARED_BASE, {0: 1})
    assert dest.read(SHARED_BASE + 40) == "keep"


def test_clear_page():
    image = make_image()
    image.write(SHARED_BASE + 100, 1)
    image.write(SHARED_BASE + 4096, 2)
    image.clear_page(SHARED_BASE)
    assert image.read(SHARED_BASE + 100) == 0
    assert image.read(SHARED_BASE + 4096) == 2


@given(
    st.dictionaries(
        st.integers(0, 7).map(lambda i: i * 4),
        st.integers(-1000, 1000),
        max_size=8,
    )
)
@settings(max_examples=50, deadline=None)
def test_property_block_round_trip(words):
    """export(import(payload)) == payload for word-aligned payloads."""
    image = make_image()
    image.import_block(SHARED_BASE + 64, words)
    assert image.export_block(SHARED_BASE + 64) == words
