"""Tests for the fully-associative FIFO TLB."""

from repro.memory.tlb import Tlb
from repro.sim.config import TlbConfig


def make_tlb(entries=4):
    return Tlb(TlbConfig(entries=entries))


def test_cold_miss_installs_entry():
    tlb = make_tlb()
    assert tlb.access(5) is False
    assert tlb.access(5) is True
    assert tlb.misses == 1
    assert tlb.hits == 1


def test_fifo_eviction_order():
    tlb = make_tlb(entries=2)
    tlb.access(1)
    tlb.access(2)
    tlb.access(3)  # evicts 1
    assert 1 not in tlb
    assert 2 in tlb
    assert 3 in tlb


def test_fifo_hit_does_not_refresh_position():
    tlb = make_tlb(entries=2)
    tlb.access(1)
    tlb.access(2)
    tlb.access(1)  # hit; under FIFO, 1 remains the oldest
    tlb.access(3)  # must evict 1, not 2
    assert 1 not in tlb
    assert 2 in tlb


def test_capacity_respected():
    tlb = make_tlb(entries=4)
    for page in range(10):
        tlb.access(page)
    assert len(tlb) == 4


def test_evict_removes_named_entry():
    tlb = make_tlb()
    tlb.access(7)
    assert tlb.evict(7) is True
    assert 7 not in tlb
    assert tlb.evict(7) is False


def test_flush():
    tlb = make_tlb()
    for page in range(3):
        tlb.access(page)
    tlb.flush()
    assert len(tlb) == 0


def test_table2_default_geometry():
    tlb = Tlb(TlbConfig())
    assert tlb.config.entries == 64
    assert tlb.config.miss_cycles == 25
