"""Tests for trace-driven execution."""

import pytest

from repro.apps.base import run_app
from repro.apps.trace import TraceApplication, TraceError, parse_trace
from tests.apps.conftest import run_on_dirnnb, run_on_stache


class TestParser:
    def test_parses_all_op_kinds(self):
        text = """
        # a comment
        0 r 0x100
        0 w 0x100 7
        1 c 50
        1 b
        """.splitlines()
        programs = parse_trace(text)
        assert programs == {
            0: [("r", 0x100), ("w", 0x100, 7)],
            1: [("c", 50), ("b",)],
        }

    def test_values_may_be_float_or_string(self):
        programs = parse_trace(["0 w 8 3.5", "0 w 16 token"])
        assert programs[0] == [("w", 8, 3.5), ("w", 16, "token")]

    def test_decimal_and_hex_addresses(self):
        programs = parse_trace(["0 r 256", "0 r 0x100"])
        assert programs[0] == [("r", 256), ("r", 0x100)]

    def test_inline_comments_and_blank_lines(self):
        programs = parse_trace(["", "0 r 8  # trailing", "   "])
        assert programs == {0: [("r", 8)]}

    def test_malformed_lines_rejected_with_location(self):
        with pytest.raises(TraceError, match="line 2"):
            parse_trace(["0 r 8", "0 q 8"])
        with pytest.raises(TraceError):
            parse_trace(["0 r"])
        with pytest.raises(TraceError):
            parse_trace(["zero r 8"])


class TestReplay:
    def make_app(self):
        programs = parse_trace([
            "0 w 0 11",
            "0 b",
            "1 b",
            "1 r 0",
            "1 w 32 22",
            "1 b",
            "0 b",
            "0 r 32",
        ])
        return TraceApplication(programs, region_bytes=4096, relative=True)

    def test_replay_on_stache(self):
        app = self.make_app()
        machine, time = run_on_stache(app, nodes=2)
        assert time > 0
        assert app.reads[1] == [11]
        assert app.reads[0] == [22]

    def test_replay_on_dirnnb(self):
        app = self.make_app()
        machine, _ = run_on_dirnnb(app, nodes=2)
        assert app.reads[1] == [11]
        assert app.reads[0] == [22]

    def test_same_trace_same_cycles(self):
        times = {run_on_stache(self.make_app(), nodes=2)[1]
                 for _ in range(2)}
        assert len(times) == 1

    def test_trace_for_absent_node_rejected(self):
        app = TraceApplication({5: [("r", 0)]}, relative=True)
        with pytest.raises(TraceError, match="node 5"):
            run_on_stache(app, nodes=2)

    def test_absolute_addresses(self):
        from repro.protocols.stache import StacheProtocol
        from repro.sim.config import MachineConfig
        from repro.typhoon.system import TyphoonMachine

        machine = TyphoonMachine(MachineConfig(nodes=2, seed=1))
        protocol = StacheProtocol()
        machine.install_protocol(protocol)
        region = machine.heap.allocate(4096, home=0, label="mine")
        protocol.setup_region(region)
        app = TraceApplication(
            {1: [("w", region.base, 9), ("r", region.base)]},
            region_bytes=0,
        )
        run_app(machine, app, protocol)
        assert app.reads[1] == [9]
