"""Tests for the MP3D particle application."""

from repro.apps.mp3d import CELL_COUNT, CELL_MOMENTUM, MOL_POS, Mp3dApplication
from repro.protocols.verify import check_stache_coherence
from tests.apps.conftest import run_on_dirnnb, run_on_stache


def totals(machine, app):
    population = sum(
        app.peek(machine, app.space.addr(cell, CELL_COUNT))
        for cell in range(app.space_cells)
    )
    momentum = sum(
        app.peek(machine, app.space.addr(cell, CELL_MOMENTUM))
        for cell in range(app.space_cells)
    )
    return population, momentum


def test_single_node_totals_are_exact():
    app = Mp3dApplication(molecules=40, space_cells=16, iterations=3, seed=2)
    machine, _ = run_on_stache(app, nodes=1)
    assert totals(machine, app) == app.reference_totals()


def test_dirnnb_single_node_totals_are_exact():
    app = Mp3dApplication(molecules=40, space_cells=16, iterations=3, seed=2)
    machine, _ = run_on_dirnnb(app, nodes=1)
    assert totals(machine, app) == app.reference_totals()


def test_concurrent_totals_bounded_by_reference(runner):
    app = Mp3dApplication(molecules=64, space_cells=16, iterations=2, seed=2)
    machine, _ = runner(app, nodes=4)
    population, momentum = totals(machine, app)
    max_population, max_momentum = app.reference_totals()
    # Unlocked RMWs can lose updates (like the real MP3D) but never
    # invent them.
    assert 0 < population <= max_population
    assert 0 < momentum <= max_momentum


def test_molecule_positions_stay_in_range(runner):
    app = Mp3dApplication(molecules=32, space_cells=8, iterations=2, seed=2)
    machine, _ = runner(app, nodes=4)
    for index in range(app.molecules):
        position = app.peek(machine, app.mols.addr(index, MOL_POS))
        assert 0 <= position < app.space_cells


def test_space_cells_cause_heavy_coherence_traffic():
    app = Mp3dApplication(molecules=64, space_cells=8, iterations=2, seed=2)
    machine, _ = run_on_stache(app, nodes=4)
    # Everyone writes the same few cells: invalidations must flow.
    assert machine.stats.get("stache.invalidations_sent") > 0
    for region in app.space.regions:
        check_stache_coherence(machine, region)


def test_mp3d_is_invalidation_heavier_than_ocean():
    """The migratory pattern stresses coherence more than the stencil."""
    from repro.apps.ocean import OceanApplication

    mp3d = Mp3dApplication(molecules=64, space_cells=8, iterations=2, seed=2)
    machine_m, _ = run_on_stache(mp3d, nodes=4)
    refs_m = machine_m.stats.total(".cpu.refs")
    invals_m = machine_m.stats.get("stache.invalidations_sent")

    ocean = OceanApplication(grid=16, iterations=2, seed=2)
    machine_o, _ = run_on_stache(ocean, nodes=4)
    refs_o = machine_o.stats.total(".cpu.refs")
    invals_o = machine_o.stats.get("stache.invalidations_sent")

    assert invals_m / refs_m > invals_o / max(refs_o, 1)
