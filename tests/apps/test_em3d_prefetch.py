"""Tests for the EM3D prefetch variant."""

import math

from repro.apps.em3d import VALUE_OFFSET, Em3dApplication
from tests.apps.conftest import run_on_dirnnb, run_on_stache


def make_app(prefetch, **kwargs):
    defaults = dict(nodes_per_proc=8, degree=3, remote_fraction=0.4,
                    iterations=2, seed=5, prefetch=prefetch)
    defaults.update(kwargs)
    return Em3dApplication(**defaults)


def final_values(machine, app):
    return [
        app.peek(machine, app.e_nodes.addr(i, VALUE_OFFSET))
        for i in range(app.e_nodes.count)
    ]


def test_prefetch_preserves_correctness():
    app = make_app(prefetch=True)
    machine, _ = run_on_stache(app, nodes=4)
    ref_e, _ref_h = app.reference_values()
    for got, want in zip(final_values(machine, app), ref_e):
        assert math.isclose(got, want, rel_tol=1e-9, abs_tol=1e-9)


def test_prefetch_reduces_execution_time():
    _, plain_time = run_on_stache(make_app(prefetch=False), nodes=4)
    _, prefetch_time = run_on_stache(make_app(prefetch=True), nodes=4)
    assert prefetch_time < plain_time


def test_prefetch_reduces_demand_faults_not_traffic():
    machine_plain, _ = run_on_stache(make_app(prefetch=False), nodes=4)
    machine_pref, _ = run_on_stache(make_app(prefetch=True), nodes=4)
    # Latency is hidden: fewer block access faults stall the CPU.
    assert (machine_pref.stats.total(".cpu.block_faults")
            < machine_plain.stats.total(".cpu.block_faults"))
    # But the fetch traffic does not shrink (paper's point).
    assert (machine_pref.stats.get("stache.blocks_fetched")
            >= machine_plain.stats.get("stache.blocks_fetched"))


def test_prefetch_flag_is_ignored_on_dirnnb():
    app = make_app(prefetch=True)
    machine, time = run_on_dirnnb(app, nodes=4)
    assert time > 0  # no protocol to prefetch through; runs plain
