"""Shared fixtures for application tests."""

from __future__ import annotations

import pytest

from repro.apps.base import run_app
from repro.protocols.dirnnb import DirNNBMachine
from repro.protocols.em3d_update import Em3dUpdateProtocol
from repro.protocols.stache import StacheProtocol
from repro.sim.config import MachineConfig
from repro.typhoon.system import TyphoonMachine


def run_on_stache(app, nodes=4, seed=1, **config_kwargs):
    machine = TyphoonMachine(MachineConfig(nodes=nodes, seed=seed,
                                           **config_kwargs))
    protocol = StacheProtocol()
    machine.install_protocol(protocol)
    time = run_app(machine, app, protocol)
    return machine, time


def run_on_dirnnb(app, nodes=4, seed=1, **config_kwargs):
    machine = DirNNBMachine(MachineConfig(nodes=nodes, seed=seed,
                                          **config_kwargs))
    time = run_app(machine, app, None)
    return machine, time


def run_on_update(app, nodes=4, seed=1, **config_kwargs):
    machine = TyphoonMachine(MachineConfig(nodes=nodes, seed=seed,
                                           **config_kwargs))
    protocol = Em3dUpdateProtocol()
    machine.install_protocol(protocol)
    time = run_app(machine, app, protocol)
    return machine, time


ALL_RUNNERS = {
    "stache": run_on_stache,
    "dirnnb": run_on_dirnnb,
}


@pytest.fixture(params=sorted(ALL_RUNNERS))
def runner(request):
    return ALL_RUNNERS[request.param]
