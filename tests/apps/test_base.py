"""Tests for the application framework itself."""

import pytest

from repro.apps.base import AppContext, Application, SharedArray, run_app
from repro.protocols.stache import StacheProtocol
from repro.sim.config import MachineConfig
from repro.typhoon.system import TyphoonMachine
from tests.protocols.conftest import make_dirnnb_machine, make_stache_machine


@pytest.fixture
def machine():
    machine = TyphoonMachine(MachineConfig(nodes=4, seed=1))
    protocol = StacheProtocol()
    machine.install_protocol(protocol)
    return machine, protocol


class TestSharedArray:
    def test_striped_ownership(self, machine):
        m, protocol = machine
        array = SharedArray(m, protocol, count=8, record_bytes=32,
                            label="a")
        assert array.owner_of(0) == 0
        assert array.owner_of(1) == 0
        assert array.owner_of(2) == 1
        assert array.owner_of(7) == 3
        assert list(array.owned_range(1)) == [2, 3]

    def test_striped_records_are_homed_on_owner(self, machine):
        m, protocol = machine
        array = SharedArray(m, protocol, count=8, record_bytes=32, label="a")
        for index in range(8):
            assert m.heap.home_of(array.addr(index)) == array.owner_of(index)

    def test_uneven_count_truncates_last_owner(self, machine):
        m, protocol = machine
        array = SharedArray(m, protocol, count=6, record_bytes=32, label="a")
        assert list(array.owned_range(3)) == []
        assert list(array.owned_range(2)) == [4, 5]

    def test_field_offsets(self, machine):
        m, protocol = machine
        array = SharedArray(m, protocol, count=4, record_bytes=32, label="a")
        assert array.addr(1, offset=8) == array.addr(1) + 8
        with pytest.raises(IndexError):
            array.addr(1, offset=32)
        with pytest.raises(IndexError):
            array.addr(4)

    def test_non_striped_round_robin(self, machine):
        m, protocol = machine
        array = SharedArray(m, protocol, count=4, record_bytes=32, label="a",
                            striped=False)
        assert array.addr(1) == array.addr(0) + 32
        with pytest.raises(ValueError):
            array.owned_range(0)

    def test_record_size_must_be_power_of_two(self, machine):
        m, protocol = machine
        with pytest.raises(ValueError):
            SharedArray(m, protocol, count=4, record_bytes=24, label="a")


class TestPokePeek:
    def test_round_trip_on_typhoon(self, machine):
        m, protocol = machine
        region = m.heap.allocate(4096, home=2, label="x")
        protocol.setup_region(region)
        Application.poke(m, region.base + 8, "hello")
        assert Application.peek(m, region.base + 8) == "hello"
        assert m.nodes[2].image.read(region.base + 8) == "hello"

    def test_round_trip_on_dirnnb(self):
        m, region = make_dirnnb_machine(nodes=4)
        Application.poke(m, region.base, 5)
        assert Application.peek(m, region.base) == 5

    def test_peek_follows_exclusive_owner(self):
        from tests.protocols.conftest import run_script

        m, protocol, region = make_stache_machine(nodes=4)
        addr = region.base
        run_script(m, {1: [("w", addr, 42)]})
        # The home's image is stale; peek must chase the owner.
        assert Application.peek(m, addr) == 42


class TestRunApp:
    def test_setup_then_workers_then_time(self, machine):
        m, protocol = machine
        phases = []

        class TinyApp(Application):
            def setup(self, mach, protocol=None):
                phases.append("setup")

            def worker(self, ctx):
                phases.append(f"worker{ctx.node_id}")
                yield from ctx.compute(flops=1)
                yield from ctx.barrier()

        time = run_app(m, TinyApp(), protocol)
        assert phases[0] == "setup"
        assert sorted(phases[1:]) == [f"worker{n}" for n in range(4)]
        assert time > 0

    def test_context_compute_cost(self, machine):
        m, protocol = machine

        class ComputeApp(Application):
            def setup(self, mach, protocol=None):
                pass

            def worker(self, ctx):
                yield from ctx.compute(flops=10, overhead=3)

        time = run_app(m, ComputeApp(), protocol)
        from repro.apps.base import FLOP_CYCLES, OVERHEAD_CYCLES
        assert time == 10 * FLOP_CYCLES + 3 * OVERHEAD_CYCLES
