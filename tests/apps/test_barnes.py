"""Tests for the Barnes-Hut application."""

import math

from repro.apps.barnes import BODY_X, BODY_Y, BarnesApplication
from tests.apps.conftest import run_on_dirnnb, run_on_stache


def final_positions(machine, app):
    return [
        (app.peek(machine, app.body_array.addr(i, BODY_X)),
         app.peek(machine, app.body_array.addr(i, BODY_Y)))
        for i in range(app.bodies)
    ]


def test_tree_build_is_deterministic():
    app = BarnesApplication(bodies=16, iterations=1, seed=7)
    positions = [(0.1 * i, -0.05 * i) for i in range(16)]
    tree_a = app._build_tree(positions)
    tree_b = app._build_tree(positions)
    assert tree_a.count == tree_b.count == 16
    assert math.isclose(tree_a.com_x, tree_b.com_x)
    assert math.isclose(tree_a.mass, 16.0)


def test_force_walk_visits_fewer_cells_than_bodies():
    """The theta criterion prunes: O(log n) cells per body, not O(n)."""
    app = BarnesApplication(bodies=64, iterations=1, seed=7)
    import random
    rng = random.Random(1)
    positions = [(rng.uniform(-1, 1), rng.uniform(-1, 1)) for _ in range(64)]
    root = app._build_tree(positions)
    visited = []
    app._force_on(root, *positions[0], 0, visited)
    assert 0 < len(visited) < 64


def test_same_answer_on_both_machines():
    results = []
    for run in (run_on_dirnnb, run_on_stache):
        app = BarnesApplication(bodies=16, iterations=2, seed=7)
        machine, _ = run(app, nodes=4)
        results.append(final_positions(machine, app))
    for (xa, ya), (xb, yb) in zip(results[0], results[1]):
        assert math.isclose(xa, xb, abs_tol=1e-12)
        assert math.isclose(ya, yb, abs_tol=1e-12)


def test_same_answer_regardless_of_node_count():
    results = []
    for nodes in (1, 4):
        app = BarnesApplication(bodies=16, iterations=2, seed=7)
        machine, _ = run_on_dirnnb(app, nodes=nodes)
        results.append(final_positions(machine, app))
    for (xa, ya), (xb, yb) in zip(results[0], results[1]):
        assert math.isclose(xa, xb, abs_tol=1e-12)
        assert math.isclose(ya, yb, abs_tol=1e-12)


def test_bodies_actually_move():
    app = BarnesApplication(bodies=16, iterations=2, seed=7)
    machine, _ = run_on_dirnnb(app, nodes=4)
    moved = final_positions(machine, app)
    from repro.sim.rng import RngStreams
    rng = RngStreams(7).stream("barnes.init")
    initial = [
        (round(rng.uniform(-1, 1), 6), round(rng.uniform(-1, 1), 6))
        for _ in range(16)
    ]
    assert any(
        (mx, my) != (ix, iy) for (mx, my), (ix, iy) in zip(moved, initial)
    )


def test_tree_walk_generates_shared_cell_reads():
    app = BarnesApplication(bodies=32, iterations=1, seed=7)
    machine, _ = run_on_stache(app, nodes=4)
    # Cell COM records are fetched from remote homes during the walk.
    assert machine.stats.get("stache.blocks_fetched") > 0
