"""Tests for the EM3D application on all three systems."""

import math

import pytest

from repro.apps.em3d import VALUE_OFFSET, Em3dApplication
from tests.apps.conftest import run_on_dirnnb, run_on_stache, run_on_update


def collect_final_values(machine, app):
    e_values = [
        app.peek(machine, app.e_nodes.addr(i, VALUE_OFFSET))
        for i in range(app.e_nodes.count)
    ]
    h_values = [
        app.peek(machine, app.h_nodes.addr(i, VALUE_OFFSET))
        for i in range(app.h_nodes.count)
    ]
    return e_values, h_values


def assert_close(got, want):
    assert len(got) == len(want)
    for g, w in zip(got, want):
        assert math.isclose(g, w, rel_tol=1e-9, abs_tol=1e-9), (g, w)


def make_app(**kwargs):
    defaults = dict(nodes_per_proc=8, degree=3, remote_fraction=0.3,
                    iterations=2, seed=5)
    defaults.update(kwargs)
    return Em3dApplication(**defaults)


class TestGraphConstruction:
    def test_graph_shape(self):
        app = make_app()
        machine, _ = run_on_dirnnb(app, nodes=4)
        assert len(app.e_edges) == 32
        assert all(len(edges) == 3 for edges in app.e_edges)

    def test_remote_fraction_zero_keeps_edges_local(self):
        app = make_app(remote_fraction=0.0)
        machine, _ = run_on_dirnnb(app, nodes=4)
        for index, edges in enumerate(app.e_edges):
            owner = index // app.nodes_per_proc
            for neighbour in edges:
                assert neighbour // app.nodes_per_proc == owner

    def test_remote_fraction_one_makes_all_edges_remote(self):
        app = make_app(remote_fraction=1.0)
        machine, _ = run_on_dirnnb(app, nodes=4)
        for index, edges in enumerate(app.e_edges):
            owner = index // app.nodes_per_proc
            for neighbour in edges:
                assert neighbour // app.nodes_per_proc != owner

    def test_edges_per_iteration(self):
        app = make_app()
        run_on_dirnnb(app, nodes=4)
        assert app.edges_per_iteration == 2 * 32 * 3


class TestCorrectness:
    def test_dirnnb_matches_reference(self):
        app = make_app()
        machine, _ = run_on_dirnnb(app, nodes=4)
        e_values, h_values = collect_final_values(machine, app)
        ref_e, ref_h = app.reference_values()
        assert_close(e_values, ref_e)
        assert_close(h_values, ref_h)

    def test_stache_matches_reference(self):
        app = make_app()
        machine, _ = run_on_stache(app, nodes=4)
        e_values, h_values = collect_final_values(machine, app)
        ref_e, ref_h = app.reference_values()
        assert_close(e_values, ref_e)
        assert_close(h_values, ref_h)

    def test_update_protocol_matches_reference(self):
        app = make_app()
        machine, _ = run_on_update(app, nodes=4)
        e_values, h_values = collect_final_values(machine, app)
        ref_e, ref_h = app.reference_values()
        assert_close(e_values, ref_e)
        assert_close(h_values, ref_h)

    def test_update_protocol_matches_reference_more_iterations(self):
        app = make_app(iterations=4, remote_fraction=0.5)
        machine, _ = run_on_update(app, nodes=4)
        e_values, h_values = collect_final_values(machine, app)
        ref_e, ref_h = app.reference_values()
        assert_close(e_values, ref_e)
        assert_close(h_values, ref_h)

    def test_single_node_degenerate_case(self):
        app = make_app(remote_fraction=0.0)
        machine, _ = run_on_stache(app, nodes=1)
        e_values, h_values = collect_final_values(machine, app)
        ref_e, ref_h = app.reference_values()
        assert_close(e_values, ref_e)


class TestProtocolBehaviour:
    def test_update_protocol_sends_no_invalidations(self):
        app = make_app()
        machine, _ = run_on_update(app, nodes=4)
        assert machine.stats.get("stache.invalidations_sent") == 0
        assert machine.stats.get("em3d.updates_sent") > 0

    def test_stache_reinvalidates_every_iteration(self):
        app = make_app(remote_fraction=1.0, iterations=3)
        machine, _ = run_on_stache(app, nodes=4)
        assert machine.stats.get("stache.invalidations_sent") > 0

    def test_update_protocol_is_faster_at_high_remote_fraction(self):
        app_factory = lambda: make_app(remote_fraction=0.5, iterations=3)
        _, stache_time = run_on_stache(app_factory(), nodes=4)
        _, update_time = run_on_update(app_factory(), nodes=4)
        assert update_time < stache_time

    def test_update_messages_scale_with_remote_copies(self):
        app = make_app(remote_fraction=0.5, iterations=2)
        machine, _ = run_on_update(app, nodes=4)
        updates = machine.stats.get("em3d.updates_sent")
        # Each stached copy of each kind gets one update per flush; two
        # flushes per kind happen across 2 iterations.
        stached = machine.stats.get("em3d.blocks_stached")
        assert updates >= stached  # at least one update per copy
