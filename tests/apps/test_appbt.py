"""Tests for the Appbt application."""

from repro.apps.appbt import AppbtApplication
from repro.protocols.verify import check_stache_coherence
from tests.apps.conftest import run_on_dirnnb, run_on_stache


def test_runs_to_completion_on_both_machines(runner):
    app = AppbtApplication(grid=6, iterations=1, seed=1)
    machine, time = runner(app, nodes=4)
    assert time > 0


def test_all_cells_updated():
    app = AppbtApplication(grid=6, iterations=1, seed=1)
    machine, _ = run_on_dirnnb(app, nodes=2)
    # After the sweeps most cells differ from their initial values.
    from repro.sim.rng import RngStreams
    rng = RngStreams(1).stream("appbt.init")
    initial = {}
    for z in range(6):
        for y in range(6):
            for x in range(6):
                for word in range(app.words_per_cell):
                    initial[(x, y, z, word)] = round(rng.uniform(0, 1), 6)
    changed = 0
    for z in range(6):
        for y in range(6):
            for x in range(6):
                for word in range(app.words_per_cell):
                    got = app.peek(machine, app.cell_addr(x, y, z, word))
                    if got != initial[(x, y, z, word)]:
                        changed += 1
    total = 6 * 6 * 6 * app.words_per_cell
    assert changed > total / 2
    # And the x=0 line-start cells of the x sweep are only read, so some
    # cells must be unchanged too (sanity that the reconstruction works).
    assert changed < total


def test_every_word_of_a_cell_participates():
    app = AppbtApplication(grid=4, iterations=1, seed=1, words_per_cell=4)
    machine, _ = run_on_dirnnb(app, nodes=2)
    refs = machine.stats.total(".cpu.refs")
    app_single = AppbtApplication(grid=4, iterations=1, seed=1,
                                  words_per_cell=1)
    machine_single, _ = run_on_dirnnb(app_single, nodes=2)
    refs_single = machine_single.stats.total(".cpu.refs")
    assert refs > 3 * refs_single


def test_words_per_cell_must_fit_block():
    import pytest as _pytest
    with _pytest.raises(ValueError):
        AppbtApplication(grid=4, words_per_cell=5)


def test_z_sweep_reads_neighbour_boundary_plane():
    app = AppbtApplication(grid=6, iterations=1, seed=1)
    machine, _ = run_on_stache(app, nodes=3)
    # Node 1 must fetch node 0's last plane: remote traffic exists.
    assert machine.stats.get("stache.blocks_fetched") > 0
    for region in app.slabs:
        check_stache_coherence(machine, region)


def test_x_and_y_sweeps_are_slab_local():
    app = AppbtApplication(grid=6, iterations=1, seed=1)
    machine, _ = run_on_stache(app, nodes=1)
    # On one node nothing is remote at all.
    assert machine.stats.get("stache.blocks_fetched") == 0


def test_more_processors_than_planes_is_legal():
    app = AppbtApplication(grid=3, iterations=1, seed=1)
    machine, time = run_on_dirnnb(app, nodes=8)
    assert time > 0
