"""Tests for the synthetic microbenchmarks (the workers self-check values)."""

from repro.apps.synthetic import (
    MigratoryApplication,
    ProducerConsumerApplication,
    ReadMostlyApplication,
)
from tests.apps.conftest import run_on_dirnnb, run_on_stache


def test_read_mostly_values_correct(runner):
    app = ReadMostlyApplication(records=4, reads_per_phase=2, phases=2)
    machine, time = runner(app, nodes=4)
    assert time > 0


def test_migratory_counts_every_increment(runner):
    app = MigratoryApplication(records=3, rounds=2)
    machine, _ = runner(app, nodes=4)
    for index in range(app.records):
        value = app.peek(machine, app.array.addr(index))
        assert value == app.expected_total(4)


def test_producer_consumer_sees_fresh_buffers(runner):
    app = ProducerConsumerApplication(buffer_records=4, phases=2)
    machine, time = runner(app, nodes=4)
    assert time > 0


def test_read_mostly_is_cheap_after_first_fetch():
    app = ReadMostlyApplication(records=4, reads_per_phase=8, phases=1)
    machine, _ = run_on_stache(app, nodes=4)
    refs = machine.stats.total(".cpu.refs")
    fetches = machine.stats.get("stache.blocks_fetched")
    # Far fewer protocol fetches than references: re-reads hit locally.
    assert fetches < refs / 4


def test_migratory_pattern_ping_pongs_blocks():
    app = MigratoryApplication(records=2, rounds=3)
    machine, _ = run_on_stache(app, nodes=4)
    # Every turn invalidates the previous writer's copy.
    assert machine.stats.get("stache.invalidations_sent") > 0
