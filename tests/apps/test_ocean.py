"""Tests for the Ocean stencil application."""

import math

from repro.apps.ocean import OceanApplication
from repro.protocols.verify import (
    check_dirnnb_coherence,
    check_stache_coherence,
)
from tests.apps.conftest import run_on_dirnnb, run_on_stache


def collect_grid(machine, app):
    which = app.final_grid_index()
    return [
        [app.peek(machine, app.cell_addr(which, row, col))
         for col in range(app.grid)]
        for row in range(app.grid)
    ]


def assert_grids_close(got, want):
    for row_got, row_want in zip(got, want):
        for g, w in zip(row_got, row_want):
            assert math.isclose(g, w, rel_tol=1e-9, abs_tol=1e-9), (g, w)


def test_dirnnb_matches_reference():
    app = OceanApplication(grid=12, iterations=2, seed=3)
    machine, _ = run_on_dirnnb(app, nodes=4)
    assert_grids_close(collect_grid(machine, app), app.reference_values())


def test_stache_matches_reference():
    app = OceanApplication(grid=12, iterations=2, seed=3)
    machine, _ = run_on_stache(app, nodes=4)
    assert_grids_close(collect_grid(machine, app), app.reference_values())


def test_stache_matches_reference_odd_sizes():
    app = OceanApplication(grid=11, iterations=3, seed=4)
    machine, _ = run_on_stache(app, nodes=3)
    assert_grids_close(collect_grid(machine, app), app.reference_values())


def test_single_node():
    app = OceanApplication(grid=8, iterations=2, seed=3)
    machine, _ = run_on_stache(app, nodes=1)
    assert_grids_close(collect_grid(machine, app), app.reference_values())


def test_coherence_invariants_after_run():
    app = OceanApplication(grid=12, iterations=2, seed=3)
    machine, _ = run_on_stache(app, nodes=4)
    for regions in app.grids:
        for region in regions:
            check_stache_coherence(machine, region)
    machine_d, _ = run_on_dirnnb(
        OceanApplication(grid=12, iterations=2, seed=3), nodes=4)


def test_boundary_sharing_causes_remote_traffic():
    app = OceanApplication(grid=12, iterations=2, seed=3)
    machine, _ = run_on_stache(app, nodes=4)
    # Interior nodes fetch their neighbours' boundary rows.
    assert machine.stats.get("stache.blocks_fetched") > 0


def test_more_nodes_do_not_change_answers():
    results = []
    for nodes in (1, 2, 4):
        app = OceanApplication(grid=12, iterations=2, seed=3)
        machine, _ = run_on_dirnnb(app, nodes=nodes)
        results.append(collect_grid(machine, app))
    assert_grids_close(results[0], results[1])
    assert_grids_close(results[0], results[2])
