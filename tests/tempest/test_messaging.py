"""Tests for the handler registry."""

import pytest

from repro.tempest.messaging import HandlerError, HandlerRegistry, HandlerSpec


def test_register_and_lookup():
    registry = HandlerRegistry(node=1)
    fn = lambda tempest, msg: None
    registry.register("h", fn, instructions=14)
    spec = registry.lookup("h")
    assert spec.fn is fn
    assert spec.instructions == 14


def test_duplicate_registration_rejected():
    registry = HandlerRegistry()
    registry.register("h", lambda *a: None, 1)
    with pytest.raises(HandlerError):
        registry.register("h", lambda *a: None, 2)


def test_unknown_handler_rejected():
    with pytest.raises(HandlerError):
        HandlerRegistry().lookup("missing")


def test_negative_instruction_count_rejected():
    with pytest.raises(HandlerError):
        HandlerSpec("h", lambda: None, instructions=-1)


def test_contains_and_names():
    registry = HandlerRegistry()
    registry.register("b", lambda *a: None, 0)
    registry.register("a", lambda *a: None, 0)
    assert "a" in registry
    assert "c" not in registry
    assert registry.names() == ["a", "b"]
    assert len(registry) == 2
