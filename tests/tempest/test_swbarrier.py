"""Tests for the message-based software barrier."""

import pytest

from repro.sim.config import MachineConfig
from repro.tempest.swbarrier import SoftwareBarrier
from repro.typhoon.system import TyphoonMachine


@pytest.fixture
def machine():
    return TyphoonMachine(MachineConfig(nodes=4, seed=11))


def test_releases_only_after_all_arrive(machine):
    barrier = SoftwareBarrier(machine.tempests)
    release_times = {}

    def worker(node_id):
        yield node_id * 100  # staggered arrivals
        yield from barrier.arrive(node_id)
        release_times[node_id] = machine.engine.now

    machine.run_workers(worker)
    # No one is released before the last arrival (node 3 at t=300).
    assert min(release_times.values()) >= 300
    assert barrier.episodes_completed == 1


def test_multiple_episodes_stay_in_lockstep(machine):
    barrier = SoftwareBarrier(machine.tempests, coordinator=2)
    trace = []

    def worker(node_id):
        for phase in range(3):
            yield (node_id + 1) * 17
            yield from barrier.arrive(node_id)
            trace.append((phase, node_id))

    machine.run_workers(worker)
    assert barrier.episodes_completed == 3
    phases = [phase for phase, _node in trace]
    assert phases == sorted(phases)


def test_fast_node_rearrival_does_not_poison_next_episode(machine):
    """A node can race to episode k+1 while others process episode k."""
    barrier = SoftwareBarrier(machine.tempests)
    counts = {n: 0 for n in range(4)}

    def worker(node_id):
        for _ in range(4):
            if node_id != 0:
                yield 150  # node 0 is much faster
            yield from barrier.arrive(node_id)
            counts[node_id] += 1

    machine.run_workers(worker)
    assert all(count == 4 for count in counts.values())
    assert barrier.episodes_completed == 4


def test_software_barrier_costs_more_than_hardware(machine):
    sw = SoftwareBarrier(machine.tempests)

    def sw_worker(node_id):
        yield from sw.arrive(node_id)

    machine.run_workers(sw_worker)
    sw_cycles = machine.execution_time

    machine2 = TyphoonMachine(MachineConfig(nodes=4, seed=11))

    def hw_worker(node_id):
        yield machine2.barrier.arrive(node_id)

    machine2.run_workers(hw_worker)
    assert sw_cycles > machine2.execution_time


def test_machine_level_software_barrier_option(machine):
    """TyphoonMachine.use_software_barrier reroutes ctx.barrier()."""
    machine.use_software_barrier(coordinator=1)
    release = {}

    def worker(node_id):
        yield node_id * 40
        yield from machine.barrier_wait(node_id)
        release[node_id] = machine.engine.now

    machine.run_workers(worker)
    # Everyone released together, after the last arrival (node 3 at 120),
    # via messages (so later than a hardware barrier would manage).
    assert min(release.values()) > 120
    assert machine._software_barrier.episodes_completed == 1


def test_two_barriers_are_independent(machine):
    a = SoftwareBarrier(machine.tempests, name="a")
    b = SoftwareBarrier(machine.tempests, name="b")

    def worker(node_id):
        yield from a.arrive(node_id)
        yield from b.arrive(node_id)

    machine.run_workers(worker)
    assert a.episodes_completed == 1
    assert b.episodes_completed == 1
