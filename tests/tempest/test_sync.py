"""Tests for the message-built synchronization primitives (extension)."""

import pytest

from repro.sim.config import MachineConfig
from repro.sim.process import Process
from repro.tempest.sync import FetchAndOp, TempestLock
from repro.typhoon.system import TyphoonMachine


@pytest.fixture
def machine():
    return TyphoonMachine(MachineConfig(nodes=4, seed=3))


class TestLock:
    def test_mutual_exclusion(self, machine):
        lock = TempestLock(machine.tempests, home=0)
        in_section = [0]
        max_in_section = [0]

        def worker(node):
            for _ in range(3):
                yield from lock.acquire(node)
                in_section[0] += 1
                max_in_section[0] = max(max_in_section[0], in_section[0])
                yield 20  # critical section work
                in_section[0] -= 1
                yield from lock.release(node)

        machine.run_workers(lambda n: worker(n))
        assert max_in_section[0] == 1

    def test_fifo_granting_under_contention(self, machine):
        lock = TempestLock(machine.tempests, home=1)
        order = []

        def worker(node):
            yield node * 2  # stagger the requests
            yield from lock.acquire(node)
            order.append(node)
            yield 100  # hold long enough that everyone queues
            yield from lock.release(node)

        machine.run_workers(lambda n: worker(n))
        # Requests are granted in arrival order at the home (node 1).
        # Node 1's own request short-circuits the network (arrives cycle
        # ~3) and beats node 0's message (sent at 0, arrives at 11);
        # nodes 2 and 3 arrive at 15 and 17.
        assert order == [1, 0, 2, 3]

    def test_release_of_unheld_lock_raises(self, machine):
        lock = TempestLock(machine.tempests, home=0)

        def worker(node):
            if node == 0:
                yield from lock.release(node)
            else:
                yield 1

        with pytest.raises(RuntimeError, match="unheld"):
            machine.run_workers(lambda n: worker(n))


class TestFetchAndOp:
    def test_counter_counts_every_increment(self, machine):
        counter = FetchAndOp(machine.tempests, home=2)

        def worker(node):
            for _ in range(5):
                yield from counter.apply(node, 1)

        machine.run_workers(lambda n: worker(n))
        assert counter.value == 20

    def test_old_values_are_unique_tickets(self, machine):
        counter = FetchAndOp(machine.tempests, home=0)
        tickets = []

        def worker(node):
            ticket = yield from counter.apply(node, 1)
            tickets.append(ticket)

        machine.run_workers(lambda n: worker(n))
        assert sorted(tickets) == [0, 1, 2, 3]

    def test_custom_op(self, machine):
        cell = FetchAndOp(machine.tempests, home=0, initial=2,
                          op=lambda old, arg: old * arg)

        def worker(node):
            if node == 0:
                yield from cell.apply(node, 10)
            else:
                yield 1

        machine.run_workers(lambda n: worker(n))
        assert cell.value == 20
