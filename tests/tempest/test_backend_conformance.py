"""Tempest backend conformance: the same semantics on every implementation.

The paper's portability claim means the *interface's observable
behaviour* must not depend on the backend.  This suite runs one battery
of semantic checks against both implementations — Typhoon (hardware NP)
and Blizzard (all software) — via a parametrized fixture.  Timing may
differ; semantics may not.
"""

import pytest

from repro.blizzard.system import BlizzardMachine
from repro.memory.address import SHARED_BASE
from repro.memory.tags import Tag
from repro.sim.config import MachineConfig
from repro.typhoon.system import TyphoonMachine


@pytest.fixture(params=["typhoon", "blizzard"])
def machine(request):
    cls = TyphoonMachine if request.param == "typhoon" else BlizzardMachine
    return cls(MachineConfig(nodes=3, seed=4))


def test_backend_protocol_shape(machine):
    """Every backend exposes the full TempestBackend surface."""
    from repro.tempest.interface import TempestBackend

    for node in machine.nodes:
        assert isinstance(node, TempestBackend)


def test_active_message_delivery_and_payload(machine):
    got = []
    machine.tempests[1].register_handler(
        "probe", lambda t, m: got.append((t.node_id, m.payload["x"])),
        instructions=5,
    )
    machine.tempests[0].send(1, "probe", x=17)

    def worker(node_id):
        yield 500  # node 1 must poll (Blizzard) or its NP runs it (Typhoon)
        if node_id == 1:
            value = yield from machine.nodes[1].access(0x1000, False)

    machine.run_workers(worker)
    assert got == [(1, 17)]


def test_tag_operations_identical(machine):
    tempest = machine.tempests[0]
    tempest.map_page(SHARED_BASE, mode=0, home=0, initial_tag=Tag.INVALID)
    addr = SHARED_BASE + 64
    assert tempest.read_tag(addr) is Tag.INVALID
    tempest.set_rw(addr)
    assert tempest.read_tag(addr) is Tag.READ_WRITE
    tempest.set_ro(addr)
    assert tempest.read_tag(addr) is Tag.READ_ONLY
    tempest.invalidate(addr)
    assert tempest.read_tag(addr) is Tag.INVALID
    tempest.force_write(addr, 9)
    assert tempest.force_read(addr) == 9


def test_vm_management_identical(machine):
    tempest = machine.tempests[2]
    tempest.map_page(SHARED_BASE, mode=3, home=1, initial_tag=Tag.READ_WRITE,
                     user_word="w")
    entry = tempest.page_entry(SHARED_BASE)
    assert (entry.mode, entry.home, entry.user_word) == (3, 1, "w")
    tempest.remap_page(SHARED_BASE, SHARED_BASE + 8192, Tag.INVALID)
    assert tempest.page_entry(SHARED_BASE) is None
    assert tempest.page_entry(SHARED_BASE + 8192).home == 1


def test_bulk_transfer_identical(machine):
    src, dst = machine.tempests[0], machine.tempests[1]
    src.map_page(SHARED_BASE, mode=0, home=0, initial_tag=Tag.READ_WRITE)
    dst.map_page(SHARED_BASE + 4096, mode=0, home=1,
                 initial_tag=Tag.READ_WRITE)
    for word in range(0, 128, 4):
        src.force_write(SHARED_BASE + word, word)
    done = {}

    def worker(node_id):
        if node_id == 0:
            transfer = src.bulk_transfer(1, SHARED_BASE, SHARED_BASE + 4096,
                                         128)
            yield from machine.wait(0, transfer)
            done["at"] = machine.engine.now
        else:
            # Blizzard receivers must poll for the incoming chunks.
            for _ in range(40):
                yield from machine.nodes[node_id].access(0x2000, False)
                yield 10

    machine.run_workers(worker)
    assert "at" in done
    for word in range(0, 128, 4):
        assert machine.nodes[1].image.read(SHARED_BASE + 4096 + word) == word


def test_checked_access_faults_reach_user_handler(machine):
    node = machine.nodes[0]
    tempest = node.tempest
    tempest.map_page(SHARED_BASE, mode=0, home=0, initial_tag=Tag.INVALID)
    seen = []

    def fix(t, fault):
        seen.append((fault.block_addr, fault.is_write))
        t.set_rw(fault.block_addr)
        t.resume()

    tempest.register_handler("fix", fix, instructions=14)
    node.np.set_fault_handler(0, False, "fix")
    node.np.set_fault_handler(0, True, "fix")

    def worker(node_id):
        if node_id == 0:
            yield from node.access(SHARED_BASE + 8, True, 5)
        else:
            yield 1

    machine.run_workers(worker)
    assert seen == [(SHARED_BASE, True)]
    assert node.image.read(SHARED_BASE + 8) == 5
