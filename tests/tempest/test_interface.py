"""Integration tests for the Tempest facade on Typhoon hardware.

These exercise the four mechanisms end to end on a small machine with no
protocol installed — handlers are registered directly, as a protocol
library would.
"""

import pytest

from repro.memory.address import SHARED_BASE
from repro.memory.cache import LineState
from repro.memory.tags import Tag
from repro.network.message import VirtualNetwork
from repro.sim.config import MachineConfig
from repro.typhoon.system import TyphoonMachine


@pytest.fixture
def machine():
    return TyphoonMachine(MachineConfig(nodes=4, seed=1))


def test_tempest_identity(machine):
    tempest = machine.tempests[2]
    assert tempest.node_id == 2
    assert tempest.num_nodes == 4


class TestMessaging:
    def test_active_message_runs_handler_at_destination(self, machine):
        log = []
        machine.tempests[1].register_handler(
            "probe",
            lambda tempest, msg: log.append(
                (tempest.node_id, msg.payload["x"], machine.engine.now)
            ),
            instructions=10,
        )
        machine.tempests[0].send(1, "probe", x=99)
        machine.engine.run()
        # 11 cycles network latency + 10 instruction-cycles of handler.
        assert log == [(1, 99, 21)]

    def test_response_priority_over_request(self, machine):
        order = []
        tempest = machine.tempests[1]
        tempest.register_handler(
            "req", lambda t, m: order.append("req"), instructions=5
        )
        tempest.register_handler(
            "resp", lambda t, m: order.append("resp"), instructions=5
        )
        # Enqueue a long-running handler first so both arrivals queue up
        # behind it, then the dispatch loop must pick the response first.
        tempest.register_handler(
            "block", lambda t, m: None, instructions=100
        )
        machine.tempests[0].send(1, "block")
        machine.tempests[0].send(1, "req", vnet=VirtualNetwork.REQUEST)
        machine.tempests[2].send(1, "resp", vnet=VirtualNetwork.RESPONSE)
        machine.engine.run()
        assert order == ["resp", "req"]

    def test_handler_charge_extends_occupancy(self, machine):
        times = []
        tempest = machine.tempests[1]

        def slow(t, m):
            t.charge(50)

        tempest.register_handler("slow", slow, instructions=10)
        tempest.register_handler(
            "after", lambda t, m: times.append(machine.engine.now),
            instructions=0,
        )
        machine.tempests[0].send(1, "slow")
        machine.tempests[0].send(1, "after")
        machine.engine.run()
        # slow: arrives 11, runs 10, charges 50 more -> NP free at 71.
        assert times == [71]

    def test_messages_from_handlers_are_sent(self, machine):
        log = []
        machine.tempests[1].register_handler(
            "ping",
            lambda t, m: t.send(m.payload["reply_to"], "pong",
                                vnet=VirtualNetwork.RESPONSE),
            instructions=14,
        )
        machine.tempests[0].register_handler(
            "pong", lambda t, m: log.append(machine.engine.now), instructions=20
        )
        machine.tempests[0].send(1, "ping", reply_to=0)
        machine.engine.run()
        # 11 + 14 (ping handler) + 11 + 20 (pong handler) = 56.
        assert log == [56]


class TestFineGrainAccessControl:
    def test_table1_tag_ops_round_trip(self, machine):
        tempest = machine.tempests[0]
        tempest.map_page(SHARED_BASE, mode=0, home=0, initial_tag=Tag.INVALID)
        addr = SHARED_BASE + 32
        assert tempest.read_tag(addr) is Tag.INVALID
        tempest.set_rw(addr)
        assert tempest.read_tag(addr) is Tag.READ_WRITE
        tempest.set_ro(addr)
        assert tempest.read_tag(addr) is Tag.READ_ONLY
        tempest.set_busy(addr)
        assert tempest.read_tag(addr) is Tag.BUSY
        tempest.invalidate(addr)
        assert tempest.read_tag(addr) is Tag.INVALID

    def test_invalidate_flushes_cpu_cached_copy(self, machine):
        node = machine.nodes[0]
        tempest = node.tempest
        tempest.map_page(SHARED_BASE, mode=0, home=0, initial_tag=Tag.READ_WRITE)
        node.cache.insert(SHARED_BASE, LineState.EXCLUSIVE)
        tempest.invalidate(SHARED_BASE)
        assert not node.cache.contains(SHARED_BASE)

    def test_set_ro_downgrades_cpu_copy(self, machine):
        node = machine.nodes[0]
        tempest = node.tempest
        tempest.map_page(SHARED_BASE, mode=0, home=0, initial_tag=Tag.READ_WRITE)
        node.cache.insert(SHARED_BASE, LineState.EXCLUSIVE)
        tempest.set_ro(SHARED_BASE)
        assert node.cache.lookup(SHARED_BASE).state is LineState.SHARED

    def test_force_ops_bypass_tags(self, machine):
        tempest = machine.tempests[0]
        tempest.map_page(SHARED_BASE, mode=0, home=0, initial_tag=Tag.INVALID)
        tempest.force_write(SHARED_BASE + 8, 42)  # no fault despite Invalid
        assert tempest.force_read(SHARED_BASE + 8) == 42

    def test_block_export_import(self, machine):
        src = machine.tempests[0]
        dst = machine.tempests[1]
        for t in (src, dst):
            t.map_page(SHARED_BASE, mode=0, home=0, initial_tag=Tag.INVALID)
        src.force_write(SHARED_BASE + 4, "v")
        dst.import_block(SHARED_BASE, src.export_block(SHARED_BASE))
        assert dst.force_read(SHARED_BASE + 4) == "v"


class TestVirtualMemoryManagement:
    def test_map_and_lookup(self, machine):
        tempest = machine.tempests[0]
        tempest.map_page(SHARED_BASE, mode=3, home=2, initial_tag=Tag.INVALID,
                         user_word="dir")
        entry = tempest.page_entry(SHARED_BASE + 17)
        assert entry.mode == 3
        assert entry.home == 2
        assert entry.user_word == "dir"

    def test_remap_for_stache_replacement(self, machine):
        tempest = machine.tempests[0]
        tempest.map_page(SHARED_BASE, mode=3, home=2, initial_tag=Tag.READ_WRITE)
        tempest.remap_page(SHARED_BASE, SHARED_BASE + 8192,
                           initial_tag=Tag.INVALID)
        assert tempest.page_entry(SHARED_BASE) is None
        assert tempest.page_entry(SHARED_BASE + 8192).home == 2

    def test_home_of_uses_heap(self, machine):
        region = machine.heap.allocate(machine.config.page_size, home=3)
        assert machine.tempests[0].home_of(region.base) == 3


class TestBulkTransfer:
    def test_transfer_copies_data_and_completes(self, machine):
        src = machine.tempests[0]
        dst_node = machine.nodes[1]
        src_addr = SHARED_BASE
        dst_addr = SHARED_BASE + 4096
        src.map_page(src_addr, mode=0, home=0, initial_tag=Tag.READ_WRITE)
        dst_node.tempest.map_page(dst_addr, mode=0, home=1,
                                  initial_tag=Tag.READ_WRITE)
        for word in range(0, 256, 4):
            src.force_write(src_addr + word, word * 10)
        done = src.bulk_transfer(1, src_addr, dst_addr, 256)
        machine.engine.run()
        assert done.done
        for word in range(0, 256, 4):
            assert dst_node.image.read(dst_addr + word) == word * 10

    def test_transfer_is_packetized(self, machine):
        src = machine.tempests[0]
        src.map_page(SHARED_BASE, mode=0, home=0, initial_tag=Tag.READ_WRITE)
        machine.nodes[1].tempest.map_page(
            SHARED_BASE + 4096, mode=0, home=1, initial_tag=Tag.READ_WRITE
        )
        before = machine.stats.get("network.packets")
        src.bulk_transfer(1, SHARED_BASE, SHARED_BASE + 4096, 256)
        machine.engine.run()
        sent = machine.stats.get("network.packets") - before
        # 256 bytes / 64-byte chunks = 4 data packets + 1 completion.
        assert sent == 5

    def test_zero_length_transfer_rejected(self, machine):
        with pytest.raises(ValueError):
            machine.tempests[0].bulk_transfer(1, SHARED_BASE, SHARED_BASE, 0)
