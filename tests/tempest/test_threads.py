"""Tests for computation-thread suspend/resume."""

import pytest

from repro.sim.engine import Engine, SimulationError
from repro.sim.process import Process
from repro.tempest.threads import ComputationThread


def test_suspend_then_resume_delivers_value():
    engine = Engine()
    thread = ComputationThread(engine, node=0)
    seen = []

    def worker():
        value = yield thread.suspend()
        seen.append((value, engine.now))

    Process(engine, worker())
    engine.schedule(40, thread.resume, "go")
    engine.run()
    assert seen == [("go", 40)]
    assert thread.suspensions == 1
    assert thread.resumes == 1


def test_double_suspend_rejected():
    thread = ComputationThread(Engine())
    thread.suspend()
    with pytest.raises(SimulationError):
        thread.suspend()


def test_resume_without_suspend_rejected():
    with pytest.raises(SimulationError):
        ComputationThread(Engine()).resume()


def test_suspended_flag_tracks_state():
    engine = Engine()
    thread = ComputationThread(engine)
    assert not thread.suspended
    thread.suspend()
    assert thread.suspended
    thread.resume()
    assert not thread.suspended


def test_thread_can_suspend_repeatedly():
    engine = Engine()
    thread = ComputationThread(engine)
    for _ in range(3):
        future = thread.suspend()
        thread.resume()
        assert future.done
    assert thread.suspensions == 3
