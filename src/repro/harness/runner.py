"""Machine construction and single-run execution for experiments."""

from __future__ import annotations

from typing import Any

from repro.apps.base import run_app
from repro.backends import all_systems, compose
from repro.sim.config import MachineConfig

#: The three systems of Section 6, plus the software-Tempest extension —
#: the pre-registry names, kept as first-class aliases.  The full
#: composable matrix is :func:`repro.backends.all_systems`.
SYSTEMS = ("dirnnb", "typhoon-stache", "typhoon-update", "blizzard-stache")

#: Every composable ``backend:protocol`` system (canonical names).
ALL_SYSTEMS = all_systems()


def build_machine(system: str, config: MachineConfig):
    """Build a machine (with its protocol installed) for one system name.

    ``system`` is a registry-composed ``"<backend>:<protocol>"`` string
    (``typhoon:stache``, ``blizzard:ivy``, ...), a bare builtin-protocol
    backend (``dirnnb``), or a legacy alias (``typhoon-stache``, see
    :data:`repro.backends.ALIASES`).  Returns ``(machine, protocol)``;
    protocol is None for DirNNB.  Unknown names raise ``ValueError``
    with the registry's suggestion list; syntactically valid pairs that
    cannot work together (capability mismatch, e.g.
    ``blizzard:em3d-update``) raise
    :class:`repro.backends.CompositionError`.
    """
    return compose(system, config)


def run_application(system: str, app, config: MachineConfig,
                    faults=None, conformance: bool = False,
                    kernel: str = "interpreted",
                    lanes: str = "batched") -> dict[str, Any]:
    """Run ``app`` on a fresh machine; returns timing and key statistics.

    ``faults`` (a FaultSpec/FaultPlan, see :mod:`repro.network.faults`)
    activates deterministic fault injection; None or a null plan leaves
    the machine bit-identical to an un-faulted run.

    ``conformance=True`` enables online protocol conformance checking
    (see :mod:`repro.protocols.conformance`): the run raises
    ``CoherenceViolation`` at the first illegal transition, and the
    returned machine's ``conformance`` monitor reports check counts.
    Requires a system whose protocol has a spec (the EM3D update
    protocol deliberately has none).

    ``kernel="compiled"`` selects the table-driven dispatch kernel
    (:mod:`repro.kernel`); systems whose protocol is not compilable
    fall back to interpreted with the reason recorded on the returned
    machine's ``kernel_fallback_reason``.  Compiled and interpreted
    runs are statistically bit-identical (the differential harness,
    :mod:`repro.harness.differential`, asserts exactly that).

    ``lanes="scalar"`` turns the batched access lanes off so every
    ``read_run``/``write_run`` decomposes to scalar accesses — the
    other differential axis (batched runs are bit-identical to scalar,
    including ``execution_time``; only wall-clock changes).
    """
    if lanes not in ("batched", "scalar"):
        raise ValueError(f"unknown lanes mode {lanes!r}: "
                         "expected 'batched' or 'scalar'")
    machine, protocol = build_machine(system, config)
    machine.batch_lanes = lanes == "batched"
    if kernel != "interpreted":
        from repro.kernel import install_kernel

        install_kernel(machine, kernel)
    if conformance:
        machine.enable_conformance()
    if faults is not None:
        machine.install_fault_plan(faults)
    execution_time = run_app(machine, app, protocol)
    stats = machine.stats
    return {
        "system": system,
        "kernel": machine.kernel_name,
        "lanes": lanes,
        "execution_time": execution_time,
        "refs": stats.total(".cpu.refs"),
        "remote_packets": (stats.get("network.packets")
                           - stats.get("network.local_packets")),
        "network_words": stats.get("network.words"),
        "block_faults": stats.total(".cpu.block_faults"),
        "page_faults": stats.total(".cpu.page_faults"),
        "machine": machine,
    }
