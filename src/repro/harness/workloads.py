"""Workload registry: Table 3's data sets, paper-scale and simulator-scale.

The paper's small data sets are "scaled for a 4 Kbyte cache" (Gupta et
al.); the large sets exceed even the 256 KB cache.  Our simulator runs the
same applications at a reduced scale with *proportionally* reduced caches,
preserving the working-set-to-cache ratios Figure 3 sweeps (the
substitution argument in DESIGN.md §2).

The scaled cache ladder mirrors the paper's 4 K/16 K/64 K/256 K with the
same x4 steps: 512 B / 2 KB / 8 KB / 32 KB.  Scaled small data sets are
sized to overflow the smallest cache and fit in the largest; scaled large
sets overflow even the largest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.apps.appbt import AppbtApplication
from repro.apps.barnes import BarnesApplication
from repro.apps.em3d import Em3dApplication
from repro.apps.mp3d import Mp3dApplication
from repro.apps.ocean import OceanApplication
from repro.apps.synthetic import ReferenceSweepApplication

#: The scaled analogue of the paper's 4K/16K/64K/256K CPU-cache ladder.
SCALED_CACHE_SIZES = (512, 2048, 8192, 32768)

#: The paper's cache ladder, for reporting.
PAPER_CACHE_SIZES = (4096, 16384, 65536, 262144)


@dataclass(frozen=True)
class Workload:
    """One application at one data-set size."""

    app_name: str
    dataset: str               # "small" | "large"
    paper_parameters: str      # Table 3's description
    factory: Callable[[], Any]  # builds a fresh Application
    description: str = ""

    def build(self):
        return self.factory()


def _registry() -> dict[tuple[str, str], Workload]:
    entries = [
        Workload(
            "appbt", "small", "12x12x12",
            lambda: AppbtApplication(grid=6, iterations=1, seed=31),
        ),
        Workload(
            "appbt", "large", "24x24x24",
            lambda: AppbtApplication(grid=12, iterations=1, seed=31),
        ),
        Workload(
            "barnes", "small", "2048 bodies",
            lambda: BarnesApplication(bodies=48, iterations=2, seed=33),
        ),
        Workload(
            "barnes", "large", "8192 bodies",
            lambda: BarnesApplication(bodies=160, iterations=2, seed=33),
        ),
        Workload(
            "mp3d", "small", "10,000 mols",
            lambda: Mp3dApplication(molecules=320, space_cells=64,
                                    iterations=3, seed=35),
        ),
        Workload(
            "mp3d", "large", "50,000 mols",
            lambda: Mp3dApplication(molecules=1280, space_cells=192,
                                    iterations=3, seed=35),
        ),
        Workload(
            "ocean", "small", "98x98 grid",
            lambda: OceanApplication(grid=26, iterations=2, seed=37),
        ),
        Workload(
            "ocean", "large", "386x386 grid",
            lambda: OceanApplication(grid=80, iterations=2, seed=37),
        ),
        Workload(
            "em3d", "small", "64,000 nodes, degree 10",
            lambda: Em3dApplication(nodes_per_proc=24, degree=4,
                                    remote_fraction=0.2, iterations=2,
                                    seed=39),
        ),
        Workload(
            "em3d", "large", "192,000 nodes, degree 15",
            lambda: Em3dApplication(nodes_per_proc=72, degree=6,
                                    remote_fraction=0.2, iterations=2,
                                    seed=39),
        ),
        Workload(
            "sweep", "ref",
            "n/a (reference-intensity microbenchmark)",
            lambda: ReferenceSweepApplication(records=512, sweeps=16),
            description="dense owned-range sweeps, ~100% hit rate; "
                        "measures the vectorised access lanes",
        ),
    ]
    return {(w.app_name, w.dataset): w for w in entries}


WORKLOADS = _registry()

APP_NAMES = ("appbt", "barnes", "mp3d", "ocean", "em3d")


def workload(app_name: str, dataset: str) -> Workload:
    try:
        return WORKLOADS[(app_name, dataset)]
    except KeyError:
        raise KeyError(f"no workload {app_name}/{dataset}") from None


def figure3_configurations() -> list[tuple[str, int, int]]:
    """(dataset, scaled cache bytes, paper cache bytes) pairs of Figure 3:
    small data at every cache size, large data at the largest."""
    configs = [
        ("small", scaled, paper)
        for scaled, paper in zip(SCALED_CACHE_SIZES, PAPER_CACHE_SIZES)
    ]
    configs.append(("large", SCALED_CACHE_SIZES[-1], PAPER_CACHE_SIZES[-1]))
    return configs
