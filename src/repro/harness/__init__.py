"""Experiment harness: regenerate every table and figure of Section 6.

The registry in :mod:`repro.harness.experiments` maps each paper artifact
to a runnable experiment:

===========  ========================================================
``table1``   the nine tagged-block operations, exercised live
``table2``   the simulation parameters in force (must equal the paper)
``table3``   the application data sets (paper and scaled)
``figure3``  Typhoon/Stache execution time relative to DirNNB
``figure4``  EM3D cycles/edge vs. % remote edges, three systems
===========  ========================================================

Each experiment returns an :class:`~repro.harness.report.ExperimentResult`
whose ``to_text()`` prints the same rows/series the paper reports.
"""

from repro.harness.report import ExperimentResult
from repro.harness.runner import build_machine, run_application
from repro.harness.sweep import Sweep
from repro.harness.trace import ProtocolTrace
from repro.harness import experiments

__all__ = [
    "ExperimentResult",
    "ProtocolTrace",
    "Sweep",
    "build_machine",
    "experiments",
    "run_application",
]
