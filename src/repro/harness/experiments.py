"""The experiment registry: one entry per paper table/figure, plus ablations."""

from __future__ import annotations

from dataclasses import replace

from repro.harness.report import ExperimentResult
from repro.harness.runner import build_machine, run_application
from repro.harness.workloads import (
    APP_NAMES,
    PAPER_CACHE_SIZES,
    SCALED_CACHE_SIZES,
    figure3_configurations,
    workload,
)
from repro.apps.em3d import Em3dApplication
from repro.memory.address import SHARED_BASE
from repro.memory.tags import Tag
from repro.sim.config import DirNNBCosts, MachineConfig, TyphoonCosts


def _config(nodes: int, cache_bytes: int, seed: int = 42,
            **overrides) -> MachineConfig:
    config = MachineConfig(nodes=nodes, seed=seed, **overrides)
    return config.with_cache_size(cache_bytes)


# ----------------------------------------------------------------------
# Table 1: operations on tagged memory blocks
# ----------------------------------------------------------------------
def run_table1() -> ExperimentResult:
    """Exercise all nine Table 1 operations live and report the outcome."""
    from repro.typhoon.system import TyphoonMachine

    machine = TyphoonMachine(MachineConfig(nodes=1, seed=1))
    tempest = machine.tempests[0]
    tempest.map_page(SHARED_BASE, mode=0, home=0, initial_tag=Tag.INVALID)
    addr = SHARED_BASE + 32

    result = ExperimentResult(
        "table1",
        "Operations on tagged memory blocks",
        ["operation", "description", "observed"],
    )

    fault = machine.nodes[0].tags.check(addr, is_write=False)
    result.add_row(
        operation="read",
        description="Load with tag check; fault suspends thread",
        observed=f"read of {fault.tag.value} block faults ({fault.kind})",
    )
    fault = machine.nodes[0].tags.check(addr, is_write=True)
    result.add_row(
        operation="write",
        description="Store with tag check; fault suspends thread",
        observed=f"write of {fault.tag.value} block faults ({fault.kind})",
    )
    value = tempest.force_read(addr)
    result.add_row(
        operation="force-read",
        description="Load without tag check",
        observed=f"reads {value!r} despite Invalid tag",
    )
    tempest.force_write(addr, 7)
    result.add_row(
        operation="force-write",
        description="Store without tag check",
        observed=f"stored despite Invalid tag; now reads {tempest.force_read(addr)!r}",
    )
    result.add_row(
        operation="read-tag",
        description="Return value of tag",
        observed=f"tag is {tempest.read_tag(addr).value}",
    )
    tempest.set_rw(addr)
    result.add_row(
        operation="set-RW",
        description="Set tag value to ReadWrite",
        observed=f"tag now {tempest.read_tag(addr).value}",
    )
    tempest.set_ro(addr)
    result.add_row(
        operation="set-RO",
        description="Set tag value to ReadOnly",
        observed=f"tag now {tempest.read_tag(addr).value}",
    )
    from repro.memory.cache import LineState

    machine.nodes[0].cache.insert(addr, LineState.SHARED)
    tempest.invalidate(addr)
    result.add_row(
        operation="invalidate",
        description="Set tag Invalid and invalidate local copies",
        observed=(
            f"tag now {tempest.read_tag(addr).value}; CPU copy present: "
            f"{machine.nodes[0].cache.contains(addr)}"
        ),
    )
    thread = machine.nodes[0].thread
    suspension = thread.suspend()
    tempest.resume()
    result.add_row(
        operation="resume",
        description="Resume suspended thread(s)",
        observed=f"suspended thread released: {suspension.done}",
    )
    return result


# ----------------------------------------------------------------------
# Table 2: simulation parameters
# ----------------------------------------------------------------------
def run_table2() -> ExperimentResult:
    """Report the configured parameters next to the paper's Table 2."""
    config = MachineConfig()
    dirnnb = DirNNBCosts()
    typhoon = TyphoonCosts()
    result = ExperimentResult(
        "table2",
        "Simulation parameters (configured vs. paper)",
        ["parameter", "paper", "configured", "match"],
    )

    def row(parameter, paper, configured):
        result.add_row(parameter=parameter, paper=str(paper),
                       configured=str(configured),
                       match="yes" if str(paper) == str(configured) else "NO")

    row("CPU cache assoc.", 4, config.cache.associativity)
    row("CPU cache repl.", "random", config.cache.replacement)
    row("Block size (bytes)", 32, config.block_size)
    row("CPU TLB entries", 64, config.tlb.entries)
    row("CPU TLB repl.", "fifo", config.tlb.replacement)
    row("Page size (bytes)", 4096, config.page_size)
    row("Local cache miss (cycles)", 29, config.local_miss_cycles)
    row("Local writeback (cycles)", 0, config.local_writeback_cycles)
    row("TLB miss (cycles)", 25, config.tlb.miss_cycles)
    row("Network latency (cycles)", 11, config.network.latency)
    row("Barrier latency (cycles)", 11, config.network.barrier_latency)
    row("DirNNB remote miss issue", 23, dirnnb.remote_miss_issue)
    row("DirNNB remote miss finish", 34, dirnnb.remote_miss_finish)
    row("DirNNB repl. shared", 5, dirnnb.replacement_shared)
    row("DirNNB repl. exclusive", 16, dirnnb.replacement_exclusive)
    row("DirNNB invalidate", 8, dirnnb.invalidate_base)
    row("Directory op", 16, dirnnb.directory_op)
    row("Directory block received", 11, dirnnb.directory_block_received)
    row("Directory per message", 5, dirnnb.directory_per_message)
    row("Directory block sent", 11, dirnnb.directory_block_sent)
    row("NP TLB / RTLB entries", 64, typhoon.rtlb_entries)
    row("(R)TLB miss (cycles)", 25, typhoon.rtlb_miss)
    row("NP D-cache (bytes)", 16384, typhoon.np_dcache_bytes)
    row("NP I-cache (bytes)", 8192, typhoon.np_icache_bytes)
    row("NP miss-request path (instr)", 14, typhoon.miss_request_instructions)
    row("NP home-response path (instr)", 30, typhoon.home_response_instructions)
    row("NP data-arrival path (instr)", 20, typhoon.data_arrival_instructions)
    return result


# ----------------------------------------------------------------------
# Table 3: application data sets
# ----------------------------------------------------------------------
def _describe(app) -> str:
    if isinstance(app, Em3dApplication):
        return (f"{app.nodes_per_proc} nodes/proc, degree {app.degree}, "
                f"{app.iterations} iters")
    from repro.apps.appbt import AppbtApplication
    from repro.apps.barnes import BarnesApplication
    from repro.apps.mp3d import Mp3dApplication
    from repro.apps.ocean import OceanApplication

    if isinstance(app, AppbtApplication):
        return f"{app.grid}x{app.grid}x{app.grid}, {app.iterations} iters"
    if isinstance(app, BarnesApplication):
        return f"{app.bodies} bodies, {app.iterations} iters"
    if isinstance(app, Mp3dApplication):
        return (f"{app.molecules} mols, {app.space_cells} cells, "
                f"{app.iterations} iters")
    if isinstance(app, OceanApplication):
        return f"{app.grid}x{app.grid} grid, {app.iterations} iters"
    return type(app).__name__


def run_table3() -> ExperimentResult:
    result = ExperimentResult(
        "table3",
        "Application data sets (paper vs. scaled)",
        ["application", "dataset", "paper", "scaled"],
    )
    for app_name in APP_NAMES:
        for dataset in ("small", "large"):
            entry = workload(app_name, dataset)
            result.add_row(
                application=app_name,
                dataset=dataset,
                paper=entry.paper_parameters,
                scaled=_describe(entry.build()),
            )
    result.notes.append(
        "scaled sets preserve working-set/cache ratios against the scaled "
        f"cache ladder {SCALED_CACHE_SIZES} (paper ladder {PAPER_CACHE_SIZES})"
    )
    return result


# ----------------------------------------------------------------------
# Figure 3: Typhoon/Stache vs. DirNNB
# ----------------------------------------------------------------------
def run_figure3(apps=APP_NAMES, nodes: int = 8, seed: int = 42,
                configurations=None) -> ExperimentResult:
    """Execution time of Typhoon/Stache relative to DirNNB.

    One row per (application, dataset/cache) bar of Figure 3; the
    ``relative`` column is the bar height (shorter/<1 = Stache faster).
    """
    if configurations is None:
        configurations = figure3_configurations()
    result = ExperimentResult(
        "figure3",
        "Typhoon/Stache execution time relative to DirNNB",
        ["application", "dataset", "cache", "paper_cache", "dirnnb_cycles",
         "stache_cycles", "relative"],
    )
    for app_name in apps:
        for dataset, cache_bytes, paper_cache in configurations:
            entry = workload(app_name, dataset)
            dirnnb = run_application(
                "dirnnb", entry.build(), _config(nodes, cache_bytes, seed)
            )
            stache = run_application(
                "typhoon-stache", entry.build(),
                _config(nodes, cache_bytes, seed),
            )
            result.add_row(
                application=app_name,
                dataset=dataset,
                cache=cache_bytes,
                paper_cache=f"{dataset}/{paper_cache // 1024}K",
                dirnnb_cycles=dirnnb["execution_time"],
                stache_cycles=stache["execution_time"],
                relative=stache["execution_time"] / dirnnb["execution_time"],
            )
    result.notes.append(
        "paper shape: relative <= ~1.3 when data fits the cache; "
        "relative < 1 when the working set exceeds the CPU cache"
    )
    return result


# ----------------------------------------------------------------------
# Figure 4: EM3D update-protocol sweep
# ----------------------------------------------------------------------
def run_figure4(nodes: int = 8, nodes_per_proc: int = 48, degree: int = 5,
                iterations: int = 3, cache_bytes: int = 8192,
                fractions=(0.0, 0.1, 0.2, 0.3, 0.4, 0.5),
                seed: int = 42) -> ExperimentResult:
    """EM3D cycles per edge vs. % non-local edges, three systems."""
    result = ExperimentResult(
        "figure4",
        "EM3D cycles/edge vs. % remote edges "
        "(DirNNB, Typhoon/Stache, Typhoon/Update)",
        ["remote_pct", "dirnnb", "typhoon_stache", "typhoon_update",
         "update_vs_dirnnb"],
    )
    systems = ("dirnnb", "typhoon-stache", "typhoon-update")
    for fraction in fractions:
        cycles = {}
        for system in systems:
            app = Em3dApplication(
                nodes_per_proc=nodes_per_proc, degree=degree,
                remote_fraction=fraction, iterations=iterations, seed=seed,
            )
            outcome = run_application(
                system, app, _config(nodes, cache_bytes, seed)
            )
            edges_per_proc = 2 * nodes_per_proc * degree * iterations
            cycles[system] = outcome["execution_time"] / edges_per_proc
        result.add_row(
            remote_pct=int(fraction * 100),
            dirnnb=cycles["dirnnb"],
            typhoon_stache=cycles["typhoon-stache"],
            typhoon_update=cycles["typhoon-update"],
            update_vs_dirnnb=cycles["typhoon-update"] / cycles["dirnnb"],
        )
    result.notes.append(
        "paper shape: all series grow with remote fraction; the update "
        "protocol is lowest with the flattest slope and beats DirNNB by "
        "~35% at 50% remote edges"
    )
    return result


# ----------------------------------------------------------------------
# Execution-time breakdown: where do the cycles go?
# ----------------------------------------------------------------------
def run_time_breakdown(nodes: int = 8, cache_bytes: int = 2048,
                       seed: int = 42,
                       apps=("ocean", "em3d", "mp3d")) -> ExperimentResult:
    """Decompose execution time into compute, memory stall, and barrier.

    The decomposition explains the figures: Stache wins where memory
    stall is capacity-dominated (local re-fetch beats remote re-fetch)
    and loses where it is protocol-dominated (software handlers beat no
    one).  Percentages are averaged over nodes.
    """
    result = ExperimentResult(
        "time-breakdown",
        "Per-system execution-time decomposition (% of cycles)",
        ["application", "system", "compute_pct", "memory_pct",
         "barrier_pct", "cycles"],
    )
    for app_name in apps:
        for system in ("dirnnb", "typhoon-stache"):
            outcome = run_application(
                system, workload(app_name, "small").build(),
                _config(nodes, cache_bytes, seed),
            )
            machine = outcome["machine"]
            exec_total = outcome["execution_time"] * nodes
            memory = machine.stats.total(".cpu.access_cycles")
            barrier = machine.stats.total(".cpu.barrier_cycles")
            compute = max(exec_total - memory - barrier, 0)
            result.add_row(
                application=app_name,
                system=system,
                compute_pct=100 * compute / exec_total,
                memory_pct=100 * memory / exec_total,
                barrier_pct=100 * barrier / exec_total,
                cycles=outcome["execution_time"],
            )
    return result


# ----------------------------------------------------------------------
# Coherence granularity: fine-grain blocks vs. IVY-style pages
# ----------------------------------------------------------------------
def run_granularity(nodes: int = 8, cache_bytes: int = 8192,
                    seed: int = 42) -> ExperimentResult:
    """Why fine-grain access control matters (Section 2.4), measured.

    The same applications run under Stache (32-byte coherence units) and
    under an IVY-style DSM built from Tempest's *coarse-grain* mechanisms
    only (4 KB pages moved by bulk transfer).  EM3D's interleaved graph
    and MP3D's scattered cells false-share pages heavily; Ocean's strip
    layout is page-friendly and shows the gap narrowing.
    """
    from repro.apps.base import run_app
    from repro.protocols.ivy import IvyProtocol
    from repro.protocols.stache import StacheProtocol
    from repro.typhoon.system import TyphoonMachine

    result = ExperimentResult(
        "granularity",
        "Fine-grain (Stache, 32 B) vs. page-grain (IVY, 4 KB) coherence",
        ["application", "stache_cycles", "ivy_cycles", "ivy_slowdown",
         "stache_packets", "ivy_packets"],
    )
    for app_name in ("ocean", "em3d", "mp3d"):
        measures = {}
        for label, protocol_cls in (("stache", StacheProtocol),
                                    ("ivy", IvyProtocol)):
            machine = TyphoonMachine(_config(nodes, cache_bytes, seed))
            protocol = protocol_cls()
            machine.install_protocol(protocol)
            app = workload(app_name, "small").build()
            cycles = run_app(machine, app, protocol)
            packets = (machine.stats.get("network.packets")
                       - machine.stats.get("network.local_packets"))
            measures[label] = (cycles, packets)
        result.add_row(
            application=app_name,
            stache_cycles=measures["stache"][0],
            ivy_cycles=measures["ivy"][0],
            ivy_slowdown=measures["ivy"][0] / measures["stache"][0],
            stache_packets=measures["stache"][1],
            ivy_packets=measures["ivy"][1],
        )
    result.notes.append(
        "Section 2.4: 'the coarse granularity of page-based mechanisms "
        "is a poor match for many applications' — the slowdown column is "
        "that mismatch, on identical Tempest mechanisms"
    )
    return result


# ----------------------------------------------------------------------
# A second custom protocol: migratory optimization on MP3D
# ----------------------------------------------------------------------
def run_migratory_protocol(nodes: int = 8, cache_bytes: int = 2048,
                           seed: int = 42) -> ExperimentResult:
    """MP3D under Stache vs. the user-level migratory optimization.

    Section 4's closing argument is that users will build protocols the
    system designer cannot anticipate; EM3D's delayed-update protocol is
    the paper's example.  This is a second one, for MP3D's read-modify-
    write ping-pong: detect migratory blocks at the home and grant reads
    exclusively, folding each migration's two transactions into one.
    """
    from repro.apps.mp3d import Mp3dApplication
    from repro.protocols.migratory import MigratoryProtocol
    from repro.protocols.stache import StacheProtocol
    from repro.typhoon.system import TyphoonMachine
    from repro.apps.base import run_app

    result = ExperimentResult(
        "migratory-protocol",
        "MP3D: transparent Stache vs. user-level migratory optimization",
        ["system", "cycles", "block_faults", "remote_packets",
         "vs_dirnnb"],
    )
    app_params = dict(molecules=8 * nodes * 4, space_cells=8,
                      iterations=3, seed=seed)
    dirnnb = run_application("dirnnb", Mp3dApplication(**app_params),
                             _config(nodes, cache_bytes, seed))
    result.add_row(
        system="dirnnb",
        cycles=dirnnb["execution_time"],
        block_faults=0,
        remote_packets=dirnnb["remote_packets"],
        vs_dirnnb=1.0,
    )
    for label, protocol_cls in (("typhoon-stache", StacheProtocol),
                                ("typhoon-migratory", MigratoryProtocol)):
        machine = TyphoonMachine(_config(nodes, cache_bytes, seed))
        protocol = protocol_cls()
        machine.install_protocol(protocol)
        cycles = run_app(machine, Mp3dApplication(**app_params), protocol)
        result.add_row(
            system=label,
            cycles=cycles,
            block_faults=machine.stats.total(".cpu.block_faults"),
            remote_packets=(machine.stats.get("network.packets")
                            - machine.stats.get("network.local_packets")),
            vs_dirnnb=cycles / dirnnb["execution_time"],
        )
    result.notes.append(
        "the migratory protocol folds each read-then-write migration "
        "into one transaction (fewer faults, fewer packets), narrowing "
        "Stache's gap to DirNNB on its worst-case application"
    )
    return result


# ----------------------------------------------------------------------
# Software vs. hardware Tempest: what does the NP buy?
# ----------------------------------------------------------------------
def run_software_tempest(nodes: int = 8, cache_bytes: int = 2048,
                         seed: int = 42) -> ExperimentResult:
    """Run the same Stache library on all three Tempest backends.

    Section 2: "Tempest can also be implemented in software for existing
    machines" (the CM-5-native direction).  The protocol code is
    *identical* on every system — the portability claim — and the cycle
    gaps locate each hardware feature's value: typhoon -> decoupled
    isolates the NP's hardware-assisted dispatch and RTLB checks
    (handlers stay offloaded, but on a commodity second CPU paying
    software polling + dispatch), and decoupled -> blizzard isolates the
    offload itself (handlers move onto the computation CPU).
    """
    result = ExperimentResult(
        "software-tempest",
        "The same Stache library on Typhoon vs. the software backends",
        ["application", "typhoon_cycles", "decoupled_cycles",
         "blizzard_cycles", "decoupled_slowdown", "blizzard_slowdown"],
    )
    for app_name in ("ocean", "em3d", "mp3d"):
        times = {}
        for system in ("typhoon-stache", "decoupled-stache",
                       "blizzard-stache"):
            app = workload(app_name, "small").build()
            outcome = run_application(system, app,
                                      _config(nodes, cache_bytes, seed))
            times[system] = outcome["execution_time"]
        result.add_row(
            application=app_name,
            typhoon_cycles=times["typhoon-stache"],
            decoupled_cycles=times["decoupled-stache"],
            blizzard_cycles=times["blizzard-stache"],
            decoupled_slowdown=times["decoupled-stache"]
            / times["typhoon-stache"],
            blizzard_slowdown=times["blizzard-stache"]
            / times["typhoon-stache"],
        )
    result.notes.append(
        "identical protocol code on all three systems; decoupled_slowdown "
        "is the cost of software dispatch on a dedicated second CPU, and "
        "blizzard_slowdown additionally moves the handlers onto the "
        "computation CPU (what the offload itself buys)"
    )
    return result


# ----------------------------------------------------------------------
# Three cost points: one protocol, one trace, three Tempest substrates
# ----------------------------------------------------------------------
def run_cost_points(nodes: int = 4, cache_bytes: int = 1024,
                    seed: int = 11) -> ExperimentResult:
    """Message economy and time breakdown across the three cost domains.

    Runs a lock-step producer/consumer phase pattern (barriers serialise
    every phase, so all three backends see the *same access trace* and
    make the same protocol decisions — message counts are identical)
    and reports where the cycles went on each substrate.  The
    ``dispatch_per_handler`` column is each backend's per-dispatch
    overhead from its cost domain: 0 for Typhoon's hardware capture,
    poll-notice + software dispatch for the decoupled second CPU, and
    the full software dispatch sequence on Blizzard's compute CPU —
    the typhoon < decoupled < blizzard ordering the cycles column shows.
    """
    from repro.apps.synthetic import ProducerConsumerApplication
    from repro.sim.config import MachineConfig

    config = MachineConfig(nodes=nodes, seed=seed)
    result = ExperimentResult(
        "cost-points",
        "One protocol, one access trace, three Tempest cost points",
        ["system", "cycles", "slowdown", "remote_packets", "network_words",
         "handler_cycles", "dispatch_per_handler"],
    )
    dispatch_overhead = {
        "typhoon:stache": 0,  # hardware-assisted capture
        "decoupled:stache": (config.decoupled.poll_notice_cycles
                             + config.decoupled.dispatch_cycles),
        "blizzard:stache": config.blizzard.software_dispatch_cycles,
    }
    baseline = None
    for system in ("typhoon:stache", "decoupled:stache", "blizzard:stache"):
        app = ProducerConsumerApplication(buffer_records=8, phases=3)
        outcome = run_application(system, app,
                                  _config(nodes, cache_bytes, seed))
        stats = outcome["machine"].stats
        cycles = outcome["execution_time"]
        if baseline is None:
            baseline = cycles
        result.add_row(
            system=system,
            cycles=round(cycles),
            slowdown=cycles / baseline,
            remote_packets=round(outcome["remote_packets"]),
            network_words=round(stats.get("network.words")),
            handler_cycles=round(stats.total(".handler_cycles")),
            dispatch_per_handler=dispatch_overhead[system],
        )
    result.notes.append(
        "lock-step phases make the message columns backend-invariant; on "
        "timing-sensitive workloads (mp3d) the backends' different costs "
        "change the interleaving and with it the message counts"
    )
    result.notes.append(
        "blizzard's handler_cycles reads 0 because its handlers run "
        "inline on the compute CPU: their time is inside access/barrier "
        "cycles, which is exactly what the other two backends avoid"
    )
    return result


# ----------------------------------------------------------------------
# Message economy: Section 4's four-messages-vs-one argument
# ----------------------------------------------------------------------
def run_message_economy(nodes: int = 8, nodes_per_proc: int = 24,
                        degree: int = 4, remote_fraction: float = 0.5,
                        iterations: int = 3, seed: int = 42,
                        cache_bytes: int = 8192) -> ExperimentResult:
    """Count coherence messages per remote datum per EM3D iteration.

    Section 4: under transparent shared memory "a remote e_node (or
    h_node) will be fetched, cached, and invalidated, which requires at
    least four messages (request, response, invalidate, and
    acknowledge)"; prefetching hides latency "but does not reduce the
    message traffic"; the custom protocol approaches the minimum of one.
    """
    result = ExperimentResult(
        "message-economy",
        "Remote packets per remote datum per iteration (EM3D, "
        f"{int(remote_fraction * 100)}% remote edges)",
        ["system", "remote_packets", "per_datum_per_iter", "cycles"],
    )
    variants = [
        ("typhoon-stache", "typhoon-stache", False),
        ("typhoon-stache+prefetch", "typhoon-stache", True),
        ("typhoon-update", "typhoon-update", False),
    ]
    for label, system, prefetch in variants:
        app = Em3dApplication(
            nodes_per_proc=nodes_per_proc, degree=degree,
            remote_fraction=remote_fraction, iterations=iterations,
            seed=seed, prefetch=prefetch,
        )
        outcome = run_application(system, app,
                                  _config(nodes, cache_bytes, seed))
        machine = outcome["machine"]
        # Distinct remote data items: stached blocks (counted once each).
        if system == "typhoon-update":
            remote_data = machine.stats.get("em3d.blocks_stached")
        else:
            # Under invalidation protocols each datum is re-fetched every
            # iteration; the distinct count is fetches per iteration.
            remote_data = machine.stats.get("stache.blocks_fetched") / iterations
        remote_data = max(remote_data, 1)
        result.add_row(
            system=label,
            remote_packets=outcome["remote_packets"],
            per_datum_per_iter=(
                outcome["remote_packets"] / (remote_data * iterations)
            ),
            cycles=outcome["execution_time"],
        )
    result.notes.append(
        "paper: invalidation protocols need >= 4 messages per remote datum "
        "per iteration; prefetch does not reduce traffic; the update "
        "protocol approaches the minimum of 1"
    )
    return result


# ----------------------------------------------------------------------
# Ablations (extensions beyond the paper; see DESIGN.md §6)
# ----------------------------------------------------------------------
def run_ablation_np_speed(nodes: int = 4, cache_bytes: int = 2048,
                          cpis=(1, 2, 4), seed: int = 42) -> ExperimentResult:
    """How sensitive is Typhoon/Stache to a slower NP?

    Section 5.1 argues a previous-generation integer core suffices; this
    sweep charges 1/2/4 cycles per NP instruction and reports EM3D
    execution time relative to DirNNB.
    """
    result = ExperimentResult(
        "ablation-np-speed",
        "Typhoon/Stache vs. DirNNB as the NP slows down",
        ["np_cpi", "stache_cycles", "dirnnb_cycles", "relative"],
    )
    dirnnb = run_application(
        "dirnnb", workload("em3d", "small").build(),
        _config(nodes, cache_bytes, seed),
    )
    for cpi in cpis:
        config = _config(nodes, cache_bytes, seed)
        config = replace(
            config, typhoon=replace(config.typhoon, cycles_per_instruction=cpi)
        )
        stache = run_application(
            "typhoon-stache", workload("em3d", "small").build(), config
        )
        result.add_row(
            np_cpi=cpi,
            stache_cycles=stache["execution_time"],
            dirnnb_cycles=dirnnb["execution_time"],
            relative=stache["execution_time"] / dirnnb["execution_time"],
        )
    return result


def run_ablation_topology(nodes: int = 8, cache_bytes: int = 2048,
                          seed: int = 42) -> ExperimentResult:
    """Would Figure 4's ordering survive a 2-D mesh instead of the flat
    11-cycle network?"""
    result = ExperimentResult(
        "ablation-topology",
        "EM3D on ideal vs. 2-D-mesh networks (cycles, all three systems)",
        ["topology", "dirnnb", "typhoon_stache", "typhoon_update"],
    )
    for topology in ("ideal", "mesh2d"):
        cycles = {}
        for system in ("dirnnb", "typhoon-stache", "typhoon-update"):
            app = Em3dApplication(nodes_per_proc=24, degree=4,
                                  remote_fraction=0.4, iterations=2, seed=seed)
            config = _config(nodes, cache_bytes, seed)
            config = replace(
                config, network=replace(config.network, topology=topology)
            )
            outcome = run_application(system, app, config)
            cycles[system] = outcome["execution_time"]
        result.add_row(
            topology=topology,
            dirnnb=cycles["dirnnb"],
            typhoon_stache=cycles["typhoon-stache"],
            typhoon_update=cycles["typhoon-update"],
        )
    return result


def run_ablation_contention(nodes: int = 8, cache_bytes: int = 2048,
                            seed: int = 42) -> ExperimentResult:
    """Does channel contention change the Figure 4 ordering?

    The paper admits its simulations "do not accurately model network and
    bus contention".  This ablation serializes every channel at one word
    per cycle — pessimistic for data-heavy protocols — and checks the
    conclusions survive.
    """
    result = ExperimentResult(
        "ablation-contention",
        "EM3D with and without channel contention (cycles, three systems)",
        ["contention", "dirnnb", "typhoon_stache", "typhoon_update"],
    )
    for contention in (False, True):
        cycles = {}
        for system in ("dirnnb", "typhoon-stache", "typhoon-update"):
            app = Em3dApplication(nodes_per_proc=24, degree=4,
                                  remote_fraction=0.4, iterations=2,
                                  seed=seed)
            config = _config(nodes, cache_bytes, seed)
            config = replace(
                config,
                network=replace(config.network, model_contention=contention),
            )
            outcome = run_application(system, app, config)
            cycles[system] = outcome["execution_time"]
        result.add_row(
            contention="on" if contention else "off",
            dirnnb=cycles["dirnnb"],
            typhoon_stache=cycles["typhoon-stache"],
            typhoon_update=cycles["typhoon-update"],
        )
    return result


def run_ablation_barrier(nodes: int = 8, cache_bytes: int = 2048,
                         seed: int = 42) -> ExperimentResult:
    """How much does Typhoon's hardware barrier network matter?

    Table 2 gives the CM-5-style barrier 11 cycles; a machine without one
    synthesizes barriers from messages.  Ocean (barrier per sweep) shows
    the cost.
    """
    from repro.apps.base import run_app
    from repro.apps.ocean import OceanApplication
    from repro.protocols.stache import StacheProtocol
    from repro.typhoon.system import TyphoonMachine

    result = ExperimentResult(
        "ablation-barrier",
        "Ocean on Typhoon/Stache: hardware vs. message-built barrier",
        ["barrier", "cycles", "barrier_cycles"],
    )
    for kind in ("hardware", "software"):
        machine = TyphoonMachine(_config(nodes, cache_bytes, seed))
        protocol = StacheProtocol()
        machine.install_protocol(protocol)
        if kind == "software":
            machine.use_software_barrier()
        cycles = run_app(machine,
                         OceanApplication(grid=26, iterations=2, seed=seed),
                         protocol)
        result.add_row(
            barrier=kind,
            cycles=cycles,
            barrier_cycles=machine.stats.total(".cpu.barrier_cycles"),
        )
    return result


def run_ablation_first_touch(nodes: int = 8, cache_bytes: int = 2048,
                             seed: int = 42) -> ExperimentResult:
    """Section 6 cites Stenstrom et al.: first-touch placement recovers
    much of DirNNB's disadvantage.  Measure it.

    The applications in this package already place data on its owner, so
    first-touch has nothing to fix there.  This ablation runs the case it
    was invented for: a program whose shared array is allocated round-
    robin while each node only ever works on its own slice (the paper's
    "careful data placement" discussion).
    """
    from repro.apps.base import Application, AppContext, SharedArray

    class PrivateSliceApplication(Application):
        name = "private-slice"

        def __init__(self, records_per_node: int = 128, sweeps: int = 3):
            # 128 records x 32 B = exactly one page per node, so pages and
            # slices align and first-touch can fully re-home each slice.
            self.records_per_node = records_per_node
            self.sweeps = sweeps
            self.array = None

        def setup(self, machine, protocol=None) -> None:
            total = self.records_per_node * machine.num_nodes
            # Shift the round-robin cursor so slice n is NOT homed on
            # node n — otherwise the naive layout is accidentally perfect.
            machine.heap.allocate(machine.config.page_size, label="shift")
            self.array = SharedArray(machine, protocol, total, 32,
                                     label="slice", striped=False)
            for index in range(total):
                self.poke(machine, self.array.addr(index), 0)

        def worker(self, ctx: AppContext):
            start = ctx.node_id * self.records_per_node
            for _sweep in range(self.sweeps):
                for index in range(start, start + self.records_per_node):
                    value = yield from ctx.read(self.array.addr(index))
                    yield from ctx.write(self.array.addr(index), value + 1)
                yield from ctx.barrier()

    result = ExperimentResult(
        "ablation-first-touch",
        "DirNNB page placement: round-robin vs. first-touch "
        "(private-slice workload)",
        ["placement", "dirnnb_cycles", "remote_packets"],
    )
    for placement in ("round_robin", "first_touch"):
        config = _config(nodes, cache_bytes, seed,
                         page_placement=placement)
        outcome = run_application("dirnnb", PrivateSliceApplication(), config)
        result.add_row(
            placement=placement,
            dirnnb_cycles=outcome["execution_time"],
            remote_packets=outcome["remote_packets"],
        )
    return result


# ----------------------------------------------------------------------
# Reliability ladder: protocol resilience under increasing fault load
# ----------------------------------------------------------------------
def run_reliability_ladder(nodes: int = 4, cache_bytes: int = 2048,
                           seed: int = 42,
                           systems: tuple[str, ...] = ("typhoon-stache",
                                                       "blizzard-stache"),
                           app: str = "mp3d",
                           dataset: str = "small") -> ExperimentResult:
    """Climb :data:`repro.network.faults.RELIABILITY_LADDER` per system.

    Each rung reruns the same workload under a progressively lossier
    deterministic fault plan; the table reports the slowdown relative to
    the reliable rung plus the recovery-machinery counters (retries,
    NACKs, duplicate suppressions).  The run itself is the correctness
    statement: protocols that lost a message or mis-ordered state would
    deadlock or crash the simulation.
    """
    from repro.network.faults import RELIABILITY_LADDER

    result = ExperimentResult(
        "reliability-ladder",
        f"Protocol resilience under injected faults ({app}/{dataset}, "
        f"{nodes} nodes)",
        ["system", "faults", "cycles", "slowdown", "retries", "nacks",
         "drops", "dups", "dup_suppressed"],
    )
    for system in systems:
        baseline = None
        for spec in RELIABILITY_LADDER:
            outcome = run_application(
                system, workload(app, dataset).build(),
                _config(nodes, cache_bytes, seed), faults=spec,
            )
            stats = outcome["machine"].stats
            cycles = round(outcome["execution_time"])
            if baseline is None:
                baseline = cycles
            result.add_row(
                system=system,
                faults=spec.name,
                cycles=cycles,
                slowdown=round(cycles / baseline, 3),
                retries=int(stats.get("tempest.retries")),
                nacks=int(stats.get("tempest.nacks_sent")),
                drops=int(stats.get("network.fault_drops")),
                dups=int(stats.get("network.fault_dups")),
                dup_suppressed=int(stats.get("tempest.duplicates_dropped")),
            )
    result.notes.append(
        "Fault plans are seeded and deterministic (docs/faults.md); the "
        "reliable rung is bit-identical to a run with no plan installed."
    )
    return result


# ----------------------------------------------------------------------
# Conformance matrix: every protocol transition checked, per system
# ----------------------------------------------------------------------
def run_conformance_matrix(nodes: int = 4, cache_bytes: int = 2048,
                           seed: int = 42,
                           systems: tuple[str, ...] = ("dirnnb",
                                                       "typhoon-stache",
                                                       "blizzard-stache"),
                           app: str = "mp3d",
                           dataset: str = "small") -> ExperimentResult:
    """Run each system with the online conformance monitor enabled.

    Every directory/tag transition and every grant/ack/writeback
    pairing is checked against the protocol's declarative specification
    (:mod:`repro.protocols.conformance`) — on a reliable network and
    again on the lossiest :data:`~repro.network.faults.RELIABILITY_LADDER`
    rung, where retransmissions and duplicate deliveries stress the
    causality checks hardest.  A run that completes *is* the result: the
    monitor raises at the first illegal transition.  The table reports
    how many checks each cell performed.
    """
    from repro.network.faults import RELIABILITY_LADDER

    result = ExperimentResult(
        "conformance-matrix",
        f"Online protocol conformance ({app}/{dataset}, {nodes} nodes)",
        ["system", "faults", "cycles", "checks", "violations"],
    )
    fault_rungs = [None, RELIABILITY_LADDER[-1]]
    for system in systems:
        for spec in fault_rungs:
            outcome = run_application(
                system, workload(app, dataset).build(),
                _config(nodes, cache_bytes, seed), faults=spec,
                conformance=True,
            )
            monitor = outcome["machine"].conformance
            result.add_row(
                system=system,
                faults=spec.name if spec is not None else "reliable",
                cycles=round(outcome["execution_time"]),
                checks=monitor.checks,
                violations=len(monitor.violations),
            )
    result.notes.append(
        "The monitor is passive: with it disabled the same seeds produce "
        "bit-identical runs (docs/observability.md)."
    )
    return result


# ----------------------------------------------------------------------
# The system registry: listing and full-matrix smoke run
# ----------------------------------------------------------------------
def run_backends() -> ExperimentResult:
    """List every registered backend with its provides-set.

    The capability half of the composition story: which Tempest
    mechanisms each machine substrate implements, and therefore which
    protocols it can legally run (``repro systems`` shows the resulting
    matrix, grouped under these backends).
    """
    from repro.backends import BACKENDS

    result = ExperimentResult(
        "backends",
        "Registered backends and the capabilities each provides",
        ["backend", "provides", "systems", "description"],
    )
    from repro.backends import all_systems

    systems = all_systems()
    for backend in BACKENDS.values():
        mine = [s for s in systems
                if s == backend.name or s.startswith(f"{backend.name}:")]
        result.add_row(
            backend=backend.name,
            provides=", ".join(sorted(backend.provides))
                     or "(hardwired protocol)",
            systems=len(mine),
            description=backend.description,
        )
    return result


def run_systems() -> ExperimentResult:
    """List every composable ``backend:protocol`` system, by backend.

    Pure registry introspection (no simulation): one row per valid
    composition from :func:`repro.backends.describe_systems` — grouped
    by backend, in registry order — with the backend capabilities each
    protocol requires, whether the system has an online conformance
    spec, and its legacy aliases.  Pair with :func:`run_backends` (the
    ``systems`` CLI command prints both) for each group's provides-set.
    """
    from repro.backends import describe_systems

    result = ExperimentResult(
        "systems",
        "Composable systems: every protocol on every capable backend, "
        "grouped by backend",
        ["system", "backend", "protocol", "conformance", "aliases", "notes"],
    )
    for row in describe_systems():
        result.add_row(**row)
    result.notes.append(
        "compose others as '<backend>:<protocol>'; invalid pairs (e.g. "
        "blizzard:em3d-update, which needs decoupled handlers) are "
        "rejected at build time with the missing capability named"
    )
    return result


def run_system_matrix(nodes: int = 2, cache_bytes: int = 1024,
                      seed: int = 42) -> ExperimentResult:
    """Smoke-run every registered system on one tiny shared workload.

    The portability claim as a regression gate: the same
    producer/consumer application (striped writes, barrier, neighbour
    reads) runs end-to-end on every composable system, with the online
    conformance monitor enabled everywhere — every registered protocol
    has a spec (em3d-update's is step-indexed).  CI runs this on every
    push.
    """
    from repro.apps.synthetic import ProducerConsumerApplication
    from repro.backends import all_systems, parse_system

    result = ExperimentResult(
        "system-matrix",
        f"Full backend:protocol matrix smoke run ({nodes} nodes)",
        ["system", "cycles", "refs", "remote_packets", "conformance",
         "checks"],
    )
    for system in all_systems():
        backend, protocol = parse_system(system)
        has_spec = (protocol.conformance if protocol is not None
                    else backend.builtin_protocol) is not None
        outcome = run_application(
            system, ProducerConsumerApplication(buffer_records=4, phases=2),
            _config(nodes, cache_bytes, seed), conformance=has_spec,
        )
        monitor = outcome["machine"].conformance
        result.add_row(
            system=system,
            cycles=round(outcome["execution_time"]),
            refs=outcome["refs"],
            remote_packets=outcome["remote_packets"],
            conformance="on" if has_spec else "no spec",
            checks=monitor.checks if monitor is not None else 0,
        )
    result.notes.append(
        "every row is the same application binary; only the system "
        "composition string changed"
    )
    return result


# ----------------------------------------------------------------------
# Dispatch-kernel benchmark and differential check
# ----------------------------------------------------------------------
def run_bench(kernel: str = "interpreted", nodes: int = 8,
              seed: int = 42, cache_bytes: int = 2048,
              cells: tuple[tuple[str, str, str], ...] = (
                  ("typhoon:stache", "mp3d", "small"),
                  ("typhoon:stache", "ocean", "small"),
                  ("blizzard:stache", "mp3d", "small"),
                  ("typhoon:em3d-update", "em3d", "small"),
                  ("dirnnb", "ocean", "small"),
              ),
              repeats: int = 3) -> ExperimentResult:
    """Time the protocol hot path under the selected dispatch kernel.

    One row per ``(system, app, dataset)`` cell: best-of-``repeats``
    wall time, engine events per second, and simulated cycles.  Run it
    twice — ``python -m repro bench --kernel interpreted`` and
    ``--kernel compiled`` — to see the table-driven kernel's speedup on
    the same cells (the committed trajectory lives in
    ``BENCH_kernel.json``; see ``benchmarks/test_perf_kernel.py``).

    The ``kernel`` column reports what actually ran, and ``fallback``
    says why when that differs from what was requested — the
    em3d-update and dirnnb cells exist precisely to keep the fallback
    path visible in the table rather than silently timing interpreted
    dispatch under a "compiled" heading.
    """
    import time

    from repro.kernel import KERNELS

    if kernel not in KERNELS:
        raise ValueError(f"unknown kernel {kernel!r}: expected {KERNELS}")
    result = ExperimentResult(
        "bench",
        f"Dispatch-kernel throughput ({kernel} kernel, {nodes} nodes, "
        f"best of {repeats})",
        ["system", "app", "kernel", "wall_s", "events", "events_per_s",
         "cycles", "fallback"],
    )
    for system, app_name, dataset in cells:
        best = None
        for _ in range(repeats):
            app = workload(app_name, dataset).build()
            start = time.perf_counter()
            outcome = run_application(
                system, app, _config(nodes, cache_bytes, seed),
                kernel=kernel,
            )
            elapsed = time.perf_counter() - start
            if best is None or elapsed < best[0]:
                best = (elapsed, outcome)
        elapsed, outcome = best
        events = outcome["machine"].engine.events_fired
        reason = outcome["machine"].kernel_fallback_reason or ""
        result.add_row(
            system=system,
            app=f"{app_name}/{dataset}",
            kernel=outcome["kernel"],
            wall_s=round(elapsed, 4),
            events=events,
            events_per_s=round(events / elapsed) if elapsed > 0 else 0,
            cycles=round(outcome["execution_time"]),
            fallback=reason if len(reason) < 44 else reason[:41] + "...",
        )
    result.notes.append(
        "kernel='compiled' fires fewer engine events for identical "
        "simulated behaviour (tail dispatches advance the clock inline); "
        "compare events_per_s across kernels, not events"
    )
    return result


def run_differential(nodes: int = 4, seed: int = 42,
                     cache_bytes: int = 2048, app: str = "mp3d",
                     dataset: str = "small") -> ExperimentResult:
    """Two differential axes over the full system matrix.

    Axis ``kernel``: every compilable ``backend:protocol`` system runs
    the same workload twice — interpreted and compiled — and the
    harness (:mod:`repro.harness.differential`) asserts bit-identical
    statistics, final memory images, and execution time.
    Non-compilable systems verify the fallback path instead.

    Axis ``lanes``: every system (no exemptions — the lanes live in the
    node models, not the kernel) runs batched and scalar, under both
    dispatch kernels, and must match the same way.  A ``diffs`` column
    that is not 0 is a kernel or lane bug.
    """
    from repro.harness.differential import run_lane_matrix, run_matrix

    result = ExperimentResult(
        "differential",
        f"Kernel and lane differential axes ({app}/{dataset}, "
        f"{nodes} nodes)",
        ["axis", "system", "kernel", "identical", "diffs", "cycles",
         "events_interp", "events_compiled", "fallback_reason"],
    )
    failures = 0

    def add(axis: str, row, kernel_label: str) -> None:
        nonlocal failures
        failures += 0 if row.identical else 1
        reason = row.fallback_reason or ""
        result.add_row(
            axis=axis,
            system=row.system,
            kernel=kernel_label,
            identical="yes" if row.identical else "NO",
            diffs=len(row.diffs),
            cycles=round(row.execution_time),
            events_interp=row.events_interpreted,
            events_compiled=row.events_compiled,
            fallback_reason=reason if len(reason) < 48 else reason[:45] + "...",
        )

    for row in run_matrix(app, dataset, nodes=nodes, seed=seed,
                          cache_bytes=cache_bytes):
        add("kernel", row, "compiled" if row.compiled else "interpreted")
    for kernel in ("interpreted", "compiled"):
        for row in run_lane_matrix(app, dataset, nodes=nodes, seed=seed,
                                   cache_bytes=cache_bytes, kernel=kernel):
            add("lanes", row, kernel)
    if failures:
        raise AssertionError(
            f"differential check failed on {failures} row(s): a fast "
            f"path (compiled kernel or batched lanes) diverged from "
            f"its oracle"
        )
    result.notes.append(
        "identical = statistics, memory images, and execution time all "
        "bit-equal across the axis (events_fired is engine bookkeeping "
        "and may legitimately differ); axis=lanes compares "
        "batched-vs-scalar under each dispatch kernel"
    )
    return result


# ----------------------------------------------------------------------
# The sweep result store: cold vs warm over the same matrix
# ----------------------------------------------------------------------
def run_sweep_cache(nodes: int = 2, seed: int = 42) -> ExperimentResult:
    """Demonstrate the content-addressed sweep store: cold run, warm read.

    Runs a small systems x workloads matrix twice against a fresh
    store (:mod:`repro.harness.store`).  The first pass executes every
    cell and persists each row under its content address (cell axes +
    ``repro.__source_digest__``); the second pass is pure cache reads —
    zero cells execute — and the experiment *asserts* its rows are
    bit-identical to the cold pass before reporting the speedup.  This
    is the serving story for repeated queries over the evaluation
    matrix: warm-cache reads, not recomputes (CI's ``sweep-cache`` job
    runs the same shape through the ``python -m repro sweep`` CLI).
    """
    import tempfile
    import time

    from repro.harness.store import ResultStore
    from repro.harness.sweep import Sweep

    def matrix() -> Sweep:
        return (
            Sweep()
            .systems("dirnnb", "typhoon:stache", "blizzard:stache")
            .workloads(("ocean", "small"), ("mp3d", "small"))
            .cache_sizes(2048)
            .seeds(seed)
        )

    result = ExperimentResult(
        "sweep-cache",
        f"Cold vs warm sweep over the result store "
        f"({matrix().cells} cells, {nodes} nodes)",
        ["pass", "cells", "executed", "hits", "wall_s", "speedup",
         "rows_identical"],
    )
    with tempfile.TemporaryDirectory() as root:
        store = ResultStore(root)
        passes = []
        for label in ("cold", "warm"):
            start = time.perf_counter()
            outcome = matrix().run(nodes=nodes, store=store)
            passes.append((label, time.perf_counter() - start, outcome))
        (_, cold_wall, cold), (_, warm_wall, warm) = passes
        if cold.rows != warm.rows:
            raise AssertionError(
                "warm-run rows are not bit-identical to the cold run")
        for label, wall, outcome in passes:
            stats = outcome.cache_stats
            result.add_row(
                **{"pass": label},
                cells=stats["cells"],
                executed=stats["executed"],
                hits=stats["hits"],
                wall_s=round(wall, 4),
                speedup=round(cold_wall / wall, 1) if wall > 0 else 0.0,
                rows_identical="yes",
            )
    result.notes.append(
        f"store keyed by cell axes + source digest "
        f"{store.digest}; the warm pass executed "
        f"{warm.cache_stats['executed']} cells"
    )
    return result
