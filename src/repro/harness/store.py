"""Content-addressed sweep result store.

Every sweep cell is a pure function of its axes — ``(system,
application, dataset, cache_bytes, seed, nodes[, faults[,
conformance]])`` — plus the code that runs it.  This module persists
each cell's result row under a key derived from exactly those inputs:

* the cell tuple, canonically JSON-encoded (``FaultSpec`` values are
  frozen dataclasses and serialise field-by-field), and
* the **code-version fingerprint** ``repro.__source_digest__`` — a hash
  of every file under the package, sources and package data alike
  (:mod:`repro._fingerprint`), so editing any packaged input turns
  every prior entry into a miss.

With the store in place, :meth:`repro.harness.sweep.Sweep.run`
partitions its cells into hits and misses and executes **only the
misses** — a repeated sweep over an unchanged tree executes zero cells
and returns rows bit-identical to the cold run (regression-tested in
``tests/harness/test_sweep.py``).  The async job front end
(:mod:`repro.harness.service`) and the ``python -m repro sweep`` CLI
build on the same store.

Layout (one JSON document per cell, sharded by key prefix)::

    <root>/
      objects/<key[:2]>/<key>.json    cached cell rows
      jobs/<job_id>.json              SweepJob specs (service.py)

The root defaults to ``.repro-store/`` in the current directory and is
overridable with the ``REPRO_STORE`` environment variable; setting
``REPRO_STORE=off`` (or ``0``/``none``/``disabled``) disables caching
entirely, as does ``Sweep.run(store=None)``.

Corrupted, truncated, or foreign entries are never an error: anything
that does not load as a well-formed entry for the current code version
is treated as a miss (and cleaned up by :meth:`ResultStore.gc`).

See ``docs/sweeps.md`` for the manual.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from pathlib import Path
from typing import Any

#: Default store directory, relative to the current working directory.
DEFAULT_ROOT = ".repro-store"

#: Entry-format version; bumped on incompatible schema changes (old
#: entries then read as misses and are swept by ``gc``).
STORE_VERSION = 1

#: ``REPRO_STORE`` values that mean "no store at all".
_OFF_VALUES = ("off", "0", "none", "disabled", "no")


def describe_cell(cell: tuple) -> dict[str, Any]:
    """A human-readable, JSON-able description of one sweep cell.

    Mirrors the 6/7/8-tuple convention of
    :func:`repro.harness.sweep._run_cell`: a fault axis appends a
    ``FaultSpec`` (or None), a conformance axis appends a bool.
    """
    described: dict[str, Any] = {
        "system": cell[0],
        "application": cell[1],
        "dataset": cell[2],
        "cache": cell[3],
        "seed": cell[4],
        "nodes": cell[5],
    }
    if len(cell) >= 7:
        spec = cell[6]
        described["faults"] = (
            dataclasses.asdict(spec) if spec is not None else None
        )
    if len(cell) >= 8:
        described["conformance"] = bool(cell[7])
    return described


def cell_key(cell: tuple, digest: str) -> str:
    """The content address of one cell under one code version.

    The key material is the canonical JSON of the cell description plus
    the source digest and the ambient ``REPRO_CONFORMANCE`` switch
    (which changes what a machine checks, and therefore what the
    conformance columns report), so two processes agree on the key for
    a cell if and only if they would compute the same row for it.
    """
    material = {
        "version": STORE_VERSION,
        "digest": digest,
        "cell": describe_cell(cell),
        "arity": len(cell),
        "env_conformance": os.environ.get("REPRO_CONFORMANCE", "")
        not in ("", "0"),
    }
    canonical = json.dumps(material, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


class ResultStore:
    """On-disk content-addressed store of sweep result rows.

    ``root`` defaults to ``REPRO_STORE`` (when set to a path) or
    ``.repro-store/``; ``digest`` defaults to the live
    ``repro.__source_digest__`` and exists as a parameter so tests can
    simulate code-version changes without editing sources.

    The instance keeps session counters (``hits``/``misses``/
    ``writes``) that :meth:`stats` reports alongside the on-disk
    totals.
    """

    def __init__(self, root: str | Path | None = None,
                 digest: str | None = None) -> None:
        if root is None:
            env = os.environ.get("REPRO_STORE", "").strip()
            if env.lower() in _OFF_VALUES:
                raise ValueError(
                    "REPRO_STORE disables the store; construct "
                    "ResultStore with an explicit root to force one")
            root = env or DEFAULT_ROOT
        self.root = Path(root)
        if digest is None:
            from repro._fingerprint import source_digest

            digest = source_digest()
        self.digest = digest
        self.hits = 0
        self.misses = 0
        self.writes = 0

    # ------------------------------------------------------------------
    @classmethod
    def resolve(cls, store) -> "ResultStore | None":
        """Normalise ``Sweep.run``'s ``store`` argument.

        ``"auto"`` (the default) resolves through the environment:
        ``REPRO_STORE=off`` yields None (no caching), any other value
        is the store root, unset means ``.repro-store/``.  ``None`` or
        ``"off"`` disable caching outright; a path selects that root; a
        ready ``ResultStore`` passes through.
        """
        if store is None:
            return None
        if isinstance(store, ResultStore):
            return store
        if isinstance(store, str) and store.lower() in _OFF_VALUES:
            return None
        if store == "auto":
            env = os.environ.get("REPRO_STORE", "").strip()
            if env.lower() in _OFF_VALUES:
                return None
            return cls(env or DEFAULT_ROOT)
        return cls(store)

    # ------------------------------------------------------------------
    def _object_path(self, key: str) -> Path:
        return self.root / "objects" / key[:2] / f"{key}.json"

    def _object_files(self):
        objects = self.root / "objects"
        if not objects.is_dir():
            return
        yield from sorted(objects.glob("*/*.json"))

    def key(self, cell: tuple) -> str:
        return cell_key(cell, self.digest)

    # ------------------------------------------------------------------
    def get(self, cell: tuple) -> dict[str, Any] | None:
        """The cached row for ``cell``, or None (a miss).

        Anything unreadable — missing file, truncated JSON, wrong
        schema version, foreign digest — is a miss, never an error:
        a damaged store costs recomputation, not correctness.
        """
        path = self._object_path(self.key(cell))
        try:
            entry = json.loads(path.read_text(encoding="utf-8"))
            if (entry["version"] != STORE_VERSION
                    or entry["digest"] != self.digest
                    or not isinstance(entry["row"], dict)):
                raise ValueError("stale or malformed entry")
            row = entry["row"]
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return row

    def put(self, cell: tuple, row: dict[str, Any]) -> str:
        """Persist ``row`` for ``cell``; returns the key.

        The write is atomic (temp file + rename), so concurrent pool
        workers and a half-written entry from a killed run both degrade
        to at worst a recomputed cell.
        """
        key = self.key(cell)
        path = self._object_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "version": STORE_VERSION,
            "key": key,
            "digest": self.digest,
            "cell": describe_cell(cell),
            "row": row,
        }
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(entry, indent=1, sort_keys=True),
                       encoding="utf-8")
        os.replace(tmp, path)
        self.writes += 1
        return key

    def invalidate(self, cell: tuple | None = None) -> dict[str, int]:
        """Drop one cell's entry, or every entry when ``cell`` is None.

        Returns ``{"removed": n, "skipped": m}``: ``skipped`` counts
        entries whose file exists but could not be unlinked (permission
        denied, directory-turned-file, ...) — those are still live on
        disk and must not be reported as gone.  A missing single-cell
        entry counts as neither.  Invalidation is always safe — the next
        ``Sweep.run`` recomputes and re-fills.
        """
        removed = skipped = 0
        if cell is not None:
            path = self._object_path(self.key(cell))
            try:
                path.unlink()
                removed += 1
            except FileNotFoundError:
                pass
            except OSError:
                skipped += 1
            return {"removed": removed, "skipped": skipped}
        for path in self._object_files():
            try:
                path.unlink()
                removed += 1
            except OSError:
                skipped += 1
        return {"removed": removed, "skipped": skipped}

    def gc(self) -> dict[str, int]:
        """Remove entries from other code versions (and unreadable ones).

        Returns ``{"removed": n, "kept": m, "skipped": s}`` — ``skipped``
        counts stale entries whose unlink failed (they are *still on
        disk*, so reporting them as removed would make ``repro sweep
        store gc`` lie about the store's contents).  Current-digest
        entries are never touched: the nightly full-matrix run gc's
        first, so the archived store holds exactly one code version.
        """
        removed = kept = skipped = 0
        for path in self._object_files():
            try:
                entry = json.loads(path.read_text(encoding="utf-8"))
                stale = (entry["version"] != STORE_VERSION
                         or entry["digest"] != self.digest)
            except (OSError, ValueError, KeyError, TypeError):
                stale = True
            if stale:
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    skipped += 1
            else:
                kept += 1
        return {"removed": removed, "kept": kept, "skipped": skipped}

    def stats(self) -> dict[str, Any]:
        """On-disk totals plus this session's hit/miss/write counters."""
        entries = stale = size = 0
        for path in self._object_files():
            try:
                raw = path.read_text(encoding="utf-8")
                entry = json.loads(raw)
                current = (entry["version"] == STORE_VERSION
                           and entry["digest"] == self.digest)
            except (OSError, ValueError, KeyError, TypeError):
                current = False
                raw = ""
            entries += 1
            size += len(raw)
            stale += 0 if current else 1
        return {
            "root": str(self.root),
            "digest": self.digest,
            "entries": entries,
            "stale": stale,
            "bytes": size,
            "session_hits": self.hits,
            "session_misses": self.misses,
            "session_writes": self.writes,
        }
