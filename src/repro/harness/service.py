"""Sweep-as-a-service: asynchronous sweep jobs over the result store.

A :class:`SweepJob` decouples *describing* a sweep from *executing* it.
``submit`` persists the sweep's axes (plus the code-version digest it
was submitted under) as a JSON spec next to the store; any process that
can see the store can then

* ``status()``/``progress()`` the job — pure store probes, no
  simulation: a cell is *done* exactly when its row is cached;
* ``run()`` it — execute the missing cells (serial or ``workers=N``),
  which is incremental and restartable for free because every completed
  cell is already persisted; and
* ``result()`` it — assemble the full result table from the store
  (raises :class:`JobIncomplete` while cells are still missing).

Job ids are content-addressed too — the hash of the spec and the
digest — so resubmitting the same sweep under the same code version is
idempotent, and submitting it after a source change is a *new* job
whose cells all miss.  The ``python -m repro sweep`` CLI is a thin
front end over this class; see ``docs/sweeps.md``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any

from repro.harness.report import ExperimentResult
from repro.harness.store import ResultStore
from repro.harness.sweep import Sweep
from repro.network.faults import FaultSpec


class JobIncomplete(RuntimeError):
    """``result()`` was asked for while cells are still missing."""


def _spec_from_sweep(sweep: Sweep, nodes: int) -> dict[str, Any]:
    """The persistable description of a sweep (axes only, no results)."""
    spec: dict[str, Any] = {
        "version": 1,
        "nodes": nodes,
        "systems": list(sweep._systems),
        "workloads": [list(pair) for pair in sweep._workloads],
        "cache_sizes": list(sweep._cache_sizes),
        "seeds": list(sweep._seeds),
        "faults": None,
        "conformance": None,
    }
    if sweep._faults is not None:
        spec["faults"] = [
            dataclasses.asdict(fault) if fault is not None else None
            for fault in sweep._faults
        ]
    if sweep._conformance is not None:
        spec["conformance"] = [bool(flag) for flag in sweep._conformance]
    return spec


def _sweep_from_spec(spec: dict[str, Any]) -> Sweep:
    """Reconstruct the Sweep a spec describes (inverse of the above)."""
    sweep = (
        Sweep()
        .systems(*spec["systems"])
        .workloads(*[tuple(pair) for pair in spec["workloads"]])
        .cache_sizes(*spec["cache_sizes"])
        .seeds(*spec["seeds"])
    )
    if spec.get("faults") is not None:
        sweep.faults(*[
            FaultSpec(**fields) if fields is not None else None
            for fields in spec["faults"]
        ])
    if spec.get("conformance") is not None:
        sweep.conformance(*spec["conformance"])
    return sweep


class SweepJob:
    """One submitted sweep: a persisted spec plus the store it fills."""

    def __init__(self, store: ResultStore, spec: dict[str, Any]) -> None:
        self.store = store
        self.spec = spec
        self.job_id = spec["job"]

    # ------------------------------------------------------------------
    @classmethod
    def submit(cls, sweep: Sweep, nodes: int = 8,
               store=None) -> "SweepJob":
        """Persist ``sweep`` as a job and return a handle to it.

        ``store`` resolves like ``Sweep.run(store=...)`` except that a
        job always needs one: with caching disabled in the environment
        the default ``.repro-store/`` is still used.
        """
        resolved = ResultStore.resolve(store if store is not None
                                       else "auto")
        if resolved is None:
            resolved = ResultStore(".repro-store")
        spec = _spec_from_sweep(sweep, nodes)
        spec["digest"] = resolved.digest
        canonical = json.dumps(spec, sort_keys=True, separators=(",", ":"))
        spec["job"] = hashlib.sha256(canonical.encode()).hexdigest()[:12]
        path = resolved.root / "jobs" / f"{spec['job']}.json"
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(spec, indent=1, sort_keys=True),
                        encoding="utf-8")
        return cls(resolved, spec)

    @classmethod
    def load(cls, job_id: str, store=None) -> "SweepJob":
        """Reopen a previously submitted job by id."""
        resolved = ResultStore.resolve(store if store is not None
                                       else "auto")
        if resolved is None:
            resolved = ResultStore(".repro-store")
        path = resolved.root / "jobs" / f"{job_id}.json"
        try:
            spec = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as error:
            raise KeyError(f"no job {job_id!r} under {resolved.root}"
                           ) from error
        return cls(resolved, spec)

    @classmethod
    def jobs(cls, store=None) -> list[str]:
        """Ids of every job persisted next to the store."""
        resolved = ResultStore.resolve(store if store is not None
                                       else "auto")
        if resolved is None:
            resolved = ResultStore(".repro-store")
        jobs_dir = resolved.root / "jobs"
        if not jobs_dir.is_dir():
            return []
        return sorted(path.stem for path in jobs_dir.glob("*.json"))

    # ------------------------------------------------------------------
    def sweep(self) -> Sweep:
        return _sweep_from_spec(self.spec)

    @property
    def nodes(self) -> int:
        return self.spec["nodes"]

    def progress(self) -> tuple[int, int]:
        """``(cells done, cells total)`` — a pure store probe.

        Counts against the store's *current* code digest, so progress
        drops back toward zero when a source change invalidates the
        job's cached cells — the spec's ``digest`` field records what
        the job was submitted under, as provenance only.
        """
        cells = self.sweep().cell_list(self.nodes)
        done = sum(1 for cell in cells
                   if self.store.get(cell) is not None)
        return done, len(cells)

    def status(self) -> dict[str, Any]:
        """Job summary: state (pending/partial/complete) and counts."""
        done, total = self.progress()
        if done == 0:
            state = "pending"
        elif done < total:
            state = "partial"
        else:
            state = "complete"
        return {
            "job": self.job_id,
            "state": state,
            "done": done,
            "total": total,
            "nodes": self.nodes,
            "digest": self.spec["digest"],
            "current": self.spec["digest"] == self.store.digest,
            "store": str(self.store.root),
        }

    def run(self, workers: int = 1, progress=None) -> ExperimentResult:
        """Execute the job's missing cells and return the full table.

        Incremental and restartable: already-cached cells are hits,
        each newly computed cell is persisted immediately, and a rerun
        after an interruption picks up where the last one stopped.
        """
        return self.sweep().run(nodes=self.nodes, progress=progress,
                                workers=workers, store=self.store)

    def result(self) -> ExperimentResult:
        """Assemble the result table from the store alone.

        Raises :class:`JobIncomplete` if any cell is missing — call
        :meth:`run` (or let the nightly runner fill the store) first.
        """
        done, total = self.progress()
        if done < total:
            raise JobIncomplete(
                f"job {self.job_id}: {total - done} of {total} cells "
                f"not in store; run the job first")
        result = self.run(workers=1)
        assert result.cache_stats["executed"] == 0
        return result
