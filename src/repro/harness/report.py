"""Result containers and rendering (text, CSV, JSON) for experiments."""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass, field
from typing import Any


@dataclass
class ExperimentResult:
    """A titled table of result rows (one per configuration/series point)."""

    experiment_id: str
    title: str
    columns: list[str]
    rows: list[dict[str, Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, **values: Any) -> None:
        missing = [column for column in self.columns if column not in values]
        if missing:
            raise ValueError(f"row missing columns {missing}")
        self.rows.append(values)

    def column(self, name: str) -> list[Any]:
        return [row[name] for row in self.rows]

    def rows_where(self, **criteria: Any) -> list[dict[str, Any]]:
        return [
            row for row in self.rows
            if all(row.get(key) == value for key, value in criteria.items())
        ]

    # ------------------------------------------------------------------
    def to_text(self) -> str:
        """Render as an aligned text table, paper style."""

        def format_cell(value: Any) -> str:
            if isinstance(value, float):
                return f"{value:.3f}"
            return str(value)

        table = [self.columns] + [
            [format_cell(row[column]) for column in self.columns]
            for row in self.rows
        ]
        widths = [
            max(len(line[index]) for line in table)
            for index in range(len(self.columns))
        ]
        divider = "-+-".join("-" * width for width in widths)
        lines = [f"== {self.experiment_id}: {self.title} =="]
        lines.append(
            " | ".join(cell.ljust(width)
                       for cell, width in zip(table[0], widths))
        )
        lines.append(divider)
        for body_line in table[1:]:
            lines.append(
                " | ".join(cell.ljust(width)
                           for cell, width in zip(body_line, widths))
            )
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def to_csv(self) -> str:
        """Render as CSV (header row + one line per result row)."""
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(self.columns)
        for row in self.rows:
            writer.writerow([row[column] for column in self.columns])
        return buffer.getvalue()

    def to_json(self) -> str:
        """Render as a JSON document with metadata, rows, and notes."""
        return json.dumps(
            {
                "experiment_id": self.experiment_id,
                "title": self.title,
                "columns": self.columns,
                "rows": [
                    {column: row[column] for column in self.columns}
                    for row in self.rows
                ],
                "notes": self.notes,
            },
            indent=2,
            default=str,
        )

    def __str__(self) -> str:
        return self.to_text()
