"""Synthesized litmus corpus: serialization, drift checks, and replay.

:mod:`repro.protocols.explore` turns each protocol's declarative
transition tables into concrete pinned litmus tests; this module is the
harness half of that pipeline.  It owns

* the on-disk corpus format (``tests/litmus/*.json``, one file per
  protocol, committed and byte-stable so review sees schedule changes),
* the drift check CI runs (``python -m repro litmus --check``
  regenerates from the tables and fails on any difference), and
* the replayer: build the real machine for any ``backend:protocol``
  system, pin the synthesized schedule with a
  :class:`~repro.network.faults.ScriptedFaultPlan`, run the case's
  access program under the online
  :class:`~repro.protocols.conformance.ConformanceMonitor`, and check
  the observed values with
  :func:`~repro.protocols.history.check_register_consistency`.

A corpus is *portable by construction*: the schedules name handlers and
endpoints, not backend internals, so the stache corpus replays on
every Tempest backend, on the migratory variant (whose different message
sequences simply never match the pinned rules), and on em3d-update
(whose ordinary shared data rides the plain Stache paths).  Rules that
never fire are harmless; the monitor and the consistency checker are
what every replay must satisfy.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.backends import compose
from repro.kernel import install_kernel
from repro.network.faults import FaultRule, ScriptedFaultPlan
from repro.protocols.explore import (
    SynthesizedCase,
    synthesize_corpus,
)
from repro.protocols.history import AccessHistory, check_register_consistency
from repro.sim.config import MachineConfig

__all__ = [
    "CORPUS_PROTOCOLS",
    "REPLAY_SYSTEMS",
    "LitmusReplay",
    "corpus_path",
    "generate_corpus",
    "check_corpus",
    "load_corpus",
    "replay_case",
    "main",
]

#: Protocols with their own exploration corpus, in file order.
#: ``em3d-update`` is serialized as a *derived* corpus: its ordinary
#: shared-data traffic is the plain Stache protocol, so the stache
#: traces replay on it verbatim (the step-indexed update channel is
#: exercised by the em3d application tests, not by litmus schedules).
CORPUS_PROTOCOLS = ("stache", "dirnnb", "ivy", "em3d-update")

#: Corpus file -> every ``backend:protocol`` system it replays on.
#: The union is exactly ``repro.backends.all_systems()``.
REPLAY_SYSTEMS = {
    "stache": ("typhoon:stache", "decoupled:stache", "blizzard:stache",
               "typhoon:migratory", "decoupled:migratory",
               "blizzard:migratory"),
    "dirnnb": ("dirnnb",),
    "ivy": ("typhoon:ivy", "decoupled:ivy", "blizzard:ivy"),
    "em3d-update": ("typhoon:em3d-update", "decoupled:em3d-update"),
}

#: Kernels every replay runs under.  Systems whose machines cannot
#: compile simply record a fallback and run interpreted — the point is
#: that the *request* is exercised everywhere.
REPLAY_KERNELS = ("interpreted", "compiled")


def corpus_path(directory: str | Path, protocol: str) -> Path:
    return Path(directory) / f"{protocol}.json"


# ----------------------------------------------------------------------
# Serialization
# ----------------------------------------------------------------------
def _case_to_dict(case: SynthesizedCase) -> dict:
    payload = asdict(case)
    payload["programs"] = {
        str(node): [list(op) for op in ops]
        for node, ops in sorted(case.programs.items())
    }
    return payload


def _case_from_dict(payload: dict) -> SynthesizedCase:
    return SynthesizedCase(
        protocol=payload["protocol"],
        name=payload["name"],
        nodes=payload["nodes"],
        blocks=payload["blocks"],
        programs={
            int(node): [tuple(op) for op in ops]
            for node, ops in payload["programs"].items()
        },
        schedule=payload["schedule"],
        edges=payload["edges"],
        expect_stats=payload["expect_stats"],
        trace=payload["trace"],
    )


def _derive_em3d_cases(stache_cases: list) -> list:
    derived = []
    for case in stache_cases:
        payload = _case_to_dict(case)
        payload["protocol"] = "em3d-update"
        payload["name"] = case.name.replace("stache", "em3d-update", 1)
        derived.append(_case_from_dict(payload))
    return derived


def _corpus_payload(protocol: str, cases: list,
                    edges: int, states: int) -> dict:
    return {
        "format": 1,
        "protocol": protocol,
        "generator": "python -m repro litmus",
        "explored_edges": edges,
        "explored_states": states,
        "cases": [_case_to_dict(case) for case in cases],
    }


def _render(payload: dict) -> str:
    return json.dumps(payload, indent=1, sort_keys=True) + "\n"


def generate_corpus(directory: str | Path = "tests/litmus",
                    write: bool = True) -> dict[str, str]:
    """Synthesize every corpus; returns ``{protocol: rendered json}``.

    Deterministic end to end (the explorer draws no randomness), so two
    generations from the same tables are byte-identical — the property
    the CI drift check leans on.
    """
    rendered: dict[str, str] = {}
    stache_cases: list = []
    for protocol in CORPUS_PROTOCOLS:
        if protocol == "em3d-update":
            cases = _derive_em3d_cases(stache_cases)
            edges = states = 0
            payload = _corpus_payload(protocol, cases, edges, states)
            payload["derived_from"] = "stache"
            del payload["explored_edges"], payload["explored_states"]
        else:
            cases, result = synthesize_corpus(protocol)
            if protocol == "stache":
                stache_cases = cases
            payload = _corpus_payload(protocol, cases,
                                      len(result.edges), result.states)
        rendered[protocol] = _render(payload)
    if write:
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        for protocol, text in rendered.items():
            corpus_path(directory, protocol).write_text(text)
    return rendered


def check_corpus(directory: str | Path = "tests/litmus") -> list[str]:
    """Regenerate and diff against the committed corpus.

    Returns drift messages (empty = clean).  A missing file is drift.
    """
    problems = []
    for protocol, text in generate_corpus(directory, write=False).items():
        path = corpus_path(directory, protocol)
        if not path.exists():
            problems.append(f"{path}: missing (run `python -m repro litmus`)")
            continue
        if path.read_text() != text:
            problems.append(
                f"{path}: stale — the committed corpus no longer matches "
                f"the protocol tables (run `python -m repro litmus`)"
            )
    return problems


def load_corpus(directory: str | Path,
                protocol: str) -> list[SynthesizedCase]:
    payload = json.loads(corpus_path(directory, protocol).read_text())
    return [_case_from_dict(entry) for entry in payload["cases"]]


# ----------------------------------------------------------------------
# Replay
# ----------------------------------------------------------------------
@dataclass
class LitmusReplay:
    """Outcome of one case on one system under one kernel."""

    case: str
    system: str
    kernel: str
    execution_time: float
    checks: int
    stats: dict = field(default_factory=dict)
    consistency: list = field(default_factory=list)
    violations: list = field(default_factory=list)
    in_flight: int = 0

    @property
    def clean(self) -> bool:
        return not self.consistency and not self.violations


def _rules(case: SynthesizedCase) -> list[FaultRule]:
    return [
        FaultRule(handler=rule["handler"], src=rule["src"], dst=rule["dst"],
                  occurrence=rule["occurrence"], action=rule["action"],
                  delay=rule["delay"])
        for rule in case.schedule
    ]


def replay_case(case: SynthesizedCase, system: str,
                kernel: str = "interpreted",
                config: MachineConfig | None = None) -> LitmusReplay:
    """Run one synthesized case on the real simulator.

    The machine is built fresh, the home of the litmus region pinned to
    node 0 (matching the model's convention), conformance monitoring is
    strict, and the case's schedule is installed as a scripted fault
    plan.  Block addresses stride by the protocol's coherence grain —
    cache blocks everywhere except IVY, whose grain is the page.
    """
    if config is None:
        config = MachineConfig(nodes=case.nodes, seed=0).with_cache_size(2048)
    machine, protocol = compose(system, config)
    stride = (machine.layout.page_size if case.protocol == "ivy"
              else machine.layout.block_size)
    region = machine.heap.allocate(case.blocks * stride, home=0,
                                   label=f"litmus:{case.name}")
    if protocol is not None:
        protocol.setup_region(region)
    machine.history = AccessHistory()
    monitor = machine.enable_conformance(strict=True)
    install_kernel(machine, kernel)
    machine.install_fault_plan(ScriptedFaultPlan(_rules(case)))

    def factory(node_id: int):
        program = case.programs.get(node_id, ())

        def worker():
            node = machine.nodes[node_id]
            for index, (op, block, at) in enumerate(program):
                wait = at - machine.engine.now
                if wait > 0:
                    yield wait
                addr = region.base + block * stride
                if op == "w":
                    yield from node.access(addr, True,
                                           node_id * 100 + index + 1)
                else:
                    yield from node.access(addr, False)

        return worker()

    machine.run_workers(factory)
    transport = getattr(machine, "transport", None)
    return LitmusReplay(
        case=case.name,
        system=system,
        kernel=kernel,
        execution_time=machine.execution_time,
        checks=monitor.checks,
        stats={key: machine.stats.get(key) for key in case.expect_stats},
        consistency=check_register_consistency(machine.history),
        violations=list(monitor.violations),
        in_flight=len(transport.pending) if transport is not None else 0,
    )


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    """``repro litmus``: regenerate (default) or ``--check`` the corpus."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro litmus",
        description="Synthesize the pinned litmus corpus from the "
                    "protocol transition tables.",
    )
    parser.add_argument("--dir", default="tests/litmus",
                        help="corpus directory (default: tests/litmus)")
    parser.add_argument("--check", action="store_true",
                        help="fail if the committed corpus differs from "
                             "a fresh generation")
    args = parser.parse_args(argv)
    if args.check:
        problems = check_corpus(args.dir)
        for problem in problems:
            print(problem)
        if problems:
            return 1
        print(f"litmus corpus in {args.dir} is up to date")
        return 0
    rendered = generate_corpus(args.dir, write=True)
    for protocol, text in rendered.items():
        cases = text.count('"name"')
        print(f"wrote {corpus_path(args.dir, protocol)} ({cases} cases)")
    return 0
