"""Protocol tracing: a time-ordered log of faults and messages.

Attach a :class:`ProtocolTrace` to a machine before running and every
block access fault, message injection and message delivery is recorded
with its cycle time.  The to_text rendering is the fastest way to see
*why* a protocol run behaved the way it did — which node faulted, what
the home did, what crossed what on the wire.

Usage::

    machine = TyphoonMachine(config)
    machine.install_protocol(StacheProtocol())
    trace = ProtocolTrace(machine)          # attach before running
    ... run ...
    print(trace.to_text(limit=50))
    fetches = trace.filter(handler="stache.data")
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable


@dataclass(frozen=True)
class TraceEvent:
    """One traced occurrence."""

    time: float
    kind: str        # "fault" | "send" | "deliver"
    node: int        # faulting node / message source
    dst: int | None  # message destination (None for faults)
    handler: str     # message handler, or the fault's kind string
    detail: str

    def format(self) -> str:
        if self.kind == "fault":
            return (f"{self.time:>8.0f}  fault    node{self.node}          "
                    f"{self.handler:<24} {self.detail}")
        arrow = "->" if self.kind == "send" else "=>"
        return (f"{self.time:>8.0f}  {self.kind:<8} "
                f"node{self.node} {arrow} node{self.dst}  "
                f"{self.handler:<24} {self.detail}")


class ProtocolTrace:
    """Event recorder for one machine's protocol activity."""

    def __init__(self, machine, capture_payloads: bool = False):
        self.machine = machine
        self.capture_payloads = capture_payloads
        self.events: list[TraceEvent] = []
        machine.interconnect.observers.append(self._on_message)
        machine.fault_observers.append(self._on_fault)

    # ------------------------------------------------------------------
    def _on_message(self, kind: str, message) -> None:
        detail = f"#{message.msg_id} {message.vnet.name.lower()}"
        if self.capture_payloads:
            addr = message.payload.get("addr")
            if addr is not None:
                detail += f" addr={addr:#x}"
        self.events.append(
            TraceEvent(
                time=self.machine.engine.now,
                kind=kind,
                node=message.src,
                dst=message.dst,
                handler=message.handler,
                detail=detail,
            )
        )

    def _on_fault(self, fault) -> None:
        self.events.append(
            TraceEvent(
                time=self.machine.engine.now,
                kind="fault",
                node=fault.node,
                dst=None,
                handler=fault.kind,
                detail=f"addr={fault.addr:#x}",
            )
        )

    # ------------------------------------------------------------------
    def filter(self, kind: str | None = None, node: int | None = None,
               handler: str | None = None) -> list[TraceEvent]:
        """Events matching every given criterion (handler is a prefix)."""

        def matches(event: TraceEvent) -> bool:
            if kind is not None and event.kind != kind:
                return False
            if node is not None and event.node != node:
                return False
            if handler is not None and not event.handler.startswith(handler):
                return False
            return True

        return [event for event in self.events if matches(event)]

    def counts_by_handler(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for event in self.events:
            if event.kind == "send":
                counts[event.handler] = counts.get(event.handler, 0) + 1
        return counts

    def to_text(self, limit: int | None = None,
                events: Iterable[TraceEvent] | None = None) -> str:
        chosen = list(events) if events is not None else self.events
        if limit is not None:
            chosen = chosen[:limit]
        lines = [f"== protocol trace: {len(chosen)} of "
                 f"{len(self.events)} events =="]
        lines.extend(event.format() for event in chosen)
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.events)
