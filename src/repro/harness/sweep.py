"""Generic parameter sweeps: systems x workloads x configurations.

The figure runners in :mod:`repro.harness.experiments` are hand-shaped to
the paper's artifacts; this utility is the general tool behind ad-hoc
studies — run every combination of the axes you name, collect one row per
cell, render or export.

Example::

    from repro.harness.sweep import Sweep

    sweep = (
        Sweep()
        .systems("dirnnb", "typhoon-stache")
        .workloads(("ocean", "small"), ("em3d", "small"))
        .cache_sizes(512, 8192)
        .seeds(42, 43)
    )
    result = sweep.run(nodes=4, workers=4)
    print(result.to_text())
    open("sweep.csv", "w").write(result.to_csv())

Cells are independent simulations (each builds its own machine from its
seed), so ``run(workers=N)`` farms them out to a process pool.  Results
are merged back in deterministic cell order, so the output table is
byte-identical to a serial run.

Cells are also **pure functions** of their axes plus the code version,
so ``run()`` consults the content-addressed result store
(:mod:`repro.harness.store`) by default: cells whose rows are already
cached for the current ``repro.__source_digest__`` are *hits* and are
not executed; only misses run (serial or in the pool — pool workers
write their rows through to the store themselves).  A warm run returns
rows bit-identical to a cold run.  ``run(store=None)`` (or
``REPRO_STORE=off`` in the environment) restores the always-execute
behaviour; ``run(store=path_or_ResultStore)`` pins a specific store.
See ``docs/sweeps.md``.
"""

from __future__ import annotations

import inspect
import multiprocessing
from typing import Any

from repro.harness.report import ExperimentResult
from repro.harness.runner import run_application
from repro.harness.store import ResultStore
from repro.harness.workloads import workload
from repro.sim.config import MachineConfig


def _run_cell(cell: tuple) -> dict[str, Any]:
    """Run one sweep cell and return its (picklable) result row.

    Module-level so :mod:`multiprocessing` can ship it to pool workers;
    the machine object itself never crosses the process boundary — only
    the scalar row values do.  Cells are 6-tuples; a sweep with a fault
    axis appends a FaultSpec (or None) as a seventh element, and its rows
    gain ``faults``/``retries``/``nacks`` columns.  A conformance axis
    appends a bool as an eighth element (the fault slot is then always
    present, None when no fault axis was set), and rows gain
    ``conformance``/``checks``/``violations`` columns.
    """
    faults = None
    conformance = False
    if len(cell) == 8:
        (system, app_name, dataset, cache_bytes, seed, nodes,
         faults, conformance) = cell
    elif len(cell) == 7:
        system, app_name, dataset, cache_bytes, seed, nodes, faults = cell
    else:
        system, app_name, dataset, cache_bytes, seed, nodes = cell
    checked = conformance
    if checked:
        # Every registered protocol now carries a spec, but an
        # out-of-tree protocol without one still runs unchecked (and
        # says so in the conformance column) rather than failing, so an
        # all_systems() x conformance(True) sweep always completes.
        from repro.backends import parse_system

        backend, protocol = parse_system(system)
        if (protocol.conformance if protocol is not None
                else backend.builtin_protocol) is None:
            checked = None
    config = MachineConfig(nodes=nodes, seed=seed).with_cache_size(cache_bytes)
    outcome = run_application(system, workload(app_name, dataset).build(),
                              config, faults=faults,
                              conformance=bool(checked))
    row = {
        "system": system,
        "application": app_name,
        "dataset": dataset,
        "cache": cache_bytes,
        "seed": seed,
        "cycles": outcome["execution_time"],
        "refs": outcome["refs"],
        "remote_packets": outcome["remote_packets"],
    }
    if len(cell) >= 7:
        stats = outcome["machine"].stats
        row["faults"] = faults.name if faults is not None else "none"
        row["retries"] = stats.get("tempest.retries")
        row["nacks"] = stats.get("tempest.nacks_sent")
    if len(cell) == 8:
        monitor = outcome["machine"].conformance
        if conformance:
            row["conformance"] = "on" if checked else "no spec"
        else:
            row["conformance"] = "off"
        row["checks"] = monitor.checks if monitor is not None else 0
        row["violations"] = (
            len(monitor.violations) if monitor is not None else 0
        )
    return row


def _run_cell_store(task: tuple) -> dict[str, Any]:
    """Pool-worker entry: run one miss and write it through to the store.

    ``task`` is ``(cell, store_root, digest)`` — all picklable — so the
    worker opens its own view of the store and persists the row itself
    (atomic rename; see :meth:`ResultStore.put`).  The parent collects
    the returned row for the result table without re-reading the disk.
    """
    cell, root, digest = task
    row = _run_cell(cell)
    ResultStore(root, digest=digest).put(cell, row)
    return row


def _progress_callback(progress):
    """Adapt a user progress callback to the ``cached=`` flag.

    Callbacks that accept a ``cached`` keyword (or ``**kwargs``) are
    told whether each reported cell was a store hit; legacy two-argument
    callbacks keep working unchanged.
    """
    if progress is None:
        return lambda done, total, cached: None
    try:
        parameters = list(inspect.signature(progress).parameters.values())
    except (TypeError, ValueError):
        parameters = []
    kinds = inspect.Parameter
    for parameter in parameters:
        if parameter.name == "cached":
            if parameter.kind is kinds.POSITIONAL_ONLY:
                # ``def cb(done, total, cached, /)``: the name exists
                # but cannot be used as a keyword — calling with
                # ``cached=`` raises TypeError, so pass positionally.
                return lambda done, total, cached: progress(done, total,
                                                            cached)
            if parameter.kind in (kinds.POSITIONAL_OR_KEYWORD,
                                  kinds.KEYWORD_ONLY):
                return lambda done, total, cached: progress(
                    done, total, cached=cached)
    if any(p.kind is kinds.VAR_KEYWORD for p in parameters):
        return lambda done, total, cached: progress(done, total,
                                                    cached=cached)
    return lambda done, total, cached: progress(done, total)


class Sweep:
    """A cartesian sweep builder (fluent interface)."""

    def __init__(self) -> None:
        self._systems: list[str] = ["typhoon-stache"]
        self._workloads: list[tuple[str, str]] = [("ocean", "small")]
        self._cache_sizes: list[int] = [8192]
        self._seeds: list[int] = [42]
        #: Fault-matrix axis; None means "no axis" (6-tuple cells, no
        #: faults columns — the backward-compatible default).
        self._faults: list | None = None
        #: Conformance axis; None means "no axis" (no conformance
        #: columns).  With it set, cells become 8-tuples.
        self._conformance: list[bool] | None = None

    # ------------------------------------------------------------------
    def systems(self, *names: str) -> "Sweep":
        self._systems = list(names)
        return self

    def all_systems(self) -> "Sweep":
        """Sweep the full composable ``backend:protocol`` matrix.

        Sets the system axis to every canonical system in
        :func:`repro.backends.all_systems` — every protocol on every
        backend whose capabilities satisfy it.
        """
        from repro.backends import all_systems

        self._systems = list(all_systems())
        return self

    def workloads(self, *pairs: tuple[str, str]) -> "Sweep":
        self._workloads = [tuple(pair) for pair in pairs]
        return self

    def cache_sizes(self, *sizes: int) -> "Sweep":
        self._cache_sizes = list(sizes)
        return self

    def seeds(self, *seeds: int) -> "Sweep":
        self._seeds = list(seeds)
        return self

    def faults(self, *specs) -> "Sweep":
        """Add a fault-matrix axis: FaultSpec values (None = reliable).

        With this axis present, cells become 7-tuples and result rows
        gain ``faults`` (the spec's name), ``retries`` and ``nacks``
        columns — the shape ``run_reliability_ladder`` reports.
        """
        self._faults = list(specs) if specs else None
        return self

    def conformance(self, *flags: bool) -> "Sweep":
        """Add a conformance axis: run each cell with the monitor on/off.

        ``conformance(True)`` checks every cell; ``conformance(False,
        True)`` runs each combination both ways (e.g. to confirm the
        monitor is timing-passive).  With this axis present, cells
        become 8-tuples and rows gain ``conformance``/``checks``/
        ``violations`` columns.  Every registered protocol has a spec
        (em3d-update's is step-indexed), so every cell reports ``on``;
        a hypothetical spec-less protocol would run unchecked with
        ``no spec`` in the column.
        """
        self._conformance = list(flags) if flags else None
        return self

    # ------------------------------------------------------------------
    @property
    def cells(self) -> int:
        return (len(self._systems) * len(self._workloads)
                * len(self._cache_sizes) * len(self._seeds)
                * (len(self._faults) if self._faults is not None else 1)
                * (len(self._conformance)
                   if self._conformance is not None else 1))

    def cell_list(self, nodes: int = 8) -> list[tuple]:
        """The sweep's cells in canonical order (workloads, cache, seed,
        [faults, conformance,] system)."""
        if self._faults is None and self._conformance is None:
            return [
                (system, app_name, dataset, cache_bytes, seed, nodes)
                for app_name, dataset in self._workloads
                for cache_bytes in self._cache_sizes
                for seed in self._seeds
                for system in self._systems
            ]
        if self._conformance is None:
            return [
                (system, app_name, dataset, cache_bytes, seed, nodes, spec)
                for app_name, dataset in self._workloads
                for cache_bytes in self._cache_sizes
                for seed in self._seeds
                for spec in self._faults
                for system in self._systems
            ]
        fault_axis = self._faults if self._faults is not None else [None]
        return [
            (system, app_name, dataset, cache_bytes, seed, nodes, spec, check)
            for app_name, dataset in self._workloads
            for cache_bytes in self._cache_sizes
            for seed in self._seeds
            for spec in fault_axis
            for check in self._conformance
            for system in self._systems
        ]

    def run(self, nodes: int = 8, progress=None, workers: int = 1,
            store="auto") -> ExperimentResult:
        """Run every cell; ``progress(done, total)`` is called per cell.

        ``workers > 1`` runs cells in a process pool.  Each cell is a
        self-contained simulation, so parallel execution changes nothing
        but wall-clock time: rows are collected in canonical cell order
        and match a serial run exactly.

        ``store`` selects the result store consulted before executing
        anything: ``"auto"`` (default) resolves via ``REPRO_STORE`` to
        ``.repro-store/``; ``None``/``"off"`` disables caching; a path
        or :class:`~repro.harness.store.ResultStore` pins one.  Cached
        cells are *hits* — returned without executing, bit-identical to
        a cold run — and only misses execute (pool workers write their
        rows through to the store).  ``progress`` fires for hits too,
        with ``cached=True`` when the callback accepts the keyword, so
        reporting stays monotone under warm stores.  The returned
        result carries a ``cache_stats`` attribute:
        ``{"hits", "executed", "cells", "store"}``.
        """
        columns = ["system", "application", "dataset", "cache", "seed",
                   "cycles", "refs", "remote_packets"]
        if self._faults is not None or self._conformance is not None:
            columns += ["faults", "retries", "nacks"]
        if self._conformance is not None:
            columns += ["conformance", "checks", "violations"]
        result = ExperimentResult(
            "sweep",
            f"{self.cells}-cell sweep at {nodes} nodes",
            columns,
        )
        cells = self.cell_list(nodes)
        resolved = ResultStore.resolve(store)
        notify = _progress_callback(progress)
        total = self.cells

        if resolved is None:
            rows: list[dict[str, Any] | None] = [None] * len(cells)
            if workers > 1 and len(cells) > 1:
                with multiprocessing.Pool(min(workers, len(cells))) as pool:
                    # imap (not imap_unordered): rows must land in cell
                    # order.
                    for done, row in enumerate(pool.imap(_run_cell, cells),
                                               1):
                        rows[done - 1] = row
                        notify(done, total, False)
            else:
                for done, cell in enumerate(cells, 1):
                    rows[done - 1] = _run_cell(cell)
                    notify(done, total, False)
            hits = 0
        else:
            rows = [resolved.get(cell) for cell in cells]
            miss_indices = [index for index, row in enumerate(rows)
                            if row is None]
            hits = len(cells) - len(miss_indices)
            if workers > 1 and len(miss_indices) > 1:
                # Hits are reported first (monotone, cached=True), then
                # misses as the pool completes them; workers persist
                # their own rows (write-through), the parent only
                # collects them for the table.
                done = 0
                for index, row in enumerate(rows):
                    if row is not None:
                        done += 1
                        notify(done, total, True)
                tasks = [(cells[index], str(resolved.root), resolved.digest)
                         for index in miss_indices]
                with multiprocessing.Pool(min(workers, len(tasks))) as pool:
                    for index, row in zip(miss_indices,
                                          pool.imap(_run_cell_store, tasks)):
                        rows[index] = row
                        done += 1
                        notify(done, total, False)
            else:
                for done, cell in enumerate(cells, 1):
                    cached = rows[done - 1] is not None
                    if not cached:
                        row = _run_cell(cell)
                        resolved.put(cell, row)
                        rows[done - 1] = row
                    notify(done, total, cached)

        for row in rows:
            result.add_row(**row)
        result.cache_stats = {
            "cells": len(cells),
            "hits": hits,
            "executed": len(cells) - hits,
            "store": str(resolved.root) if resolved is not None else None,
        }
        return result
