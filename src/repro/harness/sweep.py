"""Generic parameter sweeps: systems x workloads x configurations.

The figure runners in :mod:`repro.harness.experiments` are hand-shaped to
the paper's artifacts; this utility is the general tool behind ad-hoc
studies — run every combination of the axes you name, collect one row per
cell, render or export.

Example::

    from repro.harness.sweep import Sweep

    sweep = (
        Sweep()
        .systems("dirnnb", "typhoon-stache")
        .workloads(("ocean", "small"), ("em3d", "small"))
        .cache_sizes(512, 8192)
        .seeds(42, 43)
    )
    result = sweep.run(nodes=4)
    print(result.to_text())
    open("sweep.csv", "w").write(result.to_csv())
"""

from __future__ import annotations

from repro.harness.report import ExperimentResult
from repro.harness.runner import run_application
from repro.harness.workloads import workload
from repro.sim.config import MachineConfig


class Sweep:
    """A cartesian sweep builder (fluent interface)."""

    def __init__(self) -> None:
        self._systems: list[str] = ["typhoon-stache"]
        self._workloads: list[tuple[str, str]] = [("ocean", "small")]
        self._cache_sizes: list[int] = [8192]
        self._seeds: list[int] = [42]

    # ------------------------------------------------------------------
    def systems(self, *names: str) -> "Sweep":
        self._systems = list(names)
        return self

    def workloads(self, *pairs: tuple[str, str]) -> "Sweep":
        self._workloads = [tuple(pair) for pair in pairs]
        return self

    def cache_sizes(self, *sizes: int) -> "Sweep":
        self._cache_sizes = list(sizes)
        return self

    def seeds(self, *seeds: int) -> "Sweep":
        self._seeds = list(seeds)
        return self

    # ------------------------------------------------------------------
    @property
    def cells(self) -> int:
        return (len(self._systems) * len(self._workloads)
                * len(self._cache_sizes) * len(self._seeds))

    def run(self, nodes: int = 8,
            progress=None) -> ExperimentResult:
        """Run every cell; ``progress(done, total)`` is called per cell."""
        result = ExperimentResult(
            "sweep",
            f"{self.cells}-cell sweep at {nodes} nodes",
            ["system", "application", "dataset", "cache", "seed",
             "cycles", "refs", "remote_packets"],
        )
        done = 0
        for app_name, dataset in self._workloads:
            for cache_bytes in self._cache_sizes:
                for seed in self._seeds:
                    for system in self._systems:
                        config = MachineConfig(
                            nodes=nodes, seed=seed
                        ).with_cache_size(cache_bytes)
                        outcome = run_application(
                            system, workload(app_name, dataset).build(),
                            config,
                        )
                        result.add_row(
                            system=system,
                            application=app_name,
                            dataset=dataset,
                            cache=cache_bytes,
                            seed=seed,
                            cycles=outcome["execution_time"],
                            refs=outcome["refs"],
                            remote_packets=outcome["remote_packets"],
                        )
                        done += 1
                        if progress is not None:
                            progress(done, self.cells)
        return result
