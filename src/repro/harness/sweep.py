"""Generic parameter sweeps: systems x workloads x configurations.

The figure runners in :mod:`repro.harness.experiments` are hand-shaped to
the paper's artifacts; this utility is the general tool behind ad-hoc
studies — run every combination of the axes you name, collect one row per
cell, render or export.

Example::

    from repro.harness.sweep import Sweep

    sweep = (
        Sweep()
        .systems("dirnnb", "typhoon-stache")
        .workloads(("ocean", "small"), ("em3d", "small"))
        .cache_sizes(512, 8192)
        .seeds(42, 43)
    )
    result = sweep.run(nodes=4, workers=4)
    print(result.to_text())
    open("sweep.csv", "w").write(result.to_csv())

Cells are independent simulations (each builds its own machine from its
seed), so ``run(workers=N)`` farms them out to a process pool.  Results
are merged back in deterministic cell order, so the output table is
byte-identical to a serial run.
"""

from __future__ import annotations

import multiprocessing
from typing import Any

from repro.harness.report import ExperimentResult
from repro.harness.runner import run_application
from repro.harness.workloads import workload
from repro.sim.config import MachineConfig


def _run_cell(cell: tuple) -> dict[str, Any]:
    """Run one sweep cell and return its (picklable) result row.

    Module-level so :mod:`multiprocessing` can ship it to pool workers;
    the machine object itself never crosses the process boundary — only
    the scalar row values do.  Cells are 6-tuples; a sweep with a fault
    axis appends a FaultSpec (or None) as a seventh element, and its rows
    gain ``faults``/``retries``/``nacks`` columns.  A conformance axis
    appends a bool as an eighth element (the fault slot is then always
    present, None when no fault axis was set), and rows gain
    ``conformance``/``checks``/``violations`` columns.
    """
    faults = None
    conformance = False
    if len(cell) == 8:
        (system, app_name, dataset, cache_bytes, seed, nodes,
         faults, conformance) = cell
    elif len(cell) == 7:
        system, app_name, dataset, cache_bytes, seed, nodes, faults = cell
    else:
        system, app_name, dataset, cache_bytes, seed, nodes = cell
    checked = conformance
    if checked:
        # A spec-less protocol (em3d-update) cannot be monitored; its
        # cells run unchecked and say so in the conformance column, so
        # an all_systems() x conformance(True) sweep completes.
        from repro.backends import parse_system

        backend, protocol = parse_system(system)
        if (protocol.conformance if protocol is not None
                else backend.builtin_protocol) is None:
            checked = None
    config = MachineConfig(nodes=nodes, seed=seed).with_cache_size(cache_bytes)
    outcome = run_application(system, workload(app_name, dataset).build(),
                              config, faults=faults,
                              conformance=bool(checked))
    row = {
        "system": system,
        "application": app_name,
        "dataset": dataset,
        "cache": cache_bytes,
        "seed": seed,
        "cycles": outcome["execution_time"],
        "refs": outcome["refs"],
        "remote_packets": outcome["remote_packets"],
    }
    if len(cell) >= 7:
        stats = outcome["machine"].stats
        row["faults"] = faults.name if faults is not None else "none"
        row["retries"] = stats.get("tempest.retries")
        row["nacks"] = stats.get("tempest.nacks_sent")
    if len(cell) == 8:
        monitor = outcome["machine"].conformance
        if conformance:
            row["conformance"] = "on" if checked else "no spec"
        else:
            row["conformance"] = "off"
        row["checks"] = monitor.checks if monitor is not None else 0
        row["violations"] = (
            len(monitor.violations) if monitor is not None else 0
        )
    return row


class Sweep:
    """A cartesian sweep builder (fluent interface)."""

    def __init__(self) -> None:
        self._systems: list[str] = ["typhoon-stache"]
        self._workloads: list[tuple[str, str]] = [("ocean", "small")]
        self._cache_sizes: list[int] = [8192]
        self._seeds: list[int] = [42]
        #: Fault-matrix axis; None means "no axis" (6-tuple cells, no
        #: faults columns — the backward-compatible default).
        self._faults: list | None = None
        #: Conformance axis; None means "no axis" (no conformance
        #: columns).  With it set, cells become 8-tuples.
        self._conformance: list[bool] | None = None

    # ------------------------------------------------------------------
    def systems(self, *names: str) -> "Sweep":
        self._systems = list(names)
        return self

    def all_systems(self) -> "Sweep":
        """Sweep the full composable ``backend:protocol`` matrix.

        Sets the system axis to every canonical system in
        :func:`repro.backends.all_systems` — every protocol on every
        backend whose capabilities satisfy it.
        """
        from repro.backends import all_systems

        self._systems = list(all_systems())
        return self

    def workloads(self, *pairs: tuple[str, str]) -> "Sweep":
        self._workloads = [tuple(pair) for pair in pairs]
        return self

    def cache_sizes(self, *sizes: int) -> "Sweep":
        self._cache_sizes = list(sizes)
        return self

    def seeds(self, *seeds: int) -> "Sweep":
        self._seeds = list(seeds)
        return self

    def faults(self, *specs) -> "Sweep":
        """Add a fault-matrix axis: FaultSpec values (None = reliable).

        With this axis present, cells become 7-tuples and result rows
        gain ``faults`` (the spec's name), ``retries`` and ``nacks``
        columns — the shape ``run_reliability_ladder`` reports.
        """
        self._faults = list(specs) if specs else None
        return self

    def conformance(self, *flags: bool) -> "Sweep":
        """Add a conformance axis: run each cell with the monitor on/off.

        ``conformance(True)`` checks every cell; ``conformance(False,
        True)`` runs each combination both ways (e.g. to confirm the
        monitor is timing-passive).  With this axis present, cells
        become 8-tuples and rows gain ``conformance``/``checks``/
        ``violations`` columns.  Systems whose protocol has no spec
        (``typhoon:em3d-update``) run unchecked with ``no spec`` in the
        conformance column.
        """
        self._conformance = list(flags) if flags else None
        return self

    # ------------------------------------------------------------------
    @property
    def cells(self) -> int:
        return (len(self._systems) * len(self._workloads)
                * len(self._cache_sizes) * len(self._seeds)
                * (len(self._faults) if self._faults is not None else 1)
                * (len(self._conformance)
                   if self._conformance is not None else 1))

    def cell_list(self, nodes: int = 8) -> list[tuple]:
        """The sweep's cells in canonical order (workloads, cache, seed,
        [faults, conformance,] system)."""
        if self._faults is None and self._conformance is None:
            return [
                (system, app_name, dataset, cache_bytes, seed, nodes)
                for app_name, dataset in self._workloads
                for cache_bytes in self._cache_sizes
                for seed in self._seeds
                for system in self._systems
            ]
        if self._conformance is None:
            return [
                (system, app_name, dataset, cache_bytes, seed, nodes, spec)
                for app_name, dataset in self._workloads
                for cache_bytes in self._cache_sizes
                for seed in self._seeds
                for spec in self._faults
                for system in self._systems
            ]
        fault_axis = self._faults if self._faults is not None else [None]
        return [
            (system, app_name, dataset, cache_bytes, seed, nodes, spec, check)
            for app_name, dataset in self._workloads
            for cache_bytes in self._cache_sizes
            for seed in self._seeds
            for spec in fault_axis
            for check in self._conformance
            for system in self._systems
        ]

    def run(self, nodes: int = 8,
            progress=None, workers: int = 1) -> ExperimentResult:
        """Run every cell; ``progress(done, total)`` is called per cell.

        ``workers > 1`` runs cells in a process pool.  Each cell is a
        self-contained simulation, so parallel execution changes nothing
        but wall-clock time: rows are collected in canonical cell order
        and match a serial run exactly.
        """
        columns = ["system", "application", "dataset", "cache", "seed",
                   "cycles", "refs", "remote_packets"]
        if self._faults is not None or self._conformance is not None:
            columns += ["faults", "retries", "nacks"]
        if self._conformance is not None:
            columns += ["conformance", "checks", "violations"]
        result = ExperimentResult(
            "sweep",
            f"{self.cells}-cell sweep at {nodes} nodes",
            columns,
        )
        cells = self.cell_list(nodes)
        if workers > 1 and len(cells) > 1:
            with multiprocessing.Pool(min(workers, len(cells))) as pool:
                # imap (not imap_unordered): rows must land in cell order.
                for done, row in enumerate(pool.imap(_run_cell, cells), 1):
                    result.add_row(**row)
                    if progress is not None:
                        progress(done, self.cells)
        else:
            for done, cell in enumerate(cells, 1):
                result.add_row(**_run_cell(cell))
                if progress is not None:
                    progress(done, self.cells)
        return result
