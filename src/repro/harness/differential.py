"""Differential testing: the interpreted dispatcher as the oracle.

The compiled kernel (:mod:`repro.kernel.compiled`) promises *observable
equivalence*: for any workload, any seed, any fault plan, a compiled run
and an interpreted run produce bit-identical statistics, the same final
memory image on every node, and the same simulated execution time.  The
hand-written dispatch loops are thereby demoted from "the implementation"
to "the oracle" — they define correct behaviour, and this module checks
the fast kernel against them.

One deliberate exception: ``engine.events_fired`` may differ.  The
compiled kernel's tail-call optimisation advances the clock inline when
a handler chain is the only work at the current time, eliding the heap
round-trip the interpreted engine performs; the *order* and *timing* of
every observable action are identical, but fewer engine events fire.
``events_fired`` is bookkeeping about the simulator, not about the
simulated machine, so :func:`compare_runs` excludes it (and asserts
everything else, including the RNG-sensitive fault counters).

Usage::

    from repro.harness.differential import run_differential
    result = run_differential("typhoon:stache", "mp3d", "small", config)
    assert result.identical

or sweep the whole compilable matrix (what ``python -m repro
differential`` and ``tests/integration/test_differential.py`` do)::

    for result in run_matrix(nodes=4):
        assert result.identical or not result.compiled
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.harness.runner import run_application
from repro.harness.workloads import workload
from repro.sim.config import MachineConfig

__all__ = [
    "DifferentialResult",
    "IGNORED_STATS",
    "compare_runs",
    "run_differential",
    "run_matrix",
    "run_lane_differential",
    "run_lane_matrix",
    "compilable_systems",
    "fallback_systems",
    "all_lane_systems",
]

#: Statistics that are *about the simulator*, not the simulated machine:
#: legitimately kernel-dependent, excluded from the identity check.
#: (Currently empty — events_fired is read off the engine, not Stats,
#: so no stat key needs masking; the tuple exists so a future
#: simulator-internal counter has a documented place to go.)
IGNORED_STATS: tuple[str, ...] = ()


@dataclass
class DifferentialResult:
    """Outcome of one compiled-vs-interpreted comparison."""

    system: str
    app: str
    dataset: str
    #: True when the compiled kernel actually installed (False means the
    #: system fell back to interpreted — the comparison is then trivially
    #: identical and ``fallback_reason`` says why it ran interpreted).
    compiled: bool
    fallback_reason: str | None
    #: Human-readable descriptions of every divergence (empty = pass).
    diffs: list[str] = field(default_factory=list)
    execution_time: float = 0.0
    stats_compared: int = 0
    events_interpreted: int = 0
    events_compiled: int = 0

    @property
    def identical(self) -> bool:
        return not self.diffs

    def __repr__(self) -> str:
        status = "identical" if self.identical else f"{len(self.diffs)} diffs"
        return (f"DifferentialResult({self.system!r}, {self.app}/"
                f"{self.dataset}, compiled={self.compiled}, {status})")


def compare_runs(interpreted: dict[str, Any],
                 compiled: dict[str, Any],
                 labels: tuple[str, str] = ("interpreted", "compiled"),
                 ) -> list[str]:
    """Compare two :func:`run_application` outcomes; return divergences.

    Checks, in order of diagnostic value: simulated execution time,
    the full statistics dictionaries (every counter, every
    distribution moment), and the final per-node memory images.
    ``labels`` names the two runs in the divergence messages (the lane
    axis passes ``("scalar", "batched")``).
    """
    left_name, right_name = labels
    diffs: list[str] = []
    if interpreted["execution_time"] != compiled["execution_time"]:
        diffs.append(
            f"execution_time: {left_name}={interpreted['execution_time']} "
            f"{right_name}={compiled['execution_time']}"
        )
    istats = interpreted["machine"].stats.as_dict()
    cstats = compiled["machine"].stats.as_dict()
    for key in IGNORED_STATS:
        istats.pop(key, None)
        cstats.pop(key, None)
    for key in sorted(istats.keys() | cstats.keys()):
        left, right = istats.get(key), cstats.get(key)
        if left != right:
            diffs.append(
                f"stat {key}: {left_name}={left} {right_name}={right}"
            )
    imachine = interpreted["machine"]
    cmachine = compiled["machine"]
    if hasattr(imachine, "shared_image"):
        # DirNNB keeps one machine-wide image instead of per-node copies.
        image_pairs = [("shared", imachine.shared_image,
                        cmachine.shared_image)]
    else:
        image_pairs = [
            (f"node {inode.node_id}", inode.image, cnode.image)
            for inode, cnode in zip(imachine.nodes, cmachine.nodes)
        ]
    for label, iimage, cimage in image_pairs:
        left = sorted(iimage.items())
        right = sorted(cimage.items())
        if left != right:
            delta = sum(1 for a, b in zip(left, right) if a != b)
            delta += abs(len(left) - len(right))
            diffs.append(f"memory image {label}: {delta} words differ")
    return diffs


def run_differential(system: str, app: str = "mp3d", dataset: str = "small",
                     config: MachineConfig | None = None,
                     faults=None) -> DifferentialResult:
    """Run ``system`` twice — interpreted and compiled — and compare.

    Both runs get a freshly built application and machine from the same
    seed, so the only variable is the dispatch kernel.  ``faults``
    (forwarded to both runs) lets callers exercise the deopt paths:
    a live fault plan forces the kernel's network fast paths off, and
    the comparison then also proves the deopted closures byte-match.
    """
    if config is None:
        config = MachineConfig(nodes=4, seed=42).with_cache_size(2048)
    interpreted = run_application(
        system, workload(app, dataset).build(), config,
        faults=faults, kernel="interpreted",
    )
    compiled = run_application(
        system, workload(app, dataset).build(), config,
        faults=faults, kernel="compiled",
    )
    machine = compiled["machine"]
    result = DifferentialResult(
        system=system,
        app=app,
        dataset=dataset,
        compiled=compiled["kernel"] == "compiled",
        fallback_reason=machine.kernel_fallback_reason,
        diffs=compare_runs(interpreted, compiled),
        execution_time=interpreted["execution_time"],
        stats_compared=len(interpreted["machine"].stats.as_dict()),
        events_interpreted=interpreted["machine"].engine.events_fired,
        events_compiled=machine.engine.events_fired,
    )
    return result


def run_lane_differential(system: str, app: str = "mp3d",
                          dataset: str = "small",
                          config: MachineConfig | None = None,
                          faults=None,
                          kernel: str = "interpreted") -> DifferentialResult:
    """Run ``system`` with scalar and batched lanes and compare.

    The batched access lanes promise the same observable equivalence as
    the compiled kernel: ``lanes="batched"`` changes wall-clock only —
    simulated time, every statistic, and every node's final memory
    image are bit-identical to the scalar decomposition.  ``faults``
    exercises the lane deopt (a live fault plan turns the lanes off
    per-call, so the batched run must decompose exactly like scalar).
    The lane axis composes with the kernel axis; pass
    ``kernel="compiled"`` to prove the fused compiled lanes too.
    """
    if config is None:
        config = MachineConfig(nodes=4, seed=42).with_cache_size(2048)
    scalar = run_application(
        system, workload(app, dataset).build(), config,
        faults=faults, kernel=kernel, lanes="scalar",
    )
    batched = run_application(
        system, workload(app, dataset).build(), config,
        faults=faults, kernel=kernel, lanes="batched",
    )
    machine = batched["machine"]
    return DifferentialResult(
        system=system,
        app=app,
        dataset=dataset,
        compiled=batched["kernel"] == "compiled",
        fallback_reason=machine.kernel_fallback_reason,
        diffs=compare_runs(scalar, batched, labels=("scalar", "batched")),
        execution_time=scalar["execution_time"],
        stats_compared=len(scalar["machine"].stats.as_dict()),
        events_interpreted=scalar["machine"].engine.events_fired,
        events_compiled=machine.engine.events_fired,
    )


def all_lane_systems() -> list[str]:
    """Every system; the lane axis applies regardless of compilability."""
    from repro.backends import all_systems

    return list(all_systems())


def run_lane_matrix(app: str = "mp3d", dataset: str = "small",
                    nodes: int = 4, seed: int = 42, cache_bytes: int = 2048,
                    faults=None,
                    kernel: str = "interpreted") -> list[DifferentialResult]:
    """Batched-vs-scalar comparison across *every* system.

    Unlike :func:`run_matrix`, no system is exempt: the lanes live in
    the node models, so even systems whose protocol cannot compile
    (DirNNB, the EM3D update protocol) must be bit-identical across
    the axis.
    """
    config = MachineConfig(nodes=nodes, seed=seed).with_cache_size(cache_bytes)
    return [
        run_lane_differential(system, app, dataset, config,
                              faults=faults, kernel=kernel)
        for system in all_lane_systems()
    ]


def compilable_systems() -> list[str]:
    """Every system whose backend *and* protocol the kernel compiles."""
    from repro.backends import all_systems, parse_system
    from repro.kernel import COMPILED_BACKENDS
    from repro.protocols.compiled import compilable_spec

    systems = []
    for system in all_systems():
        backend, protocol = parse_system(system)
        if protocol is None:  # hardware protocol (DirNNB)
            continue
        if backend.name not in COMPILED_BACKENDS:
            # e.g. decoupled: its handler processor is not specialised
            # yet, so every decoupled system exercises the fallback path.
            continue
        if compilable_spec(protocol.name) is not None:
            systems.append(system)
    return systems


def fallback_systems() -> list[str]:
    """Every system that must *refuse* the compiled kernel."""
    from repro.backends import all_systems

    compilable = set(compilable_systems())
    return [s for s in all_systems() if s not in compilable]


def run_matrix(app: str = "mp3d", dataset: str = "small",
               nodes: int = 4, seed: int = 42, cache_bytes: int = 2048,
               faults=None) -> list[DifferentialResult]:
    """Differential comparison across the full compilable matrix.

    Also runs every *non*-compilable system once with
    ``kernel="compiled"`` requested, verifying the fallback engages and
    records its reason (those rows have ``compiled=False``).
    """
    config = MachineConfig(nodes=nodes, seed=seed).with_cache_size(cache_bytes)
    results = []
    for system in compilable_systems():
        results.append(
            run_differential(system, app, dataset, config, faults=faults)
        )
    for system in fallback_systems():
        outcome = run_application(
            system, workload(app, dataset).build(), config, kernel="compiled"
        )
        machine = outcome["machine"]
        results.append(DifferentialResult(
            system=system,
            app=app,
            dataset=dataset,
            compiled=False,
            fallback_reason=machine.kernel_fallback_reason,
            execution_time=outcome["execution_time"],
            events_interpreted=machine.engine.events_fired,
            events_compiled=machine.engine.events_fired,
        ))
    return results
