"""Reproduction of *Tempest and Typhoon: User-Level Shared Memory*.

Reinhardt, Larus & Wood, Proc. 21st International Symposium on Computer
Architecture (ISCA), 1994.

The package is organized bottom-up:

``repro.sim``
    Discrete-event simulation kernel: engine, processes, statistics,
    configuration (Table 2 parameters), deterministic RNG streams.
``repro.network``
    Point-to-point interconnect with two virtual networks.
``repro.memory``
    Node memory substrate: caches, TLBs, fine-grain access tags
    (Table 1 operations), page tables, address-space allocators.
``repro.tempest``
    The Tempest interface (paper Section 2): active messages, bulk data
    transfer, user-level virtual-memory management, fine-grain access
    control, and computation-thread suspend/resume.
``repro.typhoon``
    The Typhoon hardware model (paper Section 5): network interface
    processor (NP), reverse TLB, block-access-fault buffer, MBus model,
    node and system assembly.
``repro.protocols``
    Coherence protocols: the all-hardware DirNNB baseline, the user-level
    Stache protocol (Section 3), and the custom EM3D delayed-update
    protocol (Section 4).
``repro.apps``
    The five evaluation applications (Table 3) as SPMD reference-stream
    kernels, plus synthetic sharing-pattern microbenchmarks.
``repro.harness``
    Experiment registry and reporting for every table and figure in the
    paper's evaluation (Section 6).

Quickstart::

    from repro.harness import experiments
    result = experiments.run_figure4(points=3, scale=0.05)
    print(result.to_text())
"""

__version__ = "1.0.0"

__all__ = ["__version__", "__source_digest__"]


def __getattr__(name: str):
    # PEP 562: the source-tree fingerprint is computed on first access,
    # not at import time (it hashes every .py file under the package).
    # The sweep result store keys cached rows by it; see
    # repro._fingerprint and repro.harness.store.
    if name == "__source_digest__":
        from repro._fingerprint import source_digest

        return source_digest()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
