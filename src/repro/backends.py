"""The backend registry and ``backend:protocol`` system composition.

The paper's portability claim — a protocol written to Tempest runs on
any implementation of the mechanisms — becomes executable here: a
*system* is the pair of a *backend* (a machine implementing
:class:`~repro.tempest.port.TempestPort`) and a *protocol* (a library
from :mod:`repro.protocols.registry`), named ``"<backend>:<protocol>"``
(``typhoon:stache``, ``blizzard:ivy``, ...).  The all-hardware DirNNB
baseline is a backend with its protocol baked into hardware: it takes no
user-level protocol and is named plainly ``dirnnb``.

Composition validates **capabilities**: each backend declares what it
``provides`` and each protocol what it ``requires``; a mismatch raises
:class:`CompositionError` at build time instead of deadlocking at run
time (e.g. ``blizzard:em3d-update`` — the flush/fuzzy barrier needs a
decoupled handler processor an all-software backend does not have).

The pre-registry system names (``typhoon-stache``, ``blizzard-stache``,
``typhoon-update``, ...) remain first-class aliases, so every harness
entry point and golden keeps working unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.protocols.registry import PROTOCOLS, ProtocolEntry, protocol_entry
from repro.sim.config import MachineConfig

__all__ = [
    "BackendEntry",
    "BACKENDS",
    "ALIASES",
    "CompositionError",
    "all_systems",
    "canonical_name",
    "compose",
    "describe_systems",
    "parse_system",
    "spec_name_for",
]


class CompositionError(ValueError):
    """A syntactically valid system that cannot be built (capability
    mismatch, or a protocol given to a backend that takes none)."""


@dataclass(frozen=True)
class BackendEntry:
    """One registered machine substrate."""

    #: Registry key (the ``<backend>`` half of ``backend:protocol``).
    name: str
    #: One-line description (the ``systems`` CLI listing).
    description: str
    #: Tempest capabilities this backend implements (see
    #: :mod:`repro.protocols.registry` for the vocabulary).
    provides: frozenset
    #: ``factory(config) -> machine``; lazy, so backends stay unimported
    #: until composed.
    factory: Callable[[MachineConfig], object]
    #: Name of the hardwired protocol for backends that take no
    #: user-level protocol (DirNNB); doubles as the conformance-spec key.
    builtin_protocol: str | None = None


def _typhoon(config: MachineConfig):
    from repro.typhoon.system import TyphoonMachine

    return TyphoonMachine(config)


def _decoupled(config: MachineConfig):
    from repro.decoupled.system import DecoupledMachine

    return DecoupledMachine(config)


def _blizzard(config: MachineConfig):
    from repro.blizzard.system import BlizzardMachine

    return BlizzardMachine(config)


def _dirnnb(config: MachineConfig):
    from repro.protocols.dirnnb import DirNNBMachine

    return DirNNBMachine(config)


#: Every registered backend, in presentation order.
BACKENDS: dict[str, BackendEntry] = {
    entry.name: entry
    for entry in (
        BackendEntry(
            name="dirnnb",
            description="all-hardware Dir_N NB cache coherence "
                        "(the paper's baseline; protocol in hardware)",
            provides=frozenset(),
            factory=_dirnnb,
            builtin_protocol="dirnnb",
        ),
        BackendEntry(
            name="typhoon",
            description="hardware Tempest: per-node network processor "
                        "runs handlers decoupled from the CPU",
            provides=frozenset({
                "fine-grain-tags", "active-messages", "bulk-transfer",
                "decoupled-handlers",
            }),
            factory=_typhoon,
        ),
        BackendEntry(
            name="decoupled",
            description="software Tempest on dual-processor nodes: "
                        "inserted checks on the compute CPU, handlers "
                        "on a second CPU's polling dispatch loop",
            provides=frozenset({
                "fine-grain-tags", "active-messages", "bulk-transfer",
                "decoupled-handlers",
            }),
            factory=_decoupled,
        ),
        BackendEntry(
            name="blizzard",
            description="all-software Tempest: inserted checks and "
                        "polling; handlers share the CPU",
            provides=frozenset({
                "fine-grain-tags", "active-messages", "bulk-transfer",
            }),
            factory=_blizzard,
        ),
    )
}

#: Legacy system names -> canonical ``backend:protocol`` strings.  The
#: first four predate the registry and appear throughout the paper
#: artifacts; the rest exist so every composable system also has a
#: hyphenated spelling.
ALIASES: dict[str, str] = {
    "typhoon-stache": "typhoon:stache",
    "typhoon-update": "typhoon:em3d-update",
    "typhoon-migratory": "typhoon:migratory",
    "typhoon-ivy": "typhoon:ivy",
    "decoupled-stache": "decoupled:stache",
    "decoupled-update": "decoupled:em3d-update",
    "decoupled-migratory": "decoupled:migratory",
    "decoupled-ivy": "decoupled:ivy",
    "blizzard-stache": "blizzard:stache",
    "blizzard-migratory": "blizzard:migratory",
    "blizzard-ivy": "blizzard:ivy",
}


def all_systems() -> tuple[str, ...]:
    """Every composable system's canonical name, in presentation order.

    Backends that take no protocol appear bare (``dirnnb``); the rest
    appear once per protocol whose requirements they satisfy.
    """
    names: list[str] = []
    for backend in BACKENDS.values():
        if backend.builtin_protocol is not None:
            names.append(backend.name)
            continue
        for protocol in PROTOCOLS.values():
            if protocol.requires <= backend.provides:
                names.append(f"{backend.name}:{protocol.name}")
    return tuple(names)


def canonical_name(system: str) -> str:
    """Resolve aliases; unknown names fall through unchanged."""
    return ALIASES.get(system, system)


def _unknown(system: str) -> ValueError:
    aliases = ", ".join(sorted(ALIASES))
    return ValueError(
        f"unknown system {system!r}; compose one as '<backend>:<protocol>' "
        f"from {', '.join(all_systems())} (aliases: {aliases})"
    )


def parse_system(system: str) -> tuple[BackendEntry, ProtocolEntry | None]:
    """Resolve a system name to its validated (backend, protocol) pair.

    Accepts canonical ``backend:protocol`` strings, bare builtin-protocol
    backends (``dirnnb``), and the legacy aliases.  Raises ``ValueError``
    for unknown names and :class:`CompositionError` for pairs that name
    real parts but cannot work together.
    """
    name = canonical_name(system)
    if ":" not in name:
        backend = BACKENDS.get(name)
        if backend is None:
            raise _unknown(system)
        if backend.builtin_protocol is None:
            raise CompositionError(
                f"backend {name!r} needs a protocol: compose "
                f"'{name}:<protocol>' from {', '.join(PROTOCOLS)}"
            )
        return backend, None
    backend_name, _, protocol_name = name.partition(":")
    backend = BACKENDS.get(backend_name)
    if backend is None:
        raise _unknown(system)
    if protocol_name not in PROTOCOLS:
        raise _unknown(system)
    if backend.builtin_protocol is not None:
        raise CompositionError(
            f"backend {backend.name!r} implements its protocol in "
            f"hardware and takes no user-level protocol "
            f"(got {protocol_name!r})"
        )
    protocol = protocol_entry(protocol_name)
    missing = protocol.requires - backend.provides
    if missing:
        raise CompositionError(
            f"cannot compose {backend.name}:{protocol.name}: protocol "
            f"requires {', '.join(sorted(missing))}, which backend "
            f"{backend.name!r} does not provide "
            f"(provides: {', '.join(sorted(backend.provides)) or 'nothing'})"
        )
    return backend, protocol


def compose(system: str, config: MachineConfig):
    """Build the machine for ``system`` with its protocol installed.

    Returns ``(machine, protocol)``; protocol is None for backends with
    a builtin protocol (DirNNB).
    """
    backend, entry = parse_system(system)
    machine = backend.factory(config)
    if entry is None:
        return machine, None
    protocol = entry.factory()
    machine.install_protocol(protocol)
    return machine, protocol


def spec_name_for(machine) -> str | None:
    """The conformance-spec key for ``machine``'s effective protocol.

    The installed protocol's ``name`` when one is installed, else the
    backend registry's builtin protocol for the machine's system name
    (how DirNNB, whose protocol lives in hardware, gets its spec).
    """
    protocol = getattr(machine, "protocol", None)
    if protocol is not None:
        return getattr(protocol, "name", None)
    backend = BACKENDS.get(getattr(machine, "system_name", None))
    return backend.builtin_protocol if backend is not None else None


def describe_systems() -> list[dict]:
    """One row per composable system (the ``systems`` CLI listing)."""
    aliases_by_canonical: dict[str, list[str]] = {}
    for alias, canonical in ALIASES.items():
        aliases_by_canonical.setdefault(canonical, []).append(alias)
    rows = []
    for name in all_systems():
        backend, protocol = parse_system(name)
        if protocol is None:
            conformance = backend.builtin_protocol
            requires = "(hardwired protocol)"
            description = backend.description
        else:
            conformance = protocol.conformance
            requires = ", ".join(sorted(protocol.requires))
            description = protocol.description
        rows.append({
            "system": name,
            "backend": backend.name,
            "protocol": protocol.name if protocol else "(builtin)",
            "conformance": "yes" if conformance else "no",
            "aliases": ", ".join(sorted(aliases_by_canonical.get(name, [])))
                       or "-",
            "notes": f"requires: {requires}" if protocol else description,
        })
    return rows
