"""The compiled dispatch kernel: table-driven fast paths per backend.

:mod:`repro.protocols.compiled` lowers the installed protocol into
per-node :class:`~repro.protocols.compiled.CompiledProtocolTable` objects
whose dispatch rows hold the *raw* handler function, the delivery guard's
fused duplicate check, and the invocation cost with
cycles-per-instruction already folded in.  This module is the other half:
backend-specific dispatch loops that execute those rows with the
interpreted layers' call overhead flattened away.

Installation is by **instance-attribute shadowing**: the fused closures
are assigned onto the live node/interconnect objects
(``np.enqueue_message = fast_enqueue``), so the interpreted methods stay
intact underneath as the differential-testing oracle, and deoptimisation
is ``obj.__dict__.pop(name)``.  The fused paths:

* **Typhoon NP dispatch** — ``enqueue_message``/``enqueue_fault``/pump/
  execute collapse into closures that pre-resolve the dispatch row, fold
  the guard's duplicate check inline, and push anonymous engine entries
  directly (no ``_Event`` allocation, no ``_begin``/``_finish`` frames).
  When a handler finishes with more work queued (tail position), the next
  handler's charge window is checked exactly like ``Engine.try_advance``:
  if no pending event can fire inside it, the clock advances inline and
  the handler runs with **no heap round-trip at all**.
* **Typhoon send** — ``Tempest.send`` is overridden per node with a
  closure fusing message construction, the send counter, the finite
  send-queue credit check, and the interconnect injection.
* **Interconnect send/deliver** — a reliable, contention-free network's
  send is a straight-line closure: the per-channel FIFO floor provably
  never binds (fixed per-pair latency + a monotone clock), so the
  fault-plan branch, the floor read, and the action dispatch disappear.
  Delivery is scheduled as a *per-destination* closure that fuses
  ``_deliver`` with the destination NP's receive path.
* **Blizzard CPU servicing** — ``_service_one``/``_handle_block_fault``
  become row-driven generators (one registry lookup and one guard frame
  fewer per handler).

**Observable-order parity is the invariant.**  Every fused path performs
the same engine insertions, in the same relative order, at the same
times and with the same zero-delay/heap split as its interpreted twin —
and the inline-advance path only fires when the skipped heap entry would
provably have been the very next event.  The global ``(time, seq)``
event order, every statistic, every RNG draw, and the final memory image
are therefore identical; the differential harness
(:mod:`repro.harness.differential`) asserts exactly that.

Specialisation is re-decided by :meth:`CompiledKernel.refresh` (hooked
from ``enable_conformance`` / ``install_fault_plan``): conformance fuses
the monitor's ``after_handler`` into the dispatch closures; a live fault
plan deopts the NP and interconnect fast paths back to the interpreted
methods (stall windows, NACK/retransmit and drop/dup/reorder handling
stay in exactly one place).
"""

from __future__ import annotations

from heapq import heappush

from repro.memory.address import SHARED_BASE
from repro.memory.mirror import (
    PAGE_MAPPED,
    READ_HIT,
    TLB_PRESENT,
    WRITE_HIT,
)
from repro.network.message import Message, VirtualNetwork
from repro.protocols.compiled import (
    CompiledProtocolTable,
    compilable_spec,
    compile_protocol,
)
from repro.sim.engine import SimulationError
from repro.typhoon.np import DispatchError

__all__ = ["CompiledKernel"]

#: Bound on back-to-back inline handler dispatches (each consumes a few
#: Python frames; past this the kernel falls back to a heap entry, which
#: is observably identical — see ``start_message_tail``).
_MAX_INLINE_DEPTH = 128


class CompiledKernel:
    """Compiled tables plus the fused dispatch closures for one machine."""

    name = "compiled"

    def __init__(self, machine, spec, cycles_per_instruction: int):
        self.machine = machine
        self.spec = spec
        #: node_id -> CompiledProtocolTable (registries are per node).
        self.tables: dict[int, CompiledProtocolTable] = {
            node.node_id: compile_protocol(
                spec, node.registry, cycles_per_instruction
            )
            for node in machine.nodes
        }
        #: What refresh() last decided, for introspection and tests.
        self.np_fast = False
        self.interconnect_fast = False

    # ------------------------------------------------------------------
    @classmethod
    def try_install(cls, machine):
        """Compile ``machine``'s protocol and install the fast paths.

        Returns ``(kernel, None)`` on success or ``(None, reason)`` when
        the machine must stay interpreted — a *declared* incompatibility
        (registry compilability, hardware protocol), never a silent one.
        """
        backend = getattr(machine, "system_name", None)
        if backend == "typhoon":
            cpi = machine.config.typhoon.cycles_per_instruction
        elif backend == "blizzard":
            cpi = machine.config.blizzard.cycles_per_instruction
        elif backend == "decoupled":
            return None, (
                "backend 'decoupled' runs handlers on a dedicated "
                "handler processor the compiled kernel does not yet "
                "specialise; running interpreted"
            )
        else:
            return None, (
                f"backend {backend!r} runs its protocol in hardware; "
                "there is no software dispatch loop to compile"
            )
        protocol = getattr(machine, "protocol", None)
        name = getattr(protocol, "name", None)
        spec = compilable_spec(name)
        if spec is None:
            return None, (
                f"protocol {name!r} is not marked compilable in the "
                "registry (no transition tables to lower)"
            )
        kernel = cls(machine, spec, cpi)
        kernel.refresh()
        return kernel, None

    # ------------------------------------------------------------------
    def refresh(self) -> None:
        """(Re-)specialise the fast paths for the machine's current mode.

        Idempotent; called at install and again whenever conformance or
        fault injection changes the required semantics.  Conformance is
        *fused* (the monitor's ``after_handler`` is baked into the
        dispatch closures); a live fault plan *deopts* the NP and
        interconnect back to the interpreted methods, which own the
        stall/NACK/drop machinery.
        """
        machine = self.machine
        monitor = machine.conformance
        faulty = machine.fault_plan is not None
        ic = machine.interconnect
        self.np_fast = not faulty
        #: Per-destination fused delivery closures; the fast interconnect
        #: send schedules these directly (dict is filled by the node
        #: installs below, read through the closure at delivery time).
        dispatch: dict = {}
        self.interconnect_fast = (
            ic._fault_plan is None and not ic.model_contention
        )
        if self.interconnect_fast:
            ic.send = _make_fast_interconnect_send(ic, dispatch)
        else:
            ic.__dict__.pop("send", None)
        lanes_fast = monitor is None and not faulty
        if machine.system_name == "typhoon":
            for node in machine.nodes:
                if self.np_fast:
                    _install_typhoon_node(
                        node, self.tables[node.node_id], monitor,
                        dispatch, self.interconnect_fast,
                    )
                else:
                    _deopt_typhoon_node(node)
                if lanes_fast:
                    _install_typhoon_lanes(node)
                else:
                    _deopt_lanes(node)
        else:
            for node in machine.nodes:
                _install_blizzard_node(
                    node, self.tables[node.node_id], monitor
                )
                if lanes_fast:
                    _install_blizzard_lanes(node)
                else:
                    _deopt_lanes(node)

    def uninstall(self) -> None:
        """Remove every fused closure; the machine is interpreted again."""
        machine = self.machine
        machine.interconnect.__dict__.pop("send", None)
        self.interconnect_fast = False
        self.np_fast = False
        for node in machine.nodes:
            if machine.system_name == "typhoon":
                _deopt_typhoon_node(node)
            else:
                _deopt_blizzard_node(node)
            _deopt_lanes(node)

    def describe(self) -> dict:
        """Introspection row for the CLI and the differential harness."""
        return {
            "kernel": self.name,
            "protocol_spec": self.spec.name,
            "nodes": len(self.tables),
            "handlers": len(self.tables[0].rows) if self.tables else 0,
            "np_fast": self.np_fast,
            "interconnect_fast": self.interconnect_fast,
        }

    def __repr__(self) -> str:
        return (
            f"CompiledKernel(spec={self.spec.name!r}, "
            f"nodes={len(self.tables)}, np_fast={self.np_fast}, "
            f"ic_fast={self.interconnect_fast})"
        )


# ----------------------------------------------------------------------
# Interconnect: reliable, contention-free send/deliver
# ----------------------------------------------------------------------
def _make_fast_interconnect_send(ic, dispatch):
    """Straight-line send for a reliable, contention-free network.

    Parity argument for dropping the FIFO floor *read*: with no
    contention model the floor stored for channel ``(src, dst, vnet)`` is
    always the previous packet's arrival, ``now' + latency(src, dst)``
    with ``now' <= now`` and a fixed per-pair latency — so the new
    arrival is never below it.  The floor is still *written* so a
    mid-run deopt (fault plan installed later) resumes with correct
    channel state.

    ``dispatch`` maps node ids to fused delivery closures (filled by the
    backend installs); destinations without one get the generic deliver,
    which is ``Interconnect._deliver`` minus the transport branches.
    """
    engine = ic.engine
    stats = ic.stats
    counters = ic._counters
    observers = ic.observers  # stable list object, mutated in place
    sinks = ic._sinks
    latency = ic._latency
    channel_clear = ic._channel_clear
    max_payload = ic._max_payload
    fifo = engine._fifo
    queue = engine._queue
    dispatch_get = dispatch.get

    def deliver(message):
        if observers:
            for observer in observers:
                observer("deliver", message)
        sinks[message.dst](message)
        callback = message.on_delivered
        if callback is not None:
            message.on_delivered = None
            callback(message)

    def fast_send(message):
        dst = message.dst
        arrive = dispatch_get(dst)
        if arrive is None:
            if dst not in sinks:
                raise SimulationError(f"message to unattached node {dst}")
            arrive = deliver
        if message.size_words > max_payload:
            message.validated(max_payload)  # raises PacketTooLarge
        now = engine.now
        message.send_time = now
        counters["network.packets"] += 1
        counters["network.words"] += message.size_words
        if observers:
            for observer in observers:
                observer("send", message)
        src = message.src
        seq = engine._seq
        engine._seq = seq + 1
        engine._live += 1
        if src == dst:
            counters["network.local_packets"] += 1
            heappush(queue, (now + 1, seq, None, arrive, (message,)))
            return
        arrival = now + latency(src, dst)
        channel_clear[(src, dst, message.vnet)] = arrival
        dist = ic._latency_dist
        if dist is None:
            dist = ic._latency_dist = stats.distribution("network.latency")
        dist.add(arrival - now)
        if arrival > now:
            heappush(queue, (arrival, seq, None, arrive, (message,)))
        else:
            fifo.append((seq, arrive, (message,)))

    return fast_send


# ----------------------------------------------------------------------
# Typhoon: fused NP dispatch
# ----------------------------------------------------------------------
_TYPHOON_OVERRIDES = ("enqueue_message", "enqueue_fault", "_pump")


def _install_typhoon_node(node, table, monitor, dispatch, ic_fast) -> None:
    """Install the fused NP dispatch loop on one Typhoon node.

    Valid only with no fault plan (no stall windows, no receive/BAF
    bounds, no NACKs).  The fused loop folds ``_start_message`` /
    ``_start_fault`` / ``_begin`` / ``_execute`` / ``_finish`` into a
    handful of closures, pushes anonymous engine entries directly, and —
    in tail position — elides the heap round-trip entirely when the
    charge window is provably event-free.
    """
    np = node.np
    engine = np.engine
    tempest = node.tempest
    counters = np._counters
    rows = table.rows
    rows_get = rows.get
    resolve_row = table.row  # lazy: handlers may register after install
    np_tlb_access = np.np_tlb.access
    np_tlb_miss = np.costs.np_tlb_miss
    baf_dispatch_cycles = np.costs.baf_dispatch_cycles
    rtlb_probe = np.rtlb.probe
    page_shift = np._page_shift
    received_key = np._received_key
    handler_cycles_key = np._handler_cycles_key
    np_tlb_misses_key = np._np_tlb_misses_key
    block_faults_key = np._block_faults_key
    sent_key = node._messages_sent_key
    response_queue = np._response_queue
    request_queue = np._request_queue
    baf_buffer = np._baf_buffer
    pt_lookup = node.page_table.lookup
    fault_dispatch = np._fault_dispatch
    fault_observers = node.machine.fault_observers  # stable list object
    in_flight = np._in_flight
    overflow = np._overflow
    on_delivered = np._on_delivered
    np_stats = np.stats
    overflow_key = f"{np._prefix}.sends_overflowed"
    overflow_peak_key = f"{np._prefix}.overflow_peak"
    interconnect = node.machine.interconnect
    ic_observers = interconnect.observers  # stable list object
    node_id = node.node_id
    fifo = engine._fifo
    queue = engine._queue
    RESPONSE = VirtualNetwork.RESPONSE
    REQUEST = VirtualNetwork.REQUEST
    after_handler = monitor.after_handler if monitor is not None else None
    # Inline-dispatch recursion depth (a mutable cell shared by the tail
    # closures): bounded so a long drain of queued work cannot pile up
    # Python frames — the fallback heap entry is observably identical.
    depth = [0]

    def _resolve_fault(fault):
        # _start_fault's dispatch-table side.  Fault handlers may be
        # guard-wrapped, but an AccessFault has no transaction id, so
        # the guard would pass it straight through — the fused check is
        # skipped entirely (seen=None at the call sites).
        entry = pt_lookup(fault.addr)
        if entry is None:
            raise DispatchError(
                f"BAF for unmapped page {fault.addr:#x} on node {node_id}"
            )
        handler_name = fault_dispatch.get((entry.mode, fault.is_write))
        if handler_name is None:
            raise DispatchError(
                f"no fault handler for mode={entry.mode} "
                f"is_write={fault.is_write} on node {node_id}"
            )
        row = rows.get(handler_name)
        if row is None:
            row = resolve_row(handler_name)
        return row, baf_dispatch_cycles + row.cost + rtlb_probe(fault.addr)

    def start_message(message):
        # Non-tail entry (delivery path): the caller still has work to
        # do at the current time, so the charge always goes to the heap
        # (or the zero-delay lane) exactly like the interpreted _begin.
        # The row lookup + NP TLB probe (_start_message's cost side) is
        # inlined here and at every other dispatch site.
        np._busy = True
        row = rows_get(message.handler)
        if row is None:
            row = resolve_row(message.handler)  # raises on unknown names
        cost = row.cost
        addr = message.payload.get("addr")
        if addr is not None and not np_tlb_access(addr >> page_shift):
            cost += np_tlb_miss
            counters[np_tlb_misses_key] += 1
        counters[handler_cycles_key] += cost
        seq = engine._seq
        engine._seq = seq + 1
        engine._live += 1
        if cost:
            heappush(
                queue,
                (engine.now + cost, seq, None, execute,
                 (row.fn, row.seen, message)),
            )
        else:
            fifo.append((seq, execute, (row.fn, row.seen, message)))

    def start_fault(fault):
        np._busy = True
        row, cost = _resolve_fault(fault)
        counters[handler_cycles_key] += cost
        seq = engine._seq
        engine._seq = seq + 1
        engine._live += 1
        if cost:
            heappush(
                queue,
                (engine.now + cost, seq, None, execute,
                 (row.fn, None, fault)),
            )
        else:
            fifo.append((seq, execute, (row.fn, None, fault)))

    def start_message_tail(message):
        # Tail entry (a handler just finished and this dispatch is the
        # last thing happening at the current time): if no pending event
        # can fire inside the charge window — the Engine.try_advance
        # condition — the heap entry we would push would provably be the
        # next event fired, so advance the clock and run it now.
        np._busy = True
        row = rows_get(message.handler)
        if row is None:
            row = resolve_row(message.handler)
        cost = row.cost
        addr = message.payload.get("addr")
        if addr is not None and not np_tlb_access(addr >> page_shift):
            cost += np_tlb_miss
            counters[np_tlb_misses_key] += 1
        counters[handler_cycles_key] += cost
        target = engine.now + cost
        d = depth[0]
        if (
            d < _MAX_INLINE_DEPTH
            and not fifo
            and (not queue or queue[0][0] > target)
            and ((until := engine._until) is None or target <= until)
        ):
            depth[0] = d + 1
            engine.now = target
            execute(row.fn, row.seen, message)
            depth[0] = d
            return
        seq = engine._seq
        engine._seq = seq + 1
        engine._live += 1
        if cost:
            heappush(
                queue,
                (target, seq, None, execute, (row.fn, row.seen, message)),
            )
        else:
            fifo.append((seq, execute, (row.fn, row.seen, message)))

    def start_fault_tail(fault):
        np._busy = True
        row, cost = _resolve_fault(fault)
        counters[handler_cycles_key] += cost
        target = engine.now + cost
        d = depth[0]
        if (
            d < _MAX_INLINE_DEPTH
            and not fifo
            and (not queue or queue[0][0] > target)
            and ((until := engine._until) is None or target <= until)
        ):
            depth[0] = d + 1
            engine.now = target
            execute(row.fn, None, fault)
            depth[0] = d
            return
        seq = engine._seq
        engine._seq = seq + 1
        engine._live += 1
        if cost:
            heappush(
                queue, (target, seq, None, execute, (row.fn, None, fault))
            )
        else:
            fifo.append((seq, execute, (row.fn, None, fault)))

    def execute(fn, seen, argument):
        # _execute with the DeliveryGuard wrapper's body fused inline:
        # first delivery of a transaction id runs the raw handler, later
        # deliveries are dropped (and counted by the guard itself).
        np._extra_charge = 0
        if seen is None:
            fn(tempest, argument)
        else:
            xid = argument.xid
            if xid is None or not seen(argument.src, xid):
                fn(tempest, argument)
        if after_handler is not None:
            after_handler(node_id, argument)
        extra = np._extra_charge
        if extra:
            np._extra_charge = 0
            counters[handler_cycles_key] += extra
            target = engine.now + extra
            if (
                not fifo
                and (not queue or queue[0][0] > target)
                and ((until := engine._until) is None or target <= until)
            ):
                engine.now = target
            else:
                seq = engine._seq
                engine._seq = seq + 1
                engine._live += 1
                heappush(queue, (target, seq, None, finish, ()))
                return
        # _finish + _pump, inlined: dispatch the next piece of work
        # directly — response network first, then captured faults, then
        # requests (the Section 5.1 priority) — leaving _busy set across
        # back-to-back handlers (externally indistinguishable from the
        # interpreted clear-then-set).
        if response_queue:
            start_message_tail(response_queue.popleft())
        elif baf_buffer:
            start_fault_tail(baf_buffer.popleft())
        elif request_queue:
            start_message_tail(request_queue.popleft())
        else:
            np._busy = False

    def finish():
        # Continuation for the rare heap-scheduled extra charge above.
        if response_queue:
            start_message_tail(response_queue.popleft())
        elif baf_buffer:
            start_fault_tail(baf_buffer.popleft())
        elif request_queue:
            start_message_tail(request_queue.popleft())
        else:
            np._busy = False

    def pump():
        if np._busy:
            return
        if response_queue:
            start_message(response_queue.popleft())
        elif baf_buffer:
            start_fault(baf_buffer.popleft())
        elif request_queue:
            start_message(request_queue.popleft())

    def enqueue_message(message):
        # Receive-queue arrival; no bounded-queue/NACK branch (faults
        # deopt the whole node).
        if message.vnet is RESPONSE:
            response_queue.append(message)
        else:
            request_queue.append(message)
        counters[received_key] += 1
        if not np._busy:
            if response_queue:
                start_message(response_queue.popleft())
            elif baf_buffer:
                start_fault(baf_buffer.popleft())
            elif request_queue:
                start_message(request_queue.popleft())

    def enqueue_fault(fault):
        # BAF arrival; no capacity bound (faults deopt the whole node).
        counters[block_faults_key] += 1
        if fault_observers:
            for observer in fault_observers:
                observer(fault)
        baf_buffer.append(fault)
        if not np._busy:
            if response_queue:
                start_message(response_queue.popleft())
            elif baf_buffer:
                start_fault(baf_buffer.popleft())
            elif request_queue:
                start_message(request_queue.popleft())

    def arrive(message):
        # Interconnect._deliver fused with enqueue_message, scheduled
        # directly by the fast interconnect send for this destination.
        # Order matches the interpreted path exactly: deliver observers,
        # sink (enqueue + possible dispatch), then the fire-once
        # send-queue credit.
        if ic_observers:
            for observer in ic_observers:
                observer("deliver", message)
        if message.vnet is RESPONSE:
            response_queue.append(message)
        else:
            request_queue.append(message)
        counters[received_key] += 1
        if not np._busy:
            # Inlined start_message for the dominant case (the arriving
            # message dispatches immediately); the BAF branch cannot
            # really occur here (an idle NP never leaves a captured
            # fault queued) but is kept for exactness.
            if response_queue:
                work = response_queue.popleft()
            elif baf_buffer:
                work = None
                start_fault(baf_buffer.popleft())
            else:
                work = request_queue.popleft()
            if work is not None:
                np._busy = True
                row = rows_get(work.handler)
                if row is None:
                    row = resolve_row(work.handler)
                cost = row.cost
                addr = work.payload.get("addr")
                if addr is not None and not np_tlb_access(
                        addr >> page_shift):
                    cost += np_tlb_miss
                    counters[np_tlb_misses_key] += 1
                counters[handler_cycles_key] += cost
                seq = engine._seq
                engine._seq = seq + 1
                engine._live += 1
                if cost:
                    heappush(
                        queue,
                        (engine.now + cost, seq, None, execute,
                         (row.fn, row.seen, work)),
                    )
                else:
                    fifo.append((seq, execute, (row.fn, row.seen, work)))
        callback = message.on_delivered
        if callback is not None:
            message.on_delivered = None
            callback(message)

    def send_message(message):
        # TyphoonNode.send_message + NetworkProcessor.send fused; the
        # interconnect send resolves dynamically so its own fast path
        # (and any later deopt) composes.
        counters[sent_key] += 1
        vnet = message.vnet
        if in_flight[vnet] >= np._send_depth:
            overflow.append(message)
            np_stats.incr(overflow_key)
            np_stats.set_max(overflow_peak_key, len(overflow))
            return
        in_flight[vnet] += 1
        message.on_delivered = on_delivered
        interconnect.send(message)

    if ic_fast:
        # The whole user-level send path in ONE frame: Tempest.send +
        # send_message + the reliable-network interconnect send, with
        # this node's per-destination latencies folded in as constants
        # (the topology function is pure and the machine is fixed).
        lats = tuple(
            0 if dst == node_id else interconnect._latency(node_id, dst)
            for dst in range(node.machine.config.nodes)
        )
        channel_clear = interconnect._channel_clear
        max_payload = interconnect._max_payload
        ic_stats = interconnect.stats
        dispatch_get = dispatch.get

        def tempest_send(dst, handler, vnet=REQUEST, size_words=3,
                         **payload):
            message = Message(
                src=node_id, dst=dst, handler=handler, vnet=vnet,
                size_words=size_words, payload=payload,
            )
            counters[sent_key] += 1
            if in_flight[vnet] >= np._send_depth:
                overflow.append(message)
                np_stats.incr(overflow_key)
                np_stats.set_max(overflow_peak_key, len(overflow))
                return
            in_flight[vnet] += 1
            message.on_delivered = on_delivered
            to = dispatch_get(dst)
            if to is None:
                # Destination without a fused delivery closure (deopt
                # race, unattached-node error path): generic send.
                interconnect.send(message)
                return
            if size_words > max_payload:
                message.validated(max_payload)  # raises PacketTooLarge
            now = engine.now
            message.send_time = now
            counters["network.packets"] += 1
            counters["network.words"] += size_words
            if ic_observers:
                for observer in ic_observers:
                    observer("send", message)
            seq = engine._seq
            engine._seq = seq + 1
            engine._live += 1
            if dst == node_id:
                counters["network.local_packets"] += 1
                heappush(queue, (now + 1, seq, None, to, (message,)))
                return
            arrival = now + lats[dst]
            channel_clear[(node_id, dst, vnet)] = arrival
            dist = interconnect._latency_dist
            if dist is None:
                dist = interconnect._latency_dist = ic_stats.distribution(
                    "network.latency")
            dist.add(arrival - now)
            if arrival > now:
                heappush(queue, (arrival, seq, None, to, (message,)))
            else:
                fifo.append((seq, to, (message,)))
    else:
        def tempest_send(dst, handler, vnet=REQUEST, size_words=3,
                         **payload):
            # Tempest.send + send_message in one frame; the interconnect
            # resolves dynamically (contention model or fault plan owns
            # the rest of the path).
            message = Message(
                src=node_id, dst=dst, handler=handler, vnet=vnet,
                size_words=size_words, payload=payload,
            )
            counters[sent_key] += 1
            if in_flight[vnet] >= np._send_depth:
                overflow.append(message)
                np_stats.incr(overflow_key)
                np_stats.set_max(overflow_peak_key, len(overflow))
                return
            in_flight[vnet] += 1
            message.on_delivered = on_delivered
            interconnect.send(message)

    np.enqueue_message = enqueue_message
    np.enqueue_fault = enqueue_fault
    np._pump = pump
    # These three captured bound methods at machine construction, so
    # shadowing the NP methods alone would not be enough: re-point them.
    interconnect._sinks[node_id] = enqueue_message
    tempest._send_message = send_message
    tempest.send = tempest_send
    dispatch[node_id] = arrive


def _deopt_typhoon_node(node) -> None:
    """Back to the interpreted NP loop (idempotent)."""
    np = node.np
    for name in _TYPHOON_OVERRIDES:
        np.__dict__.pop(name, None)
    node.machine.interconnect._sinks[node.node_id] = np.enqueue_message
    node.tempest._send_message = node.send_message
    node.tempest.__dict__.pop("send", None)


# ----------------------------------------------------------------------
# Blizzard: row-driven CPU servicing
# ----------------------------------------------------------------------
_BLIZZARD_OVERRIDES = ("_service_one", "_handle_block_fault")


def _install_blizzard_node(node, table, monitor) -> None:
    """Install row-driven handler servicing on one Blizzard node.

    Blizzard has no NP — handlers run on the CPU thread between yields —
    so the fused generators keep the exact same yield structure as the
    interpreted ones and stay valid even under fault injection (the
    inbox bound lives in ``_receive``, which is untouched; duplicate
    suppression is the fused guard check).
    """
    np = node.np
    tempest = node.tempest
    counters = node._counters
    rows = table.rows
    resolve_row = table.row
    pick_next = node._pick_next_message
    dispatch_cycles = node.costs.software_dispatch_cycles
    handlers_run_key = node._handlers_run_key
    take_charge = np.take_charge
    pt_lookup = node.page_table.lookup
    fault_handler_for = np.fault_handler_for
    suspend = node.thread.suspend
    spin_until = node._spin_until
    node_id = node.node_id
    after_handler = monitor.after_handler if monitor is not None else None

    def service_one():
        message = pick_next()
        row = rows.get(message.handler)
        if row is None:
            row = resolve_row(message.handler)
        yield dispatch_cycles + row.cost
        counters[handlers_run_key] += 1
        seen = row.seen
        if seen is None:
            row.fn(tempest, message)
        else:
            xid = message.xid
            if xid is None or not seen(message.src, xid):
                row.fn(tempest, message)
        if after_handler is not None:
            after_handler(node_id, message)
        extra = take_charge()
        if extra:
            yield extra

    def handle_block_fault(fault):
        entry = pt_lookup(fault.addr)
        handler_name = fault_handler_for(entry.mode, fault.is_write)
        row = rows.get(handler_name)
        if row is None:
            row = resolve_row(handler_name)
        suspension = suspend()
        yield dispatch_cycles + row.cost
        # Guarded or not, an AccessFault has no transaction id: call the
        # raw handler directly (same as the guard passing it through).
        row.fn(tempest, fault)
        if after_handler is not None:
            after_handler(node_id, fault)
        extra = take_charge()
        if extra:
            yield extra
        if not suspension.done:
            yield from spin_until(suspension)

    node._service_one = service_one
    node._handle_block_fault = handle_block_fault


def _deopt_blizzard_node(node) -> None:
    """Back to the interpreted servicing loop (idempotent)."""
    for name in _BLIZZARD_OVERRIDES:
        node.__dict__.pop(name, None)


# ----------------------------------------------------------------------
# Batched access lanes, fused
# ----------------------------------------------------------------------
_LANE_OVERRIDES = ("run_read_prefix", "run_plan_prefix")


def _deopt_lanes(node) -> None:
    """Back to the interpreted lane methods (idempotent)."""
    for name in _LANE_OVERRIDES:
        node.__dict__.pop(name, None)


def _install_typhoon_lanes(node) -> None:
    """Fused batched access lanes for one Typhoon node.

    The interpreted ``run_read_prefix``/``run_plan_prefix`` rebind their
    whole environment — mirror dicts, image accessors, cost constants,
    counter keys — on every call; these closures prebind all of it at
    install time, so a lane call starts scanning immediately.  Installed
    only with no fault plan and no conformance monitor (``refresh()``
    pops them the moment either mode turns on), but each call still
    re-checks the machine mode: an :class:`~repro.apps.base.AppContext`
    captures the lane callable at construction, so a mid-run mode flip
    must deopt per call exactly like the interpreted lanes.
    """
    engine = node.engine
    machine = node.machine
    mirror = node.mirror
    page_flags = mirror.page_flags
    block_flags = mirror.block_flags
    page_shift = node._page_shift
    block_shift = node._block_shift
    bpp_mask = node._bpp_mask
    block_mask = node._block_mask
    hit_cycles = node._hit_cycles
    image_read = node._image_read
    image_write = node._image_write
    written_add = node.written_blocks.add
    counters = node._counters
    refs_key = node._refs_key
    access_cycles_key = node._access_cycles_key
    cpu_tlb = node.cpu_tlb
    cache = node.cache
    node_id = node.node_id
    fifo = engine._fifo
    queue = engine._queue

    def run_read_prefix(addrs, start, out):
        if (fifo or machine.fault_plan is not None
                or machine.conformance is not None):
            return start
        now = engine.now
        if queue:
            limit = queue[0][0]
            if limit <= now + 2 * hit_cycles:
                return start
        else:
            limit = None
        until = engine._until
        if until is not None and now + hit_cycles > until:
            return start
        out_append = out.append
        out_base = len(out)
        target = now
        index = start
        total = len(addrs)
        current_page = -1
        blocks = None
        while index < total:
            step = target + hit_cycles
            if limit is not None and limit <= step:
                break
            if until is not None and step > until:
                break
            addr = addrs[index]
            page = addr >> page_shift
            if page != current_page:
                need = (TLB_PRESENT | PAGE_MAPPED if addr >= SHARED_BASE
                        else TLB_PRESENT)
                if page_flags.get(page, 0) & need != need:
                    break
                blocks = block_flags.get(page)
                if blocks is None:
                    break
                current_page = page
            if not blocks[(addr >> block_shift) & bpp_mask] & READ_HIT:
                break
            out_append(image_read(addr))
            target = step
            index += 1
        n = index - start
        if n:
            engine.now = target
            cpu_tlb.hits += n
            cache.hits += n
            counters[refs_key] += n
            counters[access_cycles_key] += n * hit_cycles
            history = machine.history
            if history is not None:
                t = now
                for i in range(n):
                    history.record(node_id, addrs[start + i], False,
                                   out[out_base + i], t, t + hit_cycles)
                    t += hit_cycles
        return index

    def run_plan_prefix(ops, start, out):
        if (fifo or machine.fault_plan is not None
                or machine.conformance is not None):
            return start
        now = engine.now
        if queue:
            limit = queue[0][0]
            if limit <= now + 2 * hit_cycles:
                return start
        else:
            limit = None
        until = engine._until
        if until is not None and now + hit_cycles > until:
            return start
        out_append = out.append
        out_base = len(out)
        target = now
        index = start
        total = len(ops)
        current_page = -1
        page_shared = False
        blocks = None
        while index < total:
            step = target + hit_cycles
            if limit is not None and limit <= step:
                break
            if until is not None and step > until:
                break
            addr, is_write, value = ops[index]
            page = addr >> page_shift
            if page != current_page:
                page_shared = addr >= SHARED_BASE
                need = (TLB_PRESENT | PAGE_MAPPED if page_shared
                        else TLB_PRESENT)
                if page_flags.get(page, 0) & need != need:
                    break
                blocks = block_flags.get(page)
                if blocks is None:
                    break
                current_page = page
            if not (blocks[(addr >> block_shift) & bpp_mask]
                    & (WRITE_HIT if is_write else READ_HIT)):
                break
            if is_write:
                image_write(addr, value)
                if page_shared:
                    written_add(addr & block_mask)
                out_append(None)
            else:
                out_append(image_read(addr))
            target = step
            index += 1
        n = index - start
        if n:
            engine.now = target
            cpu_tlb.hits += n
            cache.hits += n
            counters[refs_key] += n
            counters[access_cycles_key] += n * hit_cycles
            history = machine.history
            if history is not None:
                t = now
                for i in range(n):
                    addr, is_write, value = ops[start + i]
                    if not is_write:
                        value = out[out_base + i]
                    history.record(node_id, addr, is_write, value,
                                   t, t + hit_cycles)
                    t += hit_cycles
        return index

    node.run_read_prefix = run_read_prefix
    node.run_plan_prefix = run_plan_prefix


def _install_blizzard_lanes(node) -> None:
    """Fused batched access lanes for one Blizzard node.

    Same prebinding as :func:`_install_typhoon_lanes`, with Blizzard's
    per-access cost model (shared accesses charge poll + inserted check
    + hit; private accesses the bare hit) and the additional inbox
    deopt: a queued handler message must be serviced between scalar
    accesses, so the lane refuses the batch exactly like its
    interpreted twin.
    """
    engine = node.engine
    machine = node.machine
    mirror = node.mirror
    page_flags = mirror.page_flags
    block_flags = mirror.block_flags
    page_shift = node._page_shift
    block_shift = node._block_shift
    bpp_mask = node._bpp_mask
    block_mask = node._block_mask
    private_cost = node._hit_cycles
    shared_read = node._shared_read_cost
    shared_write = node._shared_write_cost
    image_read = node._image_read
    image_write = node._image_write
    written_add = node.written_blocks.add
    counters = node._counters
    refs_key = node._refs_key
    access_cycles_key = node._access_cycles_key
    cpu_tlb = node.cpu_tlb
    cache = node.cache
    node_id = node.node_id
    inbox = node._inbox
    fifo = engine._fifo
    queue = engine._queue

    def run_read_prefix(addrs, start, out):
        if (fifo or inbox or machine.fault_plan is not None
                or machine.conformance is not None):
            return start
        now = engine.now
        if queue:
            limit = queue[0][0]
            if limit <= now + 2 * private_cost:
                return start
        else:
            limit = None
        until = engine._until
        if until is not None and now + private_cost > until:
            return start
        out_append = out.append
        out_base = len(out)
        target = now
        index = start
        total = len(addrs)
        current_page = -1
        page_cost = private_cost
        blocks = None
        while index < total:
            addr = addrs[index]
            page = addr >> page_shift
            if page != current_page:
                shared = addr >= SHARED_BASE
                need = (TLB_PRESENT | PAGE_MAPPED if shared
                        else TLB_PRESENT)
                if page_flags.get(page, 0) & need != need:
                    break
                blocks = block_flags.get(page)
                if blocks is None:
                    break
                current_page = page
                page_cost = shared_read if shared else private_cost
            step = target + page_cost
            if limit is not None and limit <= step:
                break
            if until is not None and step > until:
                break
            if not blocks[(addr >> block_shift) & bpp_mask] & READ_HIT:
                break
            out_append(image_read(addr))
            target = step
            index += 1
        n = index - start
        if n:
            engine.now = target
            cpu_tlb.hits += n
            cache.hits += n
            counters[refs_key] += n
            counters[access_cycles_key] += target - now
            history = machine.history
            if history is not None:
                t = now
                for i in range(n):
                    addr = addrs[start + i]
                    cost = (shared_read if addr >= SHARED_BASE
                            else private_cost)
                    history.record(node_id, addr, False,
                                   out[out_base + i], t, t + cost)
                    t += cost
        return index

    def run_plan_prefix(ops, start, out):
        if (fifo or inbox or machine.fault_plan is not None
                or machine.conformance is not None):
            return start
        now = engine.now
        if queue:
            limit = queue[0][0]
            if limit <= now + 2 * private_cost:
                return start
        else:
            limit = None
        until = engine._until
        if until is not None and now + private_cost > until:
            return start
        out_append = out.append
        out_base = len(out)
        target = now
        index = start
        total = len(ops)
        current_page = -1
        page_shared = False
        blocks = None
        while index < total:
            addr, is_write, value = ops[index]
            page = addr >> page_shift
            if page != current_page:
                page_shared = addr >= SHARED_BASE
                need = (TLB_PRESENT | PAGE_MAPPED if page_shared
                        else TLB_PRESENT)
                if page_flags.get(page, 0) & need != need:
                    break
                blocks = block_flags.get(page)
                if blocks is None:
                    break
                current_page = page
            if page_shared:
                cost = shared_write if is_write else shared_read
            else:
                cost = private_cost
            step = target + cost
            if limit is not None and limit <= step:
                break
            if until is not None and step > until:
                break
            if not (blocks[(addr >> block_shift) & bpp_mask]
                    & (WRITE_HIT if is_write else READ_HIT)):
                break
            if is_write:
                image_write(addr, value)
                if page_shared:
                    written_add(addr & block_mask)
                out_append(None)
            else:
                out_append(image_read(addr))
            target = step
            index += 1
        n = index - start
        if n:
            engine.now = target
            cpu_tlb.hits += n
            cache.hits += n
            counters[refs_key] += n
            counters[access_cycles_key] += target - now
            history = machine.history
            if history is not None:
                t = now
                for i in range(n):
                    addr, is_write, value = ops[start + i]
                    if not is_write:
                        value = out[out_base + i]
                    if addr >= SHARED_BASE:
                        cost = shared_write if is_write else shared_read
                    else:
                        cost = private_cost
                    history.record(node_id, addr, is_write, value,
                                   t, t + cost)
                    t += cost
        return index

    node.run_read_prefix = run_read_prefix
    node.run_plan_prefix = run_plan_prefix
