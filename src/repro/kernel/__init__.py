"""Dispatch kernels: how a machine executes its protocol's hot path.

Two kernels exist:

* ``"interpreted"`` (the default) — the hand-written dispatch loops in
  :mod:`repro.typhoon.np` and :mod:`repro.blizzard.node` run the
  guard-wrapped handler closures exactly as previous PRs built them.
  Nothing is installed; the machine is byte-for-byte the seed machine,
  so every fixed-seed golden stays bit-identical.

* ``"compiled"`` — the table-driven fast kernel
  (:mod:`repro.kernel.compiled`): each node's protocol is lowered by
  :mod:`repro.protocols.compiled` into dense dispatch rows (raw handler,
  fused duplicate check, cost with cycles-per-instruction folded in),
  and specialised dispatch closures are installed *as instance
  attributes* over the interpreted methods.  The interpreted code is
  untouched underneath — it remains the differential-testing oracle
  (:mod:`repro.harness.differential`) — and deopt is ``__dict__.pop``.

Selection is opt-in and name-based (``install_kernel(machine,
"compiled")``); machines the kernel cannot specialise fall back to
interpreted with the reason recorded on
``machine.kernel_fallback_reason``, so a sweep over the full system
matrix can request ``compiled`` unconditionally.  Fallback reasons are
*declared*: a protocol not marked compilable (``em3d-update``),
hardware-protocol DirNNB, or a backend outside
:data:`COMPILED_BACKENDS` (the ``decoupled`` backend's handler
processor is not yet specialised).
"""

from __future__ import annotations

#: Valid kernel names, in preference order.
KERNELS = ("interpreted", "compiled")

#: Backends whose dispatch loop the compiled kernel can specialise.
#: The decoupled backend's handler processor stays interpreted for now;
#: DirNNB has no software dispatch loop at all.
COMPILED_BACKENDS = ("typhoon", "blizzard")


def install_kernel(machine, kernel: str | None = "interpreted"):
    """Select the dispatch kernel for ``machine``.

    ``kernel=None`` or ``"interpreted"`` leaves the machine untouched.
    ``"compiled"`` attempts to lower the installed protocol and install
    the fast dispatch closures; on any declared-incompatibility (backend
    with a hardware protocol, protocol not marked compilable) the
    machine falls back to interpreted, recording why.  Returns the
    installed :class:`~repro.kernel.compiled.CompiledKernel` or None.
    """
    if kernel is None or kernel == "interpreted":
        machine.kernel = None
        machine.kernel_name = "interpreted"
        machine.kernel_fallback_reason = None
        return None
    if kernel != "compiled":
        raise ValueError(
            f"unknown kernel {kernel!r}: expected one of {KERNELS}"
        )
    from repro.kernel.compiled import CompiledKernel

    installed, reason = CompiledKernel.try_install(machine)
    machine.kernel = installed
    machine.kernel_name = "compiled" if installed is not None else "interpreted"
    machine.kernel_fallback_reason = reason
    return installed
