"""The evaluation applications (paper Section 6 / Table 3).

Five SPMD kernels re-implementing the paper's benchmarks' data layouts,
owners-compute partitioning, per-iteration sharing patterns and barrier
structure:

* :mod:`repro.apps.appbt`  — NAS Appbt: block-tridiagonal line sweeps on a
  3-D grid;
* :mod:`repro.apps.barnes` — Barnes-Hut N-body: shared tree walks;
* :mod:`repro.apps.mp3d`   — rarefied-flow particles through shared space
  cells (migratory write sharing);
* :mod:`repro.apps.ocean`  — stencil relaxation on 2-D grids;
* :mod:`repro.apps.em3d`   — the bipartite-graph kernel of Section 4.

Plus :mod:`repro.apps.synthetic` microbenchmark patterns for ablations.
Every application runs unmodified on both target machines (DirNNB and
Typhoon/Stache); EM3D additionally knows how to exploit the custom
delayed-update protocol when it is installed.
"""

from repro.apps.base import AppContext, Application, SharedArray, run_app
from repro.apps.appbt import AppbtApplication
from repro.apps.barnes import BarnesApplication
from repro.apps.em3d import Em3dApplication
from repro.apps.mp3d import Mp3dApplication
from repro.apps.ocean import OceanApplication
from repro.apps.synthetic import (
    MigratoryApplication,
    ProducerConsumerApplication,
    ReadMostlyApplication,
)

__all__ = [
    "AppContext",
    "Application",
    "AppbtApplication",
    "BarnesApplication",
    "Em3dApplication",
    "MigratoryApplication",
    "Mp3dApplication",
    "OceanApplication",
    "ProducerConsumerApplication",
    "ReadMostlyApplication",
    "SharedArray",
    "run_app",
]
