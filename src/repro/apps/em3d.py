"""EM3D: electromagnetic wave propagation on a bipartite graph (Section 4).

The principal data structure is a bipartite graph: E nodes hold electric
field values, H nodes magnetic field values.  Each iteration first
computes new E values as weighted sums of neighbouring H values, then
updates H values from the new E values (Program 1 in the paper).  Graph
nodes are spread evenly across processors and each processor updates its
own nodes (owners-compute); edge endpoints are remote with a configurable
probability — the x-axis of Figure 4.

One graph node occupies one 32-byte block: offset 0 is the ``value``
field, offset 8 scratch.  Edge weights live in owner-local shared memory
(they are only ever read by their owner).  The graph topology itself is
metadata — the addresses it induces are what the memory system sees.

The same application object runs under three systems:

* DirNNB and Typhoon/Stache: transparent shared memory, barrier at each
  step's end;
* Typhoon with :class:`~repro.protocols.em3d_update.Em3dUpdateProtocol`:
  graph nodes go on custom pages, value fields are registered for
  delayed update, and the step barrier is replaced by
  ``flush_and_wait`` (plus one warm-up barrier after the first
  iteration's cold fetches).
"""

from __future__ import annotations

from repro.apps.base import Application, AppContext, SharedArray
from repro.protocols.em3d_update import KIND_E, KIND_H, Em3dUpdateProtocol
from repro.sim.rng import RngStreams

#: Record layout: one graph node per 32-byte block.
NODE_BYTES = 32
VALUE_OFFSET = 0
#: Edge weights: one 8-byte double per edge, owner-local.
WEIGHT_BYTES = 8


class Em3dApplication(Application):
    """The EM3D kernel with a synthetic bipartite graph."""

    name = "em3d"

    def __init__(self, nodes_per_proc: int = 32, degree: int = 4,
                 remote_fraction: float = 0.2, iterations: int = 2,
                 seed: int = 11, prefetch: bool = False):
        self.nodes_per_proc = nodes_per_proc
        self.degree = degree
        self.remote_fraction = remote_fraction
        self.iterations = iterations
        self.seed = seed
        #: Issue non-binding prefetches one graph node ahead during each
        #: phase (requires the Stache protocol).  Hides fetch latency; the
        #: paper notes it "does not reduce the message traffic".
        self.prefetch = prefetch
        self._stache_protocol = None
        self.e_nodes: SharedArray | None = None
        self.h_nodes: SharedArray | None = None
        self.e_weights: SharedArray | None = None
        self.h_weights: SharedArray | None = None
        #: e_edges[i] = list of h-node indices feeding e-node i (and vice versa).
        self.e_edges: list[list[int]] = []
        self.h_edges: list[list[int]] = []
        self._update_protocol: Em3dUpdateProtocol | None = None

    # ------------------------------------------------------------------
    @property
    def total_nodes_per_kind(self) -> int:
        return self.nodes_per_proc * self._procs

    @property
    def edges_per_iteration(self) -> int:
        """Edges traversed per iteration (both phases) across the machine."""
        if not self.e_edges:
            return 0
        return sum(len(e) for e in self.e_edges) + sum(
            len(h) for h in self.h_edges
        )

    # ------------------------------------------------------------------
    def setup(self, machine, protocol=None) -> None:
        self._procs = machine.num_nodes
        total = self.total_nodes_per_kind
        use_update = isinstance(protocol, Em3dUpdateProtocol)
        self._update_protocol = protocol if use_update else None
        self._stache_protocol = (
            protocol if (self.prefetch and not use_update
                         and protocol is not None) else None
        )

        # Graph node arrays.  Under the update protocol the regions are
        # custom pages; otherwise plain Stache/DirNNB shared memory.
        node_protocol = None if use_update else protocol
        self.e_nodes = SharedArray(machine, node_protocol, total, NODE_BYTES,
                                   label="em3d.e")
        self.h_nodes = SharedArray(machine, node_protocol, total, NODE_BYTES,
                                   label="em3d.h")
        if use_update:
            for array, kind in ((self.e_nodes, KIND_E), (self.h_nodes, KIND_H)):
                for region in array.regions:
                    protocol.setup_custom_region(region, kind)

        # Owner-local weight arrays, one weight per edge.
        edges_per_proc = self.nodes_per_proc * self.degree
        self.e_weights = SharedArray(
            machine, protocol, edges_per_proc * self._procs, WEIGHT_BYTES,
            label="em3d.ew",
        )
        self.h_weights = SharedArray(
            machine, protocol, edges_per_proc * self._procs, WEIGHT_BYTES,
            label="em3d.hw",
        )

        self._build_graph(machine)
        self._init_values(machine, use_update, protocol)

    def _build_graph(self, machine) -> None:
        rng = RngStreams(self.seed).stream("em3d.graph")
        total = self.total_nodes_per_kind
        per = self.nodes_per_proc

        def neighbours(owner: int) -> list[int]:
            chosen = []
            for _ in range(self.degree):
                if self._procs > 1 and rng.random() < self.remote_fraction:
                    other = rng.randrange(self._procs - 1)
                    if other >= owner:
                        other += 1
                    base = other * per
                else:
                    base = owner * per
                chosen.append(base + rng.randrange(per))
            return chosen

        self.e_edges = [neighbours(i // per) for i in range(total)]
        self.h_edges = [neighbours(i // per) for i in range(total)]

    def _init_values(self, machine, use_update: bool, protocol) -> None:
        rng = RngStreams(self.seed).stream("em3d.values")
        for index in range(self.total_nodes_per_kind):
            self.poke(machine, self.e_nodes.addr(index, VALUE_OFFSET),
                      round(rng.uniform(-1, 1), 6))
            self.poke(machine, self.h_nodes.addr(index, VALUE_OFFSET),
                      round(rng.uniform(-1, 1), 6))
        for index in range(self.e_weights.count):
            self.poke(machine, self.e_weights.addr(index), 0.25)
            self.poke(machine, self.h_weights.addr(index), 0.25)
        if use_update:
            for array in (self.e_nodes, self.h_nodes):
                for index in range(array.count):
                    protocol.register_value_word(array.addr(index, VALUE_OFFSET))

    # ------------------------------------------------------------------
    def worker(self, ctx: AppContext):
        node_id = ctx.node_id
        update = self._update_protocol
        my_e = list(self.e_nodes.owned_range(node_id))
        my_h = list(self.h_nodes.owned_range(node_id))

        # Warm-up: touch every remote neighbour once, then synchronize.
        # This establishes the stached copies (and, under the update
        # protocol, the homes' copy lists) before any value is modified —
        # the initialization/inspection phase real EM3D codes run before
        # iterating.  It is identical under every protocol, so comparisons
        # remain apples to apples.
        touched = set()
        for index in my_e:
            for neighbour in self.e_edges[index]:
                touched.add(self.h_nodes.addr(neighbour, VALUE_OFFSET))
        for index in my_h:
            for neighbour in self.h_edges[index]:
                touched.add(self.e_nodes.addr(neighbour, VALUE_OFFSET))
        yield from ctx.read_run(sorted(touched))
        yield from ctx.barrier()

        for step in range(self.iterations):
            # Phase 1: new E values from neighbouring H values.
            yield from self._phase(ctx, my_e, self.e_nodes, self.h_nodes,
                                   self.e_edges, self.e_weights)
            if update is not None:
                yield from update.flush_and_wait(node_id, KIND_E, step)
            else:
                yield from ctx.barrier()
            # Phase 2: new H values from the new E values.
            yield from self._phase(ctx, my_h, self.h_nodes, self.e_nodes,
                                   self.h_edges, self.h_weights)
            if update is not None:
                yield from update.flush_and_wait(node_id, KIND_H, step)
            else:
                yield from ctx.barrier()

    def _phase(self, ctx: AppContext, my_indices, out_array, in_array,
               edges, weights):
        """One half-iteration: value -= sum(neighbour.value * weight)."""
        weight_base = my_indices[0] * self.degree if my_indices else 0
        for slot, index in enumerate(my_indices):
            if self._stache_protocol is not None and slot + 1 < len(my_indices):
                # Software-pipelined prefetch of the *next* graph node's
                # neighbours, overlapping their fetch with this node's
                # arithmetic.
                for neighbour in edges[my_indices[slot + 1]]:
                    yield from self._stache_protocol.prefetch(
                        ctx.node_id,
                        in_array.addr(neighbour, VALUE_OFFSET),
                    )
            value = yield from ctx.read(out_array.addr(index, VALUE_OFFSET))
            for edge, neighbour in enumerate(edges[index]):
                n_value, weight = yield from ctx.read_run([
                    in_array.addr(neighbour, VALUE_OFFSET),
                    weights.addr(weight_base + slot * self.degree + edge),
                ])
                value -= n_value * weight
                yield from ctx.compute(flops=2, overhead=2)
            yield from ctx.write(out_array.addr(index, VALUE_OFFSET),
                                 round(value, 9))

    # ------------------------------------------------------------------
    # Reference model for correctness checks
    # ------------------------------------------------------------------
    def reference_values(self) -> tuple[list[float], list[float]]:
        """Pure-Python execution of the same computation."""
        rng = RngStreams(self.seed).stream("em3d.values")
        total = self.total_nodes_per_kind
        e_values = []
        h_values = []
        for _ in range(total):
            e_values.append(round(rng.uniform(-1, 1), 6))
            h_values.append(round(rng.uniform(-1, 1), 6))
        for _ in range(self.iterations):
            for index in range(total):
                value = e_values[index]
                for neighbour in self.e_edges[index]:
                    value -= h_values[neighbour] * 0.25
                e_values[index] = round(value, 9)
            for index in range(total):
                value = h_values[index]
                for neighbour in self.h_edges[index]:
                    value -= e_values[neighbour] * 0.25
                h_values[index] = round(value, 9)
        return e_values, h_values
