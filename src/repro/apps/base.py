"""Application framework: SPMD kernels over the simulated shared segment.

An :class:`Application` owns its data layout and per-node worker; it runs
*unmodified* on any machine that provides ``nodes[i].access`` and a
barrier — which is exactly the paper's claim for programs linked against
the Stache library.

Workers are generators that drive their node's CPU through an
:class:`AppContext`::

    def worker(self, ctx):
        value = yield from ctx.read(addr)
        yield from ctx.write(addr, value + 1)
        yield from ctx.compute(flops=2)
        yield from ctx.barrier()

Compute work is charged in cycles derived from a flop cost (the paper
charges one cycle per instruction and notes this flatters the superscalar
primary CPU; ``FLOP_CYCLES`` is the knob).
"""

from __future__ import annotations

from typing import Any, Generator

from repro.memory.allocator import SharedRegion

#: Cycles charged per floating-point operation in application kernels.
FLOP_CYCLES = 2

#: Cycles charged per unit of addressing/loop overhead.
OVERHEAD_CYCLES = 1


def _no_inline(addr, is_write, value=None):
    """Fallback for node models without an inline-hit fast lane."""
    return None


def _no_run(seq, start, out):
    """Fallback batched lane: commits nothing, so every element of the
    run decomposes to the scalar per-access path (node models without
    lanes, and machines with ``batch_lanes`` off)."""
    return start


class _InlineDone:
    """A ``yield from``-able that returns a value without ever yielding.

    ``yield from`` on this object resolves in a single ``__next__`` call
    — the delegating generator never suspends — which is what lets an
    inline-serviced access skip generator creation entirely.  One
    instance is reused per context: it is always consumed synchronously
    before the next access can start.
    """

    __slots__ = ("value",)

    def __iter__(self):
        return self

    def __next__(self):
        raise StopIteration(self.value)


class _InlineCharge:
    """A ``yield from``-able that yields one delay, then returns None.

    Reused per context for :meth:`AppContext.compute`, saving a generator
    allocation per compute charge.
    """

    __slots__ = ("cycles", "_spent")

    def __iter__(self):
        self._spent = False
        return self

    def __next__(self):
        if self._spent:
            raise StopIteration(None)
        self._spent = True
        return self.cycles


class AppContext:
    """Per-node access handle given to application workers.

    ``read``/``write``/``compute`` are plain calls returning an iterable
    the worker drives with ``yield from``: either the node's ``access``
    generator (the general path) or a reusable inline-completion object
    when the access was serviced without touching the event queue.
    """

    def __init__(self, machine, node_id: int):
        self.machine = machine
        self.node_id = node_id
        self._node = machine.nodes[node_id]
        # The batched inline-hit lane: node models expose access_inline,
        # which services TLB + cache hits (the dominant reference class)
        # in one plain call — no generator, no event queue.  Consecutive
        # hits therefore run back-to-back in the worker's loop, entering
        # the simulator only on a miss, fault, or sync op.
        self._inline = getattr(self._node, "access_inline", _no_inline)
        self._access = self._node.access
        self._done = _InlineDone()
        self._charge = _InlineCharge()
        # The vectorised run lanes: a node-model method that commits the
        # longest all-hit prefix of a run in one step.  With lanes off
        # (machine.batch_lanes False — the scalar differential oracle)
        # or on nodes without lanes (DirNNB) the stub commits nothing
        # and runs decompose to the per-access path above.
        if getattr(machine, "batch_lanes", True):
            self._run_reads = getattr(self._node, "run_read_prefix", _no_run)
            self._run_plan = getattr(self._node, "run_plan_prefix", _no_run)
        else:
            # Scalar mode is the differential oracle *and* the honest
            # perf baseline: a run decomposes to exactly what an
            # unported worker executes — one read()/write() call per
            # element, each driven by ``yield from``.
            self._run_reads = _no_run
            self._run_plan = _no_run
            self.read_run = self._read_run_scalar
            self.access_plan = self._plan_scalar

    @property
    def num_nodes(self) -> int:
        return self.machine.num_nodes

    def read(self, addr: int):
        hit = self._inline(addr, False)
        if hit is not None:
            done = self._done
            done.value = hit[0]
            return done
        return self._access(addr, False)

    def write(self, addr: int, value: Any):
        if self._inline(addr, True, value) is not None:
            done = self._done
            done.value = None
            return done
        return self._access(addr, True, value)

    def read_run(self, addrs):
        """Read a run of addresses; ``yield from`` returns their values.

        Behaviourally identical to ``[ (yield from read(a)) for a in
        addrs ]`` — same cycles, same counters, same fault handling —
        but hit prefixes commit through the node's vectorised lane in
        one call instead of one call per element.  The first non-hit
        element falls back to the scalar path, then the run resumes.
        """
        out: list = []
        # Lane setup costs roughly two inline hits; a run shorter than
        # three elements cannot win even when it commits whole, so short
        # runs go straight to the per-element tail.
        index = self._run_reads(addrs, 0, out) if len(addrs) >= 3 else 0
        if index >= len(addrs):
            done = self._done
            done.value = out
            return done
        return self._read_run_tail(addrs, index, out)

    def _read_run_tail(self, addrs, index: int, out: list) -> Generator:
        total = len(addrs)
        run = self._run_reads
        inline = self._inline
        access = self._access
        while index < total:
            # The stopping element takes exactly the scalar read() path:
            # inline attempt, then the general access generator.
            hit = inline(addrs[index], False)
            if hit is not None:
                # An inline hit means the lane's window was too small
                # and still is (nothing new can enter the event queue
                # while this thread runs, and the clock only closes on
                # the queue head) — retrying the lane would be a
                # guaranteed-rejected call per element.
                out.append(hit[0])
                index += 1
                continue
            out.append((yield from access(addrs[index], False)))
            index += 1
            if total - index >= 3:
                # The generator op suspended the thread: time jumped and
                # other nodes ran, so the window may have reopened.
                index = run(addrs, index, out)
        return out

    def _read_run_scalar(self, addrs) -> Generator:
        out: list = []
        read = self.read
        for addr in addrs:
            out.append((yield from read(addr)))
        return out

    def write_run(self, pairs):
        """Write a run of ``(addr, value)`` pairs via the batched lane."""
        return self.access_plan([
            (addr, True, value) for addr, value in pairs
        ])

    def access_plan(self, ops):
        """Run a mixed plan of ``(addr, is_write, value)`` ops.

        ``yield from`` returns one entry per op: the value for reads,
        None for writes.  Same batched-prefix / scalar-tail contract as
        :meth:`read_run`.
        """
        out: list = []
        index = self._run_plan(ops, 0, out) if len(ops) >= 3 else 0
        if index >= len(ops):
            done = self._done
            done.value = out
            return done
        return self._plan_tail(ops, index, out)

    def _plan_tail(self, ops, index: int, out: list) -> Generator:
        total = len(ops)
        run = self._run_plan
        inline = self._inline
        access = self._access
        while index < total:
            addr, is_write, value = ops[index]
            hit = inline(addr, is_write, value)
            if hit is not None:
                # Same reasoning as _read_run_tail: the window the lane
                # just rejected cannot have grown, so don't retry it
                # until an op actually suspends the thread.
                out.append(hit[0])
                index += 1
                continue
            out.append((yield from access(addr, is_write, value)))
            index += 1
            if total - index >= 3:
                index = run(ops, index, out)
        return out

    def _plan_scalar(self, ops) -> Generator:
        out: list = []
        read = self.read
        write = self.write
        for addr, is_write, value in ops:
            if is_write:
                out.append((yield from write(addr, value)))
            else:
                out.append((yield from read(addr)))
        return out

    def compute(self, flops: int = 0, overhead: int = 0):
        cycles = flops * FLOP_CYCLES + overhead * OVERHEAD_CYCLES
        if cycles:
            charge = self._charge
            charge.cycles = cycles
            return charge
        done = self._done
        done.value = None
        return done

    def barrier(self) -> Generator:
        start = self.machine.engine.now
        yield from self.machine.barrier_wait(self.node_id)
        self.machine.stats.incr(
            f"node{self.node_id}.cpu.barrier_cycles",
            self.machine.engine.now - start,
        )


class Application:
    """Base class: data layout in ``setup``, per-node work in ``worker``."""

    name = "application"

    def setup(self, machine, protocol=None) -> None:
        """Allocate and initialize shared data (untimed initialization).

        ``protocol`` is the installed user-level protocol on Typhoon
        machines (None on DirNNB); applications pass it to
        :meth:`alloc_shared` so home pages get created.
        """
        raise NotImplementedError

    def worker(self, ctx: AppContext) -> Generator:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Shared-memory helpers
    # ------------------------------------------------------------------
    @staticmethod
    def alloc_shared(machine, protocol, size: int, label: str,
                     home: int | None = None) -> SharedRegion:
        """Allocate a shared region and create its home pages."""
        region = machine.heap.allocate(size, home=home, label=label)
        if protocol is not None:
            protocol.setup_region(region)
        return region

    @staticmethod
    def poke(machine, addr: int, value: Any) -> None:
        """Initialize a shared location (untimed, pre-run only)."""
        if hasattr(machine, "shared_image"):
            machine.shared_image.write(addr, value)
        else:
            home = machine.heap.home_of(addr)
            machine.nodes[home].image.write(addr, value)

    @staticmethod
    def peek(machine, addr: int) -> Any:
        """Read a shared location's authoritative value (post-run checks).

        On Typhoon the authoritative copy is the exclusive owner's if one
        exists, else the home's.
        """
        if hasattr(machine, "shared_image"):
            return machine.shared_image.read(addr)
        home = machine.heap.home_of(addr)
        home_node = machine.nodes[home]
        entry = None
        page = home_node.tempest.page_entry(addr)
        if page is not None and isinstance(page.user_word, dict):
            entry = page.user_word.get(machine.layout.block_of(addr))
        if entry is not None and entry.owner is not None:
            return machine.nodes[entry.owner].image.read(addr)
        return home_node.image.read(addr)


class SharedArray:
    """A 1-D array of fixed-size records, striped across owners.

    Records never straddle blocks (``record_bytes`` must divide or be a
    multiple of the block size).  With ``striped=True`` each node owns a
    contiguous chunk of records homed on it (the owners-compute layout
    every application here uses); otherwise pages are homed round-robin.
    """

    def __init__(self, machine, protocol, count: int, record_bytes: int,
                 label: str, striped: bool = True):
        if record_bytes & (record_bytes - 1):
            raise ValueError("record size must be a power of two")
        self.count = count
        self.record_bytes = record_bytes
        self.label = label
        self.machine = machine
        nodes = machine.num_nodes
        if striped:
            self.per_owner = -(-count // nodes)  # ceiling
            chunk_bytes = self.per_owner * record_bytes
            self.regions = []
            for node in range(nodes):
                region = machine.heap.allocate(
                    max(chunk_bytes, 1), home=node, label=f"{label}[{node}]"
                )
                if protocol is not None:
                    protocol.setup_region(region)
                self.regions.append(region)
        else:
            self.per_owner = None
            region = machine.heap.allocate(
                count * record_bytes, label=label
            )
            if protocol is not None:
                protocol.setup_region(region)
            self.regions = [region]
        self.striped = striped

    def addr(self, index: int, offset: int = 0) -> int:
        if not 0 <= index < self.count:
            raise IndexError(f"{self.label}[{index}] out of range")
        if offset >= self.record_bytes:
            raise IndexError(f"offset {offset} exceeds record size")
        if self.striped:
            owner, slot = divmod(index, self.per_owner)
            return self.regions[owner].base + slot * self.record_bytes + offset
        return self.regions[0].base + index * self.record_bytes + offset

    def owner_of(self, index: int) -> int:
        """The node that owns (and should compute) record ``index``."""
        if self.striped:
            return min(index // self.per_owner, self.machine.num_nodes - 1)
        return self.machine.heap.home_of(self.addr(index))

    def owned_range(self, node: int) -> range:
        """Record indices owned by ``node``."""
        if not self.striped:
            raise ValueError("owned_range needs a striped array")
        start = node * self.per_owner
        return range(min(start, self.count), min(start + self.per_owner,
                                                 self.count))


def run_app(machine, app: Application, protocol=None) -> float:
    """Set up and run an application; returns the execution time in cycles."""
    app.setup(machine, protocol)
    machine.run_workers(lambda node_id: app.worker(AppContext(machine, node_id)))
    return machine.execution_time
