"""Appbt: the NAS block-tridiagonal CFD benchmark.

Appbt solves systems of block-tridiagonal equations with 5x5 blocks by
sweeping lines of a 3-D grid in each dimension.  The memory behaviour
that matters: per-cell state is substantial (the paper's 5x5 blocks), the
x- and y-direction sweeps stay inside a processor's partition, and the
z-direction sweep carries a dependence across partitions, so each node
reads its neighbour's boundary plane — plane-sized surface sharing plus a
large private-ish working set.

This kernel partitions an ``n x n x n`` grid along z into slabs.  Each
iteration runs three Gauss-Seidel-style line sweeps (x, y, z); the z
sweep reads the boundary plane owned by the previous node.  Each cell is
one 32-byte block holding ``words_per_cell`` solution words (standing in
for the paper's 5x5 block of unknowns), all of which are read and
written by every sweep step — the dense per-cell state that gives Appbt
its large working set and high block reuse.
"""

from __future__ import annotations

from repro.apps.base import Application, AppContext
from repro.sim.rng import RngStreams

CELL_BYTES = 32
WORD_BYTES = 8


class AppbtApplication(Application):
    """3-D grid with per-dimension sweeps; z sweeps cross partitions."""

    name = "appbt"

    def __init__(self, grid: int = 8, iterations: int = 1, seed: int = 23,
                 words_per_cell: int = 4):
        if grid < 2:
            raise ValueError("grid must be at least 2")
        if not 1 <= words_per_cell <= CELL_BYTES // WORD_BYTES:
            raise ValueError("words_per_cell must fit in one block")
        self.grid = grid
        self.iterations = iterations
        self.seed = seed
        self.words_per_cell = words_per_cell
        self.slabs: list = []

    # ------------------------------------------------------------------
    def setup(self, machine, protocol=None) -> None:
        self._procs = machine.num_nodes
        self._planes_per_node = -(-self.grid // self._procs)
        plane_bytes = self.grid * self.grid * CELL_BYTES
        self.slabs = []
        for node in range(self._procs):
            planes = len(self._planes_owned(node))
            self.slabs.append(self.alloc_shared(
                machine, protocol, max(planes * plane_bytes, 1),
                f"appbt.slab[{node}]", home=node,
            ))
        rng = RngStreams(self.seed).stream("appbt.init")
        for z in range(self.grid):
            for y in range(self.grid):
                for x in range(self.grid):
                    for word in range(self.words_per_cell):
                        self.poke(machine, self.cell_addr(x, y, z, word),
                                  round(rng.uniform(0, 1), 6))

    def _planes_owned(self, node: int) -> range:
        start = node * self._planes_per_node
        return range(min(start, self.grid),
                     min(start + self._planes_per_node, self.grid))

    def cell_addr(self, x: int, y: int, z: int, word: int = 0) -> int:
        node = min(z // self._planes_per_node, self._procs - 1)
        local_z = z - node * self._planes_per_node
        base = self.slabs[node].base
        return (base
                + ((local_z * self.grid + y) * self.grid + x) * CELL_BYTES
                + word * WORD_BYTES)

    def _read_cell(self, ctx: AppContext, x: int, y: int, z: int):
        """Read every solution word of one cell (one 5x5-block stand-in)."""
        words = yield from ctx.read_run([
            self.cell_addr(x, y, z, word)
            for word in range(self.words_per_cell)
        ])
        return words

    def _update_cell(self, ctx: AppContext, x: int, y: int, z: int,
                     previous: list):
        """Line-solve step: new = 0.5 * (current + previous), per word."""
        updated = []
        for word in range(self.words_per_cell):
            current = yield from ctx.read(self.cell_addr(x, y, z, word))
            new = round(0.5 * (current + previous[word]), 9)
            yield from ctx.compute(flops=4, overhead=1)
            yield from ctx.write(self.cell_addr(x, y, z, word), new)
            updated.append(new)
        return updated

    # ------------------------------------------------------------------
    def worker(self, ctx: AppContext):
        planes = self._planes_owned(ctx.node_id)
        n = self.grid
        for _iteration in range(self.iterations):
            # x sweep: lines along x within owned planes (all local).
            for z in planes:
                for y in range(n):
                    previous = yield from self._read_cell(ctx, 0, y, z)
                    for x in range(1, n):
                        previous = yield from self._update_cell(
                            ctx, x, y, z, previous)
            yield from ctx.barrier()
            # y sweep: lines along y (still local to the slab).
            for z in planes:
                for x in range(n):
                    previous = yield from self._read_cell(ctx, x, 0, z)
                    for y in range(1, n):
                        previous = yield from self._update_cell(
                            ctx, x, y, z, previous)
            yield from ctx.barrier()
            # z sweep: the line crosses slabs; each node reads the last
            # plane of its predecessor's slab (remote boundary plane).
            if planes:
                first = planes[0]
                for y in range(n):
                    for x in range(n):
                        boundary = max(first - 1, 0)
                        previous = yield from self._read_cell(
                            ctx, x, y, boundary)
                        start = first if first > 0 else 1
                        for z in range(start, planes[-1] + 1):
                            previous = yield from self._update_cell(
                                ctx, x, y, z, previous)
            yield from ctx.barrier()
