"""Trace-driven execution: replay explicit reference streams.

Architecture simulators conventionally accept address traces; this module
provides that mode.  A trace is one operation list per node; operations
are tuples or text lines:

=========  ===========================  ===========================
tuple      text                          meaning
=========  ===========================  ===========================
("r", a)   ``<node> r <addr>``           read address ``a``
("w", a, v)  ``<node> w <addr> <value>``  write ``v`` to ``a``
("c", n)   ``<node> c <cycles>``          compute for ``n`` cycles
("b",)     ``<node> b``                   barrier
=========  ===========================  ===========================

Addresses in text traces may be decimal or ``0x``-hex and are used
verbatim — the caller allocates the shared region and writes addresses
inside it.  :func:`parse_trace` reads the text form;
:class:`TraceApplication` replays either form on any machine.
"""

from __future__ import annotations

from typing import Iterable

from repro.apps.base import Application, AppContext


class TraceError(ValueError):
    """Malformed trace input."""


def parse_trace(lines: Iterable[str]) -> dict[int, list[tuple]]:
    """Parse the text format into per-node operation lists.

    Blank lines and ``#`` comments are ignored.  Operations execute in
    file order per node; ordering across nodes is up to the simulator
    (use barriers to enforce it).
    """
    programs: dict[int, list[tuple]] = {}
    for line_number, raw in enumerate(lines, start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        fields = line.split()
        try:
            node = int(fields[0])
            op = fields[1]
            if op == "r":
                entry = ("r", int(fields[2], 0))
            elif op == "w":
                entry = ("w", int(fields[2], 0), _parse_value(fields[3]))
            elif op == "c":
                entry = ("c", int(fields[2]))
            elif op == "b":
                entry = ("b",)
            else:
                raise IndexError
        except (IndexError, ValueError) as error:
            raise TraceError(
                f"line {line_number}: cannot parse {raw.rstrip()!r}"
            ) from error
        programs.setdefault(node, []).append(entry)
    return programs


def _parse_value(text: str):
    try:
        return int(text, 0)
    except ValueError:
        try:
            return float(text)
        except ValueError:
            return text


class TraceApplication(Application):
    """Replays per-node operation lists through the memory system.

    ``region_bytes`` shared memory is allocated at setup and its base is
    reported via :attr:`base`; traces may use absolute addresses (set
    ``region_bytes=0`` and allocate yourself) or offsets via
    ``relative=True``.
    """

    name = "trace"

    def __init__(self, programs: dict[int, list[tuple]],
                 region_bytes: int = 4096, relative: bool = False):
        self.programs = programs
        self.region_bytes = region_bytes
        self.relative = relative
        self.base = 0
        self.reads: dict[int, list] = {}

    def setup(self, machine, protocol=None) -> None:
        if self.region_bytes:
            region = self.alloc_shared(machine, protocol, self.region_bytes,
                                       label="trace")
            self.base = region.base
        self.reads = {node: [] for node in range(machine.num_nodes)}
        for node in self.programs:
            if not 0 <= node < machine.num_nodes:
                raise TraceError(
                    f"trace references node {node}; machine has "
                    f"{machine.num_nodes}"
                )

    def _resolve(self, addr: int) -> int:
        return self.base + addr if self.relative else addr

    def worker(self, ctx: AppContext):
        for op in self.programs.get(ctx.node_id, []):
            kind = op[0]
            if kind == "r":
                value = yield from ctx.read(self._resolve(op[1]))
                self.reads[ctx.node_id].append(value)
            elif kind == "w":
                yield from ctx.write(self._resolve(op[1]), op[2])
            elif kind == "c":
                yield from ctx.compute(overhead=op[1])
            elif kind == "b":
                yield from ctx.barrier()
            else:
                raise TraceError(f"unknown trace op {op!r}")
