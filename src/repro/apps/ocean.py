"""Ocean: hydrodynamic simulation of a 2-D ocean basin cross-section.

The SPLASH Ocean code spends its time in nearest-neighbour stencil
relaxation over 2-D grids.  This kernel reproduces that memory behaviour:
a Jacobi-style five-point stencil over an ``n x n`` grid of doubles,
partitioned into horizontal strips (each node owns a band of rows); each
sweep reads the strip plus the two boundary rows owned by the neighbouring
nodes — the classic surface-to-volume sharing pattern — with a barrier
between sweeps.

Two grids alternate as source and destination, as Jacobi requires, which
also reproduces Ocean's multi-grid working-set pressure: the resident set
is two full strips, exactly the kind of footprint that blows out a small
hardware cache but sits comfortably in Stache's DRAM cache.

Grid cells are 8-byte doubles, four per 32-byte block, row-major.
"""

from __future__ import annotations

from repro.apps.base import Application, AppContext
from repro.sim.rng import RngStreams

CELL_BYTES = 8


class OceanApplication(Application):
    """Five-point Jacobi relaxation over striped 2-D grids."""

    name = "ocean"

    def __init__(self, grid: int = 18, iterations: int = 2, seed: int = 13):
        if grid < 3:
            raise ValueError("grid must be at least 3x3")
        self.grid = grid
        self.iterations = iterations
        self.seed = seed
        self.grids: list = [None, None]  # two alternating grids

    # ------------------------------------------------------------------
    def setup(self, machine, protocol=None) -> None:
        self._procs = machine.num_nodes
        self._rows_per_node = -(-self.grid // self._procs)
        row_bytes = self.grid * CELL_BYTES
        # Each grid is allocated strip-by-strip so a strip's pages are
        # homed on its owner (owners-compute placement).
        self.grids = []
        for which in range(2):
            regions = []
            for node in range(self._procs):
                rows = self._rows_owned(node)
                size = max(len(rows) * row_bytes, 1)
                regions.append(self.alloc_shared(
                    machine, protocol, size, f"ocean.g{which}[{node}]",
                    home=node,
                ))
            self.grids.append(regions)
        rng = RngStreams(self.seed).stream("ocean.init")
        for row in range(self.grid):
            for col in range(self.grid):
                value = round(rng.uniform(0, 1), 6)
                self.poke(machine, self.cell_addr(0, row, col), value)
                self.poke(machine, self.cell_addr(1, row, col), value)

    def _rows_owned(self, node: int) -> range:
        start = node * self._rows_per_node
        return range(min(start, self.grid),
                     min(start + self._rows_per_node, self.grid))

    def cell_addr(self, which: int, row: int, col: int) -> int:
        node = min(row // self._rows_per_node, self._procs - 1)
        local_row = row - node * self._rows_per_node
        region = self.grids[which][node]
        return region.base + (local_row * self.grid + col) * CELL_BYTES

    # ------------------------------------------------------------------
    def worker(self, ctx: AppContext):
        rows = self._rows_owned(ctx.node_id)
        source = 0
        for _iteration in range(self.iterations):
            dest = 1 - source
            for row in rows:
                if row in (0, self.grid - 1):
                    continue  # fixed boundary
                for col in range(1, self.grid - 1):
                    # The five stencil loads are one batched run (same
                    # access order as the scalar reads they replace).
                    centre, north, south, west, east = yield from (
                        ctx.read_run([
                            self.cell_addr(source, row, col),
                            self.cell_addr(source, row - 1, col),
                            self.cell_addr(source, row + 1, col),
                            self.cell_addr(source, row, col - 1),
                            self.cell_addr(source, row, col + 1),
                        ]))
                    new = round(
                        0.2 * (centre + north + south + west + east), 9)
                    yield from ctx.compute(flops=5, overhead=3)
                    yield from ctx.write(self.cell_addr(dest, row, col), new)
            yield from ctx.barrier()
            source = dest

    # ------------------------------------------------------------------
    def reference_values(self) -> list[list[float]]:
        """Pure-Python Jacobi; returns the grid holding the final values."""
        rng = RngStreams(self.seed).stream("ocean.init")
        grid = [
            [round(rng.uniform(0, 1), 6) for _col in range(self.grid)]
            for _row in range(self.grid)
        ]
        current = [row[:] for row in grid]
        other = [row[:] for row in grid]
        for _ in range(self.iterations):
            for row in range(1, self.grid - 1):
                for col in range(1, self.grid - 1):
                    other[row][col] = round(
                        0.2 * (current[row][col] + current[row - 1][col]
                               + current[row + 1][col] + current[row][col - 1]
                               + current[row][col + 1]), 9)
            # Boundary rows carry over unchanged.
            for col in range(self.grid):
                other[0][col] = current[0][col]
                other[self.grid - 1][col] = current[self.grid - 1][col]
            for row in range(1, self.grid - 1):
                other[row][0] = current[row][0]
                other[row][self.grid - 1] = current[row][self.grid - 1]
            current, other = other, current
        return current

    def final_grid_index(self) -> int:
        """Which of the two grids holds the final values."""
        return self.iterations % 2
