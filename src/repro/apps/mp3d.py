"""MP3D: rarefied fluid-flow simulation (wind tunnel).

The SPLASH MP3D code moves molecules through a 3-D space array each time
step; every molecule updates the properties of the space cell it lands
in.  Because molecules owned by different processors constantly land in
the same cells, the space array exhibits *migratory* write sharing with
heavy invalidation traffic — which is why MP3D is the classic
coherence-stress benchmark.

This kernel reproduces that pattern: molecules are striped across nodes
(owner-computes); the space array is a shared 3-D grid of cells, pages
round-robin across homes.  Each step, every molecule moves
deterministically-pseudo-randomly, reads and writes its destination
cell's population and momentum words, and updates its own record.
"""

from __future__ import annotations

from repro.apps.base import Application, AppContext, SharedArray
from repro.sim.rng import RngStreams

#: Molecule record: position/velocity words in one 32-byte block.
MOL_BYTES = 32
MOL_POS = 0
MOL_VEL = 8

#: Space cell record: population + momentum in one 32-byte block.
CELL_BYTES = 32
CELL_COUNT = 0
CELL_MOMENTUM = 8


class Mp3dApplication(Application):
    """Particles through shared space cells: migratory write sharing."""

    name = "mp3d"

    def __init__(self, molecules: int = 128, space_cells: int = 64,
                 iterations: int = 2, seed: int = 17):
        self.molecules = molecules
        self.space_cells = space_cells
        self.iterations = iterations
        self.seed = seed
        self.mols: SharedArray | None = None
        self.space: SharedArray | None = None

    # ------------------------------------------------------------------
    def setup(self, machine, protocol=None) -> None:
        self.mols = SharedArray(machine, protocol, self.molecules, MOL_BYTES,
                                label="mp3d.mols")
        self.space = SharedArray(machine, protocol, self.space_cells,
                                 CELL_BYTES, label="mp3d.space",
                                 striped=False)
        rng = RngStreams(self.seed).stream("mp3d.init")
        for index in range(self.molecules):
            self.poke(machine, self.mols.addr(index, MOL_POS),
                      rng.randrange(self.space_cells))
            self.poke(machine, self.mols.addr(index, MOL_VEL),
                      rng.randrange(1, 7))
        for cell in range(self.space_cells):
            self.poke(machine, self.space.addr(cell, CELL_COUNT), 0)
            self.poke(machine, self.space.addr(cell, CELL_MOMENTUM), 0)

    # ------------------------------------------------------------------
    def worker(self, ctx: AppContext):
        for _step in range(self.iterations):
            for index in self.mols.owned_range(ctx.node_id):
                position, velocity = yield from ctx.read_run([
                    self.mols.addr(index, MOL_POS),
                    self.mols.addr(index, MOL_VEL),
                ])
                new_position = (position + velocity) % self.space_cells
                yield from ctx.compute(flops=3, overhead=2)
                yield from ctx.write(self.mols.addr(index, MOL_POS),
                                     new_position)
                # Land in the destination cell: read-modify-write both
                # fields (the migratory pattern).
                cell_count = yield from ctx.read(
                    self.space.addr(new_position, CELL_COUNT))
                yield from ctx.write(
                    self.space.addr(new_position, CELL_COUNT), cell_count + 1)
                momentum = yield from ctx.read(
                    self.space.addr(new_position, CELL_MOMENTUM))
                yield from ctx.write(
                    self.space.addr(new_position, CELL_MOMENTUM),
                    momentum + velocity)
            yield from ctx.barrier()

    # ------------------------------------------------------------------
    def reference_totals(self) -> tuple[int, int]:
        """Upper bounds on the global (population, momentum) sums.

        Each molecule contributes 1 to a cell count and ``velocity`` to a
        cell momentum per step.  Like the real MP3D, cell updates are
        unlocked read-modify-writes, so concurrent updates to one cell can
        lose increments — the totals are therefore an upper bound (exact
        when run on one node, or when no two molecules collide in a cell
        in the same step).
        """
        rng = RngStreams(self.seed).stream("mp3d.init")
        total_velocity = 0
        for _ in range(self.molecules):
            rng.randrange(self.space_cells)
            total_velocity += rng.randrange(1, 7)
        return (
            self.molecules * self.iterations,
            total_velocity * self.iterations,
        )
