"""Barnes-Hut N-body simulation.

SPLASH Barnes builds an octree over the bodies each step and computes
forces by walking it; the memory system sees a read-mostly shared tree
plus body records written by their owners.  This kernel reproduces the
pattern with a real (2-D, quadtree) Barnes-Hut force computation:

* bodies are striped across nodes (owners-compute);
* each step the tree is rebuilt from current positions — the build is
  replicated computation over shared body reads (position reads of every
  body, the all-to-all read sharing Barnes exhibits), with the resulting
  cells stored in a shared cell array touched through the memory system;
* each node then walks the tree for its own bodies with the standard
  theta opening criterion, reading cell centre-of-mass records
  (read-mostly sharing) and writing its bodies' velocity/position.

The physics is a genuine O(N log N) Barnes-Hut evaluation, so positions
evolve and the sharing pattern drifts over steps, as in the original.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps.base import Application, AppContext, SharedArray
from repro.sim.rng import RngStreams

#: Body record: x, y, vx, vy fields in one 32-byte block.
BODY_BYTES = 32
BODY_X = 0
BODY_Y = 8
BODY_VX = 16
BODY_VY = 24

#: Cell record: centre-of-mass x, y, mass in one 32-byte block.
CELL_BYTES = 32
CELL_COMX = 0
CELL_COMY = 8
CELL_MASS = 16

THETA = 0.7
SOFTENING = 0.05
DT = 0.05


@dataclass
class _TreeNode:
    """Quadtree node (replicated metadata; COM data lives in shared memory)."""

    cx: float
    cy: float
    half: float
    cell_index: int
    body: int | None = None
    children: list = field(default_factory=list)
    count: int = 0
    com_x: float = 0.0
    com_y: float = 0.0
    mass: float = 0.0


class BarnesApplication(Application):
    """Barnes-Hut with a shared quadtree cell array."""

    name = "barnes"

    def __init__(self, bodies: int = 64, iterations: int = 2, seed: int = 19):
        self.bodies = bodies
        self.iterations = iterations
        self.seed = seed
        self.body_array: SharedArray | None = None
        self.cell_array: SharedArray | None = None
        self.max_cells = 4 * bodies + 16

    # ------------------------------------------------------------------
    def setup(self, machine, protocol=None) -> None:
        self.body_array = SharedArray(machine, protocol, self.bodies,
                                      BODY_BYTES, label="barnes.bodies")
        self.cell_array = SharedArray(machine, protocol, self.max_cells,
                                      CELL_BYTES, label="barnes.cells",
                                      striped=False)
        rng = RngStreams(self.seed).stream("barnes.init")
        for index in range(self.bodies):
            self.poke(machine, self.body_array.addr(index, BODY_X),
                      round(rng.uniform(-1, 1), 6))
            self.poke(machine, self.body_array.addr(index, BODY_Y),
                      round(rng.uniform(-1, 1), 6))
            self.poke(machine, self.body_array.addr(index, BODY_VX), 0.0)
            self.poke(machine, self.body_array.addr(index, BODY_VY), 0.0)

    # ------------------------------------------------------------------
    # Tree construction (pure computation over already-read positions)
    # ------------------------------------------------------------------
    def _build_tree(self, positions: list[tuple[float, float]]) -> _TreeNode:
        next_cell = [0]

        def new_node(cx, cy, half) -> _TreeNode:
            index = next_cell[0] % self.max_cells
            next_cell[0] += 1
            return _TreeNode(cx, cy, half, cell_index=index)

        span = max(
            max(abs(x) for x, _ in positions),
            max(abs(y) for _, y in positions),
        ) + 0.1
        root = new_node(0.0, 0.0, span)

        def insert(node: _TreeNode, body: int) -> None:
            x, y = positions[body]
            if node.count == 0 and not node.children:
                node.body = body
            elif not node.children:
                resident = node.body
                node.body = None
                node.children = [None, None, None, None]
                _place(node, resident)
                _place(node, body)
            else:
                _place(node, body)
            node.count += 1

        def _place(node: _TreeNode, body: int) -> None:
            x, y = positions[body]
            quadrant = (1 if x >= node.cx else 0) + (2 if y >= node.cy else 0)
            child = node.children[quadrant]
            if child is None:
                half = node.half / 2
                child = new_node(
                    node.cx + (half if x >= node.cx else -half),
                    node.cy + (half if y >= node.cy else -half),
                    half,
                )
                node.children[quadrant] = child
            insert(child, body)

        for body in range(len(positions)):
            insert(root, body)

        def summarize(node: _TreeNode) -> tuple[float, float, float]:
            if node.body is not None:
                x, y = positions[node.body]
                node.com_x, node.com_y, node.mass = x, y, 1.0
            else:
                total = wx = wy = 0.0
                for child in node.children:
                    if child is None:
                        continue
                    cx, cy, mass = summarize(child)
                    total += mass
                    wx += cx * mass
                    wy += cy * mass
                node.mass = total
                node.com_x = wx / total if total else 0.0
                node.com_y = wy / total if total else 0.0
            return node.com_x, node.com_y, node.mass

        summarize(root)
        return root

    def _force_on(self, node: _TreeNode, x: float, y: float,
                  body: int, visited: list[int]) -> tuple[float, float]:
        """Walk the tree; records which cells were touched in ``visited``."""
        if node.count == 0 and node.body is None:
            return 0.0, 0.0
        dx = node.com_x - x
        dy = node.com_y - y
        dist_sq = dx * dx + dy * dy + SOFTENING
        if node.body is not None:
            if node.body == body:
                return 0.0, 0.0
            visited.append(node.cell_index)
            strength = node.mass / (dist_sq ** 1.5)
            return dx * strength, dy * strength
        width = node.half * 2
        if width * width < THETA * THETA * dist_sq:
            visited.append(node.cell_index)
            strength = node.mass / (dist_sq ** 1.5)
            return dx * strength, dy * strength
        fx = fy = 0.0
        for child in node.children:
            if child is not None:
                cfx, cfy = self._force_on(child, x, y, body, visited)
                fx += cfx
                fy += cfy
        return fx, fy

    # ------------------------------------------------------------------
    def worker(self, ctx: AppContext):
        my_bodies = list(self.body_array.owned_range(ctx.node_id))
        for _step in range(self.iterations):
            # Phase 1: read every body's position (the replicated tree
            # build: all-to-all read sharing of body records).
            coords = yield from ctx.read_run([
                self.body_array.addr(body, offset)
                for body in range(self.bodies)
                for offset in (BODY_X, BODY_Y)
            ])
            positions = list(zip(coords[0::2], coords[1::2]))
            root = self._build_tree(positions)
            # Tree build cost: ~N log N insertion work.
            yield from ctx.compute(
                overhead=4 * self.bodies * max(1, self.bodies.bit_length())
            )
            # The owner of each cell writes its COM record.
            cells = self._collect_cells(root)
            for node in cells:
                if self.cell_array.owner_of(node.cell_index) == ctx.node_id:
                    yield from ctx.write_run([
                        (self.cell_array.addr(node.cell_index, CELL_COMX),
                         round(node.com_x, 9)),
                        (self.cell_array.addr(node.cell_index, CELL_COMY),
                         round(node.com_y, 9)),
                        (self.cell_array.addr(node.cell_index, CELL_MASS),
                         round(node.mass, 9)),
                    ])
            yield from ctx.barrier()

            # Phase 2: force computation for owned bodies; the tree walk
            # reads the shared COM records it visits.
            for body in my_bodies:
                x, y = positions[body]
                visited: list[int] = []
                fx, fy = self._force_on(root, x, y, body, visited)
                yield from ctx.read_run([
                    self.cell_array.addr(cell_index, CELL_MASS)
                    for cell_index in visited
                ])
                yield from ctx.compute(flops=12 * max(1, len(visited)))
                vx, vy = yield from ctx.read_run([
                    self.body_array.addr(body, BODY_VX),
                    self.body_array.addr(body, BODY_VY),
                ])
                vx = round(vx + fx * DT, 9)
                vy = round(vy + fy * DT, 9)
                yield from ctx.write_run([
                    (self.body_array.addr(body, BODY_VX), vx),
                    (self.body_array.addr(body, BODY_VY), vy),
                    (self.body_array.addr(body, BODY_X), round(x + vx * DT, 9)),
                    (self.body_array.addr(body, BODY_Y), round(y + vy * DT, 9)),
                ])
            yield from ctx.barrier()

    def _collect_cells(self, root: _TreeNode) -> list[_TreeNode]:
        result = []
        stack = [root]
        while stack:
            node = stack.pop()
            result.append(node)
            for child in node.children:
                if child is not None:
                    stack.append(child)
        return result
