"""Synthetic sharing-pattern microbenchmarks.

Three canonical patterns used by the ablation benches (and handy for
protocol debugging), each isolating one behaviour the real applications
mix together:

* :class:`ReadMostlyApplication` — one writer, many repeat readers; the
  best case for caching protocols.
* :class:`MigratoryApplication` — a set of records each read-modified-
  written by every node in turn; the invalidation-heavy pattern that
  dominates MP3D.
* :class:`ProducerConsumerApplication` — node *i* writes a buffer that
  node *i+1* reads next phase; the pattern delayed-update protocols
  exploit.
* :class:`ReferenceSweepApplication` — dense owned-range sweeps at
  near-100% hit rate; the reference-intensity microbenchmark for the
  vectorised access lanes.
"""

from __future__ import annotations

from repro.apps.base import Application, AppContext, SharedArray

RECORD_BYTES = 32


class ReadMostlyApplication(Application):
    """Node 0 writes once per phase; everyone reads many times."""

    name = "synthetic.read_mostly"

    def __init__(self, records: int = 8, reads_per_phase: int = 4,
                 phases: int = 3):
        self.records = records
        self.reads_per_phase = reads_per_phase
        self.phases = phases
        self.array: SharedArray | None = None

    def setup(self, machine, protocol=None) -> None:
        self.array = SharedArray(machine, protocol, self.records,
                                 RECORD_BYTES, label="readmostly",
                                 striped=False)
        for index in range(self.records):
            self.poke(machine, self.array.addr(index), 0)

    def worker(self, ctx: AppContext):
        for phase in range(self.phases):
            if ctx.node_id == 0:
                for index in range(self.records):
                    yield from ctx.write(self.array.addr(index), phase + 1)
            yield from ctx.barrier()
            for _repeat in range(self.reads_per_phase):
                for index in range(self.records):
                    value = yield from ctx.read(self.array.addr(index))
                    assert value == phase + 1, (
                        f"node {ctx.node_id} read {value} in phase {phase}"
                    )
            yield from ctx.barrier()


class MigratoryApplication(Application):
    """Each record is read-modify-written by every node in turn."""

    name = "synthetic.migratory"

    def __init__(self, records: int = 4, rounds: int = 2):
        self.records = records
        self.rounds = rounds
        self.array: SharedArray | None = None

    def setup(self, machine, protocol=None) -> None:
        self.array = SharedArray(machine, protocol, self.records,
                                 RECORD_BYTES, label="migratory",
                                 striped=False)
        for index in range(self.records):
            self.poke(machine, self.array.addr(index), 0)

    def worker(self, ctx: AppContext):
        for _round in range(self.rounds):
            for turn in range(ctx.num_nodes):
                if turn == ctx.node_id:
                    for index in range(self.records):
                        value = yield from ctx.read(self.array.addr(index))
                        yield from ctx.write(self.array.addr(index), value + 1)
                yield from ctx.barrier()

    def expected_total(self, num_nodes: int) -> int:
        return self.rounds * num_nodes


class ReferenceSweepApplication(Application):
    """Dense owned-range sweeps: the reference-intensity microbenchmark.

    Each node repeatedly sweeps every word of its owned records — after
    the first (cold) pass the sweep is ~100% TLB+cache hits, exactly the
    reference class the batched lanes vectorise.  Nodes take strict
    turns (everyone else waits at the barrier), so the sweeping node
    runs alone in its time window and the lane's event-queue check
    admits whole-sweep prefixes; the measurement isolates per-reference
    engine cost rather than protocol traffic or lock-step rejection.
    """

    name = "synthetic.sweep"

    def __init__(self, records: int = 256, sweeps: int = 8):
        self.records = records
        self.sweeps = sweeps
        self.array: SharedArray | None = None

    def setup(self, machine, protocol=None) -> None:
        self.array = SharedArray(machine, protocol, self.records,
                                 RECORD_BYTES, label="sweep")
        for index in range(self.records):
            for offset in range(0, RECORD_BYTES, 8):
                self.poke(machine, self.array.addr(index, offset), 0)

    def worker(self, ctx: AppContext):
        mine = [
            self.array.addr(index, offset)
            for index in self.array.owned_range(ctx.node_id)
            for offset in range(0, RECORD_BYTES, 8)
        ]
        for sweep in range(self.sweeps):
            for turn in range(ctx.num_nodes):
                if turn == ctx.node_id:
                    values = yield from ctx.read_run(mine)
                    assert all(value == sweep for value in values), (
                        f"node {ctx.node_id} saw stale values in "
                        f"sweep {sweep}"
                    )
                    yield from ctx.write_run(
                        [(addr, sweep + 1) for addr in mine]
                    )
                yield from ctx.barrier()


class ProducerConsumerApplication(Application):
    """Node i produces a buffer consumed by node (i+1) mod N next phase."""

    name = "synthetic.producer_consumer"

    def __init__(self, buffer_records: int = 8, phases: int = 3):
        self.buffer_records = buffer_records
        self.phases = phases
        self.array: SharedArray | None = None

    def setup(self, machine, protocol=None) -> None:
        total = self.buffer_records * machine.num_nodes
        self.array = SharedArray(machine, protocol, total, RECORD_BYTES,
                                 label="prodcons")
        for index in range(total):
            self.poke(machine, self.array.addr(index), 0)

    def worker(self, ctx: AppContext):
        mine = list(self.array.owned_range(ctx.node_id))
        upstream_node = (ctx.node_id - 1) % ctx.num_nodes
        upstream = list(self.array.owned_range(upstream_node))
        for phase in range(self.phases):
            for index in mine:
                yield from ctx.write(self.array.addr(index),
                                     (ctx.node_id, phase))
            yield from ctx.barrier()
            for index in upstream:
                value = yield from ctx.read(self.array.addr(index))
                assert value == (upstream_node, phase)
            yield from ctx.barrier()
