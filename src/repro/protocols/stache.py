"""Stache: user-level transparent shared memory (paper Section 3).

Stache manages part of each node's local memory as a large,
fully-associative cache for remote data — page-grain allocation,
block-grain coherence — entirely in user-level software on the Tempest
interface.  The library consists of exactly what the paper lists: a page
fault handler, message handlers, block-access-fault handlers, and
shared-memory allocation support.

Protocol walk-through (mirrors the paper's narrative):

* A first access to a remote shared page takes a **page fault**; the
  handler allocates a stache page at that virtual address with all blocks
  tagged Invalid and restarts the access.
* The restarted access takes a **block access fault**; the fault handler
  tags the block Busy, sends a request to the home (found through the
  distributed mapping table, cached in the page entry), and terminates.
* At the home, the request handler performs the directory actions —
  downgrading or invalidating copies as needed; if invalidations are
  required, the handler for the final acknowledgment sends the data.
* The response handler at the requester force-writes the data, upgrades
  the tag, and resumes the suspended thread.
* Home-node faults "bypass sending requests and directly access directory
  data": the same directory routine runs with the home as requester.
* When no stache page can be allocated, the page fault handler replaces
  the FIFO-oldest stache page: modified blocks are sent back to their
  home, read-only copies are dropped silently (the home's sharer list may
  go stale; invalidations to departed sharers are simply acknowledged).

The software directory is the LimitLESS-like 64-bit-per-block entry of
:class:`repro.protocols.directory.SoftwareDirectoryEntry`.

Races resolve through two properties the substrate guarantees: handlers
are atomic per node, and channels are FIFO.  Replacement writebacks travel
on the response network, so a home that forwards a writeback request to a
just-replaced owner always receives the replacement data *before* the
owner's stale (data-less) writeback reply.
"""

from __future__ import annotations

from repro.memory.allocator import SharedRegion
from repro.memory.tags import AccessFault, Tag
from repro.network.message import (
    DATA_WORDS,
    REQUEST_WORDS,
    Message,
    VirtualNetwork,
)
from repro.protocols.directory import DirectoryState, SoftwareDirectoryEntry
from repro.sim.engine import SimulationError
from repro.tempest.interface import Tempest
from repro.tempest.messaging import DeliveryGuard
from repro.tempest.port import TempestPort

#: Page modes (the four-bit RTLB page-mode field; Section 5.4).
PAGE_MODE_HOME = 1
PAGE_MODE_STACHE = 2


class StacheProtocol:
    """The Stache runtime library, installable on any TempestPort."""

    name = "stache"

    #: Handler names (the "PCs" carried in messages).
    GET_RO = "stache.get_ro"
    GET_RW = "stache.get_rw"
    DATA = "stache.data"
    INVAL = "stache.inval"
    ACK = "stache.ack"
    WRITEBACK = "stache.writeback"
    WB_DATA = "stache.wb_data"
    REPL_DIRTY = "stache.repl_dirty"
    FAULT_READ = "stache.fault_read"
    FAULT_WRITE = "stache.fault_write"
    HOME_FAULT_READ = "stache.home_fault_read"
    HOME_FAULT_WRITE = "stache.home_fault_write"

    PREFETCH = "stache.prefetch"
    CHECKIN = "stache.checkin"
    MIGRATE_DATA = "stache.migrate_data"

    def __init__(self) -> None:
        self.machine: TempestPort | None = None
        # Per-node block the computation thread is currently faulted on
        # (None when running).  Lets the data-arrival handler tell a
        # demand fetch from a prefetch completion.
        self._pending_fault: dict[int, int | None] = {}
        # Pages whose home has moved: old home page addr -> new home node.
        self._migrated_pages: dict[int, int] = {}
        # Grant/invalidation race bookkeeping.  Every fetch carries a
        # per-(node, block) sequence number that the home echoes in the
        # data grant and in recalls of the ownership that grant created.
        # Grants travel the response network while invals/recalls travel
        # the request network, so an inval or recall can overtake the
        # grant it chases (queueing skew, drops and retransmits).  When
        # that happens the requester poisons exactly the overtaken
        # sequence: the late grant is discarded on arrival and the fetch
        # reissued under a new number.  Keying the poison by sequence —
        # not by block — is what makes this livelock-free: a recall for
        # a stale era (grant_seq older than the outstanding fetch) is
        # answered held=False without poisoning the replacement fetch.
        self._fetch_seq: dict[tuple[int, int], int] = {}
        self._poisoned_seq: dict[tuple[int, int], int] = {}
        # Home side: latest fetch sequence per (home, block, requester).
        # At most one un-granted fetch per key exists at a time, so this
        # is exactly the sequence a deferred grant must echo.  (Explicit
        # page migration does not carry it to the new home: post-
        # migration recalls simply lose the poisoning optimization.)
        self._req_seq: dict[tuple[int, int, int], int] = {}

    # ------------------------------------------------------------------
    # Installation (what re-linking with the Stache library does)
    # ------------------------------------------------------------------
    def install(self, machine: TempestPort) -> None:
        self.machine = machine
        costs = machine.costs
        stats = machine.stats
        for node in machine.nodes:
            tempest = node.tempest
            # Redelivery protection (see repro.network.faults): each
            # node's handlers run behind a guard keyed on transport
            # transaction ids, so duplicated or retransmitted messages
            # dispatch at most once.  On a reliable network xid is None
            # and the guard is a single attribute check.
            guard = DeliveryGuard(
                stats, f"node{node.node_id}.np.duplicates_dropped"
            )

            def register(name, fn, instructions,
                         _tempest=tempest, _guard=guard):
                _tempest.register_handler(name, _guard.wrap(fn), instructions)

            # Request handlers (home side).
            register(
                self.GET_RO, self._h_get_ro, costs.home_response
            )
            register(
                self.GET_RW, self._h_get_rw, costs.home_response
            )
            # Response handlers.
            register(
                self.DATA, self._h_data, costs.data_arrival
            )
            register(
                self.ACK, self._h_ack, costs.ack
            )
            register(
                self.WB_DATA, self._h_wb_data, costs.ack
            )
            # Copy-holder side handlers.
            register(
                self.INVAL, self._h_inval, costs.invalidate
            )
            register(
                self.WRITEBACK, self._h_writeback,
                costs.writeback,
            )
            register(
                self.REPL_DIRTY, self._h_repl_dirty,
                costs.writeback,
            )
            # Block-access-fault handlers, selected by (page mode, access).
            register(
                self.FAULT_READ, self._f_remote_read,
                costs.miss_request,
            )
            register(
                self.FAULT_WRITE, self._f_remote_write,
                costs.miss_request,
            )
            register(
                self.HOME_FAULT_READ, self._f_home_read,
                costs.home_response,
            )
            register(
                self.HOME_FAULT_WRITE, self._f_home_write,
                costs.home_response,
            )
            # Extensions: prefetch launch, check-in, page migration.
            register(
                self.PREFETCH, self._h_prefetch,
                costs.miss_request,
            )
            register(
                self.CHECKIN, self._h_checkin,
                costs.writeback,
            )
            register(
                "stache.migrate_begin", self._h_migrate_begin,
                costs.page_fault,
            )
            register(
                "stache.migrate_ready", self._h_migrate_ready,
                costs.miss_request,
            )
            node.np.set_fault_handler(PAGE_MODE_STACHE, False, self.FAULT_READ)
            node.np.set_fault_handler(PAGE_MODE_STACHE, True, self.FAULT_WRITE)
            node.np.set_fault_handler(PAGE_MODE_HOME, False, self.HOME_FAULT_READ)
            node.np.set_fault_handler(PAGE_MODE_HOME, True, self.HOME_FAULT_WRITE)
            node.set_page_fault_handler(self._page_fault)
            self._pending_fault[node.node_id] = None
        self._migrations = {}

    def setup_region(self, region: SharedRegion) -> None:
        """Create the home pages for a fresh shared allocation.

        The home node processor allocates per-block directory structures,
        maps the page, and tags every block ReadWrite (Section 3).  This
        is initialization, not timed execution.
        """
        machine = self._machine()
        for page_addr in range(region.base, region.end, machine.layout.page_size):
            home = machine.heap.home_of(page_addr)
            machine.nodes[home].tempest.map_page(
                page_addr,
                mode=PAGE_MODE_HOME,
                home=home,
                initial_tag=Tag.READ_WRITE,
                user_word={},  # block addr -> SoftwareDirectoryEntry
            )

    def _machine(self) -> TempestPort:
        if self.machine is None:
            raise SimulationError("protocol not installed")
        return self.machine

    # ------------------------------------------------------------------
    # Directory access
    # ------------------------------------------------------------------
    def _dir_entry(self, tempest: Tempest, block: int) -> SoftwareDirectoryEntry:
        page = tempest.page_entry(block)
        if page is None or page.mode != PAGE_MODE_HOME:
            raise SimulationError(
                f"directory lookup for {block:#x} on non-home node "
                f"{tempest.node_id}"
            )
        directory = page.user_word
        entry = directory.get(block)
        if entry is None:
            entry = directory[block] = SoftwareDirectoryEntry(tempest.num_nodes)
            monitor = self._machine().conformance
            if monitor is not None:
                monitor.watch_entry(tempest.node_id, block, entry)
        return entry

    # ------------------------------------------------------------------
    # Block access fault handlers (requester side)
    # ------------------------------------------------------------------
    def _f_remote_read(self, tempest: Tempest, fault: AccessFault) -> None:
        self._request_block(tempest, fault.block_addr, want_write=False)

    def _f_remote_write(self, tempest: Tempest, fault: AccessFault) -> None:
        self._request_block(tempest, fault.block_addr, want_write=True)

    def _request_block(self, tempest: Tempest, block: int,
                       want_write: bool) -> None:
        """Send the miss request to the home (14-instruction best case)."""
        entry = tempest.page_entry(block)
        if tempest.read_tag(block) is Tag.BUSY:
            # A prefetch for this block is already in flight: don't send a
            # duplicate request, just note that the thread now waits on it
            # (the Busy tag exists exactly to mark this case, Section 5.4).
            self._pending_fault[tempest.node_id] = block
            tempest.stats.incr("stache.prefetch_hits_in_flight")
            return
        tempest.set_busy(block)
        self._pending_fault[tempest.node_id] = block
        tempest.stats.incr(
            "stache.rw_requests" if want_write else "stache.ro_requests"
        )
        seq = self._next_fetch_seq(tempest.node_id, block)
        tempest.send(
            entry.home,
            self.GET_RW if want_write else self.GET_RO,
            vnet=VirtualNetwork.REQUEST,
            size_words=REQUEST_WORDS,
            addr=block,
            requester=tempest.node_id,
            fetch_seq=seq,
        )

    def _next_fetch_seq(self, node_id: int, block: int) -> int:
        seq = self._fetch_seq.get((node_id, block), 0) + 1
        self._fetch_seq[(node_id, block)] = seq
        return seq

    def _f_home_read(self, tempest: Tempest, fault: AccessFault) -> None:
        """Home faults bypass requests and touch the directory directly."""
        self._handle_request(tempest, fault.block_addr, tempest.node_id, False)

    def _f_home_write(self, tempest: Tempest, fault: AccessFault) -> None:
        self._handle_request(tempest, fault.block_addr, tempest.node_id, True)

    # ------------------------------------------------------------------
    # Home-side request handlers
    # ------------------------------------------------------------------
    def _h_get_ro(self, tempest: Tempest, message: Message) -> None:
        self._handle_request(
            tempest, message.payload["addr"], message.payload["requester"],
            False, fetch_seq=message.payload.get("fetch_seq"),
        )

    def _h_get_rw(self, tempest: Tempest, message: Message) -> None:
        self._handle_request(
            tempest, message.payload["addr"], message.payload["requester"],
            True, fetch_seq=message.payload.get("fetch_seq"),
        )

    def _handle_request(self, tempest: Tempest, block: int, requester: int,
                        want_write: bool, fetch_seq: int | None = None) -> None:
        """The directory state machine, run atomically at the home."""
        page_addr = self._machine().layout.page_of(block)
        forward = self._migrated_pages.get(page_addr)
        if forward is not None and forward != tempest.node_id:
            # This page's home moved; bounce the request to the new home
            # (the reply will refresh the requester's cached home id).
            tempest.stats.incr("stache.requests_forwarded")
            tempest.send(
                forward,
                self.GET_RW if want_write else self.GET_RO,
                vnet=VirtualNetwork.REQUEST,
                size_words=REQUEST_WORDS,
                addr=block,
                requester=requester,
                fetch_seq=fetch_seq,
            )
            return
        if requester != tempest.node_id and fetch_seq is not None:
            # At most one un-granted fetch per (block, requester) exists,
            # so the latest sequence is the one any grant must echo.
            self._req_seq[(tempest.node_id, block, requester)] = fetch_seq
        entry = self._dir_entry(tempest, block)
        if entry.state.is_transient:
            entry.pending.append((requester, want_write))
            return
        self._start_request(tempest, block, entry, requester, want_write)

    def _start_request(self, tempest: Tempest, block: int,
                       entry: SoftwareDirectoryEntry, requester: int,
                       want_write: bool) -> None:
        costs = self._machine().costs
        if not want_write:
            if entry.state is DirectoryState.EXCLUSIVE:
                # Demote the owner to ReadOnly and wait for its data.
                entry.pending.appendleft((requester, want_write))
                entry.state = DirectoryState.PENDING_WRITEBACK
                self._send_writeback_request(tempest, block, entry.owner, "ro")
                return
            # HOME or SHARED: the home can respond immediately.
            if entry.state is DirectoryState.HOME and requester != tempest.node_id:
                tempest.set_ro(block)  # home loses ownership of its copy
            if requester != tempest.node_id:
                entry.add_sharer(requester)
                entry.state = DirectoryState.SHARED
            self._grant(tempest, block, entry, requester, rw=False)
            return

        # Write request.
        if entry.state is DirectoryState.EXCLUSIVE:
            if entry.owner == requester:
                # Stale retry: the owner already has it; grant again.
                self._grant(tempest, block, entry, requester, rw=True)
                return
            entry.pending.appendleft((requester, want_write))
            entry.state = DirectoryState.PENDING_WRITEBACK
            self._send_writeback_request(tempest, block, entry.owner, "inv")
            return
        targets = entry.sharers() - {requester}
        if entry.state is DirectoryState.SHARED and targets:
            entry.pending.appendleft((requester, want_write))
            entry.state = DirectoryState.PENDING_INVALIDATE
            entry.acks_outstanding = len(targets)
            if requester != tempest.node_id:
                tempest.invalidate(block)  # home copy goes too
            for sharer in sorted(targets):
                tempest.charge(costs.per_message)
                tempest.stats.incr("stache.invalidations_sent")
                tempest.send(
                    sharer,
                    self.INVAL,
                    vnet=VirtualNetwork.REQUEST,
                    size_words=REQUEST_WORDS,
                    addr=block,
                    home=tempest.node_id,
                    # The sequence of the fetch that made this sharer a
                    # sharer (see _send_writeback_request): it only
                    # poisons a grant still in flight.
                    grant_seq=self._req_seq.get(
                        (tempest.node_id, block, sharer)),
                )
            return
        # HOME, or SHARED with the requester as the only sharer.
        self._finish_write_grant(tempest, block, entry, requester)

    def _send_writeback_request(self, tempest: Tempest, block: int,
                                owner: int, demote: str) -> None:
        tempest.stats.incr("stache.writeback_requests")
        tempest.send(
            owner,
            self.WRITEBACK,
            vnet=VirtualNetwork.REQUEST,
            size_words=REQUEST_WORDS,
            addr=block,
            home=tempest.node_id,
            demote=demote,
            # The sequence of the fetch whose grant made (or is making)
            # the recallee owner: it only poisons a grant still in flight.
            grant_seq=self._req_seq.get((tempest.node_id, block, owner)),
        )

    def _finish_write_grant(self, tempest: Tempest, block: int,
                            entry: SoftwareDirectoryEntry,
                            requester: int) -> None:
        entry.clear_sharers()
        entry.acks_outstanding = 0
        if requester == tempest.node_id:
            entry.state = DirectoryState.HOME
            entry.owner = None
        else:
            entry.state = DirectoryState.EXCLUSIVE
            entry.owner = requester
            if tempest.read_tag(block) is not Tag.INVALID:
                tempest.invalidate(block)
        self._grant(tempest, block, entry, requester, rw=True)

    def _grant(self, tempest: Tempest, block: int,
               entry: SoftwareDirectoryEntry, requester: int, rw: bool) -> None:
        """Deliver the block (or the local tag upgrade) to the requester."""
        costs = self._machine().costs
        if requester == tempest.node_id:
            # Home's own fault: upgrade the home tag and restart the CPU.
            if rw:
                tempest.set_rw(block)
            elif tempest.read_tag(block) is not Tag.READ_WRITE:
                tempest.set_ro(block)
            tempest.resume()
        else:
            tempest.charge(costs.block_copy)
            tempest.stats.incr("stache.data_replies")
            tempest.send(
                requester,
                self.DATA,
                vnet=VirtualNetwork.RESPONSE,
                size_words=DATA_WORDS,
                addr=block,
                data=tempest.export_block(block),
                rw=rw,
                home=tempest.node_id,
                fetch_seq=self._req_seq.get(
                    (tempest.node_id, block, requester)),
            )
        self._dispatch_pending(tempest, block, entry)

    def _dispatch_pending(self, tempest: Tempest, block: int,
                          entry: SoftwareDirectoryEntry) -> None:
        """Service the next queued request for this block, if any."""
        if entry.state.is_transient or not entry.pending:
            return
        requester, want_write = entry.pending.popleft()
        # A second directory pass costs another occupancy slice.
        tempest.charge(self._machine().costs.home_response)
        self._start_request(tempest, block, entry, requester, want_write)

    # ------------------------------------------------------------------
    # Copy-holder handlers
    # ------------------------------------------------------------------
    def _h_inval(self, tempest: Tempest, message: Message) -> None:
        """Invalidate our read-only copy; always acknowledge.

        The copy may already be gone (silent page replacement) or mid-
        refetch (tag Busy); in both cases the tag must not be touched.
        """
        block = message.payload["addr"]
        page = tempest.page_entry(block)
        if (
            page is not None
            and page.mode == PAGE_MODE_STACHE
            and tempest.read_tag(block) in (Tag.READ_ONLY, Tag.READ_WRITE)
        ):
            tempest.invalidate(block)
            tempest.stats.incr("stache.blocks_invalidated")
        elif (
            page is not None
            and page.mode == PAGE_MODE_STACHE
            and tempest.read_tag(block) is Tag.BUSY
        ):
            # Our fetch may have a grant in flight that this message
            # overtook: installing it would resurrect a copy the home
            # believes dead.  Poison only when the invalidation chases
            # the fetch we have outstanding (grant_seq matches): an
            # invalidation of an older copy — say our read-only copy,
            # while our write upgrade is queued at the home — targets a
            # grant we already consumed, and the upgrade's own grant
            # will be issued after this round completes.
            key = (tempest.node_id, block)
            grant_seq = message.payload.get("grant_seq")
            if grant_seq is not None and grant_seq == self._fetch_seq.get(key):
                self._poisoned_seq[key] = grant_seq
                tempest.stats.incr("stache.grants_poisoned")
        tempest.send(
            message.payload["home"],
            self.ACK,
            vnet=VirtualNetwork.RESPONSE,
            size_words=REQUEST_WORDS,
            addr=block,
            sharer=tempest.node_id,
        )

    def _h_writeback(self, tempest: Tempest, message: Message) -> None:
        """Home wants our exclusive copy back (demoted to RO or Invalid)."""
        block = message.payload["addr"]
        demote = message.payload["demote"]
        page = tempest.page_entry(block)
        holds = (
            page is not None
            and page.mode == PAGE_MODE_STACHE
            and tempest.read_tag(block) is Tag.READ_WRITE
        )
        data = None
        wrote = False
        if holds:
            costs = self._machine().costs
            tempest.charge(costs.block_copy)
            data = tempest.export_block(block)
            wrote = tempest.was_written(block)
            if demote == "ro":
                tempest.set_ro(block)
            else:
                tempest.invalidate(block)
        elif (
            page is not None
            and page.mode == PAGE_MODE_STACHE
            and tempest.read_tag(block) is Tag.BUSY
        ):
            # The recall-side twin of the _h_inval race: a grant making
            # us owner may still be in flight, and this held=False reply
            # tells the home to move on without us.  Poison only when
            # the recall chases the fetch we have outstanding (grant_seq
            # matches): a recall for a stale era — the home still
            # believing in an ownership we already gave up — must not
            # poison the replacement fetch, or the refetch loop never
            # converges.
            key = (tempest.node_id, block)
            grant_seq = message.payload.get("grant_seq")
            if grant_seq is not None and grant_seq == self._fetch_seq.get(key):
                self._poisoned_seq[key] = grant_seq
                tempest.stats.incr("stache.grants_poisoned")
        # If we no longer hold the block, our replacement writeback is
        # already ahead of this reply on the same FIFO response channel.
        tempest.send(
            message.payload["home"],
            self.WB_DATA,
            vnet=VirtualNetwork.RESPONSE,
            size_words=DATA_WORDS if data is not None else REQUEST_WORDS,
            addr=block,
            data=data,
            owner=tempest.node_id,
            held=holds,
            wrote=wrote,
            demote=demote,
        )

    # ------------------------------------------------------------------
    # Home-side response handlers
    # ------------------------------------------------------------------
    def _h_wb_data(self, tempest: Tempest, message: Message) -> None:
        """The owner's copy came back; satisfy the waiting request."""
        block = message.payload["addr"]
        entry = self._dir_entry(tempest, block)
        if entry.state is not DirectoryState.PENDING_WRITEBACK:
            raise SimulationError(
                f"unexpected writeback data for {block:#x} in {entry.state}"
            )
        costs = self._machine().costs
        if message.payload["data"] is not None:
            tempest.charge(costs.block_copy)
            tempest.import_block(block, message.payload["data"])
        requester, want_write = entry.pending.popleft()
        old_owner = message.payload["owner"]
        entry.owner = None
        if want_write:
            entry.state = DirectoryState.HOME  # transient exit; re-resolved below
            entry.clear_sharers()
            self._finish_write_grant(tempest, block, entry, requester)
            return
        # Read request: the old owner keeps a read-only copy if it still
        # held the block when demoted.
        entry.clear_sharers()
        if message.payload["held"]:
            entry.add_sharer(old_owner)
        if requester != tempest.node_id:
            entry.add_sharer(requester)
            entry.state = (
                DirectoryState.SHARED
            )
            tempest.set_ro(block)
        else:
            entry.state = (
                DirectoryState.SHARED if entry.sharer_count else DirectoryState.HOME
            )
            if entry.sharer_count:
                tempest.set_ro(block)
            else:
                tempest.set_rw(block)
        self._grant(tempest, block, entry, requester, rw=False)

    def _h_ack(self, tempest: Tempest, message: Message) -> None:
        """Invalidation acknowledged; the final ack sends the data."""
        block = message.payload["addr"]
        entry = self._dir_entry(tempest, block)
        entry.remove_sharer(message.payload["sharer"])
        entry.acks_outstanding -= 1
        if entry.acks_outstanding < 0:
            raise SimulationError(f"surplus invalidation ack for {block:#x}")
        if entry.acks_outstanding > 0:
            return
        if entry.state is not DirectoryState.PENDING_INVALIDATE:
            raise SimulationError(
                f"acks complete for {block:#x} in state {entry.state}"
            )
        requester, want_write = entry.pending.popleft()
        if not want_write:
            raise SimulationError("invalidations pending for a read request")
        entry.state = DirectoryState.HOME  # transient exit; fixed below
        self._finish_write_grant(tempest, block, entry, requester)

    def _h_repl_dirty(self, tempest: Tempest, message: Message) -> None:
        """A replaced stache page sent a modified block home."""
        block = message.payload["addr"]
        entry = self._dir_entry(tempest, block)
        costs = self._machine().costs
        tempest.charge(costs.block_copy)
        tempest.import_block(block, message.payload["data"])
        tempest.stats.incr("stache.replacement_writebacks")
        entry.owner = None
        if entry.state is DirectoryState.EXCLUSIVE:
            entry.state = DirectoryState.HOME
            entry.clear_sharers()
            tempest.set_rw(block)
        # If PENDING_WRITEBACK, the stale (data-less) writeback reply is
        # behind this message on the same channel and will complete the
        # transaction; the data is now in place.

    # ------------------------------------------------------------------
    # Requester-side data arrival
    # ------------------------------------------------------------------
    def _h_data(self, tempest: Tempest, message: Message) -> None:
        block = message.payload["addr"]
        key = (tempest.node_id, block)
        seq = message.payload.get("fetch_seq")
        if seq is not None:
            outstanding = self._fetch_seq.get(key)
            if seq != outstanding:
                # A grant from a superseded fetch (we already poisoned
                # and reissued under a newer sequence): the current
                # fetch's own grant is still coming, so just drop this.
                tempest.stats.incr("stache.stale_grants_dropped")
                return
            if self._poisoned_seq.get(key) == seq:
                # This grant was overtaken by an invalidation or recall
                # (see _h_inval / _h_writeback): the home already
                # reclaimed the block, so installing this copy would
                # violate coherence.  Drop the data and reissue the
                # fetch under a fresh sequence; the tag is still Busy
                # and the faulting thread (if any) stays suspended.
                del self._poisoned_seq[key]
                tempest.stats.incr("stache.poisoned_grants_refetched")
                page = tempest.page_entry(block)
                home = message.payload.get("home")
                if home is None:
                    home = page.home if page is not None else message.src
                elif page is not None:
                    page.home = home
                tempest.send(
                    home,
                    self.GET_RW if message.payload["rw"] else self.GET_RO,
                    vnet=VirtualNetwork.REQUEST,
                    size_words=REQUEST_WORDS,
                    addr=block,
                    requester=tempest.node_id,
                    fetch_seq=self._next_fetch_seq(tempest.node_id, block),
                )
                return
        costs = self._machine().costs
        tempest.charge(costs.block_copy)
        tempest.import_block(block, message.payload["data"])
        if message.payload["rw"]:
            tempest.set_rw(block)
        else:
            tempest.set_ro(block)
        page = tempest.page_entry(block)
        if page is not None:
            # Refresh the cached home id: the reply may come from a new
            # home after a page migration.
            page.home = message.payload.get("home", page.home)
        tempest.stats.incr("stache.blocks_fetched")
        if self._pending_fault.get(tempest.node_id) == block:
            # A demand fetch (or a prefetch the thread caught up with).
            self._pending_fault[tempest.node_id] = None
            tempest.resume()
        else:
            tempest.stats.incr("stache.prefetches_completed")

    # ------------------------------------------------------------------
    # Page fault handler (runs on the primary CPU)
    # ------------------------------------------------------------------
    def _page_fault(self, tempest: Tempest, addr: int, is_write: bool) -> int:
        """Allocate (or FIFO-replace into) a stache page at ``addr``."""
        machine = self._machine()
        page_addr = machine.layout.page_of(addr)
        home = machine.heap.home_of(addr)
        extra_cycles = 0
        budget = machine.config.stache_page_budget
        if len(tempest.pages_with_mode(PAGE_MODE_STACHE)) >= budget:
            extra_cycles += self._replace_page(tempest, page_addr)
            return extra_cycles
        tempest.map_page(
            page_addr,
            mode=PAGE_MODE_STACHE,
            home=home,
            initial_tag=Tag.INVALID,
        )
        tempest.stats.incr("stache.pages_allocated")
        return extra_cycles

    # ------------------------------------------------------------------
    # Extension: non-binding prefetch (uses the Busy tag, Section 5.4)
    # ------------------------------------------------------------------
    def prefetch(self, node_id: int, addr: int):
        """Generator: start fetching a block without blocking the thread.

        The issue cost is a couple of stores to the NP; the NP's prefetch
        handler marks the block Busy and sends the read request.  If the
        thread later faults on the block while the fetch is in flight, the
        fault handler just waits for the prefetched data (no duplicate
        request).  Prefetching hides latency but, as the paper notes, does
        not reduce message traffic.
        """
        machine = self._machine()
        tempest = machine.nodes[node_id].tempest
        block = machine.layout.block_of(addr)
        if not machine.nodes[node_id].page_table.is_mapped(addr):
            # Allocate the stache page first (same user-level page fault
            # work, charged to the prefetching thread).
            yield machine.costs.page_fault
            extra = self._page_fault(tempest, addr, is_write=False)
            if extra:
                yield extra
        yield 2  # the launch: stores to the NP's memory-mapped registers
        tempest.send(node_id, self.PREFETCH, addr=block)

    def _h_prefetch(self, tempest: Tempest, message: Message) -> None:
        """Runs on the local NP: issue the read request if still needed."""
        block = message.payload["addr"]
        page = tempest.page_entry(block)
        if page is None or page.mode != PAGE_MODE_STACHE:
            return
        if tempest.read_tag(block) is not Tag.INVALID:
            return  # already present or already being fetched
        tempest.set_busy(block)
        tempest.stats.incr("stache.prefetches_issued")
        tempest.send(
            page.home,
            self.GET_RO,
            vnet=VirtualNetwork.REQUEST,
            size_words=REQUEST_WORDS,
            addr=block,
            requester=tempest.node_id,
            fetch_seq=self._next_fetch_seq(tempest.node_id, block),
        )

    # ------------------------------------------------------------------
    # Extension: check-in (Hill et al.'s cooperative shared memory op)
    # ------------------------------------------------------------------
    def check_in(self, node_id: int, addr: int):
        """Generator: flush our copy of a block back to its home.

        Replaces a future invalidation/acknowledgment round trip with one
        asynchronous notification (Section 4's discussion of check_in:
        "cut communication and latency ... but cannot attain the minimum
        of one message").  A no-op if we hold no copy.
        """
        machine = self._machine()
        tempest = machine.nodes[node_id].tempest
        block = machine.layout.block_of(addr)
        page = tempest.page_entry(block)
        if page is None or page.mode != PAGE_MODE_STACHE:
            return
        tag = tempest.read_tag(block)
        if tag not in (Tag.READ_ONLY, Tag.READ_WRITE):
            return  # no copy (or a fetch in flight): nothing to check in
        data = tempest.export_block(block) if tag is Tag.READ_WRITE else None
        tempest.invalidate(block)
        yield 3  # the launch
        tempest.stats.incr("stache.checkins")
        # The response network keeps this FIFO with any writeback reply we
        # might owe the home (same discipline as replacement writebacks).
        tempest.send(
            page.home,
            self.CHECKIN,
            vnet=VirtualNetwork.RESPONSE,
            size_words=DATA_WORDS if data is not None else REQUEST_WORDS,
            addr=block,
            sharer=node_id,
            data=data,
        )

    def _h_checkin(self, tempest: Tempest, message: Message) -> None:
        """Home side: absorb a checked-in copy; no acknowledgment."""
        block = message.payload["addr"]
        sharer = message.payload["sharer"]
        data = message.payload["data"]
        entry = self._dir_entry(tempest, block)
        costs = self._machine().costs
        if data is not None:
            tempest.charge(costs.block_copy)
            tempest.import_block(block, data)
            entry.owner = None
            if entry.state is DirectoryState.EXCLUSIVE:
                entry.state = DirectoryState.HOME
                entry.clear_sharers()
                tempest.set_rw(block)
            # If transient, the in-flight writeback reply completes the
            # transaction; the data is already home (FIFO ordering).
            return
        entry.remove_sharer(sharer)
        if (entry.state is DirectoryState.SHARED
                and entry.sharer_count == 0):
            entry.state = DirectoryState.HOME
            tempest.set_rw(block)

    # ------------------------------------------------------------------
    # Extension: explicit page migration (Section 7: Stache "provides
    # support to allow explicit page migration")
    # ------------------------------------------------------------------
    def migrate_page(self, node_id: int, vaddr: int, new_home: int):
        """Generator: move a quiescent home page to ``new_home``.

        Must be run by the current home node while no remote copies or
        transactions exist for the page (synchronize first — e.g. after a
        barrier with all copies checked in); raises otherwise.  The data
        moves via a bulk transfer; requests that still reach the old home
        afterwards are forwarded, and replies teach requesters the new
        home.
        """
        machine = self._machine()
        tempest = machine.nodes[node_id].tempest
        page_addr = machine.layout.page_of(vaddr)
        page = tempest.page_entry(page_addr)
        if page is None or page.mode != PAGE_MODE_HOME:
            raise SimulationError(
                f"node {node_id} is not the home of page {page_addr:#x}"
            )
        if not 0 <= new_home < machine.num_nodes or new_home == node_id:
            raise SimulationError(f"bad migration target {new_home}")
        for block, entry in page.user_word.items():
            if entry.state is not DirectoryState.HOME or entry.pending:
                raise SimulationError(
                    f"cannot migrate {page_addr:#x}: block {block:#x} is "
                    f"{entry.state.value} (migration requires quiescence)"
                )

        costs = machine.costs
        yield costs.page_replace  # table surgery at the source
        # 1. Ask the new home to create the page.
        from repro.sim.process import Future

        ready = Future(machine.engine)
        self._migrations[page_addr] = ready
        tempest.send(new_home, "stache.migrate_begin",
                     addr=page_addr, origin=node_id)
        yield ready
        # 2. Ship the data.
        yield tempest.bulk_transfer(new_home, page_addr, page_addr,
                                    machine.layout.page_size)
        # 3. Retire the old mapping; leave a forwarding stub and update
        # the distributed mapping table.
        tempest.unmap_page(page_addr)
        tempest.image.clear_page(page_addr)
        self._migrated_pages[page_addr] = new_home
        machine.heap.rehome(page_addr, new_home)
        tempest.stats.incr("stache.pages_migrated")

    def _h_migrate_begin(self, tempest: Tempest, message: Message) -> None:
        """New home: materialize the page, then tell the origin to ship."""
        page_addr = message.payload["addr"]
        existing = tempest.page_entry(page_addr)
        if existing is not None:
            if existing.mode != PAGE_MODE_STACHE:
                raise SimulationError(
                    f"migration target already homes {page_addr:#x}"
                )
            # A stale (fully invalid, by the quiescence precondition)
            # stache page occupies the address: recycle it.
            tempest.unmap_page(page_addr)
            tempest.image.clear_page(page_addr)
        tempest.map_page(
            page_addr,
            mode=PAGE_MODE_HOME,
            home=tempest.node_id,
            initial_tag=Tag.READ_WRITE,
            user_word={},
        )
        # This node may have been a forwarding stub from an earlier
        # migration of the same page; it is authoritative again.
        self._migrated_pages.pop(page_addr, None)
        tempest.send(
            message.payload["origin"],
            "stache.migrate_ready",
            vnet=VirtualNetwork.RESPONSE,
            addr=page_addr,
        )

    def _h_migrate_ready(self, tempest: Tempest, message: Message) -> None:
        self._migrations.pop(message.payload["addr"]).resolve(None)

    def _replace_page(self, tempest: Tempest, new_page_addr: int) -> int:
        """Evict the FIFO-oldest stache page and reuse its frame."""
        machine = self._machine()
        costs = machine.costs
        victim = tempest.oldest_page_with_mode(PAGE_MODE_STACHE)
        if victim is None:
            raise SimulationError("stache budget is zero: nothing to replace")
        extra = costs.page_replace
        dirty_blocks = 0
        for block in machine.layout.blocks_in_page(victim.vpage):
            tag = tempest.read_tag(block)
            if tag is Tag.READ_WRITE:
                dirty_blocks += 1
                tempest.send(
                    victim.home,
                    self.REPL_DIRTY,
                    vnet=VirtualNetwork.RESPONSE,
                    size_words=DATA_WORDS,
                    addr=block,
                    data=tempest.export_block(block),
                )
            if tag in (Tag.READ_ONLY, Tag.READ_WRITE):
                tempest.invalidate(block)
        extra += dirty_blocks * costs.block_copy
        tempest.image.clear_page(victim.vpage)
        tempest.remap_page(victim.vpage, new_page_addr, initial_tag=Tag.INVALID)
        # The recycled frame serves a (possibly) different home now.
        entry = tempest.page_entry(new_page_addr)
        entry.home = machine.heap.home_of(new_page_addr)
        tempest.stats.incr("stache.pages_replaced")
        return extra
