"""Coherence protocols.

Three protocols, matching Section 6's three systems:

* :mod:`repro.protocols.dirnnb` — the all-hardware **DirNNB**
  directory-based invalidation protocol (the baseline), with the Table 2
  hardware cost model;
* :mod:`repro.protocols.stache` — **Stache** (Section 3), transparent
  shared memory in user-level software on Tempest: page-grain allocation,
  block-grain coherence, a LimitLESS-like software directory, FIFO page
  replacement;
* :mod:`repro.protocols.em3d_update` — the custom **delayed-update**
  protocol for EM3D (Section 4): inconsistency within a step, explicit
  value-only updates at step end, no acknowledgments, fuzzy barrier.
"""

from repro.protocols.directory import (
    DirectoryState,
    HardwareDirectoryEntry,
    SoftwareDirectoryEntry,
)
from repro.protocols.dirnnb import DirNNBMachine
from repro.protocols.stache import StacheProtocol
from repro.protocols.em3d_update import Em3dUpdateProtocol
from repro.protocols.ivy import IvyProtocol
from repro.protocols.migratory import MigratoryProtocol
from repro.protocols.history import (
    AccessHistory,
    check_register_consistency,
)
from repro.protocols.verify import (
    CoherenceViolation,
    check_dirnnb_coherence,
    check_stache_coherence,
)

__all__ = [
    "AccessHistory",
    "CoherenceViolation",
    "DirNNBMachine",
    "DirectoryState",
    "Em3dUpdateProtocol",
    "HardwareDirectoryEntry",
    "IvyProtocol",
    "MigratoryProtocol",
    "SoftwareDirectoryEntry",
    "StacheProtocol",
    "check_dirnnb_coherence",
    "check_register_consistency",
    "check_stache_coherence",
]
