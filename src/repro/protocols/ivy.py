"""IVY-style page-granularity distributed shared memory on Tempest.

Section 7 relates Stache to classic DSM: "Tempest's user-level memory
management interface is similar to Appel and Li's user-level primitives.
Both provide mechanisms to support distributed shared memory...  Stache
differs from distributed shared memory systems because it maintains
coherence on a much finer granularity."  And Section 2.4 motivates the
fine-grain tags: "The coarse granularity of their page-based mechanisms,
however, is a poor match for many applications."

This module makes that comparison executable: a sequentially consistent,
single-writer/multiple-reader DSM at **page** granularity (Li & Hudak's
IVY, fixed-distributed-manager variant), built from the *coarse-grain*
subset of Tempest — virtual-memory management, messages, and bulk
transfer.  Fine-grain tags are used only page-uniformly (every block of a
page carries the same tag), which is exactly the access control a
conventional MMU would give.

Protocol sketch (per page, manager = the page's home node):

* the manager tracks the page's **owner** (writable copy) and **copyset**
  (read-only copies) and serializes transactions with a busy flag and a
  request queue;
* a read fault asks the manager; the manager has the owner ship the whole
  page to the requester by **bulk transfer** (64 packets for 4 KB — the
  cost of coarse granularity is not hidden), demoting the owner to
  read-only;
* a write fault invalidates the copyset, recalls the page from the owner,
  and transfers ownership.

Every handler is ordinary user-level Tempest code, so the Stache-vs-IVY
bench (`benchmarks/test_granularity.py`) compares two *policies* on
identical mechanisms — precisely the experiment the interface exists to
enable.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.memory.allocator import SharedRegion
from repro.memory.tags import AccessFault, Tag
from repro.network.message import REQUEST_WORDS, Message, VirtualNetwork
from repro.sim.engine import SimulationError
from repro.tempest.interface import Tempest
from repro.tempest.messaging import DeliveryGuard
from repro.tempest.port import TempestPort

PAGE_MODE_IVY = 5

#: Handler path lengths (calibrated like the Stache handlers; page-grain
#: bookkeeping is a little heavier than per-block work).
REQUEST_INSTRUCTIONS = 20
MANAGER_INSTRUCTIONS = 40
GRANT_INSTRUCTIONS = 30
INVAL_INSTRUCTIONS = 25
#: Cycles to sweep a page's 128 block tags to one value (inserted code).
TAG_SWEEP_CYCLES = 32


@dataclass
class _PageState:
    """Manager-side record for one page."""

    owner: int
    copyset: set[int] = field(default_factory=set)
    busy: bool = False
    queue: deque = field(default_factory=deque)
    acks_outstanding: int = 0
    #: The in-service request: (requester, want_write).
    active: tuple[int, bool] | None = None


class IvyProtocol:
    """Page-granularity DSM: Li & Hudak's fixed distributed manager."""

    name = "ivy"

    GET = "ivy.get"              # requester -> manager
    RECALL = "ivy.recall"        # manager -> owner (demote &/or hand off)
    PAGE_SENT = "ivy.page_sent"  # owner -> manager (transfer launched+done)
    INVAL = "ivy.inval"          # manager -> copyset member
    ACK = "ivy.ack"              # copyset member -> manager
    GRANT = "ivy.grant"          # manager -> requester (enable the page)

    def __init__(self) -> None:
        self.machine: TempestPort | None = None
        # (manager node, page addr) -> _PageState
        self._pages: dict[tuple[int, int], _PageState] = {}

    # ------------------------------------------------------------------
    def install(self, machine: TempestPort) -> None:
        self.machine = machine
        for node in machine.nodes:
            tempest = node.tempest
            # Redelivery protection (see repro.network.faults): IVY's
            # handlers are not idempotent (a duplicate ACK under-counts
            # acks_outstanding; a duplicate GRANT double-resumes), so a
            # per-node guard keyed on transport transaction ids drops
            # exact duplicates before they dispatch.
            guard = DeliveryGuard(
                machine.stats, f"node{node.node_id}.np.duplicates_dropped"
            )

            def register(name, fn, instructions,
                         _tempest=tempest, _guard=guard):
                _tempest.register_handler(name, _guard.wrap(fn), instructions)

            register(self.GET, self._h_get, MANAGER_INSTRUCTIONS)
            register(self.RECALL, self._h_recall, GRANT_INSTRUCTIONS)
            register(self.PAGE_SENT, self._h_page_sent, MANAGER_INSTRUCTIONS)
            register(self.INVAL, self._h_inval, INVAL_INSTRUCTIONS)
            register(self.ACK, self._h_ack, MANAGER_INSTRUCTIONS)
            register(self.GRANT, self._h_grant, GRANT_INSTRUCTIONS)
            register("ivy.fault_read", self._f_read, REQUEST_INSTRUCTIONS)
            register("ivy.fault_write", self._f_write, REQUEST_INSTRUCTIONS)
            node.np.set_fault_handler(PAGE_MODE_IVY, False, "ivy.fault_read")
            node.np.set_fault_handler(PAGE_MODE_IVY, True, "ivy.fault_write")
            node.set_page_fault_handler(self._page_fault)

    def setup_region(self, region: SharedRegion) -> None:
        """Create each page writable on its manager (initial owner)."""
        machine = self._machine()
        for page_addr in range(region.base, region.end,
                               machine.layout.page_size):
            manager = machine.heap.home_of(page_addr)
            machine.nodes[manager].tempest.map_page(
                page_addr, mode=PAGE_MODE_IVY, home=manager,
                initial_tag=Tag.READ_WRITE,
            )
            self._pages[(manager, page_addr)] = _PageState(owner=manager)

    def _machine(self) -> TempestPort:
        if self.machine is None:
            raise SimulationError("protocol not installed")
        return self.machine

    def _state(self, manager: int, page_addr: int) -> _PageState:
        state = self._pages.get((manager, page_addr))
        if state is None:
            raise SimulationError(
                f"no IVY page {page_addr:#x} managed by node {manager}"
            )
        return state

    # ------------------------------------------------------------------
    # Page-uniform tag control (what an MMU's per-page bits would do)
    # ------------------------------------------------------------------
    def _set_page_tag(self, tempest: Tempest, page_addr: int,
                      tag: Tag) -> None:
        for block in self._machine().layout.blocks_in_page(page_addr):
            if tag is Tag.READ_WRITE:
                tempest.set_rw(block)
            elif tag is Tag.READ_ONLY:
                tempest.set_ro(block)
            else:
                tempest.invalidate(block)
        tempest.charge(TAG_SWEEP_CYCLES)

    # ------------------------------------------------------------------
    # Faults (requester side)
    # ------------------------------------------------------------------
    def _page_fault(self, tempest: Tempest, addr: int, is_write: bool) -> int:
        machine = self._machine()
        page_addr = machine.layout.page_of(addr)
        tempest.map_page(
            page_addr, mode=PAGE_MODE_IVY,
            home=machine.heap.home_of(addr),
            initial_tag=Tag.INVALID,
        )
        return 0

    def _f_read(self, tempest: Tempest, fault: AccessFault) -> None:
        self._request(tempest, fault.block_addr, want_write=False)

    def _f_write(self, tempest: Tempest, fault: AccessFault) -> None:
        self._request(tempest, fault.block_addr, want_write=True)

    def _request(self, tempest: Tempest, addr: int, want_write: bool) -> None:
        machine = self._machine()
        page_addr = machine.layout.page_of(addr)
        entry = tempest.page_entry(page_addr)
        tempest.stats.incr("ivy.page_requests")
        tempest.send(
            entry.home, self.GET,
            vnet=VirtualNetwork.REQUEST, size_words=REQUEST_WORDS,
            addr=page_addr, requester=tempest.node_id,
            want_write=want_write,
        )

    # ------------------------------------------------------------------
    # Manager side
    # ------------------------------------------------------------------
    def _h_get(self, tempest: Tempest, message: Message) -> None:
        page_addr = message.payload["addr"]
        request = (message.payload["requester"],
                   message.payload["want_write"])
        state = self._state(tempest.node_id, page_addr)
        if state.busy:
            state.queue.append(request)
            return
        self._start(tempest, page_addr, state, request)

    def _start(self, tempest: Tempest, page_addr: int, state: _PageState,
               request: tuple[int, bool]) -> None:
        requester, want_write = request
        state.busy = True
        state.active = request
        if want_write:
            targets = state.copyset - {requester}
            state.acks_outstanding = len(targets)
            for member in sorted(targets):
                tempest.stats.incr("ivy.page_invalidations")
                tempest.send(member, self.INVAL,
                             vnet=VirtualNetwork.REQUEST,
                             size_words=REQUEST_WORDS,
                             addr=page_addr, manager=tempest.node_id)
            if state.acks_outstanding == 0:
                self._recall_or_grant(tempest, page_addr, state)
            return
        self._recall_or_grant(tempest, page_addr, state)

    def _recall_or_grant(self, tempest: Tempest, page_addr: int,
                         state: _PageState) -> None:
        requester, want_write = state.active
        if state.owner == requester:
            # Upgrade in place: the requester already holds the data.
            self._finish(tempest, page_addr, state, transfer_done=True)
            return
        tempest.send(
            state.owner, self.RECALL,
            vnet=VirtualNetwork.REQUEST, size_words=REQUEST_WORDS,
            addr=page_addr, requester=requester,
            want_write=want_write, manager=tempest.node_id,
        )

    def _h_ack(self, tempest: Tempest, message: Message) -> None:
        page_addr = message.payload["addr"]
        state = self._state(tempest.node_id, page_addr)
        state.copyset.discard(message.payload["member"])
        state.acks_outstanding -= 1
        if state.acks_outstanding == 0:
            self._recall_or_grant(tempest, page_addr, state)

    def _h_page_sent(self, tempest: Tempest, message: Message) -> None:
        """The owner finished shipping the page; grant it."""
        page_addr = message.payload["addr"]
        state = self._state(tempest.node_id, page_addr)
        self._finish(tempest, page_addr, state, transfer_done=True)

    def _finish(self, tempest: Tempest, page_addr: int, state: _PageState,
                transfer_done: bool) -> None:
        requester, want_write = state.active
        if want_write:
            state.copyset.discard(requester)
            old_owner = state.owner
            state.owner = requester
            if old_owner != requester:
                state.copyset.discard(old_owner)
        else:
            if requester != state.owner:
                state.copyset.add(requester)
        tempest.send(
            requester, self.GRANT,
            vnet=VirtualNetwork.RESPONSE, size_words=REQUEST_WORDS,
            addr=page_addr, want_write=want_write,
        )
        state.busy = False
        state.active = None
        if state.queue:
            self._start(tempest, page_addr, state, state.queue.popleft())

    # ------------------------------------------------------------------
    # Owner and copyset sides
    # ------------------------------------------------------------------
    def _h_recall(self, tempest: Tempest, message: Message) -> None:
        """Ship the whole page to the requester, then tell the manager."""
        page_addr = message.payload["addr"]
        requester = message.payload["requester"]
        want_write = message.payload["want_write"]
        manager = message.payload["manager"]
        tempest.stats.incr("ivy.page_transfers")
        self._set_page_tag(
            tempest, page_addr,
            Tag.INVALID if want_write else Tag.READ_ONLY,
        )
        transfer = tempest.bulk_transfer(
            requester, page_addr, page_addr,
            self._machine().layout.page_size,
        )

        def notify(_value):
            tempest.send(manager, self.PAGE_SENT,
                         vnet=VirtualNetwork.RESPONSE,
                         size_words=REQUEST_WORDS, addr=page_addr)

        transfer.add_callback(notify)

    def _h_inval(self, tempest: Tempest, message: Message) -> None:
        page_addr = message.payload["addr"]
        if tempest.page_entry(page_addr) is not None:
            self._set_page_tag(tempest, page_addr, Tag.INVALID)
            tempest.stats.incr("ivy.pages_invalidated")
        tempest.send(
            message.payload["manager"], self.ACK,
            vnet=VirtualNetwork.RESPONSE, size_words=REQUEST_WORDS,
            addr=page_addr, member=tempest.node_id,
        )

    # ------------------------------------------------------------------
    # Requester side
    # ------------------------------------------------------------------
    def _h_grant(self, tempest: Tempest, message: Message) -> None:
        page_addr = message.payload["addr"]
        self._set_page_tag(
            tempest, page_addr,
            Tag.READ_WRITE if message.payload["want_write"] else Tag.READ_ONLY,
        )
        tempest.stats.incr("ivy.pages_granted")
        tempest.resume()
