"""DirNNB: the all-hardware directory-based cache-coherence baseline.

Dir\\ :sub:`N`\\ NB — a full-map, no-broadcast invalidation directory
protocol, the conventional hardware shared memory Section 6 compares
Typhoon/Stache against, with costs "loosely based on the DASH prototype"
(Table 2):

* local cache miss: 29 cycles flat when the home is local and the
  directory needs no remote action (the directory is integrated with the
  memory controller);
* remote cache miss: 23 cycles issue + (5 or 16 if a shared/exclusive
  line is replaced) + network and directory cost + 34 cycles to finish;
* remote cache invalidate: 8 cycles (+ replacement if it evicts);
* a directory operation occupies the home's controller for 16 cycles,
  + 11 if a block is received, + 5 per message sent, + 11 if a block is
  sent.

Everything is hardware: there are no page faults (memory is flat and
always mapped), no tags, and no NP — exactly the contrast the paper
draws.  Data values linearize in one authoritative memory image at access
completion time, which preserves coherence-visible value behaviour
without modelling hardware data paths.

Page placement is round-robin by default (the heap's allocation policy);
``MachineConfig.page_placement = "first_touch"`` switches to the
Stenstrom-et-al. improvement discussed in Section 6: a page's home
becomes the first node to touch it.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Generator

from repro.machine import MachineBase
from repro.memory.address import AddressLayout
from repro.memory.cache import Cache, LineState
from repro.memory.data import MemoryImage
from repro.memory.tlb import Tlb
from repro.network.message import (
    DATA_WORDS,
    REQUEST_WORDS,
    Message,
    VirtualNetwork,
)
from repro.protocols.directory import DirectoryState, HardwareDirectoryEntry
from repro.sim.config import MachineConfig
from repro.sim.engine import SimulationError
from repro.sim.process import Future
from repro.tempest.messaging import DeliveryGuard


class DirNNBMachine(MachineBase):
    """N nodes with hardware caches and full-map directories."""

    system_name = "dirnnb"

    def __init__(self, config: MachineConfig):
        super().__init__(config)
        #: One authoritative data image; see the module docstring.
        self.shared_image = MemoryImage(self.layout)
        self.nodes: list[DirNNBNode] = [
            DirNNBNode(node_id, self) for node_id in range(config.nodes)
        ]
        self._first_touch_homes: dict[int, int] = {}
        self._maybe_auto_conformance()

    # ------------------------------------------------------------------
    def home_of(self, addr: int) -> int:
        """Home node of a block, honouring the page-placement policy."""
        if self.config.page_placement == "first_touch":
            page = self.layout.page_of(addr)
            home = self._first_touch_homes.get(page)
            if home is not None:
                return home
        return self.heap.home_of(addr)

    def record_first_touch(self, addr: int, node_id: int) -> None:
        if self.config.page_placement != "first_touch":
            return
        page = self.layout.page_of(addr)
        self._first_touch_homes.setdefault(page, node_id)


class DirectoryController:
    """The home node's hardware directory engine: a serial resource.

    Each operation occupies the controller for the Table 2 cost; its
    outgoing messages and grant notifications take effect when the
    occupancy ends.
    """

    def __init__(self, node: "DirNNBNode"):
        self.node = node
        self.machine: DirNNBMachine = node.machine
        self.engine = node.engine
        self.costs = node.machine.config.dirnnb
        self.stats = node.machine.stats
        self._prefix = f"node{node.node_id}.dir"
        # Hot-path stat keys and the raw counter dict, precomputed so a
        # directory op does no string formatting or method dispatch.
        self._counters = node.machine.stats._counters
        self._occupancy_key = f"{self._prefix}.occupancy_cycles"
        self._ops_key = f"{self._prefix}.ops"
        self._replays_key = f"{self._prefix}.replays"
        self._queue: deque[Message] = deque()
        self._busy = False
        self._entries: dict[int, HardwareDirectoryEntry] = {}
        # Effects accumulated by the handler currently executing.
        self._out_messages: list[Message] = []
        self._out_grants: list[tuple[int, dict]] = []
        self._block_received = False
        self._block_sent = False

    # ------------------------------------------------------------------
    def entry(self, block: int) -> HardwareDirectoryEntry:
        entry = self._entries.get(block)
        if entry is None:
            entry = self._entries[block] = HardwareDirectoryEntry()
            monitor = self.machine.conformance
            if monitor is not None:
                monitor.watch_entry(self.node.node_id, block, entry)
        return entry

    def entries(self) -> dict[int, HardwareDirectoryEntry]:
        """All materialized entries (diagnostics / invariant checks)."""
        return self._entries

    # ------------------------------------------------------------------
    # Serial dispatch
    # ------------------------------------------------------------------
    def receive(self, message: Message) -> None:
        self._queue.append(message)
        self._pump()

    def _pump(self) -> None:
        if self._busy or not self._queue:
            return
        message = self._queue.popleft()
        self._busy = True
        self._out_messages = []
        self._out_grants = []
        self._block_received = False
        self._block_sent = False
        self._handle(message)
        monitor = self.machine.conformance
        if monitor is not None:
            monitor.after_handler(self.node.node_id, message)
        if (
            message.handler == "dir.get"
            and message.payload.get("local")
            and not self._out_messages
        ):
            # The home's own miss, satisfied by the integrated directory
            # within the memory access: the CPU's 29-cycle local-miss
            # charge already covers it.
            cost = 0
        else:
            cost = (
                self.costs.directory_op
                + (self.costs.directory_block_received
                   if self._block_received else 0)
                + self.costs.directory_per_message * len(self._out_messages)
                + (self.costs.directory_block_sent if self._block_sent else 0)
            )
        counters = self._counters
        counters[self._occupancy_key] += cost
        counters[self._ops_key] += 1
        self.engine.schedule(
            cost, self._emit, self._out_messages, self._out_grants
        )

    def _emit(self, messages: list[Message], grants: list[tuple[int, dict]]) -> None:
        for message in messages:
            self.machine.interconnect.send(message)
        for node_id, grant in grants:
            self.machine.nodes[node_id].deliver_grant(grant)
        self._busy = False
        self._pump()

    # ------------------------------------------------------------------
    # Effect helpers (buffered until occupancy ends)
    # ------------------------------------------------------------------
    def _send(self, dst: int, handler: str, vnet: VirtualNetwork,
              size_words: int, **payload: Any) -> None:
        self._out_messages.append(
            Message(
                src=self.node.node_id,
                dst=dst,
                handler=handler,
                vnet=vnet,
                size_words=size_words,
                payload=payload,
            )
        )

    def _grant(self, block: int, entry: HardwareDirectoryEntry,
               requester: int, rw: bool) -> None:
        """Give ``requester`` the block; locally or via a data message."""
        grant = {"addr": block, "rw": rw}
        if requester == self.node.node_id:
            self._out_grants.append((requester, grant))
        else:
            self._block_sent = True
            self._send(
                requester,
                "dir.data",
                VirtualNetwork.RESPONSE,
                DATA_WORDS,
                **grant,
            )
        self._dispatch_pending(block, entry)

    def _dispatch_pending(self, block: int,
                          entry: HardwareDirectoryEntry) -> None:
        if entry.state.is_transient or not entry.pending:
            return
        requester, want_write = entry.pending.popleft()
        # Each replayed request is another directory op's worth of work.
        self._counters[self._replays_key] += 1
        self._start_request(block, entry, requester, want_write)

    # ------------------------------------------------------------------
    # Protocol logic
    # ------------------------------------------------------------------
    def _handle(self, message: Message) -> None:
        handler = message.handler
        payload = message.payload
        if handler == "dir.get":
            self.handle_request(
                payload["addr"], payload["requester"], payload["want_write"]
            )
        elif handler == "dir.ack":
            self._handle_ack(payload["addr"], payload["sharer"])
        elif handler == "dir.wb_data":
            self._block_received = True
            self._handle_wb_data(
                payload["addr"], payload["owner"], payload["held"]
            )
        elif handler == "dir.repl":
            if payload["dirty"]:
                self._block_received = True
            self._handle_replacement_hint(
                payload["addr"], payload["sharer"], payload["dirty"]
            )
        else:
            raise SimulationError(f"unknown directory message {handler}")

    def handle_request(self, block: int, requester: int,
                       want_write: bool) -> None:
        monitor = self.machine.conformance
        if monitor is not None:
            monitor.note_request(block, requester)
        entry = self.entry(block)
        if entry.state.is_transient:
            entry.pending.append((requester, want_write))
            return
        self._start_request(block, entry, requester, want_write)

    def _start_request(self, block: int, entry: HardwareDirectoryEntry,
                       requester: int, want_write: bool) -> None:
        if not want_write:
            if entry.state is DirectoryState.EXCLUSIVE:
                entry.pending.appendleft((requester, want_write))
                entry.state = DirectoryState.PENDING_WRITEBACK
                self._send(
                    entry.owner, "dir.wb", VirtualNetwork.REQUEST,
                    REQUEST_WORDS, addr=block, home=self.node.node_id,
                    demote="ro",
                )
                return
            if entry.state is DirectoryState.HOME:
                # No copies exist: grant exclusive-clean (the MESI E state,
                # as in DASH) so a subsequent write by the reader hits.
                entry.state = DirectoryState.EXCLUSIVE
                entry.owner = requester
                self._grant(block, entry, requester, rw=True)
                return
            entry.sharers.add(requester)
            entry.state = DirectoryState.SHARED
            self._grant(block, entry, requester, rw=False)
            return

        if entry.state is DirectoryState.EXCLUSIVE:
            if entry.owner == requester:
                self._grant(block, entry, requester, rw=True)
                return
            entry.pending.appendleft((requester, want_write))
            entry.state = DirectoryState.PENDING_WRITEBACK
            self._send(
                entry.owner, "dir.wb", VirtualNetwork.REQUEST,
                REQUEST_WORDS, addr=block, home=self.node.node_id,
                demote="inv",
            )
            return
        targets = entry.sharers - {requester}
        if targets:
            entry.pending.appendleft((requester, want_write))
            entry.state = DirectoryState.PENDING_INVALIDATE
            entry.acks_outstanding = len(targets)
            for sharer in sorted(targets):
                self.stats.incr(f"{self._prefix}.invalidations")
                self._send(
                    sharer, "dir.inval", VirtualNetwork.REQUEST,
                    REQUEST_WORDS, addr=block, home=self.node.node_id,
                )
            return
        self._finish_write(block, entry, requester)

    def _finish_write(self, block: int, entry: HardwareDirectoryEntry,
                      requester: int) -> None:
        entry.sharers.clear()
        entry.acks_outstanding = 0
        entry.state = DirectoryState.EXCLUSIVE
        entry.owner = requester
        self._grant(block, entry, requester, rw=True)

    def _handle_ack(self, block: int, sharer: int) -> None:
        entry = self.entry(block)
        entry.sharers.discard(sharer)
        entry.acks_outstanding -= 1
        if entry.acks_outstanding < 0:
            raise SimulationError(f"surplus ack for {block:#x}")
        if entry.acks_outstanding:
            return
        if entry.state is not DirectoryState.PENDING_INVALIDATE:
            raise SimulationError(f"ack completion in state {entry.state}")
        requester, want_write = entry.pending.popleft()
        if not want_write:
            raise SimulationError("invalidations pending for a read")
        entry.state = DirectoryState.HOME
        self._finish_write(block, entry, requester)

    def _handle_wb_data(self, block: int, owner: int, held: bool) -> None:
        entry = self.entry(block)
        if entry.state is not DirectoryState.PENDING_WRITEBACK:
            raise SimulationError(
                f"writeback data for {block:#x} in state {entry.state}"
            )
        requester, want_write = entry.pending.popleft()
        entry.owner = None
        if want_write:
            entry.state = DirectoryState.HOME
            entry.sharers.clear()
            self._finish_write(block, entry, requester)
            return
        entry.sharers.clear()
        if held:
            entry.sharers.add(owner)
        entry.sharers.add(requester)
        entry.state = DirectoryState.SHARED
        self._grant(block, entry, requester, rw=False)

    def _handle_replacement_hint(self, block: int, sharer: int,
                                 dirty: bool) -> None:
        entry = self.entry(block)
        if dirty:
            if entry.state is DirectoryState.EXCLUSIVE and entry.owner == sharer:
                entry.state = DirectoryState.HOME
                entry.owner = None
                entry.sharers.clear()
            # If transient, the in-flight writeback reply completes the
            # transaction; the data is already linearized in the image.
            return
        entry.sharers.discard(sharer)
        if entry.state is DirectoryState.SHARED and not entry.sharers:
            entry.state = DirectoryState.HOME


class DirNNBNode:
    """One DirNNB processing node: CPU, cache, TLB, directory controller."""

    def __init__(self, node_id: int, machine: DirNNBMachine):
        self.node_id = node_id
        self.machine = machine
        self.engine = machine.engine
        self.stats = machine.stats
        self.config = machine.config
        self.layout: AddressLayout = machine.layout
        self._prefix = f"node{node_id}"

        self.cache = Cache(
            machine.config.cache,
            machine.rng.stream(f"{self._prefix}.cache"),
            name=f"{self._prefix}.cache",
        )
        self.cpu_tlb = Tlb(machine.config.tlb, name=f"{self._prefix}.tlb")
        self.directory = DirectoryController(self)
        self._miss_grant: Future | None = None
        # Hot-path stat keys, precomputed so the per-reference path does
        # no string formatting.
        self._refs_key = f"{self._prefix}.cpu.refs"
        self._access_cycles_key = f"{self._prefix}.cpu.access_cycles"
        self._tlb_misses_key = f"{self._prefix}.cpu.tlb_misses"
        self._local_misses_key = f"{self._prefix}.cpu.local_misses"
        self._remote_misses_key = f"{self._prefix}.cpu.remote_misses"
        # Address arithmetic and container handles for the per-reference
        # path.  The TLB dict is a stable object (cleared in place, never
        # reassigned), so caching it here is safe.
        self._page_shift = self.layout.page_size.bit_length() - 1
        self._block_mask = ~(self.layout.block_size - 1)
        self._hit_cycles = self.config.cache_hit_cycles
        self._tlb_entries = self.cpu_tlb._entries
        self._counters = machine.stats._counters
        self._image_read = machine.shared_image.read
        self._image_write = machine.shared_image.write
        # Redelivery protection (see repro.network.faults): DirNNB's
        # dispatch bypasses the handler registry, so duplicate suppression
        # sits directly in the network sink.  Inert on a reliable network
        # (every xid is None).
        self._guard = DeliveryGuard(
            machine.stats, f"{self._prefix}.dir.duplicates_dropped"
        )
        machine.interconnect.attach(node_id, self._receive)

    # ------------------------------------------------------------------
    # Network sink: directory traffic and cache-side coherence requests
    # ------------------------------------------------------------------
    def _receive(self, message: Message) -> None:
        if message.xid is not None and self._guard.seen(message.src, message.xid):
            return  # duplicate delivery of an already-processed message
        handler = message.handler
        if handler in ("dir.get", "dir.ack", "dir.wb_data", "dir.repl"):
            self.directory.receive(message)
        elif handler == "dir.data":
            self._receive_grant_message(message)
        elif handler == "dir.inval":
            self._receive_invalidate(message)
        elif handler == "dir.wb":
            self._receive_writeback_request(message)
        else:
            raise SimulationError(f"unknown DirNNB message {handler}")

    def deliver_grant(self, grant: dict) -> None:
        """A grant arrived: fill the cache *now*, then wake the CPU.

        The fill must happen at delivery time, not when the CPU process
        resumes: an invalidation or writeback request for the same block
        can arrive in the same cycle (the directory emits the grant first,
        and channel latencies are equal, so the grant is never overtaken)
        and must observe the filled line.  The evicted victim, if any, is
        recorded for the CPU to charge and report.
        """
        if self._miss_grant is None:
            raise SimulationError(f"grant with no miss outstanding on {self}")
        state = LineState.EXCLUSIVE if grant["rw"] else LineState.SHARED
        grant["victim"] = self.cache.insert(grant["addr"], state)
        future, self._miss_grant = self._miss_grant, None
        future.resolve(grant)

    def _receive_grant_message(self, message: Message) -> None:
        self.deliver_grant(message.payload)

    def _receive_invalidate(self, message: Message) -> None:
        """Remote cache invalidate: Table 2 charges 8 cycles (+ repl).

        Hardware performs it without involving the CPU; the cost shows up
        as occupancy we simply absorb (the paper charges it on the
        invalidating side's protocol path via the directory's per-message
        cost; the 8-cycle local action does not block our CPU model).
        """
        block = message.payload["addr"]
        self.cache.invalidate(block)
        self.stats.incr(f"{self._prefix}.cache.coherence_invalidations")
        self.engine.schedule(
            self.config.dirnnb.invalidate_base,
            self._send_ack,
            message.payload["home"],
            block,
        )

    def _send_ack(self, home: int, block: int) -> None:
        self.machine.interconnect.send(
            Message(
                src=self.node_id,
                dst=home,
                handler="dir.ack",
                vnet=VirtualNetwork.RESPONSE,
                size_words=REQUEST_WORDS,
                payload={"addr": block, "sharer": self.node_id},
            )
        )

    def _receive_writeback_request(self, message: Message) -> None:
        block = message.payload["addr"]
        line = self.cache.lookup(block)
        held = line is not None and line.state is LineState.EXCLUSIVE
        if held:
            if message.payload["demote"] == "ro":
                self.cache.downgrade(block)
            else:
                self.cache.invalidate(block)
        self.engine.schedule(
            self.config.dirnnb.invalidate_base,
            self._send_wb_data,
            message.payload["home"],
            block,
            held,
        )

    def _send_wb_data(self, home: int, block: int, held: bool) -> None:
        self.machine.interconnect.send(
            Message(
                src=self.node_id,
                dst=home,
                handler="dir.wb_data",
                vnet=VirtualNetwork.RESPONSE,
                size_words=DATA_WORDS,
                payload={"addr": block, "owner": self.node_id, "held": held},
            )
        )

    # ------------------------------------------------------------------
    # CPU access path
    # ------------------------------------------------------------------
    def access_inline(self, addr: int, is_write: bool, value: Any = None):
        """Service a full TLB + cache hit without touching the event queue.

        Same contract as ``TyphoonNode.access_inline``: side-effect-free
        probes, then a one-call commit when the access is a plain
        hardware hit the engine can advance over inline.  Returns
        ``(result,)`` on success or None when :meth:`access` must run.

        The engine window is checked *first* (see
        ``TyphoonNode.access_inline``): rejection in lock-step phases must
        cost attribute reads, not probes the fallback then repeats.
        """
        engine = self.engine
        if engine._fifo:
            return None
        hit_cycles = self._hit_cycles
        target = engine.now + hit_cycles
        queue = engine._queue
        if queue and queue[0][0] <= target:
            return None
        until = engine._until
        if until is not None and target > until:
            return None
        if (addr >> self._page_shift) not in self._tlb_entries:
            return None
        line = self.cache.lookup(addr & self._block_mask)
        if line is None or (is_write and line.state is LineState.SHARED):
            return None
        # Commit: identical effects to the generator path's hit branch.
        # The probes above cannot schedule events, so the window check
        # still holds and the clock can move directly.
        engine.now = target
        self.cpu_tlb.hits += 1
        self.cache.hits += 1
        counters = self._counters
        counters[self._refs_key] += 1
        if is_write:
            self._image_write(addr, value)
            result = None
        else:
            result = value = self._image_read(addr)
        counters[self._access_cycles_key] += hit_cycles
        if self.machine.history is not None:
            self.machine.history.record(
                self.node_id, addr, is_write, value,
                engine.now - hit_cycles, engine.now,
            )
        return (result,)

    def access(self, addr: int, is_write: bool, value: Any = None) -> Generator:
        """One CPU load or store (same surface as TyphoonNode.access)."""
        counters = self._counters
        counters[self._refs_key] += 1
        start = self.engine.now
        if not self.cpu_tlb.access(addr >> self._page_shift):
            counters[self._tlb_misses_key] += 1
            yield self.config.tlb.miss_cycles

        shared = AddressLayout.is_shared(addr)
        block = addr & self._block_mask
        if self.cache.access(block, is_write):
            yield self._hit_cycles
            return self._complete(addr, is_write, value, start)

        if not shared:
            yield self.config.local_miss_cycles
            self._fill(block, LineState.EXCLUSIVE)
            return self._complete(addr, is_write, value, start)

        self.machine.record_first_touch(addr, self.node_id)
        home = self.machine.home_of(addr)

        # Every shared miss is a directory transaction at the home — the
        # directory controller is the single serialization point, so its
        # decision and state update are atomic.  A home-local miss that
        # needs no remote action costs the flat 29 cycles of Table 2: the
        # integrated directory answers within the memory access, modelled
        # as a zero-occupancy controller operation.
        costs = self.config.dirnnb
        remote = home != self.node_id
        if remote:
            counters[self._remote_misses_key] += 1
            yield costs.remote_miss_issue
        else:
            counters[self._local_misses_key] += 1
            yield self.config.local_miss_cycles
        grant_future = Future(self.engine)
        if self._miss_grant is not None:
            raise SimulationError(f"second outstanding miss on {self}")
        self._miss_grant = grant_future
        self.machine.interconnect.send(
            Message(
                src=self.node_id,
                dst=home,
                handler="dir.get",
                vnet=VirtualNetwork.REQUEST,
                size_words=REQUEST_WORDS,
                payload={
                    "addr": block,
                    "requester": self.node_id,
                    "want_write": is_write,
                    "local": not remote,
                },
            )
        )
        grant = yield grant_future
        # The line itself was filled at grant delivery; only the victim's
        # replacement work remains to be charged here.
        yield from self._handle_victim(grant["victim"])
        if remote:
            yield costs.remote_miss_finish
        return self._complete(addr, is_write, value, start)

    # ------------------------------------------------------------------
    def _handle_victim(self, victim) -> Generator:
        if victim is None:
            return
        costs = self.config.dirnnb
        dirty = victim.state is LineState.EXCLUSIVE
        victim_addr = victim.block_addr
        if not AddressLayout.is_shared(victim_addr):
            return
        self.stats.incr(f"{self._prefix}.cache.protocol_replacements")
        home = self.machine.home_of(victim_addr)
        if home == self.node_id:
            # Local victim: the integrated directory notes the drop within
            # the miss; Table 2 charges the 5/16-cycle replacement penalty
            # only on the remote-miss path.
            self.directory._handle_replacement_hint(
                victim_addr, self.node_id, dirty
            )
            return
        yield (
            costs.replacement_exclusive if dirty else costs.replacement_shared
        )
        self.machine.interconnect.send(
            Message(
                src=self.node_id,
                dst=home,
                handler="dir.repl",
                vnet=VirtualNetwork.RESPONSE,
                size_words=DATA_WORDS if dirty else REQUEST_WORDS,
                payload={
                    "addr": victim_addr,
                    "sharer": self.node_id,
                    "dirty": dirty,
                },
            )
        )

    def _complete(self, addr: int, is_write: bool, value: Any,
                  start: float) -> Any:
        if is_write:
            self._image_write(addr, value)
            result = None
        else:
            result = value = self._image_read(addr)
        self._counters[self._access_cycles_key] += self.engine.now - start
        if self.machine.history is not None:
            self.machine.history.record(
                self.node_id, addr, is_write, value, start, self.engine.now
            )
        return result

    def __repr__(self) -> str:
        return f"DirNNBNode({self.node_id})"
