"""A second custom-protocol case study: migratory-sharing optimization.

The paper's closing argument (Section 4) is that "system designers cannot
anticipate the full range of protocols that programmers and compilers
will devise" — EM3D's delayed-update protocol is its one worked example.
This module supplies a second, for the *other* problematic pattern in the
benchmark set: MP3D's migratory read-modify-write sharing, where a datum
is read then written by one processor after another.  Under plain Stache
each migration costs two transactions (a read fetch demoting the old
owner, then an upgrade invalidating it); the classic optimization
(Cox & Fowler / Stenstrom et al., ISCA 1993) detects the pattern and
grants *exclusive* ownership on the read, folding the pair into one.

Everything runs in user-level handlers on unmodified Tempest mechanisms,
which is precisely the point:

* **Detection** (at the home): a write request that upgrades the block's
  sole sharer increments a per-block score; two such upgrades mark the
  block migratory.
* **Exploitation**: read requests for a migratory block are served as
  exclusive grants, so the follow-up write hits locally.
* **Self-correction**: each migratory read grant is a *probe* — when the
  block is next recalled from that node, the writeback reply says whether
  the node actually wrote it (the M-vs-E bit an ownership bus provides).
  A probe that comes back clean means the block was not migratory after
  all; the score resets and the block reverts to normal read sharing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.network.message import Message
from repro.protocols.stache import StacheProtocol
from repro.tempest.interface import Tempest

#: Sole-sharer upgrades needed before a block is treated as migratory.
MIGRATORY_THRESHOLD = 2


@dataclass
class _MigratoryState:
    """Per-block detection state kept beside the home directory entry."""

    score: int = 0
    migratory: bool = False
    last_writer: int | None = None
    #: Nodes holding an exclusive-for-read grant we have not verified yet.
    probes: set[int] = field(default_factory=set)


class MigratoryProtocol(StacheProtocol):
    """Stache plus migratory detection and exclusive-on-read grants."""

    name = "stache-migratory"

    def __init__(self) -> None:
        super().__init__()
        # (home node, block) -> detection state.
        self._mig: dict[tuple[int, int], _MigratoryState] = {}

    def _mig_state(self, home: int, block: int) -> _MigratoryState:
        state = self._mig.get((home, block))
        if state is None:
            state = self._mig[(home, block)] = _MigratoryState()
        return state

    # ------------------------------------------------------------------
    def _handle_request(self, tempest: Tempest, block: int, requester: int,
                        want_write: bool, fetch_seq: int | None = None) -> None:
        state = self._mig_state(tempest.node_id, block)
        if want_write:
            self._note_write_request(tempest, block, requester, state)
        elif state.migratory and requester != tempest.node_id:
            # Serve the read as an exclusive grant (one transaction
            # instead of read-then-upgrade) and remember to verify it.
            state.probes.add(requester)
            want_write = True
            tempest.stats.incr("migratory.exclusive_read_grants")
        super()._handle_request(tempest, block, requester, want_write,
                                fetch_seq=fetch_seq)

    def _note_write_request(self, tempest: Tempest, block: int,
                            requester: int, state: _MigratoryState) -> None:
        """Detection (Stenstrom et al.): the write request comes from a
        reader of the block while the only other copy belongs to the
        previous writer — read-then-write ping-pong."""
        entry = self._dir_entry(tempest, block)
        if entry.state.is_transient or requester == tempest.node_id:
            return  # transients are judged when replayed
        sharers = entry.sharers()
        sole_sharer_upgrade = sharers == {requester}
        handoff_upgrade = (
            len(sharers) == 2
            and requester in sharers
            and state.last_writer is not None
            and state.last_writer != requester
            and state.last_writer in sharers
        )
        if not (sole_sharer_upgrade or handoff_upgrade):
            return
        state.score += 1
        if not state.migratory and state.score >= MIGRATORY_THRESHOLD:
            state.migratory = True
            tempest.stats.incr("migratory.blocks_marked")

    def _finish_write_grant(self, tempest: Tempest, block: int, entry,
                            requester: int) -> None:
        self._mig_state(tempest.node_id, block).last_writer = requester
        super()._finish_write_grant(tempest, block, entry, requester)

    # ------------------------------------------------------------------
    def _h_wb_data(self, tempest: Tempest, message: Message) -> None:
        """Verify outstanding probes before the base protocol proceeds."""
        block = message.payload["addr"]
        owner = message.payload["owner"]
        state = self._mig_state(tempest.node_id, block)
        if owner in state.probes:
            state.probes.discard(owner)
            if message.payload["held"] and not message.payload["wrote"]:
                # The exclusive-for-read grant was never written: this is
                # read sharing, not migration.  Revert.
                state.migratory = False
                state.score = 0
                tempest.stats.incr("migratory.mispredictions")
        super()._h_wb_data(tempest, message)

    def _h_repl_dirty(self, tempest: Tempest, message: Message) -> None:
        # A replacement writeback confirms the grant was written.
        state = self._mig_state(tempest.node_id, message.payload["addr"])
        state.probes.discard(message.payload["owner"])
        super()._h_repl_dirty(tempest, message)

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------
    def is_migratory(self, home: int, block: int) -> bool:
        state = self._mig.get((home, block))
        return state.migratory if state else False
