"""Directory entry structures.

Two encodings:

* :class:`HardwareDirectoryEntry` — DirNNB's full-map directory: no
  structural limit on sharers (Dir\\ :sub:`N`\\ NB = N pointers, no
  broadcast).
* :class:`SoftwareDirectoryEntry` — Stache's software directory
  (Section 3): 64 bits per block, laid out as two state bytes plus six
  one-byte node pointers "to minimize bitfield operations".  When more
  than six sharers exist, the first four pointer bytes become a 32-bit
  sharer bit vector; for machines larger than 32 nodes they instead hold
  a pointer to an auxiliary structure.  The class models those
  representation changes faithfully (and reports which one is active) so
  the encoding's capacity behaviour can be tested, while exposing a plain
  sharer-set API to the protocol.
"""

from __future__ import annotations

import enum
from collections import deque


class DirectoryState(enum.Enum):
    """Stable block states as seen by the home directory."""

    HOME = "home"                # no remote copies; home may read/write
    SHARED = "shared"            # >=1 read-only copies (home readable)
    EXCLUSIVE = "exclusive"      # one remote owner holds it read-write
    # Transient states: a transaction is in flight for this block.
    PENDING_WRITEBACK = "pending-writeback"
    PENDING_INVALIDATE = "pending-invalidate"

    @property
    def is_transient(self) -> bool:
        return self in (
            DirectoryState.PENDING_WRITEBACK,
            DirectoryState.PENDING_INVALIDATE,
        )


class _ObservedState:
    """``state`` property shared by both entry encodings.

    Assignments notify ``_observer`` (the conformance monitor's hook)
    *before* mutating, so a strict monitor raising on an illegal
    transition leaves the entry unchanged.  With no observer installed
    the setter is a plain attribute write behind one None check.
    """

    @property
    def state(self) -> DirectoryState:
        return self._state

    @state.setter
    def state(self, new: DirectoryState) -> None:
        observer = self._observer
        if observer is not None:
            observer(self, self._state, new)
        self._state = new


class HardwareDirectoryEntry(_ObservedState):
    """Full-map entry: DirNNB's per-block directory state."""

    __slots__ = ("_state", "owner", "sharers", "pending", "acks_outstanding",
                 "_observer")

    def __init__(self) -> None:
        self._state = DirectoryState.HOME
        self._observer = None
        self.owner: int | None = None
        self.sharers: set[int] = set()
        #: Requests that arrived while the entry was transient.
        self.pending: deque = deque()
        self.acks_outstanding = 0

    def __repr__(self) -> str:
        return (
            f"HardwareDirectoryEntry({self.state.value}, owner={self.owner}, "
            f"sharers={sorted(self.sharers)})"
        )


POINTER_SLOTS = 6
BITVECTOR_LIMIT = 32


class SoftwareDirectoryEntry(_ObservedState):
    """The 64-bit LimitLESS-style software entry Stache allocates per block."""

    __slots__ = (
        "nodes",
        "_state",
        "owner",
        "pending",
        "acks_outstanding",
        "_pointers",
        "_bitvector",
        "_aux",
        "_observer",
    )

    def __init__(self, nodes: int):
        self.nodes = nodes
        self._state = DirectoryState.HOME
        self._observer = None
        self.owner: int | None = None
        self.pending: deque = deque()
        self.acks_outstanding = 0
        self._pointers: list[int] = []
        self._bitvector: int | None = None
        self._aux: set[int] | None = None

    # ------------------------------------------------------------------
    # Representation management
    # ------------------------------------------------------------------
    @property
    def representation(self) -> str:
        if self._aux is not None:
            return "auxiliary"
        if self._bitvector is not None:
            return "bitvector"
        return "pointers"

    def _overflow(self) -> None:
        """Pointer slots exhausted: switch to bit vector or aux structure."""
        current = set(self._pointers)
        self._pointers = []
        if self.nodes <= BITVECTOR_LIMIT:
            self._bitvector = 0
            for node in current:
                self._bitvector |= 1 << node
        else:
            self._aux = current

    # ------------------------------------------------------------------
    # Sharer-set API
    # ------------------------------------------------------------------
    def add_sharer(self, node: int) -> None:
        if not 0 <= node < self.nodes:
            raise ValueError(f"node {node} out of range")
        if self._aux is not None:
            self._aux.add(node)
            return
        if self._bitvector is not None:
            self._bitvector |= 1 << node
            return
        if node in self._pointers:
            return
        if len(self._pointers) >= POINTER_SLOTS:
            self._overflow()
            self.add_sharer(node)
            return
        self._pointers.append(node)

    def remove_sharer(self, node: int) -> None:
        if self._aux is not None:
            self._aux.discard(node)
        elif self._bitvector is not None:
            self._bitvector &= ~(1 << node)
        elif node in self._pointers:
            self._pointers.remove(node)

    def sharers(self) -> set[int]:
        if self._aux is not None:
            return set(self._aux)
        if self._bitvector is not None:
            return {
                node for node in range(self.nodes)
                if self._bitvector & (1 << node)
            }
        return set(self._pointers)

    def clear_sharers(self) -> None:
        """All copies invalidated; fall back to the compact representation."""
        self._pointers = []
        self._bitvector = None
        self._aux = None

    @property
    def sharer_count(self) -> int:
        if self._aux is not None:
            return len(self._aux)
        if self._bitvector is not None:
            return bin(self._bitvector).count("1")
        return len(self._pointers)

    def __repr__(self) -> str:
        return (
            f"SoftwareDirectoryEntry({self.state.value}, owner={self.owner}, "
            f"{self.representation}, sharers={sorted(self.sharers())})"
        )
