"""The custom delayed-update protocol for EM3D (paper Section 4).

EM3D's bipartite graph is updated under the owners-compute rule, so under
transparent shared memory every remote graph node is fetched, cached,
invalidated and re-fetched each iteration — at least four messages per
datum.  The custom protocol gets close to the minimum of one:

* Two new page types — a **custom home page** and a **custom stache
  page** — hold the graph nodes.
* The stache-like handlers keep count of how many remote graph nodes each
  processor has stached; the home handlers maintain a list of all
  outstanding copies.
* Blocks are allowed to become inconsistent within a step: the home keeps
  its ReadWrite tag even while remote read-only copies exist, so the
  owner's writes run at full hardware speed with no invalidations.
* At the end of a step the barrier is replaced by a flush function that
  traverses the copy list and sends **only the modified value field** of
  each graph node — not the whole cache block — with **no
  acknowledgments**.  Every processor knows how many remote graph nodes
  it has stached and simply counts arriving updates.
* The "graph nodes must not be updated early" constraint is the fuzzy
  barrier: updates are tagged with their step; an update that arrives
  for a step the receiver has not finished consuming is buffered in the
  handler and applied when the receiver advances.

The protocol extends Stache: ordinary shared data still uses the default
invalidation protocol; only registered custom regions get the delayed-
update treatment.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any

from repro.memory.allocator import SharedRegion
from repro.memory.tags import AccessFault, Tag
from repro.network.message import (
    DATA_WORDS,
    REQUEST_WORDS,
    Message,
    VirtualNetwork,
)
from repro.protocols.stache import PAGE_MODE_STACHE, StacheProtocol
from repro.sim.engine import SimulationError
from repro.sim.process import Future
from repro.tempest.interface import Tempest

PAGE_MODE_CUSTOM_HOME = 3
PAGE_MODE_CUSTOM_STACHE = 4

#: Calibrated handler path lengths: an update send is a value copy plus a
#: message launch; an update receive is a few force-writes and a counter.
UPDATE_SEND_CYCLES = 10
UPDATE_RECV_INSTRUCTIONS = 10


class _CustomHomePage:
    """user_word of a custom home page."""

    __slots__ = ("kind", "copies", "value_addrs")

    def __init__(self, kind: str):
        self.kind = kind
        #: block addr -> set of nodes holding a copy ("outstanding copies").
        self.copies: dict[int, set[int]] = defaultdict(set)
        #: block addr -> the value-field addresses to ship on flush.
        self.value_addrs: dict[int, list[int]] = defaultdict(list)


#: EM3D's two phases.  A step-k update of kind E is safe to apply once the
#: receiver has finished compute-H(k-1) (its last reader of E values from
#: step k-1); a step-k update of kind H is safe once compute-E(k) is done.
KIND_E = "e"
KIND_H = "h"


class _NodeUpdateState:
    """Per-node receive-side state for the fuzzy barrier."""

    __slots__ = ("stached", "received", "deferred", "safe_step", "waiter",
                 "wait_key", "next_wait", "flush_next")

    def __init__(self) -> None:
        self.stached: dict[str, int] = defaultdict(int)   # kind -> copies held
        self.received: dict[tuple[str, int], int] = defaultdict(int)
        self.deferred: dict[tuple[str, int], list[dict]] = defaultdict(list)
        # Highest step per kind whose updates may be applied on arrival.
        # E(0) values are not read before compute-H(0), so step-0 E updates
        # are safe immediately; H(0) updates must wait for compute-E(0).
        self.safe_step: dict[str, int] = {KIND_E: 0, KIND_H: -1}
        self.waiter: Future | None = None
        self.wait_key: tuple[str, int] | None = None
        # Next step this node will wait on, per kind (receive side).
        self.next_wait: dict[str, int] = defaultdict(int)
        # Next step this node will flush, per kind (home side).  A copy
        # granted now already contains every value up to that step, so the
        # holder must not expect updates for earlier steps.
        self.flush_next: dict[str, int] = defaultdict(int)


class Em3dUpdateProtocol(StacheProtocol):
    """Stache plus the EM3D delayed-update extension (Typhoon/Update)."""

    name = "em3d-update"

    GET_CUSTOM = "em3d.get"
    DATA_CUSTOM = "em3d.data"
    UPDATE = "em3d.update"
    FAULT_CUSTOM_READ = "em3d.fault_read"
    FAULT_CUSTOM_WRITE = "em3d.fault_write"

    def __init__(self) -> None:
        super().__init__()
        self._custom_pages: dict[int, str] = {}  # page addr -> kind
        self._states: list[_NodeUpdateState] = []

    # ------------------------------------------------------------------
    def install(self, machine) -> None:
        super().install(machine)
        costs = machine.costs
        self._states = [_NodeUpdateState() for _ in machine.nodes]
        for node in machine.nodes:
            tempest = node.tempest
            tempest.register_handler(
                self.GET_CUSTOM, self._h_get_custom,
                costs.home_response,
            )
            tempest.register_handler(
                self.DATA_CUSTOM, self._h_data_custom,
                costs.data_arrival,
            )
            tempest.register_handler(
                self.UPDATE, self._h_update, UPDATE_RECV_INSTRUCTIONS
            )
            tempest.register_handler(
                self.FAULT_CUSTOM_READ, self._f_custom_read,
                costs.miss_request,
            )
            tempest.register_handler(
                self.FAULT_CUSTOM_WRITE, self._f_custom_write,
                costs.miss_request,
            )
            node.np.set_fault_handler(
                PAGE_MODE_CUSTOM_STACHE, False, self.FAULT_CUSTOM_READ
            )
            node.np.set_fault_handler(
                PAGE_MODE_CUSTOM_STACHE, True, self.FAULT_CUSTOM_WRITE
            )
            # Custom home pages keep ReadWrite tags forever, so no fault
            # handler is ever dispatched for PAGE_MODE_CUSTOM_HOME.

    # ------------------------------------------------------------------
    # Setup (application-visible)
    # ------------------------------------------------------------------
    def setup_custom_region(self, region: SharedRegion, kind: str) -> None:
        """Allocate graph-node pages under the custom protocol."""
        machine = self._machine()
        for page_addr in range(region.base, region.end,
                               machine.layout.page_size):
            home = machine.heap.home_of(page_addr)
            machine.nodes[home].tempest.map_page(
                page_addr,
                mode=PAGE_MODE_CUSTOM_HOME,
                home=home,
                initial_tag=Tag.READ_WRITE,
                user_word=_CustomHomePage(kind),
            )
            self._custom_pages[page_addr] = kind

    def register_value_word(self, addr: int) -> None:
        """Declare ``addr`` a graph-node value field (shipped on flush)."""
        machine = self._machine()
        page_addr = machine.layout.page_of(addr)
        kind = self._custom_pages.get(page_addr)
        if kind is None:
            raise SimulationError(f"{addr:#x} is not in a custom region")
        home = machine.heap.home_of(addr)
        page = machine.nodes[home].tempest.page_entry(addr)
        block = machine.layout.block_of(addr)
        page.user_word.value_addrs[block].append(addr)

    # ------------------------------------------------------------------
    # Page faults: custom regions get custom stache pages
    # ------------------------------------------------------------------
    def _page_fault(self, tempest: Tempest, addr: int, is_write: bool) -> int:
        machine = self._machine()
        page_addr = machine.layout.page_of(addr)
        kind = self._custom_pages.get(page_addr)
        if kind is None:
            return super()._page_fault(tempest, addr, is_write)
        tempest.map_page(
            page_addr,
            mode=PAGE_MODE_CUSTOM_STACHE,
            home=machine.heap.home_of(addr),
            initial_tag=Tag.INVALID,
            user_word=kind,
        )
        tempest.stats.incr("em3d.custom_pages_allocated")
        return 0

    # ------------------------------------------------------------------
    # Custom block faults and fetches
    # ------------------------------------------------------------------
    def _f_custom_read(self, tempest: Tempest, fault: AccessFault) -> None:
        entry = tempest.page_entry(fault.block_addr)
        tempest.set_busy(fault.block_addr)
        tempest.send(
            entry.home,
            self.GET_CUSTOM,
            vnet=VirtualNetwork.REQUEST,
            size_words=REQUEST_WORDS,
            addr=fault.block_addr,
            requester=tempest.node_id,
        )

    def _f_custom_write(self, tempest: Tempest, fault: AccessFault) -> None:
        raise SimulationError(
            f"remote write to custom graph page at {fault.addr:#x}: the "
            "EM3D protocol supports owner writes only (owners-compute rule)"
        )

    def _h_get_custom(self, tempest: Tempest, message: Message) -> None:
        """Home grants a copy and records it; its own tag stays ReadWrite."""
        block = message.payload["addr"]
        requester = message.payload["requester"]
        page = tempest.page_entry(block)
        if page is None or page.mode != PAGE_MODE_CUSTOM_HOME:
            raise SimulationError(f"custom get for non-custom block {block:#x}")
        home_page: _CustomHomePage = page.user_word
        home_page.copies[block].add(requester)
        costs = self._machine().costs
        tempest.charge(costs.block_copy)
        tempest.stats.incr("em3d.copies_granted")
        home_state = self._states[tempest.node_id]
        tempest.send(
            requester,
            self.DATA_CUSTOM,
            vnet=VirtualNetwork.RESPONSE,
            size_words=DATA_WORDS,
            addr=block,
            data=tempest.export_block(block),
            kind=home_page.kind,
            # The exported data already reflects every step the home has
            # flushed; the holder's first expected update is this one.
            valid_from=home_state.flush_next[home_page.kind],
        )

    def _h_data_custom(self, tempest: Tempest, message: Message) -> None:
        block = message.payload["addr"]
        kind = message.payload["kind"]
        costs = self._machine().costs
        tempest.charge(costs.block_copy)
        tempest.import_block(block, message.payload["data"])
        tempest.set_ro(block)
        state = self._states[tempest.node_id]
        state.stached[kind] += 1
        # Late join: the copy's data already reflects steps before
        # ``valid_from``, so credit those steps as received (the home will
        # not send them).
        for step in range(state.next_wait[kind], message.payload["valid_from"]):
            state.received[(kind, step)] += 1
        tempest.stats.incr("em3d.blocks_stached")
        tempest.resume()

    # ------------------------------------------------------------------
    # The flush + fuzzy barrier (replaces the step-end barrier)
    # ------------------------------------------------------------------
    def flush_and_wait(self, node_id: int, kind: str, step: int):
        """Generator run by the computation thread at the end of a step.

        Sends this node's modified ``kind`` values to every outstanding
        copy, then waits until all updates for the ``kind`` values this
        node has stached (same step) have arrived.  No acknowledgments.
        """
        if kind not in (KIND_E, KIND_H):
            raise SimulationError(f"unknown EM3D phase kind {kind!r}")
        machine = self._machine()
        tempest = machine.nodes[node_id].tempest
        state = self._states[node_id]

        # Entering this call means the compute phase that produced these
        # values has finished, which also tells us which *incoming*
        # updates are now safe to apply (see the KIND_E/KIND_H note).
        if kind == KIND_H:
            self._advance_safe(tempest, state, KIND_E, step + 1)
        else:
            self._advance_safe(tempest, state, KIND_H, step)

        # --- flush: one value-only message per (block, copy holder) ----
        messages_sent = 0
        for page in tempest.pages_with_mode(PAGE_MODE_CUSTOM_HOME):
            home_page: _CustomHomePage = page.user_word
            if home_page.kind != kind:
                continue
            for block, holders in home_page.copies.items():
                addrs = home_page.value_addrs.get(block)
                if not addrs:
                    continue
                values = {addr: tempest.force_read(addr) for addr in addrs}
                for holder in sorted(holders):
                    messages_sent += 1
                    tempest.send(
                        holder,
                        self.UPDATE,
                        vnet=VirtualNetwork.REQUEST,
                        size_words=2 + len(values),
                        addr=block,
                        values=values,
                        kind=kind,
                        step=step,
                    )
        # Mark the flush done *before* any yield so concurrently arriving
        # get requests see a consistent flush step.
        state.flush_next[kind] = step + 1
        if messages_sent:
            tempest.stats.incr("em3d.updates_sent", messages_sent)
            yield messages_sent * UPDATE_SEND_CYCLES

        # --- fuzzy barrier: count arrivals for (kind, step) -------------
        expected = state.stached[kind]
        key = (kind, step)
        if state.received[key] < expected:
            if state.waiter is not None:
                raise SimulationError(f"node {node_id} already waiting")
            state.waiter = Future(tempest.engine)
            state.wait_key = key
            yield state.waiter
        del state.received[key]
        state.next_wait[kind] = step + 1

    def _advance_safe(self, tempest: Tempest, state: _NodeUpdateState,
                      kind: str, new_safe: int) -> None:
        """Raise the apply watermark for ``kind`` and drain deferrals."""
        while state.safe_step[kind] < new_safe:
            state.safe_step[kind] += 1
            key = (kind, state.safe_step[kind])
            for payload in state.deferred.pop(key, []):
                self._apply_update(tempest, state, key, payload)

    def _h_update(self, tempest: Tempest, message: Message) -> None:
        state = self._states[tempest.node_id]
        kind = message.payload["kind"]
        step = message.payload["step"]
        key = (kind, step)
        if step > state.safe_step[kind]:
            # Early update (sender raced ahead): buffer it; the handler
            # IS the fuzzy barrier.
            state.deferred[key].append(message.payload)
            tempest.stats.incr("em3d.updates_deferred")
            return
        self._apply_update(tempest, state, key, message.payload)
        self._maybe_release_waiter(tempest, state, key)

    def _apply_update(self, tempest: Tempest, state: _NodeUpdateState,
                      key: tuple[str, int], payload: dict) -> None:
        for addr, value in payload["values"].items():
            tempest.force_write(addr, value)
        state.received[key] += 1
        tempest.stats.incr("em3d.updates_received")

    def _apply_deferred(self, tempest: Tempest, state: _NodeUpdateState,
                        key: tuple[str, int]) -> None:
        for payload in state.deferred.pop(key, []):
            self._apply_update(tempest, state, key, payload)

    def _maybe_release_waiter(self, tempest: Tempest, state: _NodeUpdateState,
                              key: tuple[str, int]) -> None:
        if state.waiter is None or key != state.wait_key:
            return
        kind, _step = key
        if state.received[key] >= state.stached[kind]:
            waiter, state.waiter = state.waiter, None
            state.wait_key = None
            waiter.resolve(None)

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------
    def stached_count(self, node_id: int, kind: str) -> int:
        return self._states[node_id].stached[kind]

    def copy_holders(self, home_id: int, block: int) -> set[int]:
        machine = self._machine()
        page = machine.nodes[home_id].tempest.page_entry(block)
        if page is None or page.mode != PAGE_MODE_CUSTOM_HOME:
            return set()
        return set(page.user_word.copies.get(block, set()))
