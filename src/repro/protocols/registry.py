"""The protocol registry: every installable user-level protocol, by name.

One entry per protocol library, carrying what the composition layer
(:mod:`repro.backends`) needs to build and validate a system:

* a lazy **factory** (protocol modules stay unimported until used),
* the **capabilities** the protocol requires of its backend (validated
  against the backend's ``provides`` set at composition time), and
* the name of its **conformance spec** in
  :data:`repro.protocols.conformance.SPECS` (None for protocols that
  deliberately have no spec).

This module imports nothing from ``repro.typhoon`` or ``repro.blizzard``
— protocols and their registry are backend-neutral by construction (a
test enforces the import ban for the whole ``repro.protocols`` package).

Capability vocabulary (what a backend can promise):

``fine-grain-tags``
    Per-block access tags with user-installable block-fault handlers.
``active-messages``
    Low-overhead user-level messages dispatched to registered handlers.
``bulk-transfer``
    Node-to-node bulk data transfer with completion notification.
``decoupled-handlers``
    Handlers run on a dedicated processor (Typhoon's NP, or the
    decoupled backend's second-CPU dispatch loop) while the computation
    thread is blocked, so a protocol may wait on a bare future without
    polling.  A single-CPU all-software backend (Blizzard) does not
    have this: its stalled CPU must spin-poll to run handlers, and a
    protocol whose wait path never polls (EM3D-update's flush/fuzzy
    barrier) would deadlock — which is exactly what composition-time
    validation rejects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

__all__ = [
    "ProtocolEntry",
    "PROTOCOLS",
    "protocol_entry",
    "protocol_names",
]

#: The capability names backends and protocols may use.
CAPABILITIES = frozenset({
    "fine-grain-tags",
    "active-messages",
    "bulk-transfer",
    "decoupled-handlers",
})


@dataclass(frozen=True)
class ProtocolEntry:
    """One registered protocol library."""

    #: Registry key (the ``<protocol>`` half of ``backend:protocol``).
    name: str
    #: Zero-argument factory returning a fresh protocol instance.
    factory: Callable[[], object]
    #: One-line description (the ``systems`` CLI listing).
    description: str
    #: Backend capabilities this protocol needs (see module docstring).
    requires: frozenset
    #: Key into :data:`repro.protocols.conformance.SPECS`.  Every
    #: registered protocol carries one (em3d-update's is step-indexed);
    #: None remains legal for out-of-tree protocols without a table.
    conformance: str | None
    #: True when the protocol's dispatch can be lowered into the
    #: table-driven compiled kernel (:mod:`repro.protocols.compiled`):
    #: its behaviour is fully described by registered handlers plus a
    #: conformance transition table.  Protocols that deliberately step
    #: outside the table (em3d-update's delayed updates) stay False and
    #: always run interpreted.
    compilable: bool = False


def _stache():
    from repro.protocols.stache import StacheProtocol

    return StacheProtocol()


def _migratory():
    from repro.protocols.migratory import MigratoryProtocol

    return MigratoryProtocol()


def _ivy():
    from repro.protocols.ivy import IvyProtocol

    return IvyProtocol()


def _em3d_update():
    from repro.protocols.em3d_update import Em3dUpdateProtocol

    return Em3dUpdateProtocol()


#: Every installable protocol, in presentation order.
PROTOCOLS: dict[str, ProtocolEntry] = {
    entry.name: entry
    for entry in (
        ProtocolEntry(
            name="stache",
            factory=_stache,
            description="transparent shared memory, block-grain "
                        "invalidation (paper Section 3)",
            requires=frozenset({"fine-grain-tags", "active-messages"}),
            conformance="stache",
            compilable=True,
        ),
        ProtocolEntry(
            name="migratory",
            factory=_migratory,
            description="Stache plus migratory-sharing detection and "
                        "exclusive-on-read grants",
            requires=frozenset({"fine-grain-tags", "active-messages"}),
            # MigratoryProtocol.name is "stache-migratory"; the spec
            # table keys on that.
            conformance="stache-migratory",
            compilable=True,
        ),
        ProtocolEntry(
            name="ivy",
            factory=_ivy,
            description="page-grain DSM (Li & Hudak's fixed distributed "
                        "manager) over bulk transfer",
            requires=frozenset({
                "fine-grain-tags", "active-messages", "bulk-transfer",
            }),
            conformance="ivy",
            compilable=True,
        ),
        ProtocolEntry(
            name="em3d-update",
            factory=_em3d_update,
            description="Stache plus EM3D's delayed-update flush and "
                        "fuzzy barrier (paper Section 4)",
            # The flush/fuzzy barrier blocks the computation thread on a
            # bare future while handlers count arriving updates: only a
            # backend with a decoupled handler processor can run them.
            requires=frozenset({
                "fine-grain-tags", "active-messages", "decoupled-handlers",
            }),
            # Step-indexed spec: single-writer is relaxed *within* a
            # step only; the flush boundary restores it, and the
            # monitor checks the watermark/flush-order invariants.
            conformance="em3d-update",
        ),
    )
}


def protocol_names() -> tuple[str, ...]:
    """Registered protocol names, in presentation order."""
    return tuple(PROTOCOLS)


def protocol_entry(name: str) -> ProtocolEntry:
    """Look up one protocol; raises ``ValueError`` on unknown names."""
    entry = PROTOCOLS.get(name)
    if entry is None:
        raise ValueError(
            f"unknown protocol {name!r}; registered protocols: "
            f"{', '.join(PROTOCOLS)}"
        )
    return entry
