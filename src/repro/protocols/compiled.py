"""The protocol compiler: lower a :class:`ProtocolSpec` into dense tables.

PR 3 expressed every table protocol as a declarative specification —
legal transition relations plus handler-name causality sets
(:mod:`repro.protocols.conformance`).  This module inverts that
relationship: instead of the hand-written handler classes being the
source of truth and the spec a passive checker, the spec's transition
tables are **lowered at machine-build time** into the dense arrays a
table-driven dispatch kernel executes:

* **Transition tables** — the spec's ``frozenset`` relations become flat
  ``bytearray`` matrices indexed ``old_index * n_states + new_index``,
  so legality is one index instead of a hash probe, and the successor
  set of every state is a precomputed tuple.

* **Event classification** — every handler name is assigned a dense
  event index and a :class:`EventKind` derived from the spec's causality
  sets (request, grant, inval, ack, writeback request/reply, other).

* **Dispatch rows** — each registered handler is resolved once into a
  :class:`DispatchRow`: the *raw* handler function (the
  :class:`~repro.tempest.messaging.DeliveryGuard` wrapper is peeled via
  its ``__wrapped__`` tag and its duplicate check re-fused by the
  kernel), the guard itself, and the invocation cost with the backend's
  cycles-per-instruction **folded in as a constant** — the multiply the
  interpreted dispatcher performs per message happens here, once.

The dense ``(state_index, event_index)`` array produced by
:meth:`CompiledProtocolTable.dense` carries, per cell, the successor
bitmask and the handler's folded cost — the machine-readable form of the
spec that the kernel layer (:mod:`repro.kernel`) and the differential
harness both consume.

This module is backend-neutral by construction (the
``repro.protocols`` import ban applies): it sees only a spec, a handler
registry, and scalar cost parameters.  The backend-specific dispatch
loops that *execute* these tables live in :mod:`repro.kernel.compiled`.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import Any, Callable

from repro.memory.tags import Tag
from repro.protocols.conformance import ProtocolSpec, SPECS
from repro.protocols.directory import DirectoryState
from repro.tempest.messaging import HandlerRegistry

__all__ = [
    "EventKind",
    "DispatchRow",
    "CompiledTransitionTable",
    "CompiledProtocolTable",
    "compile_protocol",
    "compilable_spec",
]

#: Canonical state orders (fixed, so indices are stable across nodes
#: and across the differential harness's two machines).
DIRECTORY_STATES: tuple[DirectoryState, ...] = tuple(DirectoryState)
TAG_STATES: tuple[Tag, ...] = tuple(Tag)


class EventKind(IntEnum):
    """Dense classification of a handler, from the spec's causality sets."""

    REQUEST = 0
    GRANT = 1
    INVAL = 2
    ACK = 3
    WB_REQUEST = 4
    WB_REPLY = 5
    OTHER = 6


@dataclass(frozen=True)
class DispatchRow:
    """One handler, resolved for table-driven dispatch.

    ``fn`` is the raw handler (guard wrapper peeled); ``seen`` is the
    guard's duplicate check to re-fuse before calling ``fn`` (None when
    the handler was registered unguarded); ``cost`` is the full folded
    invocation charge in cycles.
    """

    name: str
    index: int
    kind: EventKind
    fn: Callable[..., Any]
    seen: Callable[[int, int], bool] | None
    cost: int


class CompiledTransitionTable:
    """One legality relation as a dense matrix over indexed states."""

    __slots__ = ("states", "index", "matrix", "successors", "masks")

    def __init__(self, states: tuple, relation: frozenset):
        self.states = states
        self.index = {state: i for i, state in enumerate(states)}
        n = len(states)
        self.matrix = bytearray(n * n)
        for old, new in relation:
            self.matrix[self.index[old] * n + self.index[new]] = 1
        #: Per-state tuple of legal successor indices, and the same as a
        #: bitmask int (bit i set = successor index i legal).
        self.successors = tuple(
            tuple(j for j in range(n) if self.matrix[i * n + j])
            for i in range(n)
        )
        self.masks = tuple(
            sum(1 << j for j in row) for row in self.successors
        )

    def legal(self, old, new) -> bool:
        """Index-based legality check, equivalent to spec membership."""
        n = len(self.states)
        return bool(self.matrix[self.index[old] * n + self.index[new]])

    def pairs(self) -> frozenset:
        """Round-trip the matrix back to the spec's relation form."""
        states = self.states
        n = len(states)
        return frozenset(
            (states[i], states[j])
            for i in range(n)
            for j in range(n)
            if self.matrix[i * n + j]
        )

    def __repr__(self) -> str:
        edges = sum(self.matrix)
        return (f"CompiledTransitionTable(states={len(self.states)}, "
                f"edges={edges})")


class CompiledProtocolTable:
    """Everything the kernel needs to dispatch one node's protocol.

    Built per node (handler registries are per node) but cheap: the
    transition matrices are shared structure, and dispatch rows resolve
    lazily so handlers registered after the kernel installs (software
    barriers, test fixtures) still compile on first use.
    """

    def __init__(self, spec: ProtocolSpec, registry: HandlerRegistry,
                 cycles_per_instruction: int):
        self.spec = spec
        self.registry = registry
        self.cycles_per_instruction = cycles_per_instruction
        self.directory = (
            CompiledTransitionTable(DIRECTORY_STATES,
                                    spec.directory_transitions)
            if spec.directory_transitions is not None else None
        )
        self.tags = (
            CompiledTransitionTable(TAG_STATES, spec.tag_transitions)
            if spec.tag_transitions is not None else None
        )
        self._kinds: dict[str, EventKind] = {}
        for names, kind in (
            (spec.request_handlers, EventKind.REQUEST),
            (spec.grant_handlers, EventKind.GRANT),
            (spec.inval_handlers, EventKind.INVAL),
            (spec.ack_handlers, EventKind.ACK),
            (spec.writeback_request_handlers, EventKind.WB_REQUEST),
            (spec.writeback_reply_handlers, EventKind.WB_REPLY),
        ):
            for name in names:
                self._kinds[name] = kind
        self.rows: dict[str, DispatchRow] = {}
        # Pre-resolve everything already registered so install-time
        # errors (negative costs, malformed wrappers) surface eagerly.
        for name in registry.names():
            self.row(name)

    # ------------------------------------------------------------------
    def row(self, name: str) -> DispatchRow:
        """The dispatch row for ``name``, resolving it on first use."""
        row = self.rows.get(name)
        if row is None:
            spec = self.registry.lookup(name)  # raises on unknown names
            fn = spec.fn
            raw = getattr(fn, "__wrapped__", None)
            if raw is None:
                seen = None
                raw = fn
            else:
                seen = fn.__guard__.seen
            row = self.rows[name] = DispatchRow(
                name=name,
                index=len(self.rows),
                kind=self._kinds.get(name, EventKind.OTHER),
                fn=raw,
                seen=seen,
                cost=spec.instructions * self.cycles_per_instruction,
            )
        return row

    def event_index(self, name: str) -> int:
        return self.row(name).index

    def dense(self) -> list[tuple[int, int, int]]:
        """The ``(state_index, event_index) -> (successor_mask, kind,
        cost)`` array, flattened row-major over directory states.

        The artifact the issue names: every cell is constants only —
        successor legality as a bitmask, the event's kind, and the
        handler's folded cycle cost.  Protocols without a directory
        relation (IVY) use their tag table's states instead.
        """
        table = self.directory if self.directory is not None else self.tags
        masks = table.masks if table is not None else (0,)
        rows = sorted(self.rows.values(), key=lambda r: r.index)
        return [
            (mask, int(row.kind), row.cost)
            for mask in masks
            for row in rows
        ]

    def __repr__(self) -> str:
        return (f"CompiledProtocolTable(spec={self.spec.name!r}, "
                f"handlers={len(self.rows)})")


def compilable_spec(name: str | None) -> ProtocolSpec | None:
    """The spec to compile for a protocol name, or None.

    A protocol is compilable exactly when its registry entry says so
    *and* a conformance spec exists to lower — the same tables drive
    both the kernel and the checker.  em3d-update has a (step-indexed)
    spec but is not compilable: its delayed-update handlers step
    outside the transition table, so it always runs interpreted.
    """
    from repro.protocols.registry import PROTOCOLS

    if name is None:
        return None
    for entry in PROTOCOLS.values():
        if name in (entry.name, entry.conformance):
            if not entry.compilable:
                return None
            return SPECS.get(entry.conformance)
    return None


def compile_protocol(spec: ProtocolSpec, registry: HandlerRegistry,
                     cycles_per_instruction: int) -> CompiledProtocolTable:
    """Lower ``spec`` against one node's registry into dense tables."""
    return CompiledProtocolTable(spec, registry, cycles_per_instruction)
