"""Coherence-invariant checking.

These checks run at quiescence (no messages in flight, no handler
running) and assert the invariants that make a protocol a protocol:

* **Single writer**: at most one node holds a writable copy of a block,
  and then no other node holds any copy.
* **Directory accuracy**: the home's directory state matches the copies
  that actually exist.  Stache's sharer lists may be a *superset* of the
  actual read-only copy holders (replacement of clean copies is silent by
  design), but never a subset; owners are always exact.
* **Data coherence**: every read-only copy's data equals the home's data
  (an invalidation protocol never lets readable copies diverge).

The test suite calls these after every property-based run; users can call
them after their own simulations as a sanity net.
"""

from __future__ import annotations

from repro.memory.allocator import SharedRegion
from repro.memory.cache import LineState
from repro.memory.tags import Tag
from repro.protocols.directory import DirectoryState
from repro.protocols.stache import PAGE_MODE_HOME


class CoherenceViolation(AssertionError):
    """An invariant does not hold; the message pinpoints block and nodes."""


def check_stache_coherence(machine, region: SharedRegion) -> None:
    """Verify Stache invariants for every block of ``region`` at quiescence."""
    layout = machine.layout
    for page_addr in range(region.base, region.end, layout.page_size):
        home_id = machine.heap.home_of(page_addr)
        home = machine.nodes[home_id]
        home_page = home.tempest.page_entry(page_addr)
        if home_page is None or home_page.mode != PAGE_MODE_HOME:
            raise CoherenceViolation(
                f"home page {page_addr:#x} missing on node {home_id}"
            )
        directory = home_page.user_word
        for block in layout.blocks_in_page(page_addr):
            _check_stache_block(machine, block, home_id, directory.get(block))


def _collect_tags(machine, block: int) -> dict[int, Tag]:
    """Tag per node for nodes that have the block's page mapped."""
    tags = {}
    for node in machine.nodes:
        if node.page_table.is_mapped(block):
            tags[node.node_id] = node.tags.read_tag(block)
    return tags


def _check_stache_block(machine, block: int, home_id: int, entry) -> None:
    tags = _collect_tags(machine, block)
    writers = [n for n, tag in tags.items() if tag is Tag.READ_WRITE]
    readers = [n for n, tag in tags.items() if tag is Tag.READ_ONLY]
    busy = [n for n, tag in tags.items() if tag is Tag.BUSY]

    if busy:
        raise CoherenceViolation(
            f"block {block:#x}: Busy tags at quiescence on nodes {busy}"
        )
    if len(writers) > 1:
        raise CoherenceViolation(
            f"block {block:#x}: multiple writers {writers}"
        )
    if writers and readers:
        raise CoherenceViolation(
            f"block {block:#x}: writer {writers} coexists with readers {readers}"
        )

    state = entry.state if entry is not None else DirectoryState.HOME
    owner = entry.owner if entry is not None else None
    sharers = entry.sharers() if entry is not None else set()

    if state.is_transient:
        raise CoherenceViolation(
            f"block {block:#x}: transient directory state {state} at quiescence"
        )
    if state is DirectoryState.EXCLUSIVE:
        if writers != [owner]:
            raise CoherenceViolation(
                f"block {block:#x}: directory owner {owner} but writers {writers}"
            )
        if tags.get(home_id) is not Tag.INVALID:
            raise CoherenceViolation(
                f"block {block:#x}: remote-exclusive but home tag is "
                f"{tags.get(home_id)}"
            )
    else:
        remote_writers = [n for n in writers if n != home_id]
        if remote_writers:
            raise CoherenceViolation(
                f"block {block:#x}: writers {remote_writers} but directory "
                f"state {state}"
            )
        # Silent clean replacement means sharer lists may be stale
        # supersets, never subsets.
        remote_readers = {n for n in readers if n != home_id}
        if not remote_readers <= sharers:
            raise CoherenceViolation(
                f"block {block:#x}: readers {remote_readers} not all in "
                f"directory sharer list {sorted(sharers)}"
            )
        # Data: every read-only copy matches the home copy.
        home_data = machine.nodes[home_id].image.export_block(block)
        for reader in remote_readers:
            copy = machine.nodes[reader].image.export_block(block)
            if copy != home_data:
                raise CoherenceViolation(
                    f"block {block:#x}: reader {reader} data {copy} != "
                    f"home data {home_data}"
                )


def check_dirnnb_coherence(machine, region: SharedRegion) -> None:
    """Verify DirNNB invariants for every block of ``region`` at quiescence."""
    layout = machine.layout
    for page_addr in range(region.base, region.end, layout.page_size):
        for block in layout.blocks_in_page(page_addr):
            _check_dirnnb_block(machine, block)


def _check_dirnnb_block(machine, block: int) -> None:
    home_id = machine.home_of(block)
    entry = machine.nodes[home_id].directory.entries().get(block)
    lines = {}
    for node in machine.nodes:
        line = node.cache.lookup(block)
        if line is not None:
            lines[node.node_id] = line.state

    owners = [n for n, s in lines.items() if s is LineState.EXCLUSIVE]
    sharers_actual = {n for n, s in lines.items() if s is LineState.SHARED}

    if len(owners) > 1:
        raise CoherenceViolation(f"block {block:#x}: multiple owners {owners}")
    if owners and sharers_actual:
        raise CoherenceViolation(
            f"block {block:#x}: owner {owners} coexists with sharers "
            f"{sorted(sharers_actual)}"
        )

    if entry is None:
        if lines:
            raise CoherenceViolation(
                f"block {block:#x}: cached copies {lines} with no directory entry"
            )
        return
    if entry.state.is_transient:
        raise CoherenceViolation(
            f"block {block:#x}: transient state {entry.state} at quiescence"
        )
    if entry.state is DirectoryState.EXCLUSIVE:
        if owners != [entry.owner]:
            raise CoherenceViolation(
                f"block {block:#x}: directory owner {entry.owner} but "
                f"cache owners {owners}"
            )
    else:
        if owners:
            raise CoherenceViolation(
                f"block {block:#x}: owners {owners} in state {entry.state}"
            )
        if not sharers_actual <= entry.sharers:
            raise CoherenceViolation(
                f"block {block:#x}: cached sharers {sorted(sharers_actual)} "
                f"not in directory {sorted(entry.sharers)}"
            )
