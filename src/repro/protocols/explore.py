"""Bounded symbolic exploration of protocol transition relations.

The conformance layer (:mod:`repro.protocols.conformance`) declares each
protocol's legal behaviour as data: transition tables plus handler
vocabularies.  The tests that exercise those tables, however, were
hand-written — someone had to *think of* the late-grant race before
``test_late_grant_race_is_poisoned_and_refetched`` could pin it.  This
module closes that gap: it walks an abstract model of each protocol's
transition relation over a small bound (2–3 nodes, 1–2 blocks, a couple
of faulting accesses per node), enumerating every interleaving of
interface operations and in-flight message deliveries — including the
overtake/reorder schedules the :class:`~repro.network.faults.FaultPlan`
vocabulary can express — and emits each frontier as a concrete,
deterministically *pinned* litmus test (an access program plus a
:class:`~repro.network.faults.ScriptedFaultPlan` schedule) that
:mod:`repro.harness.litmus` replays on the real simulator.

Three things fall out:

* **Coverage, not sampling.**  Every reachable ``(state, event)`` edge
  of every compilable :class:`ProtocolSpec` is enumerated; the emitted
  corpus is a greedy set cover, so replaying it drives the real machine
  through every edge the model can reach.  The grant-vs-invalidation
  overtaking family is *derived*, not guessed.
* **A second implementation to diverge against.**  The models here
  mirror the handlers line for line; every state mutation the model
  performs is asserted against the declarative tables
  (:class:`SpecDivergence` on mismatch), so the spec, the handlers, and
  the model must all agree before a single test is emitted.
* **Determinism.**  Exploration draws no random numbers and reads no
  clocks; the same spec and bounds produce byte-identical corpora,
  which is what lets ``tests/litmus/`` be committed and CI regenerate
  it, failing on drift.

The models deliberately re-implement the protocol logic instead of
driving the real classes: the real handlers are welded to the event
engine (charges, futures, processes), while exploration needs a pure
state -> state function it can fork thousands of times.  The
conformance assertions plus the replay of every emitted case on the
real machines are what keep the twin honest.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from itertools import permutations

from repro.memory.tags import Tag
from repro.protocols.conformance import (
    DIRNNB_SPEC,
    IVY_SPEC,
    STACHE_SPEC,
    ProtocolSpec,
)
from repro.protocols.directory import DirectoryState

__all__ = [
    "ExploreConfig",
    "ExplorationResult",
    "SpecDivergence",
    "SynthesizedCase",
    "explore",
    "explore_protocol",
    "synthesize_corpus",
    "EXPLORABLE_PROTOCOLS",
    "SCHEDULE_STRIDE",
]

#: Cycles between consecutive pinned delivery slots.  Much larger than
#: any natural handler/transfer latency in the simulator (an IVY page
#: transfer is the worst case), so a schedule of slot-delays reproduces
#: the explored interleaving regardless of backend timing details.
SCHEDULE_STRIDE = 20_000

#: Message payload keys whose values are node ids (needed when
#: canonicalizing states under node permutation).
_NODE_KEYS = frozenset({
    "requester", "sharer", "owner", "member", "home", "manager",
})

_REQUEST = "request"
_RESPONSE = "response"


class SpecDivergence(Exception):
    """The abstract model stepped outside the declarative spec.

    Raised during exploration when a modelled handler performs a
    directory/tag transition absent from the protocol's tables or emits
    a handler outside its vocabulary — i.e. the spec and the (modelled)
    implementation disagree.  The message names the offending edge.
    """


@dataclass(frozen=True)
class ExploreConfig:
    """Bounds for one exploration: small by design (litmus, not model
    checking at scale)."""

    nodes: int = 3
    blocks: int = 1
    ops_per_node: int = 2
    #: A delivery may jump at most this many queued messages on its
    #: channel (0 = strict FIFO; 1 models one in-flight overtake, which
    #: is what a single ``reorder`` fault verdict can express).
    max_overtake: int = 1
    #: Optional cap on the *total* faulting accesses across all nodes;
    #: lets a 3-node bound stay tractable (any two nodes can still use
    #: their full per-node budget against each other).
    total_ops: int | None = None
    #: Trace-depth bound.  Necessary, not merely economical: with three
    #: nodes the explorer discovers a genuine adversarial livelock —
    #: two remote requesters can poison each other's grants forever
    #: (each refetch triggers the writeback/invalidation that poisons
    #: the other's next grant), and the growing fetch sequence numbers
    #: make every round a fresh state.  Fair delivery terminates the
    #: real machine; the unfair schedules are unbounded, so exploration
    #: is depth-bounded like any litmus-scale model check.
    max_steps: int = 20

    def __post_init__(self):
        if self.nodes < 2 or self.blocks < 1 or self.ops_per_node < 1:
            raise ValueError(f"degenerate bounds {self!r}")


# ----------------------------------------------------------------------
# Path state: one explored prefix (trace + pending messages)
# ----------------------------------------------------------------------
@dataclass
class _Path:
    """A mutable exploration prefix; forked by deep copy per choice."""

    state: dict
    trace: list = field(default_factory=list)
    #: mid -> {handler, src, dst, vnet, payload, send_step, deliver_step}
    msgs: dict = field(default_factory=dict)
    next_mid: int = 0
    counters: dict = field(default_factory=dict)
    #: Edges taken by the step currently being applied.
    step_edges: list = field(default_factory=list)
    #: Nodes unblocked during the current step.
    step_unblocked: set = field(default_factory=set)

    # -- message plumbing ----------------------------------------------
    def send(self, handler: str, src: int, dst: int, vnet: str,
             **payload) -> None:
        mid = self.next_mid
        self.next_mid += 1
        step = len(self.trace)
        self.msgs[mid] = {
            "handler": handler, "src": src, "dst": dst, "vnet": vnet,
            "payload": payload, "send_step": step, "deliver_step": None,
        }
        if src == dst:
            # Local messages never cross the observed interconnect (and
            # never consult the fault plan): deliver synchronously.
            self.msgs[mid]["deliver_step"] = step
            self.state["local"].append(mid)
        else:
            self.state["chan"].setdefault((src, dst, vnet), []).append(mid)

    def incr(self, counter: str, amount: int = 1) -> None:
        self.counters[counter] = self.counters.get(counter, 0) + amount

    def edge(self, state_key, event: str, dst_state) -> None:
        self.step_edges.append((_value(state_key), event, _value(dst_state)))

    def unblock(self, node: int) -> None:
        if self.state["blocked"][node]:
            self.state["blocked"][node] = False
            self.step_unblocked.add(node)


def _value(state) -> str | None:
    return state.value if hasattr(state, "value") else state


def _edge_sort_key(edge):
    return tuple("" if part is None else str(part) for part in edge)


# ----------------------------------------------------------------------
# Model base: shared send/assert/canonicalize machinery
# ----------------------------------------------------------------------
class _Model:
    """One protocol's pure transition-relation twin."""

    name: str
    spec: ProtocolSpec

    def __init__(self, config: ExploreConfig):
        self.config = config
        self.home = 0
        handler_sets = (
            self.spec.request_handlers | self.spec.grant_handlers
            | self.spec.inval_handlers | self.spec.ack_handlers
            | self.spec.writeback_request_handlers
            | self.spec.writeback_reply_handlers | self.spec.update_handlers
        )
        self._vocabulary = handler_sets

    # -- spec assertions -----------------------------------------------
    def assert_dir(self, old: DirectoryState, new: DirectoryState,
                   block: int) -> None:
        table = self.spec.directory_transitions
        if table is not None and (old, new) not in table:
            raise SpecDivergence(
                f"{self.name}: model directory transition "
                f"{old.value} -> {new.value} for block {block} is not in "
                f"the spec's directory_transitions table"
            )

    def assert_tag(self, old: Tag, new: Tag, node: int, block: int) -> None:
        table = self.spec.tag_transitions
        if table is not None and (old, new) not in table:
            raise SpecDivergence(
                f"{self.name}: model tag transition {old.value} -> "
                f"{new.value} at node {node} block {block} is not in the "
                f"spec's tag_transitions table"
            )

    def assert_handler(self, handler: str) -> None:
        if handler not in self._vocabulary:
            raise SpecDivergence(
                f"{self.name}: model sent handler {handler!r}, which is "
                f"outside the spec's handler vocabulary"
            )

    # -- state mutation helpers ----------------------------------------
    def set_dir(self, path: _Path, block: int, new: DirectoryState) -> None:
        entry = path.state["dir"][block]
        old = entry["state"]
        if old is not new:
            self.assert_dir(old, new, block)
            entry["state"] = new

    def set_tag(self, path: _Path, node: int, block: int, new: Tag) -> None:
        tags = path.state["tag"]
        old = tags[(node, block)]
        if old is not new:
            self.assert_tag(old, new, node, block)
            tags[(node, block)] = new

    # -- interface required from subclasses ----------------------------
    def initial(self) -> dict:
        raise NotImplementedError

    def fault_ops(self, state: dict, node: int) -> list:
        raise NotImplementedError

    def do_op(self, path: _Path, node: int, rw: str, block: int) -> None:
        raise NotImplementedError

    def deliver(self, path: _Path, mid: int) -> None:
        raise NotImplementedError

    def freeze(self, state: dict, perm: tuple) -> tuple:
        raise NotImplementedError

    # -- shared skeleton ------------------------------------------------
    def base_state(self) -> dict:
        config = self.config
        nodes = config.nodes
        total = config.total_ops
        if total is None:
            total = nodes * config.ops_per_node
        return {
            "blocked": {n: False for n in range(nodes)},
            "budget": {n: config.ops_per_node for n in range(nodes)},
            "total": total,
            "chan": {},
            "local": [],
        }

    def drain_local(self, path: _Path) -> None:
        """Process synchronously-delivered (src == dst) messages."""
        while path.state["local"]:
            mid = path.state["local"].pop(0)
            self.deliver(path, mid)

    def freeze_channels(self, state: dict, perm: tuple) -> tuple:
        frozen = []
        for (src, dst, vnet), fifo in state["chan"].items():
            if not fifo:
                continue
            frozen.append((
                (perm[src], perm[dst], vnet),
                tuple(self._frozen_msg_key(mid, perm) for mid in fifo),
            ))
        return tuple(sorted(frozen))

    def _frozen_msg_key(self, mid: int, perm: tuple):
        # The path owns the message table; models stash it per freeze.
        msg = self._freeze_msgs[mid]
        payload = tuple(sorted(
            (key, perm[val] if key in _NODE_KEYS and val is not None
             else _value(val))
            for key, val in msg["payload"].items()
        ))
        return (msg["handler"], payload)

    def canonical(self, path: _Path) -> tuple:
        """Minimal frozen form over permutations of non-home nodes."""
        self._freeze_msgs = path.msgs
        others = [n for n in range(self.config.nodes) if n != self.home]
        best = None
        for perm_others in permutations(others):
            perm = list(range(self.config.nodes))
            for original, renamed in zip(others, perm_others):
                perm[original] = renamed
            frozen = self.freeze(path.state, tuple(perm))
            if best is None or frozen < best:
                best = frozen
        del self._freeze_msgs
        return best

    def freeze_base(self, state: dict, perm: tuple) -> tuple:
        return (
            tuple(sorted((perm[n], bool(blocked))
                         for n, blocked in state["blocked"].items())),
            tuple(sorted((perm[n], budget)
                         for n, budget in state["budget"].items())),
            state["total"],
            self.freeze_channels(state, perm),
        )


# ----------------------------------------------------------------------
# Stache (and, by table identity, stache-migratory conformance)
# ----------------------------------------------------------------------
class _StacheModel(_Model):
    """Twin of :class:`repro.protocols.stache.StacheProtocol`'s handler
    set over pre-faulted pages (no page faults, migrations, or
    replacements inside the bound)."""

    name = "stache"
    spec = STACHE_SPEC

    def initial(self) -> dict:
        state = self.base_state()
        nodes, blocks = self.config.nodes, self.config.blocks
        state["tag"] = {
            (n, b): Tag.READ_WRITE if n == self.home else Tag.INVALID
            for n in range(nodes) for b in range(blocks)
        }
        state["dir"] = {
            b: {"state": DirectoryState.HOME, "owner": None,
                "sharers": set(), "acks": 0, "pending": []}
            for b in range(blocks)
        }
        state["fetch"] = {}     # (node, block) -> seq
        state["req_seq"] = {}   # (block, requester) -> seq
        state["poison"] = {}    # (node, block) -> seq
        state["pending_fault"] = {}
        return state

    def freeze(self, state: dict, perm: tuple) -> tuple:
        dirs = tuple(
            (b, entry["state"].value,
             None if entry["owner"] is None else perm[entry["owner"]],
             tuple(sorted(perm[s] for s in entry["sharers"])),
             entry["acks"],
             tuple((perm[r], w) for r, w in entry["pending"]))
            for b, entry in sorted(state["dir"].items())
        )
        return self.freeze_base(state, perm) + (
            tuple(sorted(((perm[n], b), tag.value)
                         for (n, b), tag in state["tag"].items())),
            dirs,
            tuple(sorted(((perm[n], b), seq)
                         for (n, b), seq in state["fetch"].items())),
            tuple(sorted(((b, perm[r]), seq)
                         for (b, r), seq in state["req_seq"].items())),
            tuple(sorted(((perm[n], b), seq)
                         for (n, b), seq in state["poison"].items())),
            tuple(sorted((perm[n], b)
                         for n, b in state["pending_fault"].items()
                         if b is not None)),
        )

    # -- interface operations ------------------------------------------
    def fault_ops(self, state: dict, node: int) -> list:
        ops = []
        for b in range(self.config.blocks):
            tag = state["tag"][(node, b)]
            if tag is Tag.INVALID:
                ops.append(("r", b))
            if tag in (Tag.INVALID, Tag.READ_ONLY):
                ops.append(("w", b))
        return ops

    def do_op(self, path: _Path, node: int, rw: str, block: int) -> None:
        state = path.state
        want_write = rw == "w"
        dir_state = state["dir"][block]["state"]
        tag = state["tag"][(node, block)]
        path.edge(dir_state, f"fault.{'write' if want_write else 'read'}",
                  tag)
        state["blocked"][node] = True
        if node == self.home:
            # Home faults bypass the interconnect and run the directory
            # state machine synchronously.
            self._handle_request(path, block, node, want_write, None)
        else:
            self.set_tag(path, node, block, Tag.BUSY)
            state["pending_fault"][node] = block
            seq = state["fetch"].get((node, block), 0) + 1
            state["fetch"][(node, block)] = seq
            handler = "stache.get_rw" if want_write else "stache.get_ro"
            self.assert_handler(handler)
            path.send(handler, node, self.home, _REQUEST,
                      addr=block, requester=node, fetch_seq=seq)
        self.drain_local(path)

    # -- home-side directory machine -----------------------------------
    def _handle_request(self, path: _Path, block: int, requester: int,
                        want_write: bool, fetch_seq) -> None:
        state = path.state
        if requester != self.home and fetch_seq is not None:
            state["req_seq"][(block, requester)] = fetch_seq
        entry = state["dir"][block]
        if entry["state"].is_transient:
            entry["pending"].append((requester, want_write))
            return
        self._start_request(path, block, requester, want_write)

    def _start_request(self, path: _Path, block: int, requester: int,
                       want_write: bool) -> None:
        state = path.state
        entry = state["dir"][block]
        home = self.home
        if not want_write:
            if entry["state"] is DirectoryState.EXCLUSIVE:
                entry["pending"].insert(0, (requester, want_write))
                self.set_dir(path, block, DirectoryState.PENDING_WRITEBACK)
                self._send_writeback(path, block, entry["owner"], "ro")
                return
            if entry["state"] is DirectoryState.HOME and requester != home:
                self.set_tag(path, home, block, Tag.READ_ONLY)
            if requester != home:
                entry["sharers"].add(requester)
                self.set_dir(path, block, DirectoryState.SHARED)
            self._grant(path, block, requester, rw=False)
            return
        if entry["state"] is DirectoryState.EXCLUSIVE:
            if entry["owner"] == requester:
                self._grant(path, block, requester, rw=True)
                return
            entry["pending"].insert(0, (requester, want_write))
            self.set_dir(path, block, DirectoryState.PENDING_WRITEBACK)
            self._send_writeback(path, block, entry["owner"], "inv")
            return
        targets = entry["sharers"] - {requester}
        if entry["state"] is DirectoryState.SHARED and targets:
            entry["pending"].insert(0, (requester, want_write))
            self.set_dir(path, block, DirectoryState.PENDING_INVALIDATE)
            entry["acks"] = len(targets)
            if requester != home:
                self.set_tag(path, home, block, Tag.INVALID)
            for sharer in sorted(targets):
                path.incr("stache.invalidations_sent")
                self.assert_handler("stache.inval")
                path.send("stache.inval", home, sharer, _REQUEST,
                          addr=block, home=home,
                          grant_seq=state["req_seq"].get((block, sharer)))
            return
        self._finish_write_grant(path, block, requester)

    def _send_writeback(self, path: _Path, block: int, owner: int,
                        demote: str) -> None:
        self.assert_handler("stache.writeback")
        path.send("stache.writeback", self.home, owner, _REQUEST,
                  addr=block, home=self.home, demote=demote,
                  grant_seq=path.state["req_seq"].get((block, owner)))

    def _finish_write_grant(self, path: _Path, block: int,
                            requester: int) -> None:
        state = path.state
        entry = state["dir"][block]
        entry["sharers"].clear()
        entry["acks"] = 0
        if requester == self.home:
            self.set_dir(path, block, DirectoryState.HOME)
            entry["owner"] = None
        else:
            self.set_dir(path, block, DirectoryState.EXCLUSIVE)
            entry["owner"] = requester
            if state["tag"][(self.home, block)] is not Tag.INVALID:
                self.set_tag(path, self.home, block, Tag.INVALID)
        self._grant(path, block, requester, rw=True)

    def _grant(self, path: _Path, block: int, requester: int,
               rw: bool) -> None:
        state = path.state
        if requester == self.home:
            if rw:
                self.set_tag(path, self.home, block, Tag.READ_WRITE)
            elif state["tag"][(self.home, block)] is not Tag.READ_WRITE:
                self.set_tag(path, self.home, block, Tag.READ_ONLY)
            path.unblock(self.home)
        else:
            path.incr("stache.data_replies")
            self.assert_handler("stache.data")
            path.send("stache.data", self.home, requester, _RESPONSE,
                      addr=block, rw=rw, home=self.home,
                      fetch_seq=state["req_seq"].get((block, requester)))
        self._dispatch_pending(path, block)

    def _dispatch_pending(self, path: _Path, block: int) -> None:
        entry = path.state["dir"][block]
        if entry["state"].is_transient or not entry["pending"]:
            return
        requester, want_write = entry["pending"].pop(0)
        self._start_request(path, block, requester, want_write)

    # -- deliveries ----------------------------------------------------
    def deliver(self, path: _Path, mid: int) -> None:
        msg = path.msgs[mid]
        handler, payload = msg["handler"], msg["payload"]
        block, dst = payload["addr"], msg["dst"]
        path.edge(path.state["dir"][block]["state"], handler,
                  path.state["tag"][(dst, block)])
        if handler in ("stache.get_ro", "stache.get_rw"):
            self._handle_request(path, block, payload["requester"],
                                 handler == "stache.get_rw",
                                 payload["fetch_seq"])
        elif handler == "stache.inval":
            self._h_inval(path, msg)
        elif handler == "stache.writeback":
            self._h_writeback(path, msg)
        elif handler == "stache.ack":
            self._h_ack(path, msg)
        elif handler == "stache.wb_data":
            self._h_wb_data(path, msg)
        elif handler == "stache.data":
            self._h_data(path, msg)
        else:  # pragma: no cover - vocabulary enforced at send
            raise SpecDivergence(f"unmodelled handler {handler!r}")

    def _h_inval(self, path: _Path, msg: dict) -> None:
        state = path.state
        block, node = msg["payload"]["addr"], msg["dst"]
        tag = state["tag"][(node, block)]
        if tag in (Tag.READ_ONLY, Tag.READ_WRITE):
            self.set_tag(path, node, block, Tag.INVALID)
            path.incr("stache.blocks_invalidated")
        elif tag is Tag.BUSY:
            grant_seq = msg["payload"].get("grant_seq")
            if (grant_seq is not None
                    and grant_seq == state["fetch"].get((node, block))):
                state["poison"][(node, block)] = grant_seq
                path.incr("stache.grants_poisoned")
        self.assert_handler("stache.ack")
        path.send("stache.ack", node, msg["payload"]["home"], _RESPONSE,
                  addr=block, sharer=node)

    def _h_writeback(self, path: _Path, msg: dict) -> None:
        state = path.state
        block, node = msg["payload"]["addr"], msg["dst"]
        tag = state["tag"][(node, block)]
        holds = tag is Tag.READ_WRITE
        if holds:
            if msg["payload"]["demote"] == "ro":
                self.set_tag(path, node, block, Tag.READ_ONLY)
            else:
                self.set_tag(path, node, block, Tag.INVALID)
        elif tag is Tag.BUSY:
            grant_seq = msg["payload"].get("grant_seq")
            if (grant_seq is not None
                    and grant_seq == state["fetch"].get((node, block))):
                state["poison"][(node, block)] = grant_seq
                path.incr("stache.grants_poisoned")
        self.assert_handler("stache.wb_data")
        path.send("stache.wb_data", node, msg["payload"]["home"], _RESPONSE,
                  addr=block, owner=node, held=holds)

    def _h_ack(self, path: _Path, msg: dict) -> None:
        state = path.state
        block = msg["payload"]["addr"]
        entry = state["dir"][block]
        entry["sharers"].discard(msg["payload"]["sharer"])
        entry["acks"] -= 1
        if entry["acks"] < 0:
            raise SpecDivergence(f"surplus invalidation ack for {block}")
        if entry["acks"] > 0:
            return
        requester, want_write = entry["pending"].pop(0)
        if not want_write:
            raise SpecDivergence("invalidations pending for a read")
        self.set_dir(path, block, DirectoryState.HOME)
        self._finish_write_grant(path, block, requester)

    def _h_wb_data(self, path: _Path, msg: dict) -> None:
        state = path.state
        block = msg["payload"]["addr"]
        entry = state["dir"][block]
        if entry["state"] is not DirectoryState.PENDING_WRITEBACK:
            raise SpecDivergence(
                f"writeback data for block {block} in {entry['state']}"
            )
        requester, want_write = entry["pending"].pop(0)
        old_owner = msg["payload"]["owner"]
        entry["owner"] = None
        if want_write:
            self.set_dir(path, block, DirectoryState.HOME)
            entry["sharers"].clear()
            self._finish_write_grant(path, block, requester)
            return
        entry["sharers"].clear()
        if msg["payload"]["held"]:
            entry["sharers"].add(old_owner)
        if requester != self.home:
            entry["sharers"].add(requester)
            self.set_dir(path, block, DirectoryState.SHARED)
            self.set_tag(path, self.home, block, Tag.READ_ONLY)
        else:
            self.set_dir(path, block,
                         DirectoryState.SHARED if entry["sharers"]
                         else DirectoryState.HOME)
            self.set_tag(path, self.home, block,
                         Tag.READ_ONLY if entry["sharers"]
                         else Tag.READ_WRITE)
        self._grant(path, block, requester, rw=False)

    def _h_data(self, path: _Path, msg: dict) -> None:
        state = path.state
        block, node = msg["payload"]["addr"], msg["dst"]
        key = (node, block)
        seq = msg["payload"]["fetch_seq"]
        if seq != state["fetch"].get(key):
            path.incr("stache.stale_grants_dropped")
            return
        if state["poison"].get(key) == seq:
            del state["poison"][key]
            path.incr("stache.poisoned_grants_refetched")
            new_seq = state["fetch"][key] + 1
            state["fetch"][key] = new_seq
            handler = ("stache.get_rw" if msg["payload"]["rw"]
                       else "stache.get_ro")
            self.assert_handler(handler)
            path.send(handler, node, msg["payload"]["home"], _REQUEST,
                      addr=block, requester=node, fetch_seq=new_seq)
            return
        self.set_tag(path, node, block,
                     Tag.READ_WRITE if msg["payload"]["rw"]
                     else Tag.READ_ONLY)
        path.incr("stache.blocks_fetched")
        if state["pending_fault"].get(node) == block:
            state["pending_fault"][node] = None
            path.unblock(node)


# ----------------------------------------------------------------------
# DirNNB (all-hardware DASH-style directory)
# ----------------------------------------------------------------------
class _DirnnbModel(_Model):
    """Twin of :class:`repro.protocols.dirnnb.DirectoryController` plus
    the node-side cache handlers (capacity assumed ample: no victims)."""

    name = "dirnnb"
    spec = DIRNNB_SPEC

    def initial(self) -> dict:
        state = self.base_state()
        state["line"] = {
            (n, b): ("E" if n == self.home else None)
            for n in range(self.config.nodes)
            for b in range(self.config.blocks)
        }
        # The home's warm line mirrors litmus replay setup (the region
        # is initialized by the home before workers start).
        state["dir"] = {
            b: {"state": DirectoryState.EXCLUSIVE, "owner": self.home,
                "sharers": set(), "acks": 0, "pending": []}
            for b in range(self.config.blocks)
        }
        return state

    def freeze(self, state: dict, perm: tuple) -> tuple:
        dirs = tuple(
            (b, entry["state"].value,
             None if entry["owner"] is None else perm[entry["owner"]],
             tuple(sorted(perm[s] for s in entry["sharers"])),
             entry["acks"],
             tuple((perm[r], w) for r, w in entry["pending"]))
            for b, entry in sorted(state["dir"].items())
        )
        return self.freeze_base(state, perm) + (
            tuple(sorted(((perm[n], b), line)
                         for (n, b), line in state["line"].items()
                         if line is not None)),
            dirs,
        )

    def fault_ops(self, state: dict, node: int) -> list:
        ops = []
        for b in range(self.config.blocks):
            line = state["line"][(node, b)]
            if line is None:
                ops.append(("r", b))
            if line != "E":
                ops.append(("w", b))
        return ops

    def do_op(self, path: _Path, node: int, rw: str, block: int) -> None:
        state = path.state
        want_write = rw == "w"
        path.edge(state["dir"][block]["state"],
                  f"fault.{'write' if want_write else 'read'}",
                  state["line"][(node, block)])
        state["blocked"][node] = True
        self.assert_handler("dir.get")
        path.send("dir.get", node, self.home, _REQUEST,
                  addr=block, requester=node, want_write=want_write)
        self.drain_local(path)

    # -- controller ----------------------------------------------------
    def _handle_request(self, path: _Path, block: int, requester: int,
                        want_write: bool) -> None:
        entry = path.state["dir"][block]
        if entry["state"].is_transient:
            entry["pending"].append((requester, want_write))
            return
        self._start_request(path, block, requester, want_write)

    def _start_request(self, path: _Path, block: int, requester: int,
                       want_write: bool) -> None:
        entry = path.state["dir"][block]
        if not want_write:
            if entry["state"] is DirectoryState.EXCLUSIVE:
                if entry["owner"] == requester:
                    # Re-request by the owner (cannot happen within the
                    # bound: the owner's line is E, so no read faults).
                    self._grant(path, block, requester, rw=True)
                    return
                entry["pending"].insert(0, (requester, want_write))
                self.set_dir(path, block, DirectoryState.PENDING_WRITEBACK)
                self.assert_handler("dir.wb")
                path.send("dir.wb", self.home, entry["owner"], _REQUEST,
                          addr=block, home=self.home, demote="ro")
                return
            if entry["state"] is DirectoryState.HOME:
                # Exclusive-clean grant (MESI E, as in DASH).
                self.set_dir(path, block, DirectoryState.EXCLUSIVE)
                entry["owner"] = requester
                self._grant(path, block, requester, rw=True)
                return
            entry["sharers"].add(requester)
            self.set_dir(path, block, DirectoryState.SHARED)
            self._grant(path, block, requester, rw=False)
            return
        if entry["state"] is DirectoryState.EXCLUSIVE:
            if entry["owner"] == requester:
                self._grant(path, block, requester, rw=True)
                return
            entry["pending"].insert(0, (requester, want_write))
            self.set_dir(path, block, DirectoryState.PENDING_WRITEBACK)
            self.assert_handler("dir.wb")
            path.send("dir.wb", self.home, entry["owner"], _REQUEST,
                      addr=block, home=self.home, demote="inv")
            return
        targets = entry["sharers"] - {requester}
        if targets:
            entry["pending"].insert(0, (requester, want_write))
            self.set_dir(path, block, DirectoryState.PENDING_INVALIDATE)
            entry["acks"] = len(targets)
            for sharer in sorted(targets):
                self.assert_handler("dir.inval")
                path.send("dir.inval", self.home, sharer, _REQUEST,
                          addr=block, home=self.home)
            return
        self._finish_write(path, block, requester)

    def _finish_write(self, path: _Path, block: int, requester: int) -> None:
        entry = path.state["dir"][block]
        entry["sharers"].clear()
        entry["acks"] = 0
        self.set_dir(path, block, DirectoryState.EXCLUSIVE)
        entry["owner"] = requester
        self._grant(path, block, requester, rw=True)

    def _grant(self, path: _Path, block: int, requester: int,
               rw: bool) -> None:
        if requester == self.home:
            self._fill(path, requester, block, rw)
        else:
            self.assert_handler("dir.data")
            path.send("dir.data", self.home, requester, _RESPONSE,
                      addr=block, rw=rw)
        entry = path.state["dir"][block]
        if not entry["state"].is_transient and entry["pending"]:
            requester, want_write = entry["pending"].pop(0)
            self._start_request(path, block, requester, want_write)

    def _fill(self, path: _Path, node: int, block: int, rw: bool) -> None:
        path.state["line"][(node, block)] = "E" if rw else "S"
        path.unblock(node)

    # -- deliveries ----------------------------------------------------
    def deliver(self, path: _Path, mid: int) -> None:
        msg = path.msgs[mid]
        handler, payload = msg["handler"], msg["payload"]
        block, node = payload["addr"], msg["dst"]
        path.edge(path.state["dir"][block]["state"], handler,
                  path.state["line"][(node, block)])
        if handler == "dir.get":
            self._handle_request(path, block, payload["requester"],
                                 payload["want_write"])
        elif handler == "dir.data":
            self._fill(path, node, block, payload["rw"])
        elif handler == "dir.inval":
            path.state["line"][(node, block)] = None
            self.assert_handler("dir.ack")
            path.send("dir.ack", node, payload["home"], _RESPONSE,
                      addr=block, sharer=node)
        elif handler == "dir.wb":
            line = path.state["line"][(node, block)]
            held = line == "E"
            if held:
                path.state["line"][(node, block)] = (
                    "S" if payload["demote"] == "ro" else None
                )
            self.assert_handler("dir.wb_data")
            path.send("dir.wb_data", node, payload["home"], _RESPONSE,
                      addr=block, owner=node, held=held)
        elif handler == "dir.ack":
            self._h_ack(path, block, payload["sharer"])
        elif handler == "dir.wb_data":
            self._h_wb_data(path, block, payload["owner"], payload["held"])
        else:  # pragma: no cover
            raise SpecDivergence(f"unmodelled handler {handler!r}")

    def _h_ack(self, path: _Path, block: int, sharer: int) -> None:
        entry = path.state["dir"][block]
        entry["sharers"].discard(sharer)
        entry["acks"] -= 1
        if entry["acks"] < 0:
            raise SpecDivergence(f"surplus ack for block {block}")
        if entry["acks"]:
            return
        requester, want_write = entry["pending"].pop(0)
        if not want_write:
            raise SpecDivergence("invalidations pending for a read")
        self.set_dir(path, block, DirectoryState.HOME)
        self._finish_write(path, block, requester)

    def _h_wb_data(self, path: _Path, block: int, owner: int,
                   held: bool) -> None:
        entry = path.state["dir"][block]
        if entry["state"] is not DirectoryState.PENDING_WRITEBACK:
            raise SpecDivergence(
                f"writeback data for block {block} in {entry['state']}"
            )
        requester, want_write = entry["pending"].pop(0)
        entry["owner"] = None
        if want_write:
            self.set_dir(path, block, DirectoryState.HOME)
            entry["sharers"].clear()
            self._finish_write(path, block, requester)
            return
        entry["sharers"].clear()
        if held:
            entry["sharers"].add(owner)
        entry["sharers"].add(requester)
        self.set_dir(path, block, DirectoryState.SHARED)
        self._grant(path, block, requester, rw=False)


# ----------------------------------------------------------------------
# IVY (page-grain DSM, fixed distributed manager at the home)
# ----------------------------------------------------------------------
class _IvyModel(_Model):
    """Twin of :class:`repro.protocols.ivy.IvyProtocol`.  "Blocks" are
    whole pages here (page-uniform tags); the bulk page transfer is
    collapsed into the ``ivy.page_sent`` completion message."""

    name = "ivy"
    spec = IVY_SPEC

    def initial(self) -> dict:
        state = self.base_state()
        state["tag"] = {
            (n, p): Tag.READ_WRITE if n == self.home else Tag.INVALID
            for n in range(self.config.nodes)
            for p in range(self.config.blocks)
        }
        state["page"] = {
            p: {"owner": self.home, "copyset": set(), "busy": False,
                "queue": [], "acks": 0, "active": None}
            for p in range(self.config.blocks)
        }
        return state

    def freeze(self, state: dict, perm: tuple) -> tuple:
        pages = tuple(
            (p, perm[page["owner"]],
             tuple(sorted(perm[m] for m in page["copyset"])),
             page["busy"], page["acks"],
             None if page["active"] is None
             else (perm[page["active"][0]], page["active"][1]),
             tuple((perm[r], w) for r, w in page["queue"]))
            for p, page in sorted(state["page"].items())
        )
        return self.freeze_base(state, perm) + (
            tuple(sorted(((perm[n], p), tag.value)
                         for (n, p), tag in state["tag"].items())),
            pages,
        )

    def fault_ops(self, state: dict, node: int) -> list:
        ops = []
        for p in range(self.config.blocks):
            tag = state["tag"][(node, p)]
            if tag is Tag.INVALID:
                ops.append(("r", p))
            if tag in (Tag.INVALID, Tag.READ_ONLY):
                ops.append(("w", p))
        return ops

    def do_op(self, path: _Path, node: int, rw: str, page: int) -> None:
        state = path.state
        want_write = rw == "w"
        path.edge(None, f"fault.{'write' if want_write else 'read'}",
                  state["tag"][(node, page)])
        state["blocked"][node] = True
        self.assert_handler("ivy.get")
        path.send("ivy.get", node, self.home, _REQUEST,
                  addr=page, requester=node, want_write=want_write)
        self.drain_local(path)

    # -- manager -------------------------------------------------------
    def _start(self, path: _Path, page: int, request: tuple) -> None:
        state = path.state["page"][page]
        requester, want_write = request
        state["busy"] = True
        state["active"] = request
        if want_write:
            targets = state["copyset"] - {requester}
            state["acks"] = len(targets)
            for member in sorted(targets):
                path.incr("ivy.page_invalidations")
                self.assert_handler("ivy.inval")
                path.send("ivy.inval", self.home, member, _REQUEST,
                          addr=page, manager=self.home)
            if state["acks"] == 0:
                self._recall_or_grant(path, page)
            return
        self._recall_or_grant(path, page)

    def _recall_or_grant(self, path: _Path, page: int) -> None:
        state = path.state["page"][page]
        requester, want_write = state["active"]
        if state["owner"] == requester:
            self._finish(path, page)
            return
        self.assert_handler("ivy.recall")
        path.send("ivy.recall", self.home, state["owner"], _REQUEST,
                  addr=page, requester=requester, want_write=want_write,
                  manager=self.home)

    def _finish(self, path: _Path, page: int) -> None:
        state = path.state["page"][page]
        requester, want_write = state["active"]
        if want_write:
            state["copyset"].discard(requester)
            old_owner = state["owner"]
            state["owner"] = requester
            if old_owner != requester:
                state["copyset"].discard(old_owner)
        else:
            if requester != state["owner"]:
                state["copyset"].add(requester)
        self.assert_handler("ivy.grant")
        path.send("ivy.grant", self.home, requester, _RESPONSE,
                  addr=page, want_write=want_write)
        state["busy"] = False
        state["active"] = None
        if state["queue"]:
            self._start(path, page, state["queue"].pop(0))

    # -- deliveries ----------------------------------------------------
    def deliver(self, path: _Path, mid: int) -> None:
        msg = path.msgs[mid]
        handler, payload = msg["handler"], msg["payload"]
        page, node = payload["addr"], msg["dst"]
        path.edge(None, handler, path.state["tag"][(node, page)])
        state = path.state["page"][page]
        if handler == "ivy.get":
            request = (payload["requester"], payload["want_write"])
            if state["busy"]:
                state["queue"].append(request)
            else:
                self._start(path, page, request)
        elif handler == "ivy.ack":
            state["copyset"].discard(payload["member"])
            state["acks"] -= 1
            if state["acks"] < 0:
                raise SpecDivergence(f"surplus ack for page {page}")
            if state["acks"] == 0:
                self._recall_or_grant(path, page)
        elif handler == "ivy.page_sent":
            self._finish(path, page)
        elif handler == "ivy.recall":
            self.set_tag(path, node, page,
                         Tag.INVALID if payload["want_write"]
                         else Tag.READ_ONLY)
            path.incr("ivy.page_transfers")
            self.assert_handler("ivy.page_sent")
            path.send("ivy.page_sent", node, payload["manager"], _RESPONSE,
                      addr=page)
        elif handler == "ivy.inval":
            self.set_tag(path, node, page, Tag.INVALID)
            path.incr("ivy.pages_invalidated")
            self.assert_handler("ivy.ack")
            path.send("ivy.ack", node, payload["manager"], _RESPONSE,
                      addr=page, member=node)
        elif handler == "ivy.grant":
            self.set_tag(path, node, page,
                         Tag.READ_WRITE if payload["want_write"]
                         else Tag.READ_ONLY)
            path.unblock(node)
        else:  # pragma: no cover
            raise SpecDivergence(f"unmodelled handler {handler!r}")


#: Explorable protocol name -> model class.  ``migratory`` shares the
#: stache conformance tables, and ``em3d-update`` inherits the plain
#: Stache paths for ordinary shared data, so the stache corpus serves
#: both as replay input; neither needs a model of its own.
EXPLORABLE_PROTOCOLS = {
    "stache": _StacheModel,
    "dirnnb": _DirnnbModel,
    "ivy": _IvyModel,
}


# ----------------------------------------------------------------------
# The explorer
# ----------------------------------------------------------------------
@dataclass
class ExplorationResult:
    """Everything one bounded exploration learned."""

    protocol: str
    config: ExploreConfig
    #: Every reachable (state, event, dst_state) edge.
    edges: set
    #: edge -> the shortest path (a finished _Path) that first took it.
    edge_paths: dict
    states: int
    transitions: int


def explore(model: _Model, config: ExploreConfig) -> ExplorationResult:
    """Breadth-first walk of the bounded transition relation."""
    root = _Path(state=model.initial())
    seen = {model.canonical(root)}
    edge_paths: dict = {}
    queue = deque([root])
    transitions = 0
    while queue:
        path = queue.popleft()
        for choice in _choices(model, path, config):
            forked = _apply(model, path, choice)
            transitions += 1
            for edge in forked.trace[-1][-1]:
                if edge not in edge_paths:
                    edge_paths[edge] = forked
            if len(forked.trace) >= config.max_steps:
                continue
            key = model.canonical(forked)
            if key not in seen:
                seen.add(key)
                queue.append(forked)
    return ExplorationResult(
        protocol=model.name, config=config, edges=set(edge_paths),
        edge_paths=edge_paths, states=len(seen), transitions=transitions,
    )


def _choices(model: _Model, path: _Path, config: ExploreConfig) -> list:
    state = path.state
    out = []
    if state["total"] > 0:
        for node in sorted(state["blocked"]):
            if state["blocked"][node] or state["budget"][node] <= 0:
                continue
            for rw, block in model.fault_ops(state, node):
                out.append(("op", node, rw, block))
    for channel in sorted(state["chan"]):
        fifo = state["chan"][channel]
        for position in range(min(len(fifo), config.max_overtake + 1)):
            out.append(("deliver", channel, position))
    return out


def _clone_state(value):
    """Fast structural clone: our model states are nests of dicts,
    lists, and sets whose leaves are immutable (ints, enums, tuples of
    scalars).  ~10x cheaper than :func:`copy.deepcopy` in the BFS hot
    loop."""
    if isinstance(value, dict):
        return {key: _clone_state(val) for key, val in value.items()}
    if isinstance(value, list):
        return [_clone_state(val) for val in value]
    if isinstance(value, set):
        return set(value)
    return value


def _fork(path: _Path) -> _Path:
    # msgs is copy-on-write: entries are replaced wholesale at delivery,
    # never mutated in place, so a shallow dict copy shares safely.
    return _Path(
        state=_clone_state(path.state),
        trace=list(path.trace),
        msgs=dict(path.msgs),
        next_mid=path.next_mid,
        counters=dict(path.counters),
    )


def _apply(model: _Model, path: _Path, choice) -> _Path:
    forked = _fork(path)
    if choice[0] == "op":
        _, node, rw, block = choice
        forked.state["budget"][node] -= 1
        forked.state["total"] -= 1
        step = ("op", node, rw, block)
        model.do_op(forked, node, rw, block)
    else:
        _, channel, position = choice
        mid = forked.state["chan"][channel].pop(position)
        if not forked.state["chan"][channel]:
            del forked.state["chan"][channel]
        forked.msgs[mid] = {**forked.msgs[mid],
                            "deliver_step": len(forked.trace)}
        step = ("deliver", mid)
        model.deliver(forked, mid)
        model.drain_local(forked)
    forked.trace.append(
        step + (frozenset(forked.step_unblocked), tuple(forked.step_edges))
    )
    return forked


def explore_protocol(name: str,
                     config: ExploreConfig | None = None) -> ExplorationResult:
    """Explore one protocol by registry name."""
    if name not in EXPLORABLE_PROTOCOLS:
        raise ValueError(
            f"no exploration model for {name!r} "
            f"(have {sorted(EXPLORABLE_PROTOCOLS)})"
        )
    model = EXPLORABLE_PROTOCOLS[name](config or ExploreConfig())
    return explore(model, model.config)


# ----------------------------------------------------------------------
# Trace -> pinned litmus case
# ----------------------------------------------------------------------
@dataclass
class SynthesizedCase:
    """One concrete litmus test: program + deterministic schedule."""

    protocol: str
    name: str
    nodes: int
    blocks: int
    #: node -> ordered [(op, block_index, at_cycle)] with op in
    #: {"r", "w"}; the worker idles until ``at_cycle`` before issuing,
    #: which pins each access *between* the delivery slots surrounding
    #: it in the explored trace (this is what sequences home-node
    #: operations, whose effects are local and instantaneous).
    programs: dict
    #: ScriptedFaultPlan rules as plain dicts (handler/src/dst/
    #: occurrence/action/delay).
    schedule: list
    #: Edges this case covers, as [[state, event, dst_state], ...].
    edges: list
    #: Model counters along the trace (e.g. stache.grants_poisoned);
    #: family-specific replay tests assert the interesting ones.
    expect_stats: dict
    #: Human-readable trace, one line per step (documentation only).
    trace: list


def _emit_case(protocol: str, path: _Path, index: int,
               config: ExploreConfig) -> SynthesizedCase:
    """Pin one explored path as a concrete schedule.

    Every delivery step is assigned a target slot ``SCHEDULE_STRIDE``
    cycles after the previous one; each remote message gets a delay rule
    stretching its flight to its slot, plus a ``reorder`` action when it
    must overtake an earlier send on its own FIFO channel.  Messages the
    path left in flight are parked after the last slot (in send order),
    so the pinned prefix replays before the tail drains.
    """
    step_time: dict[int, int] = {}
    deliveries = 0
    programs: dict[int, list] = {n: [] for n in range(config.nodes)}
    lines = []
    for index_step, step in enumerate(path.trace):
        if step[0] == "op":
            _, node, rw, block, _unblocked, _edges = step
            # Issue halfway between the surrounding delivery slots, so
            # the access lands exactly where the trace interleaved it.
            at = deliveries * SCHEDULE_STRIDE + SCHEDULE_STRIDE // 2
            step_time[index_step] = at
            programs[node].append((rw, block, at))
            lines.append(f"node{node}: {'write' if rw == 'w' else 'read'} "
                         f"block {block} at {at}")
        else:
            _, mid, _unblocked, _edges = step
            deliveries += 1
            step_time[index_step] = deliveries * SCHEDULE_STRIDE
            msg = path.msgs[mid]
            lines.append(f"deliver {msg['handler']} "
                         f"node{msg['src']} -> node{msg['dst']}")

    # Target arrival per remote message (trace order, then parked tail).
    targets: dict[int, int] = {}
    tail = deliveries
    for mid in sorted(path.msgs):
        msg = path.msgs[mid]
        if msg["src"] == msg["dst"]:
            continue
        if msg["deliver_step"] is not None:
            targets[mid] = step_time[msg["deliver_step"]]
        else:
            tail += 1
            targets[mid] = tail * SCHEDULE_STRIDE

    # A message overtakes when an earlier send on its channel arrives
    # later: it must bypass the channel's FIFO floor ("reorder").
    overtakes = set()
    by_channel: dict[tuple, list] = {}
    for mid in sorted(targets):
        msg = path.msgs[mid]
        by_channel.setdefault(
            (msg["src"], msg["dst"], msg["vnet"]), []
        ).append(mid)
    for mids in by_channel.values():
        for i, mid in enumerate(mids):
            if any(targets[earlier] > targets[mid] for earlier in mids[:i]):
                overtakes.add(mid)

    occurrence: dict[tuple, int] = {}
    schedule = []
    for mid in sorted(targets):
        msg = path.msgs[mid]
        key = (msg["handler"], msg["src"], msg["dst"])
        occurrence[key] = occurrence.get(key, 0) + 1
        delay = targets[mid] - step_time[msg["send_step"]]
        if delay <= 0 and mid not in overtakes:
            continue
        schedule.append({
            "handler": msg["handler"],
            "src": msg["src"],
            "dst": msg["dst"],
            "occurrence": occurrence[key],
            "action": "reorder" if mid in overtakes else None,
            "delay": max(delay, 0),
        })

    edges = sorted({edge for step in path.trace for edge in step[-1]},
                   key=_edge_sort_key)
    return SynthesizedCase(
        protocol=protocol,
        name=f"{protocol}-{index:03d}",
        nodes=config.nodes,
        blocks=config.blocks,
        programs={n: ops for n, ops in programs.items() if ops},
        schedule=schedule,
        edges=[list(edge) for edge in edges],
        expect_stats=dict(sorted(path.counters.items())),
        trace=lines,
    )


def synthesize_corpus(name: str,
                      configs: tuple[ExploreConfig, ...] = (
                          ExploreConfig(nodes=3, blocks=1, ops_per_node=2,
                                        total_ops=4),
                          ExploreConfig(nodes=2, blocks=2, ops_per_node=1),
                      )) -> tuple[list[SynthesizedCase], ExplorationResult]:
    """Explore ``name`` under each bound and greedily cover its edges.

    Returns the chosen cases plus the (merged-bounds) exploration result
    whose edge set is the coverage obligation.  Greedy set cover over
    shortest-first candidate traces keeps the corpus small while the
    union of case edges equals every reachable edge — the property
    ``tests/litmus/test_corpus.py`` asserts.
    """
    merged_edges: dict = {}
    results = []
    for config in configs:
        result = explore_protocol(name, config)
        results.append(result)
        for edge, path in result.edge_paths.items():
            known = merged_edges.get(edge)
            if known is None or len(path.trace) < len(known[0].trace):
                merged_edges[edge] = (path, config)
    # Candidate cases: the distinct shortest paths, each scored by the
    # full edge set its trace exercises (not just the edges it is the
    # canonical shortest witness for).
    candidates: dict[int, tuple] = {}
    for path, config in merged_edges.values():
        if id(path) not in candidates:
            trace_edges = {e for step in path.trace for e in step[-1]}
            candidates[id(path)] = (path, config, trace_edges)
    uncovered = set(merged_edges)
    chosen = []
    pool = list(candidates.values())
    while uncovered:
        pool.sort(key=lambda entry: (-len(entry[2] & uncovered),
                                     len(entry[0].trace)))
        path, config, edges = pool.pop(0)
        if not edges & uncovered:  # pragma: no cover - cover progresses
            raise RuntimeError("set cover stalled")
        uncovered -= edges
        chosen.append((path, config))
    cases = [
        _emit_case(name, path, index, config)
        for index, (path, config) in enumerate(chosen)
    ]
    primary = results[0]
    primary.edges = set(merged_edges)
    primary.edge_paths = {e: p for e, (p, _c) in merged_edges.items()}
    return cases, primary
