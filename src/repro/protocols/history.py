"""Access-history recording and register-consistency checking.

When a machine's ``history`` attribute is set to an :class:`AccessHistory`,
every CPU access records its node, address, kind, value, and its start and
completion cycle.  :func:`check_register_consistency` then verifies
**per-location linearizability** — the correctness condition a coherent
memory system owes every address:

* a read that returns the initial value is legal only if no write to the
  address completed strictly before the read began;
* a read that returns a written value ``v`` (from write ``w``) is legal
  only if ``w`` began before the read ended, and no *other* write both
  started after ``w`` ended and completed before the read began (such a
  write would have overwritten ``v`` in every linearization).

This machinery exists for the test suite (property tests run random
concurrent programs through both protocols and assert an empty violation
list) but is part of the public API: protocol authors can wrap their own
simulations with it as an oracle.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True)
class AccessRecord:
    """One completed CPU access."""

    node: int
    addr: int
    is_write: bool
    value: Any
    start: float
    end: float


@dataclass(frozen=True)
class ConsistencyViolation:
    """A read no linearization of the writes can explain."""

    read: AccessRecord
    reason: str

    def __str__(self) -> str:
        return (
            f"node {self.read.node} read {self.read.value!r} from "
            f"{self.read.addr:#x} during [{self.read.start}, "
            f"{self.read.end}]: {self.reason}"
        )


class AccessHistory:
    """Accumulates access records during a simulation."""

    def __init__(self) -> None:
        self._records: list[AccessRecord] = []

    def record(self, node: int, addr: int, is_write: bool, value: Any,
               start: float, end: float) -> None:
        self._records.append(
            AccessRecord(node, addr, is_write, value, start, end)
        )

    @property
    def records(self) -> list[AccessRecord]:
        return list(self._records)

    def by_address(self) -> dict[int, list[AccessRecord]]:
        grouped: dict[int, list[AccessRecord]] = defaultdict(list)
        for record in self._records:
            grouped[record.addr].append(record)
        return grouped

    def __len__(self) -> int:
        return len(self._records)


def check_register_consistency(history: AccessHistory,
                               initial: Any = 0) -> list[ConsistencyViolation]:
    """Check every read against per-location linearizability.

    Returns the list of violations (empty = consistent).
    """
    violations: list[ConsistencyViolation] = []
    for addr, records in history.by_address().items():
        writes = [r for r in records if r.is_write]
        reads = [r for r in records if not r.is_write]
        for read in reads:
            violation = _check_read(read, writes, initial)
            if violation is not None:
                violations.append(violation)
    return violations


def _check_read(read: AccessRecord, writes: list[AccessRecord],
                initial: Any) -> ConsistencyViolation | None:
    if read.value == initial and not any(w.end < read.start for w in writes):
        return None  # the initial value is still observable

    sources = [w for w in writes if w.value == read.value]
    if read.value != initial and not sources:
        return ConsistencyViolation(
            read, "value was never written to this address"
        )

    candidates = sources if read.value != initial else []
    for write in candidates:
        if write.start > read.end:
            continue  # this write began after the read finished
        overwritten = any(
            other is not write
            and other.start > write.end
            and other.end < read.start
            for other in writes
        )
        if not overwritten:
            return None  # a legal linearization exists through this write
    return ConsistencyViolation(
        read,
        "every matching write is either after the read or overwritten "
        "by a later write that completed before the read began",
    )
