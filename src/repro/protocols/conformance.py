"""Online protocol conformance checking.

The quiescence checker (:mod:`repro.protocols.verify`) inspects a
machine *after* a run; a transient violation that self-heals before the
end of the run is invisible to it.  This module checks protocol
behaviour *as it happens*, against an explicit, declarative
specification — the TransForm idea of validating a memory system against
its transition relation, applied to the user-level protocols this
repository grows:

* **Directory transitions** — every assignment to a directory entry's
  ``state`` (both :class:`~repro.protocols.directory.HardwareDirectoryEntry`
  and :class:`~repro.protocols.directory.SoftwareDirectoryEntry` expose a
  per-instance observer hook) is checked against the protocol's legal
  single-step relation.
* **Tag transitions** — every :meth:`~repro.memory.tags.TagStore.set_tag`
  (the single mutation point all of ``set_rw``/``set_ro``/``invalidate``
  route through) is checked the same way.
* **Message causality** — a data grant must answer an outstanding
  request; an invalidation acknowledgment must answer an outstanding
  invalidation; a writeback reply must answer an outstanding writeback
  request.  Retransmits and duplicated deliveries (fault injection) are
  deduplicated by message id, so the checks hold on lossy networks too.
* **Handler postconditions** — after every protocol handler invocation
  the home entry (or IVY manager record) named by the message must
  satisfy the protocol's structural invariants (no negative ack counts,
  transient states imply a waiting request, ...).

A :class:`FlightRecorder` keeps the last N events per block in a ring
buffer, so a :class:`~repro.protocols.verify.CoherenceViolation` report
shows the exact history that led to the violation — the same event
stream :class:`~repro.harness.trace.ProtocolTrace` records, plus tag and
directory-state transitions.

The monitor is **passive**: it charges no cycles, draws no random
numbers, and writes nothing to ``machine.stats``, so a fixed-seed run
with the monitor enabled is cycle- and statistics-identical to one
without it.  Enable it per machine with
:meth:`~repro.machine.MachineBase.enable_conformance`, or for a whole
test run with the ``REPRO_CONFORMANCE=1`` environment variable.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.memory.tags import Tag
from repro.network.message import NACK_HANDLER
from repro.protocols.directory import DirectoryState
from repro.protocols.verify import CoherenceViolation

__all__ = [
    "ProtocolSpec",
    "ConformanceMonitor",
    "FlightRecorder",
    "RecordedEvent",
    "STACHE_SPEC",
    "DIRNNB_SPEC",
    "IVY_SPEC",
    "EM3D_UPDATE_SPEC",
    "SPECS",
    "spec_for",
]


# ----------------------------------------------------------------------
# Declarative transition tables
# ----------------------------------------------------------------------
def _pairs(*edges: tuple) -> frozenset:
    """Edge list -> frozenset, with every self-loop added (idempotent
    re-assignment of the current value is never a protocol error)."""
    states = {state for edge in edges for state in edge}
    return frozenset(edges) | frozenset((state, state) for state in states)


#: Legal single-step directory transitions shared by Stache and DirNNB.
#: Transient exits pass through HOME (``_h_wb_data``/``_h_ack`` assign
#: HOME before ``_finish_write_grant`` re-resolves), so no direct
#: PENDING_* -> EXCLUSIVE edge exists.
DIRECTORY_TRANSITIONS = _pairs(
    (DirectoryState.HOME, DirectoryState.SHARED),
    (DirectoryState.HOME, DirectoryState.EXCLUSIVE),
    (DirectoryState.SHARED, DirectoryState.HOME),
    (DirectoryState.SHARED, DirectoryState.EXCLUSIVE),
    (DirectoryState.SHARED, DirectoryState.PENDING_INVALIDATE),
    (DirectoryState.EXCLUSIVE, DirectoryState.HOME),
    (DirectoryState.EXCLUSIVE, DirectoryState.PENDING_WRITEBACK),
    (DirectoryState.PENDING_WRITEBACK, DirectoryState.HOME),
    (DirectoryState.PENDING_WRITEBACK, DirectoryState.SHARED),
    (DirectoryState.PENDING_INVALIDATE, DirectoryState.HOME),
)

#: Legal single-step access-tag transitions (Stache and IVY; DirNNB has
#: no tags).  BUSY marks a fetch in flight: it may only be entered from
#: a non-writable state and must exit via a data grant, so BUSY -> BUSY
#: (a duplicate request launch), BUSY -> INVALID (a lost fetch) and
#: READ_WRITE -> BUSY (re-fetching an owned block) are all illegal.
TAG_TRANSITIONS = frozenset({
    (Tag.INVALID, Tag.INVALID),
    (Tag.READ_ONLY, Tag.READ_ONLY),
    (Tag.READ_WRITE, Tag.READ_WRITE),
    (Tag.INVALID, Tag.BUSY),
    (Tag.READ_ONLY, Tag.BUSY),
    (Tag.BUSY, Tag.READ_ONLY),
    (Tag.BUSY, Tag.READ_WRITE),
    (Tag.INVALID, Tag.READ_ONLY),
    (Tag.INVALID, Tag.READ_WRITE),
    (Tag.READ_ONLY, Tag.READ_WRITE),
    (Tag.READ_WRITE, Tag.READ_ONLY),
    (Tag.READ_ONLY, Tag.INVALID),
    (Tag.READ_WRITE, Tag.INVALID),
})


@dataclass(frozen=True)
class ProtocolSpec:
    """One protocol's conformance specification.

    ``directory_transitions`` / ``tag_transitions`` are the legal
    single-step relations (None disables that check).  The handler-name
    sets drive the message-level causality checks: a *grant* must answer
    an outstanding *request* for the same (requester, address), an *ack*
    must answer an outstanding *inval*, and a *writeback reply* must
    answer an outstanding *writeback request*.
    """

    name: str
    directory_transitions: frozenset | None
    tag_transitions: frozenset | None
    request_handlers: frozenset
    grant_handlers: frozenset
    inval_handlers: frozenset
    ack_handlers: frozenset
    writeback_request_handlers: frozenset
    writeback_reply_handlers: frozenset
    #: True when the home component reports accepted requests itself
    #: (:meth:`ConformanceMonitor.note_request`) instead of the monitor
    #: counting request *sends* — DirNNB's directory controller does
    #: this, so the causality check also covers requests that reach the
    #: controller without crossing the observed interconnect.
    requests_at_home: bool = False
    #: Step-indexed bulk-update messages (em3d-update's fuzzy barrier).
    #: These are *not* part of the request/grant causality graph; the
    #: monitor instead checks that each sender flushes steps in
    #: non-decreasing order per ``(src, dst, kind)`` channel and that
    #: the receive side buffers (never applies) updates ahead of its
    #: per-kind safety watermark — the single-writer-within-a-step
    #: relaxation that the flush boundary restores.
    update_handlers: frozenset = frozenset()


STACHE_SPEC = ProtocolSpec(
    name="stache",
    directory_transitions=DIRECTORY_TRANSITIONS,
    tag_transitions=TAG_TRANSITIONS,
    request_handlers=frozenset({"stache.get_ro", "stache.get_rw"}),
    grant_handlers=frozenset({"stache.data"}),
    inval_handlers=frozenset({"stache.inval"}),
    ack_handlers=frozenset({"stache.ack"}),
    writeback_request_handlers=frozenset({"stache.writeback"}),
    writeback_reply_handlers=frozenset({"stache.wb_data"}),
)

DIRNNB_SPEC = ProtocolSpec(
    name="dirnnb",
    directory_transitions=DIRECTORY_TRANSITIONS,
    tag_transitions=None,  # DirNNB is all-hardware: no access tags
    request_handlers=frozenset({"dir.get"}),
    grant_handlers=frozenset({"dir.data"}),
    inval_handlers=frozenset({"dir.inval"}),
    ack_handlers=frozenset({"dir.ack"}),
    writeback_request_handlers=frozenset({"dir.wb"}),
    writeback_reply_handlers=frozenset({"dir.wb_data"}),
    requests_at_home=True,
)

IVY_SPEC = ProtocolSpec(
    name="ivy",
    directory_transitions=None,  # IVY keeps _PageState, not a directory
    tag_transitions=TAG_TRANSITIONS,
    request_handlers=frozenset({"ivy.get"}),
    grant_handlers=frozenset({"ivy.grant"}),
    inval_handlers=frozenset({"ivy.inval"}),
    ack_handlers=frozenset({"ivy.ack"}),
    writeback_request_handlers=frozenset({"ivy.recall"}),
    writeback_reply_handlers=frozenset({"ivy.page_sent"}),
)

#: The EM3D update protocol relaxes single-writer semantics *within* a
#: compute step only: remote copies drift while updates for the current
#: step are in flight, and the fuzzy flush boundary restores agreement.
#: Its spec therefore keeps Stache's structural relations (the inherited
#: paths are plain Stache), adds the custom fetch handlers to the
#: request/grant causality sets, and declares ``em3d.update`` as a
#: step-indexed update stream checked by the watermark rules above
#: rather than by request/grant causality.
EM3D_UPDATE_SPEC = ProtocolSpec(
    name="em3d-update",
    directory_transitions=DIRECTORY_TRANSITIONS,
    tag_transitions=TAG_TRANSITIONS,
    request_handlers=frozenset({"stache.get_ro", "stache.get_rw",
                                "em3d.get"}),
    grant_handlers=frozenset({"stache.data", "em3d.data"}),
    inval_handlers=frozenset({"stache.inval"}),
    ack_handlers=frozenset({"stache.ack"}),
    writeback_request_handlers=frozenset({"stache.writeback"}),
    writeback_reply_handlers=frozenset({"stache.wb_data"}),
    update_handlers=frozenset({"em3d.update"}),
)

#: Protocol name (the class's ``name`` attribute / DirNNB's system name)
#: -> spec.  Every registered protocol now has one; em3d-update's is
#: step-indexed (single-writer relaxed within a step, restored at flush
#: boundaries) rather than absent.
SPECS = {
    "stache": STACHE_SPEC,
    "stache-migratory": STACHE_SPEC,
    "ivy": IVY_SPEC,
    "dirnnb": DIRNNB_SPEC,
    "em3d-update": EM3D_UPDATE_SPEC,
}


def spec_for(machine) -> ProtocolSpec | None:
    """The conformance spec for ``machine``'s effective protocol, if any.

    Registry-driven: the spec key is the installed protocol's name, or —
    for backends whose protocol is hardwired (DirNNB) — the backend
    registry's ``builtin_protocol``.  Imported lazily because
    ``repro.backends`` depends on the protocol registry; protocol-package
    modules stay backend-neutral.
    """
    from repro.backends import spec_name_for

    return SPECS.get(spec_name_for(machine))


# ----------------------------------------------------------------------
# Flight recorder
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RecordedEvent:
    """One recorded occurrence (superset of ProtocolTrace's kinds)."""

    time: float
    kind: str        # "send" | "deliver" | "drop" | "fault" | "tag" | "state"
    node: int        # acting node / message source
    dst: int | None  # message destination (None for local events)
    what: str        # handler name, fault kind, or transition description
    block: int | None

    def format(self) -> str:
        where = f"node{self.node}"
        if self.dst is not None:
            where += f" -> node{self.dst}"
        addr = f"  addr={self.block:#x}" if self.block is not None else ""
        return f"{self.time:>10.0f}  {self.kind:<8} {where:<18} {self.what}{addr}"


class FlightRecorder:
    """The last N events, globally and per block, in ring buffers.

    Violation reports pull the per-block history when the violating
    block is known (falling back to the global ring), so the report
    reads as the story of exactly the transaction that went wrong.
    """

    def __init__(self, history: int = 64):
        self.history = history
        self._global: deque[RecordedEvent] = deque(maxlen=history)
        self._per_block: dict[int, deque[RecordedEvent]] = {}

    def record(self, time: float, kind: str, node: int, dst: int | None,
               what: str, block: int | None) -> None:
        event = RecordedEvent(time, kind, node, dst, what, block)
        self._global.append(event)
        if block is not None:
            ring = self._per_block.get(block)
            if ring is None:
                ring = self._per_block[block] = deque(maxlen=self.history)
            ring.append(event)

    def events(self, block: int | None = None) -> list[RecordedEvent]:
        if block is not None and block in self._per_block:
            return list(self._per_block[block])
        return list(self._global)

    def report(self, block: int | None = None) -> str:
        events = self.events(block)
        scope = f" for block {block:#x}" if block is not None else ""
        lines = [f"flight recorder: last {len(events)} events{scope}"]
        lines.extend(event.format() for event in events)
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self._global)


# ----------------------------------------------------------------------
# The monitor
# ----------------------------------------------------------------------
class ConformanceMonitor:
    """Online checker for one machine, against one :class:`ProtocolSpec`.

    Construction is cheap; :meth:`attach` wires the observers (the same
    emission points ``ProtocolTrace`` uses, plus the tag-store and
    directory-entry hooks).  ``strict=True`` (the default) raises
    :class:`CoherenceViolation` at the violating event, with the flight
    recorder's history appended; ``strict=False`` only records into
    :attr:`violations`.
    """

    def __init__(self, machine, spec: ProtocolSpec, strict: bool = True,
                 history: int = 64):
        self.machine = machine
        self.spec = spec
        self.strict = strict
        self.recorder = FlightRecorder(history)
        #: Every violation's summary line, in detection order.
        self.violations: list[str] = []
        #: Number of individual conformance checks performed.
        self.checks = 0
        # Watched directory entries: (home node, block) -> entry, plus a
        # reverse map so the state observer can name the entry.  Holding
        # the entry objects keeps id() keys stable.
        self._entries: dict[tuple[int, int], object] = {}
        self._entry_keys: dict[int, tuple[int, int]] = {}
        # Message causality state, keyed (node, addr).
        self._outstanding: dict[tuple[int, int], int] = {}
        self._expected_acks: dict[tuple[int, int], int] = {}
        self._expected_wb: dict[tuple[int, int], int] = {}
        # Dedup retransmits/duplicate deliveries by message id.
        self._sent_ids: set[int] = set()
        self._delivered_ids: set[int] = set()
        # IVY keeps its manager records on the protocol object.
        protocol = getattr(machine, "protocol", None)
        self._ivy_pages = (
            protocol._pages
            if spec is IVY_SPEC and protocol is not None else None
        )
        # Step-indexed update protocols (em3d-update) keep per-node
        # receive-side state on the protocol.  Held as the protocol
        # object (not the list) because ``install`` rebuilds the list.
        self._update_protocol = (
            protocol if spec.update_handlers and protocol is not None
            else None
        )
        # Highest update step sent per (src, dst, kind) channel, and the
        # highest safety watermark seen per (node, kind): both may only
        # advance.
        self._update_sent: dict[tuple[int, int, str], int] = {}
        self._update_safe: dict[tuple[int, str], int] = {}

    # ------------------------------------------------------------------
    def attach(self) -> "ConformanceMonitor":
        """Wire the machine's emission points to this monitor."""
        self.machine.interconnect.observers.append(self._on_message)
        self.machine.fault_observers.append(self._on_fault)
        for node in self.machine.nodes:
            tags = getattr(node, "tags", None)
            if tags is not None and self.spec.tag_transitions is not None:
                tags.observer = self._on_tag
            directory = getattr(node, "directory", None)
            if directory is not None:  # DirNNB: sweep existing entries
                for block, entry in directory.entries().items():
                    self.watch_entry(node.node_id, block, entry)
            # Stache-family: sweep the software directories already
            # materialized in home pages.
            page_table = getattr(node, "page_table", None)
            if page_table is not None:
                for page in page_table.mapped_pages():
                    if isinstance(page.user_word, dict):
                        for block, entry in page.user_word.items():
                            if hasattr(entry, "state"):
                                self.watch_entry(
                                    node.node_id, block, entry
                                )
        return self

    def note_request(self, block: int, requester: int) -> None:
        """The home accepted a request (``requests_at_home`` protocols).

        Called by the component that owns the home-side state (DirNNB's
        directory controller), so requests injected without crossing the
        interconnect — the home's own misses, direct-drive unit tests —
        still arm the grant-causality check.
        """
        key = (requester, block)
        self._outstanding[key] = self._outstanding.get(key, 0) + 1

    def watch_entry(self, home: int, block: int, entry) -> None:
        """Observe every ``state`` assignment on a directory entry."""
        if self.spec.directory_transitions is None:
            return
        self._entries[(home, block)] = entry
        self._entry_keys[id(entry)] = (home, block)
        entry._observer = self._on_state

    # ------------------------------------------------------------------
    # Observers
    # ------------------------------------------------------------------
    def _on_state(self, entry, old: DirectoryState,
                  new: DirectoryState) -> None:
        home, block = self._entry_keys[id(entry)]
        self.checks += 1
        self.recorder.record(
            self.machine.engine.now, "state", home, None,
            f"{old.value} -> {new.value}", block,
        )
        if (old, new) not in self.spec.directory_transitions:
            self._violation(
                f"illegal directory transition {old.value} -> {new.value} "
                f"for block {block:#x} at home node {home}",
                block,
            )

    def _on_tag(self, node: int, addr: int, old: Tag, new: Tag) -> None:
        self.checks += 1
        self.recorder.record(
            self.machine.engine.now, "tag", node, None,
            f"{old.value} -> {new.value}", addr,
        )
        if (old, new) not in self.spec.tag_transitions:
            self._violation(
                f"illegal tag transition {old.value} -> {new.value} "
                f"at {addr:#x} on node {node}",
                addr,
            )

    def _on_fault(self, fault) -> None:
        self.recorder.record(
            self.machine.engine.now, "fault", fault.node, None,
            fault.kind, fault.block_addr,
        )

    def _on_message(self, kind: str, message) -> None:
        addr = message.payload.get("addr")
        self.recorder.record(
            self.machine.engine.now, kind, message.src, message.dst,
            message.handler, addr,
        )
        handler = message.handler
        if handler == NACK_HANDLER or addr is None:
            return
        spec = self.spec
        if kind == "send":
            # A retransmit re-enters send() with the same message id;
            # causality counts the logical message once.
            if message.msg_id in self._sent_ids:
                return
            self._sent_ids.add(message.msg_id)
            if handler in spec.request_handlers:
                if not spec.requests_at_home:
                    requester = message.payload.get("requester", message.src)
                    key = (requester, addr)
                    self._outstanding[key] = (
                        self._outstanding.get(key, 0) + 1
                    )
            elif handler in spec.inval_handlers:
                key = (message.src, addr)
                self._expected_acks[key] = self._expected_acks.get(key, 0) + 1
            elif handler in spec.writeback_request_handlers:
                key = (message.src, addr)
                self._expected_wb[key] = self._expected_wb.get(key, 0) + 1
            elif handler in spec.update_handlers:
                # Step-indexed updates: each sender flushes steps in
                # order, so the step sequence on one (src, dst, kind)
                # channel may never regress at the send side (sends are
                # unaffected by network faults, unlike deliveries).
                self.checks += 1
                kind = message.payload.get("kind")
                step = message.payload.get("step", 0)
                channel = (message.src, message.dst, kind)
                last = self._update_sent.get(channel)
                if last is not None and step < last:
                    self._violation(
                        f"update step regressed on channel node"
                        f"{message.src} -> node{message.dst} "
                        f"kind={kind!r}: step {step} after step {last}",
                        addr,
                    )
                else:
                    self._update_sent[channel] = step
        elif kind == "deliver":
            # Duplicate deliveries (fault injection) count once.
            if message.msg_id in self._delivered_ids:
                return
            self._delivered_ids.add(message.msg_id)
            if handler in spec.grant_handlers:
                self.checks += 1
                key = (message.dst, addr)
                count = self._outstanding.get(key, 0)
                if count <= 0:
                    self._violation(
                        f"data grant {handler} to node {message.dst} for "
                        f"{addr:#x} answers no outstanding request",
                        addr,
                    )
                else:
                    self._outstanding[key] = count - 1
            elif handler in spec.ack_handlers:
                self.checks += 1
                key = (message.dst, addr)
                count = self._expected_acks.get(key, 0)
                if count <= 0:
                    self._violation(
                        f"surplus acknowledgment {handler} at node "
                        f"{message.dst} for {addr:#x}: no invalidation "
                        f"outstanding",
                        addr,
                    )
                else:
                    self._expected_acks[key] = count - 1
            elif handler in spec.writeback_reply_handlers:
                self.checks += 1
                key = (message.dst, addr)
                count = self._expected_wb.get(key, 0)
                if count <= 0:
                    self._violation(
                        f"writeback reply {handler} at node {message.dst} "
                        f"for {addr:#x}: no writeback request outstanding",
                        addr,
                    )
                else:
                    self._expected_wb[key] = count - 1

    # ------------------------------------------------------------------
    # Handler postconditions
    # ------------------------------------------------------------------
    def after_handler(self, node_id: int, argument) -> None:
        """Check structural invariants after one handler invocation.

        ``argument`` is whatever the handler received: a Message (its
        payload names the block/page) or an AccessFault.
        """
        payload = getattr(argument, "payload", None)
        if payload is not None:
            addr = payload.get("addr")
        else:
            addr = getattr(argument, "block_addr", None)
        if addr is None:
            return
        entry = self._entries.get((node_id, addr))
        if entry is not None:
            self._check_entry(node_id, addr, entry)
        if self._ivy_pages is not None:
            state = self._ivy_pages.get((node_id, addr))
            if state is not None:
                self._check_ivy_page(node_id, addr, state)
        if self._update_protocol is not None:
            states = getattr(self._update_protocol, "_states", None)
            if states and 0 <= node_id < len(states):
                self._check_update_state(node_id, states[node_id])

    def _check_entry(self, home: int, block: int, entry) -> None:
        self.checks += 1
        if entry.acks_outstanding < 0:
            self._violation(
                f"negative acks_outstanding ({entry.acks_outstanding}) for "
                f"block {block:#x} at home node {home}",
                block,
            )
        state = entry.state
        if state is DirectoryState.PENDING_INVALIDATE:
            if entry.acks_outstanding < 1:
                self._violation(
                    f"block {block:#x} pending-invalidate with no "
                    f"acknowledgments outstanding at home node {home}",
                    block,
                )
            if not entry.pending:
                self._violation(
                    f"block {block:#x} pending-invalidate with no waiting "
                    f"request at home node {home}",
                    block,
                )
        elif state is DirectoryState.PENDING_WRITEBACK and not entry.pending:
            self._violation(
                f"block {block:#x} pending-writeback with no waiting "
                f"request at home node {home}",
                block,
            )

    def _check_ivy_page(self, manager: int, page_addr: int, state) -> None:
        self.checks += 1
        if state.acks_outstanding < 0:
            self._violation(
                f"negative acks_outstanding ({state.acks_outstanding}) for "
                f"page {page_addr:#x} at manager node {manager}",
                page_addr,
            )
        if state.busy != (state.active is not None):
            self._violation(
                f"page {page_addr:#x} at manager node {manager}: busy flag "
                f"({state.busy}) disagrees with active transaction "
                f"({state.active!r})",
                page_addr,
            )
        if not state.busy and state.acks_outstanding != 0:
            self._violation(
                f"page {page_addr:#x} at manager node {manager}: idle with "
                f"{state.acks_outstanding} acknowledgments outstanding",
                page_addr,
            )

    def _check_update_state(self, node: int, state) -> None:
        """Step-indexed update invariants (em3d-update's fuzzy barrier).

        Within a compute step remote copies may legitimately disagree
        with the home — that is the protocol's documented relaxation —
        but three structural facts must still hold at every handler
        boundary: a parked computation and its wait key agree, nothing
        for an already-safe step sits buffered (an applied-late update
        would be a lost write), and the per-kind safety watermark only
        advances (a regression would re-admit a completed step).
        """
        self.checks += 1
        if (state.waiter is None) != (state.wait_key is None):
            self._violation(
                f"node {node}: barrier waiter ({state.waiter!r}) "
                f"disagrees with wait key ({state.wait_key!r})"
            )
        for (kind, step), payloads in state.deferred.items():
            if payloads and step <= state.safe_step[kind]:
                self._violation(
                    f"node {node}: update for kind={kind!r} step {step} "
                    f"still buffered though the watermark is "
                    f"{state.safe_step[kind]} (it should have been "
                    f"applied at the flush boundary)"
                )
        for kind, safe in state.safe_step.items():
            key = (node, kind)
            last = self._update_safe.get(key)
            if last is not None and safe < last:
                self._violation(
                    f"node {node}: safety watermark for kind={kind!r} "
                    f"regressed from {last} to {safe}"
                )
            if last is None or safe > last:
                self._update_safe[key] = safe

    # ------------------------------------------------------------------
    def _violation(self, summary: str, block: int | None = None) -> None:
        self.violations.append(summary)
        if self.strict:
            raise CoherenceViolation(
                f"{summary}\n{self.recorder.report(block)}"
            )

    def __repr__(self) -> str:
        return (
            f"ConformanceMonitor(spec={self.spec.name!r}, "
            f"checks={self.checks}, violations={len(self.violations)})"
        )
