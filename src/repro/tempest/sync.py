"""Synchronization primitives built from Tempest messages.

The paper's footnote 1 says the authors "are investigating adding a set of
synchronization primitives".  This module implements that extension the
way a Tempest user would have to today: each synchronization object lives
on a *home node* and is manipulated by active messages, whose handlers run
atomically on the home NP — so no additional hardware is required.

Two primitives are provided:

* :class:`TempestLock` — a queueing mutex.  ``acquire`` sends a request to
  the home; the home handler either grants immediately or appends the
  requester to a wait queue drained by ``release``.
* :class:`FetchAndOp` — an atomic read-modify-write cell (fetch-and-add
  by default), the building block for counters, tickets and fuzzy
  barriers.

Both are usable from computation threads (``yield from lock.acquire(ctx)``
style) and are exercised by the custom-synchronization example.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Callable

from repro.network.message import VirtualNetwork
from repro.sim.process import Future

_sync_ids = itertools.count()

#: Handler path lengths, calibrated like the protocol handlers: a grant or
#: queue operation is a handful of loads/stores plus a send.
REQUEST_INSTRUCTIONS = 12
REPLY_INSTRUCTIONS = 8


class TempestLock:
    """A distributed queueing lock homed on one node.

    Construction must happen identically on every node (SPMD replicated
    initialization); the object's identity is its ``lock_id``.
    """

    def __init__(self, tempests: list, home: int, name: str = ""):
        self.lock_id = next(_sync_ids)
        self.home = home
        self.name = name or f"lock{self.lock_id}"
        self._tempests = tempests
        # Home-side state (only meaningful on the home node's copy).
        self._held = False
        self._queue: deque[int] = deque()
        self._grants: dict[int, Future] = {}

        acquire_handler = f"__lock.{self.name}.acquire"
        release_handler = f"__lock.{self.name}.release"
        grant_handler = f"__lock.{self.name}.grant"
        self._acquire_handler = acquire_handler
        self._release_handler = release_handler
        self._grant_handler = grant_handler

        home_tempest = tempests[home]
        home_tempest.register_handler(
            acquire_handler, self._on_acquire, REQUEST_INSTRUCTIONS
        )
        home_tempest.register_handler(
            release_handler, self._on_release, REQUEST_INSTRUCTIONS
        )
        for tempest in tempests:
            tempest.register_handler(
                f"{grant_handler}.{tempest.node_id}",
                self._on_grant,
                REPLY_INSTRUCTIONS,
            )

    # ------------------------------------------------------------------
    # Caller side (computation thread)
    # ------------------------------------------------------------------
    def acquire(self, node_id: int):
        """Generator: yields until the lock is granted to ``node_id``."""
        tempest = self._tempests[node_id]
        grant = Future(tempest.engine)
        self._grants[node_id] = grant
        tempest.send(
            self.home,
            self._acquire_handler,
            vnet=VirtualNetwork.REQUEST,
            requester=node_id,
        )
        yield grant

    def release(self, node_id: int):
        """Generator: sends the release; returns without waiting."""
        tempest = self._tempests[node_id]
        tempest.send(
            self.home,
            self._release_handler,
            vnet=VirtualNetwork.REQUEST,
            requester=node_id,
        )
        yield 1  # one cycle to issue the store that launches the message

    # ------------------------------------------------------------------
    # Home-side handlers
    # ------------------------------------------------------------------
    def _on_acquire(self, tempest, message) -> None:
        requester = message.payload["requester"]
        if self._held:
            self._queue.append(requester)
            return
        self._held = True
        self._send_grant(tempest, requester)

    def _on_release(self, tempest, message) -> None:
        if not self._held:
            raise RuntimeError(f"release of unheld lock {self.name}")
        if self._queue:
            self._send_grant(tempest, self._queue.popleft())
        else:
            self._held = False

    def _send_grant(self, tempest, requester: int) -> None:
        tempest.send(
            requester,
            f"{self._grant_handler}.{requester}",
            vnet=VirtualNetwork.RESPONSE,
            requester=requester,
        )

    def _on_grant(self, tempest, message) -> None:
        grant = self._grants.pop(message.payload["requester"])
        grant.resolve(None)


class FetchAndOp:
    """An atomic fetch-and-op cell homed on one node."""

    def __init__(self, tempests: list, home: int, initial: int = 0,
                 op: Callable[[int, int], int] = lambda old, arg: old + arg,
                 name: str = ""):
        self.cell_id = next(_sync_ids)
        self.home = home
        self.name = name or f"cell{self.cell_id}"
        self._tempests = tempests
        self._value = initial
        self._op = op
        self._replies: dict[int, deque[Future]] = {
            t.node_id: deque() for t in tempests
        }

        self._apply_handler = f"__faop.{self.name}.apply"
        self._reply_handler = f"__faop.{self.name}.reply"
        tempests[home].register_handler(
            self._apply_handler, self._on_apply, REQUEST_INSTRUCTIONS
        )
        for tempest in tempests:
            tempest.register_handler(
                f"{self._reply_handler}.{tempest.node_id}",
                self._on_reply,
                REPLY_INSTRUCTIONS,
            )

    def apply(self, node_id: int, argument: int = 1):
        """Generator: atomically apply op(value, argument); yields old value."""
        tempest = self._tempests[node_id]
        reply = Future(tempest.engine)
        self._replies[node_id].append(reply)
        tempest.send(
            self.home,
            self._apply_handler,
            vnet=VirtualNetwork.REQUEST,
            requester=node_id,
            argument=argument,
        )
        old = yield reply
        return old

    @property
    def value(self) -> int:
        """Home-side peek (diagnostics; not a simulated access)."""
        return self._value

    def _on_apply(self, tempest, message) -> None:
        old = self._value
        self._value = self._op(old, message.payload["argument"])
        tempest.send(
            message.payload["requester"],
            f"{self._reply_handler}.{message.payload['requester']}",
            vnet=VirtualNetwork.RESPONSE,
            requester=message.payload["requester"],
            old=old,
        )

    def _on_reply(self, tempest, message) -> None:
        reply = self._replies[message.payload["requester"]].popleft()
        reply.resolve(message.payload["old"])
