"""A software barrier built from Tempest active messages.

Typhoon inherits a dedicated low-latency barrier network from the CM-5
(Table 2's 11-cycle barrier).  A machine without one would synthesize
barriers from messages — and Tempest users can, with nothing but the
messaging mechanism: arrivals flow to a coordinator node whose handler
counts them and broadcasts the release.

This is both a library feature (portable synchronization) and the
substrate of the barrier-cost ablation: how much of the applications'
performance rides on the hardware barrier?

The implementation is episode-safe: a node may re-arrive for episode
*k+1* before slow peers have processed their episode-*k* release, so
arrivals carry the episode number and the coordinator keeps one count per
episode.
"""

from __future__ import annotations

import itertools
from collections import defaultdict

from repro.network.message import VirtualNetwork
from repro.sim.process import Future

#: Handler path lengths: counting an arrival / processing a release.
ARRIVE_INSTRUCTIONS = 10
RELEASE_INSTRUCTIONS = 6

_barrier_ids = itertools.count()


class SoftwareBarrier:
    """Message-based barrier across all nodes of a machine."""

    def __init__(self, tempests: list, coordinator: int = 0, name: str = ""):
        self.barrier_id = next(_barrier_ids)
        self.name = name or f"swbar{self.barrier_id}"
        self.coordinator = coordinator
        self._tempests = tempests
        self._participants = len(tempests)
        # Coordinator-side: arrivals per episode.
        self._arrivals: dict[int, int] = defaultdict(int)
        # Participant-side: episode -> pending future, plus local episode.
        self._waiting: dict[int, Future] = {}
        self._episode: dict[int, int] = {t.node_id: 0 for t in tempests}
        self.episodes_completed = 0

        arrive = f"__swbar.{self.name}.arrive"
        release = f"__swbar.{self.name}.release"
        self._arrive_handler = arrive
        self._release_handler = release
        tempests[coordinator].register_handler(
            arrive, self._on_arrive, ARRIVE_INSTRUCTIONS
        )
        for tempest in tempests:
            tempest.register_handler(
                f"{release}.{tempest.node_id}",
                self._on_release,
                RELEASE_INSTRUCTIONS,
            )

    # ------------------------------------------------------------------
    def arrive(self, node_id: int):
        """Generator: block until every node has arrived at this episode."""
        tempest = self._tempests[node_id]
        episode = self._episode[node_id]
        self._episode[node_id] = episode + 1
        released = Future(tempest.engine)
        self._waiting[node_id] = released
        tempest.send(
            self.coordinator,
            self._arrive_handler,
            vnet=VirtualNetwork.REQUEST,
            node=node_id,
            episode=episode,
        )
        yield released

    # ------------------------------------------------------------------
    def _on_arrive(self, tempest, message) -> None:
        episode = message.payload["episode"]
        self._arrivals[episode] += 1
        if self._arrivals[episode] < self._participants:
            return
        del self._arrivals[episode]
        self.episodes_completed += 1
        for peer in self._tempests:
            tempest.charge(2)  # per-release send work
            tempest.send(
                peer.node_id,
                f"{self._release_handler}.{peer.node_id}",
                vnet=VirtualNetwork.RESPONSE,
                episode=episode,
            )

    def _on_release(self, tempest, message) -> None:
        released = self._waiting.pop(tempest.node_id)
        released.resolve(None)

    def __repr__(self) -> str:
        return (
            f"SoftwareBarrier({self.name}, coordinator={self.coordinator}, "
            f"episodes={self.episodes_completed})"
        )
