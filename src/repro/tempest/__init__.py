"""The Tempest interface (paper Section 2).

Tempest is the paper's primary contribution: a *user-level* parallel
machine interface of four mechanism families —

1. low-overhead (active) messages,
2. bulk node-to-node data transfer,
3. virtual-memory management, and
4. fine-grain access control —

that are together sufficient to implement the full range of shared-memory
semantics in user-level software.  Protocols in :mod:`repro.protocols`
program against this interface only; the hardware behind it is supplied by
a backend (Typhoon in :mod:`repro.typhoon`), which is exactly the
portability argument the paper makes ("By abstracting from the
implementation details, the Tempest interface provides portability between
these different systems").
"""

from repro.tempest.interface import Tempest, TempestBackend
from repro.tempest.messaging import HandlerRegistry, HandlerSpec
from repro.tempest.port import CostDomain, TempestPort
from repro.tempest.threads import ComputationThread
from repro.tempest.swbarrier import SoftwareBarrier
from repro.tempest.sync import TempestLock, FetchAndOp

__all__ = [
    "ComputationThread",
    "CostDomain",
    "FetchAndOp",
    "HandlerRegistry",
    "HandlerSpec",
    "SoftwareBarrier",
    "Tempest",
    "TempestBackend",
    "TempestPort",
    "TempestLock",
]
