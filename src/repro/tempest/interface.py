"""The Tempest facade: one object per node exposing the four mechanisms.

Protocol libraries (Stache, the EM3D update protocol, user code) see only
this class.  The hardware behind it is a :class:`TempestBackend` — in this
package that is a Typhoon node, but nothing in :mod:`repro.protocols`
depends on Typhoon, mirroring the paper's portability claim.

The checked ``read``/``write`` operations of Table 1 are the CPU's own
loads and stores (they happen in the node model when application code
issues accesses); everything else in Table 1, plus messaging, bulk
transfer, and VM management, is here.
"""

from __future__ import annotations

from typing import Any, Callable, Protocol, runtime_checkable

from repro.memory.address import AddressLayout
from repro.memory.allocator import GlobalHeap
from repro.memory.data import MemoryImage
from repro.memory.page_table import PageEntry, PageTable
from repro.memory.tags import Tag, TagStore
from repro.network.message import Message, VirtualNetwork
from repro.sim.engine import Engine
from repro.sim.process import Future
from repro.sim.stats import Stats
from repro.tempest.messaging import HandlerRegistry
from repro.tempest.threads import ComputationThread


@runtime_checkable
class TempestBackend(Protocol):
    """What the hardware must supply for Tempest to run on it."""

    node_id: int
    engine: Engine
    stats: Stats
    layout: AddressLayout
    registry: HandlerRegistry
    tags: TagStore
    page_table: PageTable
    image: MemoryImage
    thread: ComputationThread
    heap: GlobalHeap
    written_blocks: set

    @property
    def num_nodes(self) -> int: ...

    def send_message(self, message: Message) -> None: ...

    def invalidate_cpu_copy(self, block_addr: int) -> None: ...

    def downgrade_cpu_copy(self, block_addr: int) -> None: ...

    def shoot_down_page(self, vaddr: int) -> None: ...

    def np_charge(self, cycles: int) -> None: ...


class Tempest:
    """User-level interface to one node's communication and memory system."""

    def __init__(self, backend: TempestBackend):
        from repro.tempest.bulk import BulkTransferEngine

        self._backend = backend
        # Identity handles, bound once: these backend attributes are fixed
        # for the machine's lifetime, and protocol handlers read them on
        # every dispatch, so plain attributes beat properties.
        self.node_id: int = backend.node_id
        self.num_nodes: int = backend.num_nodes
        self.layout: AddressLayout = backend.layout
        self.engine: Engine = backend.engine
        self.stats: Stats = backend.stats
        self.image: MemoryImage = backend.image
        self._tags = backend.tags
        self._send_message = backend.send_message
        # Eager: every node must have the bulk receive handlers installed
        # before any peer can target it with a transfer.
        self._bulk_engine = BulkTransferEngine(backend)

    # ------------------------------------------------------------------
    # Mechanism 1: low-overhead messages (Section 2.1)
    # ------------------------------------------------------------------
    def register_handler(self, name: str, fn: Callable[..., Any],
                         instructions: int) -> None:
        """Install an active-message / fault handler on this node.

        ``instructions`` is the handler's path length; the NP charges one
        cycle per instruction when it runs (Section 6).
        """
        self._backend.registry.register(name, fn, instructions)

    def send(
        self,
        dst: int,
        handler: str,
        vnet: VirtualNetwork = VirtualNetwork.REQUEST,
        size_words: int = 3,
        **payload: Any,
    ) -> None:
        """Send an active message; the handler runs on ``dst``'s NP."""
        self._send_message(
            Message(
                src=self.node_id,
                dst=dst,
                handler=handler,
                vnet=vnet,
                size_words=size_words,
                payload=payload,
            )
        )

    # ------------------------------------------------------------------
    # Mechanism 2: bulk data transfer (Section 2.2)
    # ------------------------------------------------------------------
    def bulk_transfer(self, dst: int, src_vaddr: int, dst_vaddr: int,
                      nbytes: int) -> Future:
        """Asynchronous bulk copy to another node; resolves on completion."""
        return self._bulk_engine.start(dst, src_vaddr, dst_vaddr, nbytes)

    # ------------------------------------------------------------------
    # Mechanism 3: virtual-memory management (Section 2.3)
    # ------------------------------------------------------------------
    def map_page(self, vaddr: int, mode: int, home: int, initial_tag: Tag,
                 user_word: Any = None) -> PageEntry:
        """Allocate physical memory and map it at ``vaddr`` (page aligned)."""
        return self._backend.page_table.map_page(
            vaddr, mode=mode, home=home, initial_tag=initial_tag,
            user_word=user_word,
        )

    def unmap_page(self, vaddr: int) -> PageEntry:
        entry = self._backend.page_table.unmap_page(vaddr)
        self._backend.shoot_down_page(vaddr)
        return entry

    def remap_page(self, old_vaddr: int, new_vaddr: int,
                   initial_tag: Tag) -> PageEntry:
        entry = self._backend.page_table.remap_page(old_vaddr, new_vaddr,
                                                    initial_tag)
        # The translation hardware must not keep serving the old page:
        # shoot the entry out of the CPU TLB and the NP's reverse TLB.
        self._backend.shoot_down_page(old_vaddr)
        return entry

    def page_entry(self, vaddr: int) -> PageEntry | None:
        return self._backend.page_table.lookup(vaddr)

    def oldest_page_with_mode(self, mode: int) -> PageEntry | None:
        return self._backend.page_table.oldest_page_with_mode(mode)

    def pages_with_mode(self, mode: int) -> list[PageEntry]:
        return self._backend.page_table.pages_with_mode(mode)

    def home_of(self, addr: int) -> int:
        """Consult the distributed page-home mapping table."""
        return self._backend.heap.home_of(addr)

    # ------------------------------------------------------------------
    # Mechanism 4: fine-grain access control (Section 2.4 / Table 1)
    # ------------------------------------------------------------------
    def read_tag(self, addr: int) -> Tag:
        return self._tags.read_tag(addr)

    def set_rw(self, addr: int) -> None:
        self._tags.set_rw(addr)

    def set_ro(self, addr: int) -> None:
        """Downgrade to ReadOnly; the CPU's cached copy loses ownership."""
        self._tags.set_ro(addr)
        self._backend.downgrade_cpu_copy(self.layout.block_of(addr))

    def set_busy(self, addr: int) -> None:
        self._tags.set_tag(addr, Tag.BUSY)

    def invalidate(self, addr: int) -> None:
        """Table 1 ``invalidate``: set Invalid *and* invalidate local copies."""
        self._tags.invalidate(addr)
        self._backend.invalidate_cpu_copy(self.layout.block_of(addr))

    def force_read(self, addr: int) -> Any:
        """Load without tag check (NP accesses bypass the RTLB check)."""
        return self.image.read(addr)

    def force_write(self, addr: int, value: Any) -> None:
        """Store without tag check."""
        self.image.write(addr, value)

    def export_block(self, block_addr: int) -> dict[int, Any]:
        """Force-read a whole block (for building data-carrying messages)."""
        return self.image.export_block(block_addr)

    def import_block(self, block_addr: int, payload: dict[int, Any]) -> None:
        """Force-write a whole block (message handlers filling stache pages)."""
        self.image.import_block(block_addr, payload)

    def was_written(self, addr: int) -> bool:
        """Has this node stored to the block since it last gained it?

        The M-vs-E distinction of an ownership bus, exposed to protocol
        handlers (migratory-detection probes use it).
        """
        block = self._backend.layout.block_of(addr)
        return block in self._backend.written_blocks

    def resume(self, value: Any = None) -> None:
        """Table 1 ``resume``: restart this node's suspended thread."""
        self._backend.thread.resume(value)

    @property
    def thread_suspended(self) -> bool:
        return self._backend.thread.suspended

    # ------------------------------------------------------------------
    # Handler-side cost accounting
    # ------------------------------------------------------------------
    def charge(self, cycles: int) -> None:
        """Extend the running handler's NP occupancy by ``cycles``.

        For data-dependent handler work (e.g. one pointer update per
        sharer) beyond the registered fixed path length.
        """
        self._backend.np_charge(cycles)

    def __repr__(self) -> str:
        return f"Tempest(node={self.node_id}/{self.num_nodes})"
