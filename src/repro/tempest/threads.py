"""Computation-thread suspension and resumption.

Tempest's checked accesses suspend the faulting computation thread and a
user-level handler later restarts it (Table 1's ``resume``).  On Typhoon
the suspension is physical — the NP masks the CPU's bus request line —
and ``resume`` unmasks it so the stalled transaction retries
(Section 5.4).

Each simulated node runs one computation thread (the paper's SPMD model:
one address space and one primary computation thread per node; message
handlers run *concurrently* on the NP, not by interrupting this thread).
"""

from __future__ import annotations

from repro.sim.engine import Engine, SimulationError
from repro.sim.process import Future


class ComputationThread:
    """Suspension point for one node's computation thread."""

    def __init__(self, engine: Engine, node: int = 0):
        self.engine = engine
        self.node = node
        self._suspension: Future | None = None
        self.suspensions = 0
        self.resumes = 0

    @property
    def suspended(self) -> bool:
        return self._suspension is not None

    def suspend(self) -> Future:
        """Block the thread; returns the future the thread must wait on.

        A thread cannot be suspended twice: there is one CPU per node and
        it is already stalled.
        """
        if self._suspension is not None:
            raise SimulationError(f"thread on node {self.node} already suspended")
        self._suspension = Future(self.engine)
        self.suspensions += 1
        return self._suspension

    def resume(self, value=None) -> None:
        """Table 1 ``resume``: let the stalled access retry."""
        if self._suspension is None:
            raise SimulationError(f"thread on node {self.node} is not suspended")
        suspension, self._suspension = self._suspension, None
        self.resumes += 1
        suspension.resolve(value)

    def __repr__(self) -> str:
        state = "suspended" if self.suspended else "running"
        return f"ComputationThread(node={self.node}, {state})"
