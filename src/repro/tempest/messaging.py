"""Active-message handler registration (paper Section 2.1).

A Tempest message names a *handler* to run at the destination; the
remainder of the message is the handler's arguments.  On Typhoon the first
payload word is literally the handler PC; here handlers are named and
dispatched through a per-node :class:`HandlerRegistry`.

Each registration carries an **instruction count**: the cost the NP
charges per invocation (one cycle per instruction, Section 6).  The
paper's three measured path lengths live in
:class:`repro.sim.config.TyphoonCosts`; protocol authors supply counts for
their own handlers the same way they would by compiling them.

Handlers execute atomically with respect to other handlers (Section 2.1:
run-to-completion, non-preemptive), so protocol state needs no locks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable


class HandlerError(RuntimeError):
    """Unknown handler name or duplicate registration."""


@dataclass(frozen=True)
class HandlerSpec:
    """One registered handler: the code and its charged instruction count."""

    name: str
    fn: Callable[..., Any]
    instructions: int

    def __post_init__(self) -> None:
        if self.instructions < 0:
            raise HandlerError(f"negative instruction count for {self.name}")


class HandlerRegistry:
    """Named handler table for one node (messages and block faults share it)."""

    def __init__(self, node: int = 0):
        self.node = node
        self._handlers: dict[str, HandlerSpec] = {}

    def register(self, name: str, fn: Callable[..., Any], instructions: int) -> HandlerSpec:
        if name in self._handlers:
            raise HandlerError(f"handler {name!r} already registered on node {self.node}")
        spec = HandlerSpec(name=name, fn=fn, instructions=instructions)
        self._handlers[name] = spec
        return spec

    def lookup(self, name: str) -> HandlerSpec:
        spec = self._handlers.get(name)
        if spec is None:
            raise HandlerError(f"no handler {name!r} on node {self.node}")
        return spec

    def __contains__(self, name: str) -> bool:
        return name in self._handlers

    def names(self) -> list[str]:
        return sorted(self._handlers)

    def __len__(self) -> int:
        return len(self._handlers)

    def __repr__(self) -> str:
        return f"HandlerRegistry(node={self.node}, handlers={len(self)})"
