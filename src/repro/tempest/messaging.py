"""Active-message handler registration (paper Section 2.1).

A Tempest message names a *handler* to run at the destination; the
remainder of the message is the handler's arguments.  On Typhoon the first
payload word is literally the handler PC; here handlers are named and
dispatched through a per-node :class:`HandlerRegistry`.

Each registration carries an **instruction count**: the cost the NP
charges per invocation (one cycle per instruction, Section 6).  The
paper's three measured path lengths live in
:class:`repro.sim.config.TyphoonCosts`; protocol authors supply counts for
their own handlers the same way they would by compiling them.

Handlers execute atomically with respect to other handlers (Section 2.1:
run-to-completion, non-preemptive), so protocol state needs no locks.

This module also hosts the machinery that makes messaging survive an
*unreliable* network (see :mod:`repro.network.faults`):

* :class:`ReliableTransport` — machine-level send-side retry with timeout
  and exponential backoff, NACK handling, and a ``Stats``-visible
  retry/NACK counter family (``tempest.retries``, ``tempest.nacks_*``,
  ``tempest.duplicates_dropped``).
* :class:`DeliveryGuard` — receiver-side idempotency: suppresses exact
  duplicate deliveries keyed on the transport's transaction ids, so
  protocol handlers observe at-most-once semantics even when the network
  duplicates packets or the sender retransmits spuriously.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

from repro.network.message import Message
from repro.sim.engine import Engine, SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.network.faults import FaultSpec
    from repro.network.interconnect import Interconnect
    from repro.sim.stats import Stats


class HandlerError(RuntimeError):
    """Unknown handler name or duplicate registration."""


@dataclass(frozen=True)
class HandlerSpec:
    """One registered handler: the code and its charged instruction count."""

    name: str
    fn: Callable[..., Any]
    instructions: int

    def __post_init__(self) -> None:
        if self.instructions < 0:
            raise HandlerError(f"negative instruction count for {self.name}")


class HandlerRegistry:
    """Named handler table for one node (messages and block faults share it)."""

    def __init__(self, node: int = 0):
        self.node = node
        self._handlers: dict[str, HandlerSpec] = {}

    def register(self, name: str, fn: Callable[..., Any], instructions: int) -> HandlerSpec:
        if name in self._handlers:
            raise HandlerError(f"handler {name!r} already registered on node {self.node}")
        spec = HandlerSpec(name=name, fn=fn, instructions=instructions)
        self._handlers[name] = spec
        return spec

    def lookup(self, name: str) -> HandlerSpec:
        spec = self._handlers.get(name)
        if spec is None:
            raise HandlerError(f"no handler {name!r} on node {self.node}")
        return spec

    def __contains__(self, name: str) -> bool:
        return name in self._handlers

    def names(self) -> list[str]:
        return sorted(self._handlers)

    def __len__(self) -> int:
        return len(self._handlers)

    def __repr__(self) -> str:
        return f"HandlerRegistry(node={self.node}, handlers={len(self)})"


class ReliableTransport:
    """Send-side reliability: track, time out, back off, retransmit.

    One instance per machine (installed by
    ``MachineBase.install_fault_plan``).  The interconnect calls
    :meth:`track` when a fault plan is active and a remote message is
    first injected; :meth:`on_receipt` when a tracked message is actually
    received; :meth:`on_nack` when an NI-level NACK comes back.  A
    retransmit timer runs per transaction; attempt *n*'s timeout is
    ``retry_timeout * retry_backoff**(n-1)`` cycles.

    ``pending`` maps transaction id -> in-flight message; an empty dict
    after a run is the "no message permanently lost" oracle the fault
    property tests assert.
    """

    def __init__(self, engine: Engine, interconnect: "Interconnect",
                 spec: "FaultSpec", stats: "Stats"):
        self.engine = engine
        self.interconnect = interconnect
        self.spec = spec
        self.stats = stats
        #: Transaction id -> message awaiting receipt.
        self.pending: dict[int, Message] = {}
        self._timers: dict[int, Any] = {}
        self._next_xid = itertools.count(1)
        #: Conformance flight recorder (set by the machine when the
        #: monitor is enabled); delivery-failure reports include its
        #: per-block event history.
        self.flight_recorder = None
        #: Details of the last permanent delivery failure, recorded
        #: before the error propagates (node, dst, handler, xid,
        #: attempts) so post-mortem inspection survives the raise.
        self.last_failure: dict | None = None

    # -- interconnect hooks ---------------------------------------------
    def track(self, message: Message) -> None:
        """Assign a transaction id and arm the retransmit timer."""
        xid = next(self._next_xid)
        message.xid = xid
        self.pending[xid] = message
        self.stats.incr("tempest.tracked_sends")
        self._arm(xid, message)

    def on_receipt(self, message: Message) -> None:
        """A tracked message reached its receiver: stop retrying it."""
        if self.pending.pop(message.xid, None) is None:
            return  # duplicate of an already-received message
        timer = self._timers.pop(message.xid, None)
        if timer is not None:
            timer.cancel()

    def on_nack(self, nack: Message) -> None:
        """Receiver refused the packet: retransmit after ``nack_backoff``."""
        xid = nack.payload.get("xid")
        if xid not in self.pending:
            return  # stale NACK (original was retransmitted and received)
        self.stats.incr("tempest.nacks_received")
        timer = self._timers.pop(xid, None)
        if timer is not None:
            timer.cancel()
        self._timers[xid] = self.engine.schedule(
            self.spec.nack_backoff, self._timeout, xid
        )

    # -- timers ---------------------------------------------------------
    def _arm(self, xid: int, message: Message) -> None:
        timeout = (
            self.spec.retry_timeout
            * self.spec.retry_backoff ** (message.attempt - 1)
        )
        self._timers[xid] = self.engine.schedule(timeout, self._timeout, xid)

    def _timeout(self, xid: int) -> None:
        message = self.pending.get(xid)
        if message is None:
            return  # received while the timer was in flight
        if message.attempt >= self.spec.max_attempts:
            # Permanent failure: disarm this transaction before raising
            # so the error does not leave a live timer (and a pending
            # entry) pointing at a transaction we just declared dead.
            self.pending.pop(xid, None)
            timer = self._timers.pop(xid, None)
            if timer is not None:
                timer.cancel()
            self.last_failure = {
                "node": message.src,
                "dst": message.dst,
                "handler": message.handler,
                "xid": xid,
                "attempts": message.attempt,
            }
            detail = (
                f"message xid={xid} ({message.handler} "
                f"{message.src}->{message.dst}) undelivered after "
                f"{message.attempt} attempts"
            )
            if self.flight_recorder is not None:
                detail += "\n" + self.flight_recorder.report(
                    message.payload.get("addr")
                )
            raise SimulationError(detail)
        message.attempt += 1
        message.nacked = False
        self.stats.incr("tempest.retries")
        self._arm(xid, message)
        # Retransmits re-enter the network with xid already set, so the
        # interconnect does not re-track them; on_delivered is left alone
        # (the fire-once delivery path returns the send-queue credit for
        # whichever copy lands first).
        self.interconnect.send(message)

    @property
    def in_flight(self) -> int:
        return len(self.pending)

    def __repr__(self) -> str:
        return f"ReliableTransport(pending={len(self.pending)})"


class DeliveryGuard:
    """Receiver-side duplicate suppression keyed on transaction ids.

    Protocol handlers are not idempotent (a surplus ACK under-counts
    ``acks_outstanding``; a duplicate data grant double-resumes a
    thread), so each protocol wraps its handlers with a per-node guard:
    the first delivery of a transaction id runs the handler, later
    deliveries of the same id are dropped and counted.  Bounded memory:
    only the most recent ``capacity`` ids are remembered (FIFO eviction),
    which is far beyond any plausible duplicate lifetime.

    Messages without a transaction id (reliable network, or non-message
    arguments such as block faults) pass through untouched.

    The seen-set is keyed on ``(src, xid)``: transaction ids are
    allocated per *machine* by :class:`ReliableTransport`, so one
    machine's xid stream never collides with itself — but keying on the
    sender as well keeps the guard correct even for multi-transport
    topologies (or future per-node id allocation), where two senders can
    legitimately reuse the same xid value.
    """

    __slots__ = ("_seen", "_order", "_capacity", "_stats", "_key")

    def __init__(self, stats: "Stats | None" = None, key: str | None = None,
                 capacity: int = 4096):
        self._seen: set[tuple[int, int]] = set()
        self._order: deque[tuple[int, int]] = deque()
        self._capacity = capacity
        self._stats = stats
        self._key = key

    def seen(self, src: int, xid: int | None) -> bool:
        """Record ``(src, xid)``; True (and counted) if already recorded."""
        if xid is None:
            return False
        key = (src, xid)
        if key in self._seen:
            stats = self._stats
            if stats is not None:
                stats.incr("tempest.duplicates_dropped")
                if self._key is not None:
                    stats.incr(self._key)
            return True
        self._seen.add(key)
        self._order.append(key)
        if len(self._order) > self._capacity:
            self._seen.discard(self._order.popleft())
        return False

    def wrap(self, fn: Callable[..., Any]) -> Callable[..., Any]:
        """Wrap a handler so duplicate deliveries become no-ops.

        The wrapper is tagged with ``__wrapped__`` (the raw handler) and
        ``__guard__`` (this guard), so the compiled kernel can fuse the
        duplicate check into its dispatch table instead of paying a call
        frame per invocation — with identical semantics, because the
        fused check is exactly the body below.
        """
        def guarded(tempest: Any, message: Any) -> Any:
            xid = getattr(message, "xid", None)
            if xid is not None and self.seen(message.src, xid):
                return None
            return fn(tempest, message)
        guarded.__wrapped__ = fn
        guarded.__guard__ = self
        return guarded
